"""Fault-plane overhead bench: an empty schedule must cost nothing.

The fault engine's contract is that robustness is pay-as-you-go: a
``PacketSimulator`` constructed with an empty :class:`FaultSchedule`
takes the same vectorized fast path as one built without a fault plane
at all.  This bench pins both halves of that contract on the n16 PGFT:

* results are **bit-identical** (same makespan, same per-message
  timestamps) with and without the empty schedule;
* the empty-schedule run is within **5%** of the fault-free fast path
  (measured as best-of-N to shave scheduler noise).

The session conftest writes the measured ratio to
``artifacts/BENCH_bench_faults.json``.
"""

import time

from repro.collectives import shift
from repro.faults import FaultSchedule
from repro.ordering import topology_order
from repro.sim import PacketSimulator, cps_workload

STAGES = 12
SIZE_KB = 64
MAX_OVERHEAD = 1.05   # empty schedule within 5% of the fast path
TIMING_ROUNDS = 15


def _workload(tables):
    n = tables.fabric.num_endports
    cps = shift(n, displacements=range(1, STAGES + 1))
    return cps_workload(cps, topology_order(n), n, SIZE_KB * 1024.0)


def _run(tables, wl, faults=None):
    return PacketSimulator(
        tables, credit_limit=4, engine="vector", faults=faults
    ).run_sequences(wl)


def _best_of(fn, rounds=TIMING_ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_empty_schedule_free_n16(benchmark, tables16):
    wl = _workload(tables16)

    clean = _run(tables16, wl)
    faulty = benchmark.pedantic(
        _run, args=(tables16, wl, FaultSchedule()), rounds=3, iterations=1)

    # Bit-identity: the empty schedule must not perturb a single float.
    assert faulty.makespan == clean.makespan
    assert faulty.engine_stats.fast_path == clean.engine_stats.fast_path
    key = lambda r: sorted(  # noqa: E731
        (m.src, m.dst, m.size, m.start, m.inject, m.finish)
        for m in r.messages)
    assert key(faulty) == key(clean)

    t_clean = _best_of(lambda: _run(tables16, wl))
    t_faulty = _best_of(lambda: _run(tables16, wl, FaultSchedule()))
    ratio = t_faulty / t_clean

    benchmark.extra_info["t_clean_ms"] = round(t_clean * 1e3, 3)
    benchmark.extra_info["t_empty_schedule_ms"] = round(t_faulty * 1e3, 3)
    benchmark.extra_info["overhead_ratio"] = round(ratio, 4)
    benchmark.extra_info["fast_path"] = bool(faulty.engine_stats.fast_path)

    assert ratio <= MAX_OVERHEAD, (
        f"empty FaultSchedule costs {100 * (ratio - 1):.1f}% "
        f"(> {100 * (MAX_OVERHEAD - 1):.0f}%) over the fault-free fast path")
