"""Figure 2 bench: normalized bandwidth vs message size (fluid sim).

One benchmark per (message size, ordering); ``extra_info`` carries the
normalized bandwidth so the ``--benchmark-only`` output reports the
same series the paper plots.
"""

import pytest

from repro.collectives import recursive_doubling, shift
from repro.ordering import random_order, topology_order
from repro.sim import FluidSimulator, cps_workload

SIZES_KB = [16, 256]


def _run(tables, cps, order, size_kb):
    n = tables.fabric.num_endports
    wl = cps_workload(cps, order, n, size_kb * 1024.0)
    return FluidSimulator(tables).run_sequences(wl)


@pytest.mark.parametrize("size_kb", SIZES_KB)
def test_fig2_shift_random(benchmark, tables324, size_kb):
    n = tables324.fabric.num_endports
    cps = shift(n, displacements=range(1, 9))
    order = random_order(n, seed=1)
    res = benchmark.pedantic(
        _run, args=(tables324, cps, order, size_kb), rounds=1, iterations=1
    )
    benchmark.extra_info["normalized_bw"] = round(res.normalized_bandwidth, 3)
    benchmark.extra_info["endports"] = n
    # Paper: random order degrades toward ~0.4 of PCIe bandwidth.
    assert res.normalized_bandwidth < 0.75


@pytest.mark.parametrize("size_kb", SIZES_KB)
def test_fig2_recdbl_random(benchmark, tables324, size_kb):
    n = tables324.fabric.num_endports
    cps = recursive_doubling(n)
    order = random_order(n, seed=1)
    res = benchmark.pedantic(
        _run, args=(tables324, cps, order, size_kb), rounds=1, iterations=1
    )
    benchmark.extra_info["normalized_bw"] = round(res.normalized_bandwidth, 3)
    benchmark.extra_info["endports"] = n
    assert res.normalized_bandwidth < 0.75


@pytest.mark.parametrize("size_kb", SIZES_KB)
def test_fig2_shift_ordered(benchmark, tables324, size_kb):
    n = tables324.fabric.num_endports
    cps = shift(n, displacements=range(1, 9))
    order = topology_order(n)
    res = benchmark.pedantic(
        _run, args=(tables324, cps, order, size_kb), rounds=1, iterations=1
    )
    benchmark.extra_info["normalized_bw"] = round(res.normalized_bandwidth, 3)
    benchmark.extra_info["endports"] = n
    # Contention-free reference: at least the overhead-limited ideal.
    ideal = (size_kb * 1024 / 3250) / (size_kb * 1024 / 3250 + 1.0)
    assert res.normalized_bandwidth > 0.95 * ideal
