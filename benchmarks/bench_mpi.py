"""Mini-MPI bench: collective completion times under both placements.

Application-level expression of the paper's result: identical data,
identical algorithms -- the placement alone decides the communication
time.
"""

import numpy as np
import pytest

from repro.fabric import build_fabric
from repro.mpi import Communicator
from repro.ordering import random_order
from repro.routing import route_dmodk
from repro.topology import rlft_max


@pytest.fixture(scope="module")
def tables():
    return route_dmodk(build_fabric(rlft_max(6, 2)))  # 72 ranks


def _payload(n, size, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=size) for _ in range(n)]


@pytest.mark.parametrize("collective", ["allreduce", "allgather", "alltoall"])
def test_mpi_placement_speedup(benchmark, tables, collective):
    n = tables.fabric.num_endports
    good = Communicator(tables)
    bad = Communicator(tables, placement=random_order(n, seed=3))

    def run(comm):
        if collective == "allreduce":
            return comm.allreduce(_payload(n, 8192),
                                  algorithm="rabenseifner")
        if collective == "allgather":
            return comm.allgather(_payload(n, 2048), algorithm="ring")
        data = _payload(n, 64)
        return comm.alltoall([[d] * n for d in data])

    res_good = benchmark.pedantic(run, args=(good,), rounds=1, iterations=1)
    res_bad = run(bad)
    benchmark.extra_info["ordered_us"] = round(res_good.time_us, 1)
    benchmark.extra_info["random_us"] = round(res_bad.time_us, 1)
    benchmark.extra_info["speedup"] = round(
        res_bad.time_us / res_good.time_us, 2)
    assert res_good.time_us < res_bad.time_us
