"""Fault-space sweep: incremental delta vs cold re-certification.

The whole point of building the fault-space analyzer on the symbolic
certifier's ``keep_links`` cache: certifying 675 degraded n324 fabrics
(every cable, every switch) must cost *deltas*, not 675 cold
certifications.  The cold engine re-walks every flow of every stage
per fault; the incremental engine batch-rewalks only the flows whose
healthy path crossed a dead cable (repair locality guarantees those
are the only ones that can move) and patches the healthy per-stage
link-load maxima sparsely.

The asserted ratio (>= 10x, routinely higher) is tabulated in
``artifacts/BENCH_faultspace.json`` together with the differential
check: both engines must produce bit-identical verdicts, stage maxima
and counterexamples across the full single-fault space.
"""

import time

import numpy as np
import pytest

from repro.check.faultspace import (
    certify_prepared,
    enumerate_fault_units,
    prepare_fault_cases,
    sample_fault_combos,
)
from repro.experiments.common import sampled_shift
from repro.fabric import build_fabric
from repro.ordering import topology_subset
from repro.routing import route_dmodk
from repro.topology import paper_topologies

EXCLUDE = 36          # Cont.-288 job: idle capacity worth certifying
MAX_SHIFT_STAGES = 128


@pytest.fixture(scope="module")
def sweep324():
    spec = paper_topologies()["n324"]
    fab = build_fabric(spec)
    active = topology_subset(fab.num_endports, EXCLUDE, seed=0)
    tables = route_dmodk(fab, active=active)
    cps = sampled_shift(len(active), MAX_SHIFT_STAGES)
    placement = np.sort(np.asarray(active, dtype=np.int64))
    units = enumerate_fault_units(fab, units="both")
    combos = sample_fault_combos(units, max_faults=1, samples=0, seed=0)
    prepared = prepare_fault_cases(tables, combos, strategy="balanced",
                                   active=active, check_valleys=False)
    return tables, cps, placement, active, prepared


def test_incremental_sweep_vs_cold_n324(benchmark, sweep324):
    """The headline ratio: sweeping all 675 single faults of n324 via
    the symbolic delta cache must beat cold re-certification >= 10x,
    with bit-identical results."""
    tables, cps, placement, active, prepared = sweep324
    assert len(prepared) == 675       # 648 cables + 27 switches

    t0 = time.perf_counter()
    cold = certify_prepared(tables, prepared, cps, placement,
                            active=active, engine="cold")
    t_cold = time.perf_counter() - t0

    t0 = time.perf_counter()
    inc = benchmark.pedantic(
        certify_prepared, args=(tables, prepared, cps, placement),
        kwargs=dict(active=active, engine="incremental"),
        rounds=1, iterations=1)
    t_inc = time.perf_counter() - t0

    # Differential: the delta engine must be invisible in the results.
    assert len(inc.records) == len(cold.records) == 675
    for a, b in zip(inc.records, cold.records):
        assert a.verdict == b.verdict, a.label
        assert a.stage_maxima == b.stage_maxima, a.label
        assert a.violation == b.violation, a.label
    # Full coverage: every fault gets a verdict (certificate, minimal
    # counterexample, or job-relevant disconnection).
    assert all(r.verdict in ("contention-free", "refuted", "disconnected")
               for r in inc.records)

    speedup = t_cold / t_inc
    benchmark.extra_info["num_faults"] = len(prepared)
    benchmark.extra_info["num_stages"] = len(cps.stages)
    benchmark.extra_info["cold_s"] = round(t_cold, 3)
    benchmark.extra_info["incremental_s"] = round(t_inc, 3)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    benchmark.extra_info["verdicts"] = inc.verdict_counts()
    benchmark.extra_info["certified_fraction"] = round(
        inc.certified_fraction, 4)
    benchmark.extra_info["stages_touched"] = inc.stages_touched
    benchmark.extra_info["flows_recomputed"] = inc.flows_recomputed
    assert speedup >= 10, (t_cold, t_inc)


def test_incremental_sweep_throughput_n324(benchmark, sweep324):
    """Steady-state incremental sweep cost (the number an operator
    pays to re-audit the whole single-fault space after a config
    change)."""
    tables, cps, placement, active, prepared = sweep324
    result = benchmark.pedantic(
        certify_prepared, args=(tables, prepared, cps, placement),
        kwargs=dict(active=active, engine="incremental"),
        rounds=3, iterations=1)
    benchmark.extra_info["faults_per_run"] = len(prepared)
    benchmark.extra_info["verdicts"] = result.verdict_counts()
    assert len(result.records) == len(prepared)
