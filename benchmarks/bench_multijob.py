"""Multi-job isolation bench (extension of section V)."""

import numpy as np
import pytest

from repro.analysis import stage_link_loads
from repro.collectives import shift
from repro.collectives.schedule import stage_flows
from repro.fabric import build_fabric
from repro.jobs import SubAllocator
from repro.routing import route_dmodk
from repro.topology import rlft_max


@pytest.fixture(scope="module")
def setup():
    spec = rlft_max(18, 2)
    return spec, route_dmodk(build_fabric(spec)), SubAllocator(spec)


def _combined_worst(tables, jobs, num_stages=12):
    worst = 0
    stage_sets = [shift(j.num_ranks, displacements=range(1, num_stages + 1))
                  .stages for j in jobs]
    for k in range(num_stages):
        srcs, dsts = [], []
        for job, stages in zip(jobs, stage_sets):
            s, d = stage_flows(stages[k], job.placement)
            srcs.append(s)
            dsts.append(d)
        loads = stage_link_loads(tables, np.concatenate(srcs),
                                 np.concatenate(dsts))
        worst = max(worst, int(loads.max()))
    return worst


def test_three_jobs_isolated(benchmark, setup):
    spec, tables, alloc = setup
    jobs = [alloc.allocate(u * alloc.unit_size) for u in (8, 16, 4)]
    worst = benchmark.pedantic(_combined_worst, args=(tables, jobs),
                               rounds=1, iterations=1)
    benchmark.extra_info["combined_worst_hsd"] = worst
    for j in jobs:
        alloc.release(j)
    assert worst == 1


def test_full_cluster_of_jobs(benchmark, setup):
    # Every unit allocated, 6 jobs of 6 units: still perfectly isolated.
    spec, tables, alloc = setup
    jobs = [alloc.allocate(6 * alloc.unit_size) for _ in range(6)]
    worst = benchmark.pedantic(_combined_worst, args=(tables, jobs),
                               rounds=1, iterations=1)
    benchmark.extra_info["combined_worst_hsd"] = worst
    for j in jobs:
        alloc.release(j)
    assert worst == 1
