"""Symbolic vs enumerating certification: the scaling unlock.

The enumerated engine pays for table materialisation (O(switches *
end-ports) D-Mod-K entries) before it can walk a single flow; the
symbolic engine evaluates eq. (1) directly and touches neither tables
nor fabric.  At the paper's maximal 3-level 24-ary RLFT (27 648
end-ports) that is a >50x wall-clock gap -- the number asserted here
and tabulated in docs/PERFORMANCE.md.
"""

import time

import numpy as np
import pytest

from repro.analysis.hsd import walk_flow_links
from repro.check import SymbolicCertifier
from repro.collectives import dissemination
from repro.collectives.schedule import stage_flows
from repro.fabric import build_fabric
from repro.ordering import topology_order
from repro.routing import route_dmodk
from repro.topology import rlft_max

SPEC_27K = rlft_max(24, 3)          # PGFT(3; 24,24,48; 1,24,24; 1,1,1)


def enumerated_certify(spec, cps, order):
    """Everything the enumerating engine must do from a cold start."""
    fab = build_fabric(spec)
    tables = route_dmodk(fab)
    maxima = []
    for st in cps:
        src, dst = stage_flows(st, order)
        _, gports = walk_flow_links(tables, src, dst)
        loads = np.zeros(fab.num_ports, dtype=np.int64)
        np.add.at(loads, gports, 1)
        maxima.append(int(loads.max()))
    return maxima


def symbolic_certify(spec, cps, order):
    res, _ = SymbolicCertifier(spec).certify(cps, order)
    return res


def test_symbolic_selfcert_27k(benchmark):
    """Certify dissemination on 27 648 end-ports from the closed form
    alone -- the scale the enumerated engine needs minutes for."""
    n = SPEC_27K.num_endports
    assert n >= 27_000
    cps = dissemination(n)
    order = topology_order(n)
    res = benchmark.pedantic(symbolic_certify, args=(SPEC_27K, cps, order),
                             rounds=3, iterations=1)
    assert res.verdict == "contention-free"
    assert res.max_link_load == 1
    benchmark.extra_info["num_endports"] = n
    benchmark.extra_info["num_flows"] = res.total_flows


@pytest.mark.slow
def test_symbolic_crossover_27k(benchmark):
    """The headline ratio: symbolic must beat cold-start enumeration by
    >= 50x at n >= 27k (it routinely lands in the hundreds)."""
    n = SPEC_27K.num_endports
    cps = dissemination(n)
    order = topology_order(n)

    t0 = time.perf_counter()
    enum_maxima = enumerated_certify(SPEC_27K, cps, order)
    t_enum = time.perf_counter() - t0

    t0 = time.perf_counter()
    res = benchmark.pedantic(symbolic_certify, args=(SPEC_27K, cps, order),
                             rounds=1, iterations=1)
    t_sym = time.perf_counter() - t0

    assert res.maxima == enum_maxima        # differential, at scale
    speedup = t_enum / t_sym
    benchmark.extra_info["enumerated_s"] = round(t_enum, 3)
    benchmark.extra_info["symbolic_s"] = round(t_sym, 3)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    assert speedup >= 50, (t_enum, t_sym)


def test_crossover_at_n324(benchmark, tables324, topo324):
    """At the paper's 324-port cluster the engines are equally instant
    (the crossover table's small-n anchor); assert only agreement and
    record both timings."""
    n = topo324.num_endports
    cps = dissemination(n)
    order = topology_order(n)

    t0 = time.perf_counter()
    maxima = []
    for st in cps:
        src, dst = stage_flows(st, order)
        _, gports = walk_flow_links(tables324, src, dst)
        loads = np.zeros(tables324.fabric.num_ports, dtype=np.int64)
        np.add.at(loads, gports, 1)
        maxima.append(int(loads.max()))
    t_enum = time.perf_counter() - t0

    res = benchmark.pedantic(symbolic_certify, args=(topo324, cps, order),
                             rounds=3, iterations=1)
    assert res.maxima == maxima
    benchmark.extra_info["enumerated_walk_s"] = round(t_enum, 4)
