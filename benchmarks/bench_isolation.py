"""Per-class isolation certification: symbolic vs enumerating engine.

Same scaling story as ``bench_symbolic``, per traffic class: the
enumerating engine must materialise type-aware tables (O(switches *
end-ports) entries) before it can walk one class flow, while the
symbolic engine evaluates eq. (1) over the typed rank vector directly.
At the paper's maximal 3-level 24-ary RLFT (27 648 end-ports, storage
class staggered across every leaf) the gap is asserted >= 10x and
tabulated in ``artifacts/BENCH_isolation.json``.
"""

import time

import pytest

from repro.check import CheckContext, run_check
from repro.fabric import NodeTypeMap, build_fabric
from repro.routing import route_typeaware
from repro.topology import rlft_max

SPEC_27K = rlft_max(24, 3)          # PGFT(3; 24,24,48; 1,24,24; 1,1,1)
MAX_STAGES = 8


def _typed_fabric(spec):
    fab = build_fabric(spec)
    fab.node_types = NodeTypeMap.staggered(spec, {"storage": 2})
    return fab


def symbolic_isolation(spec):
    """Certify every class from the typed closed form -- no tables."""
    fab = _typed_fabric(spec)
    ctx = CheckContext(fabric=fab, tables=None, routing_name="typeaware")
    result = run_check(ctx, only={"isolation"},
                       isolation=dict(engine="symbolic",
                                      max_stages=MAX_STAGES))
    return result.artifacts["isolation"]


def enumerated_isolation(spec):
    """Everything the enumerating engine pays from a cold start."""
    fab = _typed_fabric(spec)
    tables = route_typeaware(fab)
    ctx = CheckContext(fabric=fab, tables=tables, routing_name="typeaware")
    result = run_check(ctx, only={"isolation"},
                       isolation=dict(engine="enumerate",
                                      max_stages=MAX_STAGES,
                                      check_conformance=False))
    return result.artifacts["isolation"]


def test_symbolic_isolation_27k(benchmark):
    """Certify both classes of the 27 648-port fabric symbolically."""
    n = SPEC_27K.num_endports
    assert n >= 27_000
    iso = benchmark.pedantic(symbolic_isolation, args=(SPEC_27K,),
                             rounds=3, iterations=1)
    assert iso["per_class_worst"] == {"compute": 1, "storage": 1}
    assert iso["certified"] == 2 and iso["refuted"] == 0
    benchmark.extra_info["num_endports"] = n
    benchmark.extra_info["classes"] = iso["classes"]
    benchmark.extra_info["cross_class_bound"] = iso["cross_class_bound"]


@pytest.mark.slow
def test_isolation_crossover_27k(benchmark):
    """The headline ratio: per-class symbolic certification must beat
    cold-start enumeration >= 10x at 27k end-ports."""
    t0 = time.perf_counter()
    enum_iso = enumerated_isolation(SPEC_27K)
    t_enum = time.perf_counter() - t0

    t0 = time.perf_counter()
    sym_iso = benchmark.pedantic(symbolic_isolation, args=(SPEC_27K,),
                                 rounds=1, iterations=1)
    t_sym = time.perf_counter() - t0

    # differential, at scale: both engines agree on every bound
    assert sym_iso["per_class_worst"] == enum_iso["per_class_worst"]
    assert sym_iso["cross_class_bound"] == enum_iso["cross_class_bound"]
    assert sym_iso["max_combined_load"] == enum_iso["max_combined_load"]

    speedup = t_enum / t_sym
    benchmark.extra_info["num_endports"] = SPEC_27K.num_endports
    benchmark.extra_info["enumerated_s"] = round(t_enum, 3)
    benchmark.extra_info["symbolic_s"] = round(t_sym, 3)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    benchmark.extra_info["per_class_worst"] = sym_iso["per_class_worst"]
    assert speedup >= 10, (t_enum, t_sym)
