"""Engine micro-benchmarks: routing-table construction and HSD walks.

Not a paper artefact -- these track the library's own performance so
regressions in the vectorised kernels are caught.
"""

import numpy as np
import pytest

from repro.analysis import stage_link_loads
from repro.fabric import build_fabric
from repro.routing import route_dmodk, route_minhop
from repro.topology import paper_topologies


@pytest.mark.parametrize("topo", ["n324", "n1944"])
def test_bench_build_fabric(benchmark, topo):
    spec = paper_topologies()[topo]
    fab = benchmark.pedantic(build_fabric, args=(spec,), rounds=5, iterations=1)
    assert fab.num_endports == spec.num_endports


@pytest.mark.parametrize("topo", ["n324", "n1944"])
def test_bench_route_dmodk(benchmark, topo):
    fab = build_fabric(paper_topologies()[topo])
    tables = benchmark.pedantic(route_dmodk, args=(fab,), rounds=5, iterations=1)
    assert tables.switch_out.shape[1] == fab.num_endports


def test_bench_route_minhop(benchmark):
    fab = build_fabric(paper_topologies()["n324"])
    tables = benchmark.pedantic(route_minhop, args=(fab,), rounds=2,
                                iterations=1)
    assert tables.switch_out.shape[1] == fab.num_endports


@pytest.mark.parametrize("topo", ["n324", "n1944"])
def test_bench_hsd_stage(benchmark, topo):
    spec = paper_topologies()[topo]
    tables = route_dmodk(build_fabric(spec))
    n = spec.num_endports
    src = np.arange(n)
    dst = (src + n // 3) % n
    loads = benchmark.pedantic(stage_link_loads, args=(tables, src, dst), rounds=10, iterations=1)
    assert loads.max() == 1
