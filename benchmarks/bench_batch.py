"""Mega-batch engine bench: a 1k-scenario fault/ordering grid on n324.

The batch engine (``repro.sim.batch``) exists to make *scenario
grids* -- placement sweeps, chaos campaigns, fault spaces -- priceable
as a handful of NumPy programs instead of one Python-driven simulation
per scenario.  This bench pins the claim at paper scale: a grid of
1024 scenarios (16 rotated placements x 64 seeded fault schedules, a
4-stage shift window at 2 KB on the 324-port RLFT) runs

* per scenario: ``HealingController`` + ``PacketSimulator`` with the
  fault plane enabled -- the exact loop the chaos and fault-space
  drivers used to run;
* batched: one :func:`repro.sim.ordering_batch` spec through
  :func:`repro.sim.run_batch`.

The fault schedules are filtered so every fault window opens after
the collective drains; the batch side must resolve **every** element
on the analytic fast path, each element must be **bit-identical** to
its per-scenario run, and the batch must be **>= 50x faster**.  The
session conftest writes the numbers to ``artifacts/BENCH_batch.json``.
"""

import time

import numpy as np

from repro.collectives.cps import CPS, shift
from repro.faults import FaultSchedule
from repro.faults.controller import HealingController
from repro.ordering import topology_order
from repro.sim import PacketSimulator, cps_workload, ordering_batch, run_batch

SIZE = 2048.0
STAGES = 4
SWEEP_DELAY = 50.0
MTBF = 25.0
HORIZON = 300.0
GRID = 1024
NUM_ORDERS = 16
NUM_SCHEDULES = 64
LOOP_SAMPLES = 6
MIN_SPEEDUP = 50.0
MIN_WINDOW_START = 20.0


def _schedules(fab):
    """The first ``NUM_SCHEDULES`` seeds whose every fault window (dead
    or flaky) opens at ``MIN_WINDOW_START`` or later -- late enough to
    stay clear of the collective's few-microsecond drain."""
    out, seed = [], 0
    while len(out) < NUM_SCHEDULES:
        s = FaultSchedule.random(fab, seed=seed, horizon=HORIZON, mtbf=MTBF)
        seed += 1
        starts = [iv[2] for iv in s.down_intervals(fab)] + \
                 [iv[2] for iv in s.flaky_intervals(fab)]
        if all(st >= MIN_WINDOW_START for st in starts):
            out.append(s)
    return out


def _loop_once(tables, cps, placement, sched):
    n = tables.fabric.num_endports
    wl = cps_workload(cps, placement, n, SIZE)
    healing = HealingController(tables, sched, sweep_delay=SWEEP_DELAY)
    return PacketSimulator(tables, credit_limit=4, engine="vector",
                           faults=sched, healing=healing).run_sequences(wl)


def test_batch_fault_grid_speedup_n324(benchmark, tables324):
    fab = tables324.fabric
    n = fab.num_endports
    cps = CPS(name=f"shift{STAGES}", num_ranks=n,
              stages=shift(n).stages[:STAGES])
    base = topology_order(n)
    orders = np.stack([np.roll(base, k) for k in range(NUM_ORDERS)])
    placements = np.tile(orders, (GRID // NUM_ORDERS, 1))[:GRID]
    scheds = _schedules(fab)
    faults = [scheds[i % NUM_SCHEDULES] for i in range(GRID)]
    spec = ordering_batch(tables324, cps, placements, SIZE,
                          credit_limit=4, faults=faults,
                          sweep_delay=SWEEP_DELAY)

    res = benchmark.pedantic(run_batch, args=(spec,), rounds=3,
                             iterations=1)
    t_batch = benchmark.stats.stats.mean

    # Every element must resolve analytically; a single demotion means
    # the grid no longer measures the tensorized path.
    assert res.stats.fast_path == GRID, res.stats

    # Bit-identity against the per-scenario loop: every sampled element
    # in full (records included), every element's makespan.
    t0 = time.perf_counter()
    sample = range(0, GRID, GRID // LOOP_SAMPLES)
    for i in sample:
        ref = _loop_once(tables324, cps, placements[i], faults[i])
        got = res.elements[i].packet_result()
        assert got.makespan == ref.makespan
        assert np.array_equal(got.latencies, ref.latencies)
        assert got.messages == ref.messages
    t_loop = (time.perf_counter() - t0) / len(list(sample))

    per_elem = t_batch / GRID
    speedup = t_loop / per_elem
    benchmark.extra_info["endports"] = n
    benchmark.extra_info["grid"] = GRID
    benchmark.extra_info["orders"] = NUM_ORDERS
    benchmark.extra_info["schedules"] = NUM_SCHEDULES
    benchmark.extra_info["mtbf_us"] = MTBF
    benchmark.extra_info["batch_ms_per_elem"] = round(per_elem * 1e3, 3)
    benchmark.extra_info["loop_ms_per_elem"] = round(t_loop * 1e3, 1)
    benchmark.extra_info["speedup_vs_loop"] = round(speedup, 1)
    benchmark.extra_info["events_saved"] = int(res.stats.events_saved)
    assert speedup >= MIN_SPEEDUP, (
        f"batch engine only {speedup:.1f}x faster than the per-scenario "
        f"loop ({per_elem * 1e3:.2f} ms vs {t_loop * 1e3:.1f} ms per "
        f"element); target {MIN_SPEEDUP:.0f}x"
    )


def test_batch_fault_free_ordering_grid_n324(benchmark, tables324):
    """The fault-free placement sweep (fig3's inner loop): the win is
    smaller -- no healing controller to amortise -- but still real."""
    n = tables324.fabric.num_endports
    cps = CPS(name=f"shift{STAGES}", num_ranks=n,
              stages=shift(n).stages[:STAGES])
    base = topology_order(n)
    placements = np.stack([np.roll(base, k % n) for k in range(GRID)])
    spec = ordering_batch(tables324, cps, placements, SIZE, credit_limit=4)

    res = benchmark.pedantic(run_batch, args=(spec,), rounds=3,
                             iterations=1)
    t_batch = benchmark.stats.stats.mean
    assert res.stats.fast_path == GRID, res.stats

    t0 = time.perf_counter()
    for i in range(0, GRID, GRID // LOOP_SAMPLES):
        wl = cps_workload(cps, placements[i], n, SIZE)
        ref = PacketSimulator(tables324, credit_limit=4,
                              engine="vector").run_sequences(wl)
        got = res.elements[i].packet_result()
        assert got.makespan == ref.makespan
        assert np.array_equal(got.latencies, ref.latencies)
    t_loop = (time.perf_counter() - t0) / LOOP_SAMPLES

    speedup = t_loop / (t_batch / GRID)
    benchmark.extra_info["endports"] = n
    benchmark.extra_info["grid"] = GRID
    benchmark.extra_info["batch_ms_per_elem"] = round(
        t_batch / GRID * 1e3, 3)
    benchmark.extra_info["loop_ms_per_elem"] = round(t_loop * 1e3, 2)
    benchmark.extra_info["speedup_vs_loop"] = round(speedup, 1)
    assert speedup >= 2.0, (
        f"fault-free batch only {speedup:.1f}x vs the unbatched loop")
