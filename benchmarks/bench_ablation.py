"""Ablation benches: each ingredient of the recipe in isolation."""

import pytest

from repro.analysis import sequence_hsd
from repro.collectives import (
    hierarchical_recursive_doubling,
    recursive_doubling,
)
from repro.experiments.common import sampled_shift
from repro.fabric import build_fabric
from repro.ordering import random_order, topology_order
from repro.routing import route_dmodk, route_minhop, route_random


@pytest.mark.parametrize("router,order_kind,expect_free", [
    ("dmodk", "ordered", True),
    ("dmodk", "random", False),
    ("random", "ordered", False),
    ("random", "random", False),
])
def test_ablation_grid(benchmark, topo324, router, order_kind, expect_free):
    fab = build_fabric(topo324)
    tables = route_dmodk(fab) if router == "dmodk" else route_random(fab, 0)
    n = topo324.num_endports
    order = topology_order(n) if order_kind == "ordered" \
        else random_order(n, seed=0)
    cps = sampled_shift(n, 16)
    rep = benchmark.pedantic(
        sequence_hsd, args=(tables, cps, order), rounds=1, iterations=1
    )
    benchmark.extra_info["avg_hsd"] = round(rep.avg_max, 3)
    assert rep.congestion_free == expect_free


@pytest.mark.parametrize("balance,expect_worst_at_least", [
    ("roundrobin", 1),
    ("random", 3),
    ("first", 10),
])
def test_ablation_minhop_tiebreak(benchmark, topo324, balance,
                                  expect_worst_at_least):
    fab = build_fabric(topo324)
    tables = route_minhop(fab, balance=balance, seed=0)
    n = topo324.num_endports
    cps = sampled_shift(n, 16)
    rep = benchmark.pedantic(
        sequence_hsd, args=(tables, cps, topology_order(n)),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["worst_hsd"] = rep.worst
    assert rep.worst >= expect_worst_at_least


@pytest.mark.parametrize("design,expect_free", [
    ("naive", False),
    ("proxy", False),
    ("hierarchical", True),
])
def test_ablation_rd_design(benchmark, tables324, topo324, design, expect_free):
    n = topo324.num_endports
    cps = {
        "naive": lambda: recursive_doubling(n),
        "proxy": lambda: recursive_doubling(n, nonpow2="proxy"),
        "hierarchical": lambda: hierarchical_recursive_doubling(topo324),
    }[design]()
    rep = benchmark.pedantic(
        sequence_hsd, args=(tables324, cps, topology_order(n)),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["avg_hsd"] = round(rep.avg_max, 3)
    assert rep.congestion_free == expect_free
