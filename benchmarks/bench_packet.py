"""Packet-engine bench: paper-scale all-to-all on the wave calendar.

The vectorized packet engine exists to make n324 (the paper's 324-node
RLFT) packet-simulable; this bench pins that claim down.  One ordered
Shift window (16 stages x 256 KB -- a contention-free convoy with real
credit pressure) runs through both engines:

* the event-driven reference core, one heap event per packet-hop;
* the struct-of-arrays wave calendar, analytic per-wave recurrences.

Asserted, not just reported: results are **bit-identical** (the vector
engine is a reimplementation, not an approximation) and the vectorized
engine is **>= 50x faster** end-to-end.  The session conftest writes
the numbers to ``artifacts/BENCH_bench_packet.json``.
"""

import time

import numpy as np

from repro.collectives import shift
from repro.ordering import topology_order
from repro.sim import PacketSimulator, cps_workload

STAGES = 16
SIZE_KB = 256
MIN_SPEEDUP = 50.0


def _workload(tables):
    n = tables.fabric.num_endports
    cps = shift(n, displacements=range(1, STAGES + 1))
    return cps_workload(cps, topology_order(n), n, SIZE_KB * 1024.0)


def _run(tables, wl, engine):
    return PacketSimulator(
        tables, credit_limit=4, max_events=50_000_000, engine=engine
    ).run_sequences(wl)


def test_packet_vector_speedup_n324(benchmark, tables324):
    wl = _workload(tables324)

    t0 = time.perf_counter()
    ref = _run(tables324, wl, "reference")
    t_ref = time.perf_counter() - t0

    vec = benchmark.pedantic(
        _run, args=(tables324, wl, "vector"), rounds=3, iterations=1
    )
    t_vec = benchmark.stats.stats.mean

    # Correctness first: the speedup only counts if the engines agree
    # to the bit.
    assert np.array_equal(vec.latencies, ref.latencies)
    assert vec.makespan == ref.makespan
    assert vec.messages == ref.messages
    assert vec.engine_stats is not None and vec.engine_stats.fast_path

    speedup = t_ref / t_vec
    benchmark.extra_info["endports"] = tables324.fabric.num_endports
    benchmark.extra_info["stages"] = STAGES
    benchmark.extra_info["size_kb"] = SIZE_KB
    benchmark.extra_info["reference_s"] = round(t_ref, 3)
    benchmark.extra_info["speedup_vs_reference"] = round(speedup, 1)
    benchmark.extra_info["normalized_bw"] = round(
        vec.normalized_bandwidth, 4)
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized engine only {speedup:.1f}x faster than reference"
        f" ({t_vec:.3f}s vs {t_ref:.3f}s); target {MIN_SPEEDUP:.0f}x"
    )


def test_packet_vector_n324_full_alltoall(benchmark, tables324):
    """All 323 Shift stages at 64 KB: the run the reference engine
    cannot realistically do (tens of millions of events)."""
    n = tables324.fabric.num_endports
    wl = cps_workload(shift(n), topology_order(n), n, 64 * 1024.0)
    res = benchmark.pedantic(
        _run, args=(tables324, wl, "vector"), rounds=1, iterations=1
    )
    assert res.engine_stats is not None and res.engine_stats.fast_path
    benchmark.extra_info["endports"] = n
    benchmark.extra_info["stages"] = n - 1
    benchmark.extra_info["events_saved"] = res.engine_stats.events_saved
    benchmark.extra_info["normalized_bw"] = round(
        res.normalized_bandwidth, 4)
    # Ordered D-Mod-K all-to-all is contention-free: full bandwidth.
    assert res.normalized_bandwidth > 0.9
