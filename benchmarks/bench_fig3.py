"""Figure 3 bench: avg max HSD vs cluster size under random orders."""

import pytest

from repro.analysis import random_order_sweep
from repro.experiments.common import figure3_cps_factories
from repro.fabric import build_fabric
from repro.routing import route_dmodk
from repro.topology import paper_topologies

CPS = sorted(figure3_cps_factories(max_shift_stages=24))
TOPOS = ["n128", "n324"]


@pytest.fixture(scope="module")
def routed():
    out = {}
    for name in TOPOS:
        spec = paper_topologies()[name]
        out[name] = route_dmodk(build_fabric(spec))
    return out


@pytest.mark.parametrize("topo", TOPOS)
@pytest.mark.parametrize("cps_name", CPS)
def test_fig3_hsd_sweep(benchmark, routed, topo, cps_name):
    tables = routed[topo]
    factory = figure3_cps_factories(max_shift_stages=24)[cps_name]
    res = benchmark.pedantic(
        random_order_sweep, args=(tables, factory),
        kwargs={"num_orders": 5, "seed": 0}, rounds=1, iterations=1,
    )
    benchmark.extra_info["avg_max_hsd"] = round(res.mean, 3)
    benchmark.extra_info["min"] = round(res.min, 3)
    benchmark.extra_info["max"] = round(res.max, 3)
    # Paper's shape: the three "exponential" collectives congest hard,
    # the tree-based ones stay mild.
    if cps_name in ("ring", "shift", "butterfly", "dissemination"):
        assert res.mean > 2.0
    else:
        assert res.mean < 3.0
