"""Ablation bench: input-buffer size (credits) vs delivered bandwidth.

Isolates the tree-saturation mechanism behind Figure 2's slope: finite
buffers only hurt *congested* traffic; the proposed contention-free
configuration is insensitive to buffer size.
"""

import pytest

from repro.collectives import shift
from repro.fabric import build_fabric
from repro.ordering import random_order, topology_order
from repro.routing import route_dmodk
from repro.sim import PacketSimulator, cps_workload
from repro.topology import pgft


@pytest.fixture(scope="module")
def tables36():
    return route_dmodk(build_fabric(pgft(2, [6, 6], [1, 6], [1, 1])))


@pytest.mark.parametrize("credits", [None, 16, 4, 2])
def test_buffer_sweep_random_order(benchmark, tables36, credits):
    n = tables36.fabric.num_endports
    wl = cps_workload(shift(n), random_order(n, seed=1), n, 131072.0)
    sim = PacketSimulator(tables36, credit_limit=credits,
                          max_events=30_000_000)
    res = benchmark.pedantic(sim.run_sequences, args=(wl,), rounds=1,
                             iterations=1)
    benchmark.extra_info["normalized_bw"] = round(res.normalized_bandwidth, 3)
    benchmark.extra_info["credits"] = str(credits)
    assert res.normalized_bandwidth < 0.85


@pytest.mark.parametrize("credits", [None, 2])
def test_buffer_sweep_ordered_insensitive(benchmark, tables36, credits):
    n = tables36.fabric.num_endports
    wl = cps_workload(shift(n), topology_order(n), n, 131072.0)
    sim = PacketSimulator(tables36, credit_limit=credits,
                          max_events=30_000_000)
    res = benchmark.pedantic(sim.run_sequences, args=(wl,), rounds=1,
                             iterations=1)
    benchmark.extra_info["normalized_bw"] = round(res.normalized_bandwidth, 3)
    # Contention-free traffic never builds queues: buffers are irrelevant.
    assert res.normalized_bandwidth > 0.95
