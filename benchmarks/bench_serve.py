"""Certification-service bench: crash recovery and delta throughput.

The service's two headline SLOs, pinned on the paper's n324 PGFT:

* **Cold-restart recovery < 5 s** -- a journal holding accepted-but-
  unfinished n324 requests (one cold certification plus a backlog of
  deltas) must replay to completion, start to settled journal, in
  under five seconds.
* **Sustained delta throughput >= 20 certs/sec** -- after one cold
  n324 certification warms a worker's base state, a stream of rotate
  deltas (each a full contention-freedom verdict via incremental
  recertification) must sustain at least 20 certificates per second.

The session conftest writes both numbers to
``artifacts/BENCH_serve.json``.
"""

import asyncio
import os
import time

from repro.serve import CertificationService, Journal, ServiceConfig
from repro.serve.protocol import CertRequest

TOPO = "n324"
RECOVERY_BACKLOG = 8          # journaled requests replayed on restart
MAX_RECOVERY_S = 5.0
DELTA_STREAM = 60             # deltas timed for the throughput figure
MIN_CERTS_PER_SEC = 20.0


def _config(journal_path, workers=2):
    return ServiceConfig(workers=workers, journal_path=str(journal_path),
                         tick_s=0.004, default_deadline_s=120.0)


def _write_backlog(journal_path):
    """Forge a crash: accepted records with no matching ``done``."""
    journal = Journal(str(journal_path))
    for seq in range(RECOVERY_BACKLOG):
        if seq == 0:
            req = CertRequest(topo=TOPO)
        else:
            req = CertRequest(topo=TOPO, kind="delta", order="rotate",
                              order_seed=seq)
        journal.accepted(seq, req.digest(), req.to_json())
    journal.close()
    return journal_path


def _recover(journal_path):
    """Start on a crashed journal; run until every record is settled."""

    async def main():
        svc = CertificationService(_config(journal_path))
        await svc.start()
        try:
            while svc.queue.depth or svc.dispatched:
                await asyncio.sleep(0.005)
            return svc.metrics.replayed, svc.metrics.certified
        finally:
            await svc.stop()

    return asyncio.run(main())


def _stream_deltas(journal_path):
    """Warm one cold n324 cert, then time a stream of rotate deltas."""

    async def main():
        svc = CertificationService(_config(journal_path))
        await svc.start()
        try:
            warm = await svc.submit({"topo": TOPO})
            assert warm["status"] == "certified"
            t0 = time.perf_counter()
            responses = await asyncio.gather(*[
                svc.submit({"topo": TOPO, "kind": "delta",
                            "order": "rotate", "order_seed": seed + 1})
                for seed in range(DELTA_STREAM)])
            elapsed = time.perf_counter() - t0
            assert all(r["status"] == "certified" for r in responses)
            return elapsed
        finally:
            await svc.stop()

    return asyncio.run(main())


def test_cold_restart_recovery_n324(benchmark, tmp_path):
    runs = iter(range(10**6))

    def fresh_journal():
        path = tmp_path / f"recovery-{next(runs)}.jsonl"
        return (_write_backlog(path),), {}

    replayed, certified = benchmark.pedantic(
        _recover, setup=fresh_journal, rounds=3, iterations=1)
    assert replayed == RECOVERY_BACKLOG
    assert certified == RECOVERY_BACKLOG

    recovery_s = benchmark.stats.stats.max
    benchmark.extra_info["topology"] = TOPO
    benchmark.extra_info["backlog"] = RECOVERY_BACKLOG
    benchmark.extra_info["recovery_s"] = round(recovery_s, 3)
    assert recovery_s < MAX_RECOVERY_S, (
        f"cold-restart recovery took {recovery_s:.2f}s "
        f"(SLO: < {MAX_RECOVERY_S:.0f}s)")


def test_sustained_delta_throughput_n324(benchmark, tmp_path):
    runs = iter(range(10**6))

    def fresh_journal():
        return (tmp_path / f"stream-{next(runs)}.jsonl",), {}

    elapsed = benchmark.pedantic(
        _stream_deltas, setup=fresh_journal, rounds=3, iterations=1)
    certs_per_sec = DELTA_STREAM / elapsed

    benchmark.extra_info["topology"] = TOPO
    benchmark.extra_info["deltas"] = DELTA_STREAM
    benchmark.extra_info["delta_stream_s"] = round(elapsed, 3)
    benchmark.extra_info["certs_per_sec"] = round(certs_per_sec, 1)
    assert certs_per_sec >= MIN_CERTS_PER_SEC, (
        f"sustained {certs_per_sec:.1f} certs/sec "
        f"(SLO: >= {MIN_CERTS_PER_SEC:.0f})")


if __name__ == "__main__":  # pragma: no cover - manual smoke
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        tmp = os.fspath(tmp)
        path = _write_backlog(os.path.join(tmp, "recovery.jsonl"))
        t0 = time.perf_counter()
        print("recovered:", _recover(path),
              f"in {time.perf_counter() - t0:.2f}s")
        elapsed = _stream_deltas(os.path.join(tmp, "stream.jsonl"))
        print(f"deltas: {DELTA_STREAM / elapsed:.1f} certs/sec")
