"""Table 3 bench: proposed configuration vs random ranking, full and
partially populated fabrics."""

import numpy as np
import pytest

from repro.analysis import sequence_hsd
from repro.collectives import hierarchical_recursive_doubling
from repro.experiments.common import sampled_shift
from repro.fabric import build_fabric
from repro.ordering import physical_placement, random_order
from repro.routing import route_dmodk
from repro.topology import paper_topologies

CASES = [("n324", 0), ("n324", 32), ("n1728", 0), ("n1728", 128)]


def _setup(topo, excluded, seed=0):
    spec = paper_topologies()[topo]
    tables = route_dmodk(build_fabric(spec))
    n = spec.num_endports
    rng = np.random.default_rng(seed)
    active = (np.sort(rng.permutation(n)[: n - excluded])
              if excluded else np.arange(n))
    return spec, tables, active


@pytest.mark.parametrize("topo,excluded", CASES)
def test_table3_shift_proposed(benchmark, topo, excluded):
    spec, tables, active = _setup(topo, excluded)
    n = spec.num_endports
    cps = sampled_shift(n, 24)
    slots = physical_placement(active, n)
    rep = benchmark.pedantic(
        sequence_hsd, args=(tables, cps, slots), rounds=1, iterations=1
    )
    benchmark.extra_info["avg_hsd"] = rep.avg_max
    assert rep.congestion_free  # the paper's headline: HSD = 1


@pytest.mark.parametrize("topo,excluded", CASES)
def test_table3_hier_rd_proposed(benchmark, topo, excluded):
    spec, tables, active = _setup(topo, excluded)
    cps = hierarchical_recursive_doubling(spec)
    slots = physical_placement(active, spec.num_endports)
    rep = benchmark.pedantic(
        sequence_hsd, args=(tables, cps, slots), rounds=1, iterations=1
    )
    benchmark.extra_info["avg_hsd"] = rep.avg_max
    assert rep.congestion_free


@pytest.mark.parametrize("topo,excluded", CASES[:2])
def test_table3_random_ranking(benchmark, topo, excluded):
    spec, tables, active = _setup(topo, excluded)
    n = spec.num_endports
    cps = sampled_shift(n, 24)
    order = random_order(n, len(active), seed=7)
    rep = benchmark.pedantic(
        sequence_hsd, args=(tables, cps, order), rounds=1, iterations=1
    )
    benchmark.extra_info["avg_hsd"] = round(rep.avg_max, 3)
    # Random ranking congests: the improvement column of Table 3.
    assert rep.avg_max > 2.0
