"""Section II bench: the adversarial Ring bandwidth collapse (7.1 %)."""

import pytest

from repro.analysis import sequence_hsd
from repro.collectives import ring
from repro.collectives.schedule import stage_flows
from repro.ordering import adversarial_ring_order, topology_order
from repro.sim import FluidSimulator, permutation_workload


def _run_ring(tables, order, repeats=3, size=262144.0):
    n = tables.fabric.num_endports
    src, dst = stage_flows(ring(n).stages[0], order)
    wl = permutation_workload(src, dst, n, size, repeats=repeats)
    return FluidSimulator(tables).run_sequences(wl)


def test_ring_adversarial_collapse(benchmark, tables324, topo324):
    order = adversarial_ring_order(topo324)
    res = benchmark.pedantic(
        _run_ring, args=(tables324, order), rounds=1, iterations=1
    )
    mbps = res.per_port_bandwidth
    benchmark.extra_info["per_port_MBps"] = round(mbps, 1)
    benchmark.extra_info["normalized"] = round(res.normalized_bandwidth, 4)
    # Paper: 231.5 MB/s, 7.1 % of nominal (oversubscription 18).
    assert 180 < mbps < 300
    assert res.normalized_bandwidth < 0.10


def test_ring_topology_order_full_speed(benchmark, tables324, topo324):
    n = topo324.num_endports
    res = benchmark.pedantic(
        _run_ring, args=(tables324, topology_order(n)), rounds=1, iterations=1
    )
    benchmark.extra_info["per_port_MBps"] = round(res.per_port_bandwidth, 1)
    assert res.normalized_bandwidth > 0.95


def test_ring_adversarial_hsd(benchmark, tables324, topo324):
    order = adversarial_ring_order(topo324)
    rep = benchmark.pedantic(
        sequence_hsd, args=(tables324, ring(topo324.num_endports), order),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["max_hsd"] = rep.worst
    assert rep.worst >= topo324.m[0] - 1  # ~18-way oversubscription
