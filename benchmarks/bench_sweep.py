"""Sweep-engine bench: serial reference vs the repro.runtime engine.

Reproduces the engineering claim behind the parallel sweep engine:

* the batched HSD path + process-pool sharding is at least 2x faster
  than the serial ``random_order_sweep`` reference on the paper's
  324-node cluster at ``jobs=4`` — while staying bit-identical;
* a warm content-addressed cache answers the same sweep from disk
  without recomputing anything.

Measured wall-times land in the benchmark ``extra_info`` channel
(``serial_s`` / ``engine_s`` / ``speedup``).
"""

import os
import time

import numpy as np
import pytest

from repro.analysis import random_order_sweep
from repro.collectives import shift
from repro.runtime import ParallelSweeper, ResultCache

# Large enough that sweep compute dominates the fixed process-pool
# start-up cost; the >=2x then holds even on a single-core runner
# (where it comes from the batched HSD path rather than parallelism).
NUM_ORDERS = 400
JOBS = 4


def _time(fn, *args, **kwargs):
    t0 = time.perf_counter()
    out = fn(*args, **kwargs)
    return out, time.perf_counter() - t0


def test_sweep_engine_speedup(benchmark, tables324):
    """Engine (batched + jobs=4) beats the serial reference >= 2x."""
    cps = shift(tables324.fabric.num_endports)
    serial, serial_s = _time(
        random_order_sweep, tables324, cps, num_orders=NUM_ORDERS, seed=0,
    )

    sweeper = ParallelSweeper(jobs=JOBS)
    res = benchmark.pedantic(
        sweeper.order_sweep, args=(tables324, cps),
        kwargs={"num_orders": NUM_ORDERS, "seed": 0},
        rounds=1, iterations=1,
    )
    engine_s = benchmark.stats.stats.mean

    assert np.array_equal(res.avg_max, serial.avg_max)  # bit-identical

    speedup = serial_s / engine_s
    benchmark.extra_info["serial_s"] = round(serial_s, 3)
    benchmark.extra_info["engine_s"] = round(engine_s, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["cpus"] = os.cpu_count()
    assert speedup >= 2.0, (
        f"sweep engine only {speedup:.2f}x over serial "
        f"({serial_s:.3f}s vs {engine_s:.3f}s)"
    )


def test_sweep_cache_warm_hit(benchmark, tables324, tmp_path):
    """Second identical sweep is answered from the disk cache."""
    cps = shift(tables324.fabric.num_endports)
    sweeper = ParallelSweeper(jobs=1, cache=ResultCache(root=tmp_path))

    cold, cold_s = _time(
        sweeper.order_sweep, tables324, cps, num_orders=NUM_ORDERS, seed=0,
    )
    assert sweeper.cache.stats.misses == 1 and sweeper.cache.stats.stores == 1

    warm = benchmark.pedantic(
        sweeper.order_sweep, args=(tables324, cps),
        kwargs={"num_orders": NUM_ORDERS, "seed": 0},
        rounds=1, iterations=1,
    )
    warm_s = benchmark.stats.stats.mean

    assert sweeper.cache.stats.hits >= 1
    assert np.array_equal(warm.avg_max, cold.avg_max)
    benchmark.extra_info["cold_s"] = round(cold_s, 3)
    benchmark.extra_info["warm_s"] = round(warm_s, 4)
    benchmark.extra_info["speedup"] = round(cold_s / warm_s, 1)
    assert warm_s < cold_s
