"""Section VII bench: full bandwidth + cut-through latency when the
node order matches the routing (fluid and packet simulators)."""

import pytest

from repro.collectives import hierarchical_recursive_doubling, shift
from repro.ordering import topology_order
from repro.sim import (
    QDR_PCIE_GEN2,
    FluidSimulator,
    PacketSimulator,
    cps_workload,
)

SIZE = 65536.0


def test_fluid_shift_full_bandwidth(benchmark, tables16):
    n = tables16.fabric.num_endports
    wl = cps_workload(shift(n), topology_order(n), n, SIZE)
    res = benchmark.pedantic(
        FluidSimulator(tables16).run_sequences, args=(wl,),
        rounds=3, iterations=1,
    )
    benchmark.extra_info["normalized_bw"] = round(res.normalized_bandwidth, 3)
    ideal = (SIZE / 3250) / (SIZE / 3250 + QDR_PCIE_GEN2.host_overhead)
    assert res.normalized_bandwidth > 0.98 * ideal


def test_packet_shift_cut_through_latency(benchmark, tables16, topo16):
    n = tables16.fabric.num_endports
    wl = cps_workload(shift(n), topology_order(n), n, SIZE)
    res = benchmark.pedantic(
        PacketSimulator(tables16).run_sequences, args=(wl,),
        rounds=1, iterations=1,
    )
    zero_load = QDR_PCIE_GEN2.zero_load_latency(int(SIZE), hops=2 * topo16.h - 1)
    benchmark.extra_info["mean_latency_us"] = round(res.mean_latency, 2)
    benchmark.extra_info["zero_load_us"] = round(zero_load, 2)
    # Cut-through latency: within 5 % of the uncontended analytic value.
    assert res.mean_latency == pytest.approx(zero_load, rel=0.05)


def test_packet_hier_rd_full_bandwidth(benchmark, tables16, topo16):
    n = tables16.fabric.num_endports
    cps = hierarchical_recursive_doubling(topo16)
    wl = cps_workload(cps, topology_order(n), n, SIZE)
    res = benchmark.pedantic(
        PacketSimulator(tables16).run_sequences, args=(wl,),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["normalized_bw"] = round(res.normalized_bandwidth, 3)
    assert res.normalized_bandwidth > 0.9
