"""Benchmark fixtures: routed fabrics at bench-friendly sizes.

Every benchmark regenerates a paper artefact (table/figure); the
``--benchmark-only`` run doubles as the reproduction driver, printing
the key numbers through the benchmark ``extra_info`` channel.

Besides the interactive table, every bench module leaves a
machine-readable trace: a session-finish hook groups the collected
benchmarks by module and writes ``artifacts/BENCH_<module>.json`` with
per-benchmark mean time, ops/sec, and the ``extra_info`` payload
(normalized bandwidth, speedups, topology sizes), stamped with the git
SHA -- so perf regressions are diffable across commits without parsing
terminal output.
"""

import json
import subprocess
import warnings
from collections import defaultdict
from pathlib import Path

import pytest

from repro.fabric import build_fabric
from repro.routing import route_dmodk
from repro.topology import paper_topologies

ARTIFACT_DIR = Path(__file__).resolve().parent / "artifacts"
BENCH_DIR = Path(__file__).resolve().parent


def _git_sha() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
        return out.stdout.strip() or None
    except OSError:
        return None


def _is_ancestor_of_head(sha: str) -> bool | None:
    """Whether ``sha`` is an ancestor of HEAD (None: cannot tell)."""
    try:
        out = subprocess.run(
            ["git", "merge-base", "--is-ancestor", sha, "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except OSError:
        return None
    if out.returncode == 0:
        return True
    # 1 = not an ancestor; anything else (128: unknown sha, no git)
    # means the question is unanswerable.
    return False if out.returncode == 1 else None


def pytest_sessionstart(session):
    """Flag artifacts that no longer describe this tree.

    A ``BENCH_<module>.json`` is stale when its ``git_sha`` is not an
    ancestor of HEAD (it measured a sibling branch, or a rebase threw
    its commit away) or when no ``bench_<module>.py`` exists anymore
    (the artifact survived its benchmark).  Either way the numbers
    cannot be attributed to any commit in this history -- warn, so the
    fix (rerun or delete) is one ``--benchmark-only`` away.
    """
    if not ARTIFACT_DIR.is_dir():
        return
    for path in sorted(ARTIFACT_DIR.glob("BENCH_*.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            warnings.warn(f"benchmark artifact {path.name} is unreadable",
                          stacklevel=1)
            continue
        module = doc.get("module") or path.stem.removeprefix("BENCH_")
        if not (BENCH_DIR / f"bench_{module}.py").is_file():
            warnings.warn(
                f"benchmark artifact {path.name} has no matching "
                f"bench_{module}.py -- delete it or restore the bench",
                stacklevel=1)
        sha = doc.get("git_sha")
        if sha and _is_ancestor_of_head(sha) is False:
            warnings.warn(
                f"benchmark artifact {path.name} was produced at "
                f"{sha[:12]}, which is not an ancestor of HEAD -- "
                f"rerun the benchmark to refresh it",
                stacklevel=1)


def pytest_sessionfinish(session, exitstatus):
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    by_module: dict[str, list[dict]] = defaultdict(list)
    for bench in bench_session.benchmarks:
        # bench_faultspace.py -> BENCH_faultspace.json: the artifact is
        # named for what it measures, not the collection-glob prefix.
        module = Path(str(bench.fullname).split("::", 1)[0]).stem
        module = module.removeprefix("bench_")
        stats = getattr(bench, "stats", None)
        try:
            mean = stats.mean if stats is not None and stats.data else None
        except (AttributeError, ValueError):
            mean = None
        by_module[module].append({
            "name": bench.name,
            "mean_s": mean,
            "ops_per_sec": (1.0 / mean) if mean else None,
            "rounds": getattr(stats, "rounds", None),
            "extra_info": dict(bench.extra_info),
        })
    ARTIFACT_DIR.mkdir(exist_ok=True)
    sha = _git_sha()
    for module, entries in sorted(by_module.items()):
        payload = {"module": module, "git_sha": sha, "benchmarks": entries}
        path = ARTIFACT_DIR / f"BENCH_{module}.json"
        path.write_text(json.dumps(payload, indent=2) + "\n")


@pytest.fixture(scope="session")
def topo324():
    return paper_topologies()["n324"]


@pytest.fixture(scope="session")
def tables324(topo324):
    return route_dmodk(build_fabric(topo324))


@pytest.fixture(scope="session")
def topo16():
    return paper_topologies()["n16-pgft"]


@pytest.fixture(scope="session")
def tables16(topo16):
    return route_dmodk(build_fabric(topo16))
