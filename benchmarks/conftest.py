"""Benchmark fixtures: routed fabrics at bench-friendly sizes.

Every benchmark regenerates a paper artefact (table/figure); the
``--benchmark-only`` run doubles as the reproduction driver, printing
the key numbers through the benchmark ``extra_info`` channel.

Besides the interactive table, every bench module leaves a
machine-readable trace: a session-finish hook groups the collected
benchmarks by module and writes ``artifacts/BENCH_<module>.json`` with
per-benchmark mean time, ops/sec, and the ``extra_info`` payload
(normalized bandwidth, speedups, topology sizes), stamped with the git
SHA -- so perf regressions are diffable across commits without parsing
terminal output.
"""

import json
import subprocess
from collections import defaultdict
from pathlib import Path

import pytest

from repro.fabric import build_fabric
from repro.routing import route_dmodk
from repro.topology import paper_topologies

ARTIFACT_DIR = Path(__file__).resolve().parent / "artifacts"


def _git_sha() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
        return out.stdout.strip() or None
    except OSError:
        return None


def pytest_sessionfinish(session, exitstatus):
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    by_module: dict[str, list[dict]] = defaultdict(list)
    for bench in bench_session.benchmarks:
        # bench_faultspace.py -> BENCH_faultspace.json: the artifact is
        # named for what it measures, not the collection-glob prefix.
        module = Path(str(bench.fullname).split("::", 1)[0]).stem
        module = module.removeprefix("bench_")
        stats = getattr(bench, "stats", None)
        try:
            mean = stats.mean if stats is not None and stats.data else None
        except (AttributeError, ValueError):
            mean = None
        by_module[module].append({
            "name": bench.name,
            "mean_s": mean,
            "ops_per_sec": (1.0 / mean) if mean else None,
            "rounds": getattr(stats, "rounds", None),
            "extra_info": dict(bench.extra_info),
        })
    ARTIFACT_DIR.mkdir(exist_ok=True)
    sha = _git_sha()
    for module, entries in sorted(by_module.items()):
        payload = {"module": module, "git_sha": sha, "benchmarks": entries}
        path = ARTIFACT_DIR / f"BENCH_{module}.json"
        path.write_text(json.dumps(payload, indent=2) + "\n")


@pytest.fixture(scope="session")
def topo324():
    return paper_topologies()["n324"]


@pytest.fixture(scope="session")
def tables324(topo324):
    return route_dmodk(build_fabric(topo324))


@pytest.fixture(scope="session")
def topo16():
    return paper_topologies()["n16-pgft"]


@pytest.fixture(scope="session")
def tables16(topo16):
    return route_dmodk(build_fabric(topo16))
