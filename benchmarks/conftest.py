"""Benchmark fixtures: routed fabrics at bench-friendly sizes.

Every benchmark regenerates a paper artefact (table/figure); the
``--benchmark-only`` run doubles as the reproduction driver, printing
the key numbers through the benchmark ``extra_info`` channel.
"""

import pytest

from repro.fabric import build_fabric
from repro.routing import route_dmodk
from repro.topology import paper_topologies


@pytest.fixture(scope="session")
def topo324():
    return paper_topologies()["n324"]


@pytest.fixture(scope="session")
def tables324(topo324):
    return route_dmodk(build_fabric(topo324))


@pytest.fixture(scope="session")
def topo16():
    return paper_topologies()["n16-pgft"]


@pytest.fixture(scope="session")
def tables16(topo16):
    return route_dmodk(build_fabric(topo16))
