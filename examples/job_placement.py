#!/usr/bin/env python
"""Job placement on a shared cluster: what a scheduler should do.

A 324-node cluster has 40 nodes down for maintenance (randomly
scattered).  A 284-rank MPI job arrives.  This example compares the
placements a scheduler could emit:

* naive random placement on the free nodes,
* topology-ordered placement (free nodes in fabric order) with the
  job's sequence played over physical slots (the paper's partial-tree
  semantics),

and shows HSD plus simulated all-to-all time for each -- the argument
for making schedulers and subnet managers cooperate.

Run:  python examples/job_placement.py
"""

import numpy as np

from repro.analysis import sequence_hsd
from repro.collectives import hierarchical_recursive_doubling, shift
from repro.fabric import build_fabric
from repro.ordering import physical_placement, random_order
from repro.routing import route_dmodk
from repro.sim import FluidSimulator, cps_workload
from repro.topology import paper_topologies

spec = paper_topologies()["n324"]
N = spec.num_endports
rng = np.random.default_rng(7)
down = rng.permutation(N)[:40]
free = np.setdiff1d(np.arange(N), down)
print(f"cluster: {spec}")
print(f"{len(down)} nodes in maintenance; placing a {len(free)}-rank job\n")

fabric = build_fabric(spec)
tables = route_dmodk(fabric)
window = shift(N, displacements=range(1, 25))      # all-to-all window
hier = hierarchical_recursive_doubling(spec)        # allreduce pattern

placements = {
    "random placement": random_order(N, len(free), seed=1),
    "topology-ordered": physical_placement(free, N),
}

for label, placement in placements.items():
    hsd_a2a = sequence_hsd(tables, window, placement)
    hsd_ar = sequence_hsd(tables, hier, placement)
    wl = cps_workload(window, placement, N, 128 * 1024)
    t = FluidSimulator(tables).run_sequences(wl).makespan
    print(f"{label:18s} all-to-all HSD worst={hsd_a2a.worst} "
          f"avg={hsd_a2a.avg_max:.2f} | allreduce HSD worst={hsd_ar.worst} "
          f"| simulated a2a window: {t / 1000:.2f} ms")

print(
    "\nTopology-ordered placement with slot-based sequences keeps the\n"
    "partially-populated tree congestion-free (HSD = 1), exactly as\n"
    "Table 3's 'Cont.-X' rows report."
)
