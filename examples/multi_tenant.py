#!/usr/bin/env python
"""Multi-tenant cluster: run several jobs with zero interference.

The paper proves single-job congestion freedom and notes utility
clusters as future work.  The library's sub-allocator extends the
result: jobs that receive whole level-(h-1) sub-trees (one leaf switch
on 2-level fabrics, 324-node sub-trees on the maximal 3-level one)
never share a directed link -- each tenant's collectives run at full
bandwidth regardless of the neighbours.

This script allocates three tenants on a 648-node fabric, runs all
their all-to-all windows simultaneously in the fluid simulator, and
compares per-tenant bandwidth alone vs. together; then releases one
tenant and reuses the units.

Run:  python examples/multi_tenant.py
"""

import numpy as np

from repro.analysis import stage_link_loads
from repro.collectives import shift
from repro.collectives.schedule import stage_flows
from repro.fabric import build_fabric
from repro.jobs import SubAllocator
from repro.routing import route_dmodk
from repro.sim import FluidSimulator, cps_workload
from repro.topology import rlft_max

spec = rlft_max(18, 2)  # 648 end-ports, 36 leaf units of 18
alloc = SubAllocator(spec)
tables = route_dmodk(build_fabric(spec))
sim = FluidSimulator(tables)
print(f"fabric: {spec} | {alloc.num_units} units of {alloc.unit_size}\n")

tenants = {name: alloc.allocate(units * alloc.unit_size)
           for name, units in (("alpha", 8), ("beta", 16), ("gamma", 4))}
print(f"utilization after placement: {alloc.utilization():.0%}\n")

SIZE = 512 * 1024.0
combined = [[] for _ in range(spec.num_endports)]
solo_bw = {}
for name, job in tenants.items():
    cps = shift(job.num_ranks, displacements=range(1, 13))
    wl = cps_workload(cps, job.placement, spec.num_endports, SIZE)
    solo_bw[name] = sim.run_sequences(wl).normalized_bandwidth
    for p, seq in enumerate(wl):
        combined[p].extend(seq)

together = sim.run_sequences(combined)

# Every tenant's worst link stays at one flow even with all running.
worst = 0
stage_sets = {n: shift(j.num_ranks, displacements=range(1, 13)).stages
              for n, j in tenants.items()}
for k in range(12):
    srcs, dsts = [], []
    for name, job in tenants.items():
        s, d = stage_flows(stage_sets[name][k], job.placement)
        srcs.append(s)
        dsts.append(d)
    loads = stage_link_loads(tables, np.concatenate(srcs), np.concatenate(dsts))
    worst = max(worst, int(loads.max()))

print(f"{'tenant':8s} {'units':>5s} {'ranks':>6s} {'solo normBW':>12s}")
for name, job in tenants.items():
    print(f"{name:8s} {len(job.units):5d} {job.num_ranks:6d} "
          f"{solo_bw[name]:12.3f}")
print(f"\nall tenants concurrent: normBW = {together.normalized_bandwidth:.3f}"
      f", worst link load = {worst} (isolation holds)")

alloc.release(tenants["beta"])
print(f"\nreleased 'beta'; utilization {alloc.utilization():.0%}, "
      f"{len(alloc.free_units)} units free")
delta = alloc.allocate(10 * alloc.unit_size)
print(f"new tenant reuses units {delta.units[:5]}... "
      f"({len(delta.units)} units)")
