#!/usr/bin/env python
"""An MPI application's view: iterative solver on the simulated cluster.

Drives the mini-MPI layer end to end: a data-parallel "conjugate
gradient-ish" loop (local compute abstracted away) whose communication
is one allreduce (the dot products) and one halo-ish allgather per
iteration.  The communicator executes the collectives with real data
*and* prices them on the simulated fabric, so the script reports the
communication time per iteration under a good and a bad rank placement
-- the paper's result expressed in application terms.

Run:  python examples/mpi_application.py
"""

import numpy as np

from repro.fabric import build_fabric
from repro.mpi import Communicator
from repro.ordering import random_order
from repro.routing import route_dmodk
from repro.topology import rlft_max

spec = rlft_max(6, 2)  # 72 ranks
tables = route_dmodk(build_fabric(spec))
n = spec.num_endports
rng = np.random.default_rng(1)

print(f"cluster: {spec} | {n} MPI ranks\n")

VECTOR = 32 * 1024 // 8   # 32 KB of doubles per rank

for label, placement in (
    ("topology-ordered", None),
    ("random placement", random_order(n, seed=4)),
):
    comm = Communicator(tables, placement=placement)
    local = [rng.normal(size=VECTOR) for _ in range(n)]

    total_comm = 0.0
    iterations = 3
    for _ in range(iterations):
        # "residual norm": allreduce of a scalar per rank.
        norms = comm.allreduce([np.array([float(np.dot(x, x))])
                                for x in local])
        total_comm += norms.time_us
        # "halo exchange": every rank shares a 4 KB boundary slab.
        slabs = comm.allgather([x[:512] for x in local])
        total_comm += slabs.time_us
        # "search direction update": large allreduce (Rabenseifner).
        upd = comm.allreduce(local, algorithm="rabenseifner")
        total_comm += upd.time_us
        local = [v / n for v in upd.values]  # keep values bounded

    print(f"{label:18s}: {total_comm / iterations:9.1f} us comm/iteration "
          f"({norms.algorithm} + {slabs.algorithm} + {upd.algorithm})")

print(
    "\nSame data, same results -- the placement alone changes the\n"
    "communication time, which is exactly the knob the paper turns."
)
