#!/usr/bin/env python
"""Collective planner: pick the congestion-free algorithm per collective.

An MPI library tuning session: for a given fabric and job, walk the
Table-1 algorithm choices, derive each algorithm's permutation
sequence, and report which are congestion-free under D-Mod-K with
topology-aware ranks -- plus the section-VI fix for the bidirectional
ones that are not.

Run:  python examples/collective_planner.py
"""

from repro.analysis import sequence_hsd
from repro.collectives import (
    TABLE1,
    by_name,
    classify,
    hierarchical_recursive_doubling,
)
from repro.fabric import build_fabric
from repro.ordering import topology_order
from repro.routing import route_dmodk
from repro.topology import paper_topologies

spec = paper_topologies()["n324"]
tables = route_dmodk(build_fabric(spec))
n = spec.num_endports
order = topology_order(n)

print(f"fabric: {spec} | ranks in topology order\n")
print(f"{'collective':14s} {'algorithm':28s} {'CPS':22s} "
      f"{'class':15s} {'worst HSD':>9s}")

seen = set()
for row in TABLE1:
    key = (row.algorithm, row.cps)
    if key in seen:
        continue
    seen.add(key)
    worst = 0
    classes = []
    for cps_name in row.cps:
        cps = by_name(cps_name, n)
        # Bound Shift-sized sequences for demo runtime.
        if len(cps.stages) > 40:
            from repro.collectives import shift

            cps = shift(n, displacements=range(1, 41))
        classes.append(classify(cps))
        worst = max(worst, sequence_hsd(tables, cps, order).worst)
    print(f"{row.collective:14s} {row.algorithm:28s} "
          f"{'+'.join(row.cps):22s} {'/'.join(sorted(set(classes))):15s} "
          f"{worst:9d}")

print("\nEvery unidirectional sequence is congestion-free (worst HSD 1);")
print("XOR-based bidirectional ones exceed 1 on this non-power-of-two-")
print("arity tree.  The section-VI topology-aware recursive doubling")
hier = sequence_hsd(tables, hierarchical_recursive_doubling(spec), order)
print(f"fixes them: worst HSD = {hier.worst} over {len(hier.stage_max)} stages.")
