#!/usr/bin/env python
"""Figure 1, interactively: watch node order create or remove hot spots.

Reconstructs the paper's 16-node example (Fig. 4(b) fabric, pattern
``dst = (src + 4) mod 16``) and prints, per up-going link, exactly which
flows cross it under (a) a bad node order and (b) the routing-aware
order -- the textual version of the paper's Figure 1.

Run:  python examples/figure1_demo.py
"""

import numpy as np

from repro.analysis import fixed_shift_pattern, walk_flow_links
from repro.fabric import build_fabric
from repro.ordering import random_order
from repro.routing import route_dmodk
from repro.topology import pgft

spec = pgft(2, [4, 4], [1, 2], [1, 2])  # 16 nodes, 4 leaves, 2 spines
fabric = build_fabric(spec)
tables = route_dmodk(fabric)
N = spec.num_endports


def show(order: np.ndarray, label: str) -> None:
    src, dst = fixed_shift_pattern(N, 4, placement=order)
    flow_idx, gports = walk_flow_links(tables, src, dst)
    print(f"\n--- {label} ---")
    print("rank -> port:", " ".join(f"{r}:{p}" for r, p in enumerate(order)))
    up = fabric.port_goes_up()
    hot = 0
    for gp in np.unique(gports):
        if not up[gp] or fabric.port_owner[gp] < N:
            continue
        flows = flow_idx[gports == gp]
        owner = fabric.node_names[fabric.port_owner[gp]]
        local = gp - fabric.port_start[fabric.port_owner[gp]]
        dsts = sorted(int(dst[f]) for f in flows)
        marker = "  <-- HOT SPOT" if len(flows) > 1 else ""
        if len(flows) > 1:
            hot += 1
        print(f"{owner} up-port {int(local)}: flows to {dsts}{marker}")
    verdict = "BLOCKING" if hot else "congestion-free"
    print(f"=> {hot} hot link(s): {verdict}")


# (a) the paper's bad case: a random MPI node order.
show(random_order(N, seed=5), "(a) random MPI node order")

# (b) the paper's good case: MPI rank r on end-port r.
show(np.arange(N), "(b) routing-aware MPI node order")
