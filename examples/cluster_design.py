#!/usr/bin/env python
"""Cluster design exploration: size a constant-CBB fat-tree fabric.

A cluster architect's workflow: given a target node count and a switch
radix, enumerate every constant-bisection PGFT wiring, compare cost
(switch count) and structure, then verify the winner is congestion-free
for collective traffic before committing to the cable plan.

Also shows the topology file round-trip: the chosen design is written
in the ibnetdiscover-like text format that the rest of the tooling
(and a cabling contractor) can consume.

Run:  python examples/cluster_design.py [nodes] [radix]
"""

import sys
import tempfile

from repro.analysis import sequence_hsd
from repro.collectives import shift
from repro.fabric import build_fabric, load, save
from repro.ordering import topology_order
from repro.routing import route_dmodk
from repro.topology import design_pgfts

nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 64
radix = int(sys.argv[2]) if len(sys.argv) > 2 else 16

print(f"designing a {nodes}-node fabric from {radix}-port switches\n")
candidates = design_pgfts(nodes, radix=radix, levels=2)
if not candidates:
    raise SystemExit("no constant-CBB 2-level design exists for these inputs")

print(f"{'design':38s} {'switches':>8s} {'cables':>7s}")
for spec in candidates[:8]:
    print(f"{str(spec):38s} {spec.num_switches:8d} {spec.num_links:7d}")

best = candidates[0]
print(f"\ncheapest design: {best}")

# Sanity: the design must carry a full Shift collective congestion-free.
tables = route_dmodk(build_fabric(best))
rep = sequence_hsd(tables, shift(nodes), topology_order(nodes))
print(f"shift collective HSD on the design: worst = {rep.worst} "
      f"({'congestion-free' if rep.congestion_free else 'BLOCKING'})")

# Emit the cable plan and prove the file round-trips.
with tempfile.NamedTemporaryFile("w", suffix=".topo", delete=False) as f:
    path = f.name
save(build_fabric(best), path)
reloaded = load(path)
assert reloaded.num_endports == nodes
print(f"cable plan written to {path} "
      f"({reloaded.num_ports // 2} cables listed) and parsed back OK")
