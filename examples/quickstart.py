#!/usr/bin/env python
"""Quickstart: build a fat-tree, route it, and check a collective.

Walks the library's core loop in ~40 lines:

1. describe a Real-Life Fat-Tree,
2. wire it into a fabric and compute D-Mod-K forwarding tables,
3. generate an MPI collective's permutation sequence,
4. place MPI ranks topology-aware vs randomly,
5. measure hot-spot degree and simulated bandwidth for both.

Run:  python examples/quickstart.py
"""

from repro.analysis import sequence_hsd
from repro.collectives import shift
from repro.fabric import build_fabric
from repro.ordering import random_order, topology_order
from repro.routing import route_dmodk
from repro.sim import FluidSimulator, cps_workload
from repro.topology import two_level

# 1. A 324-node cluster from 36-port switches: 18 leaves x 18 hosts,
#    9 spines reached by 2 parallel cables per leaf (constant CBB).
spec = two_level(leaf_down=18, num_leaves=18, num_spines=9, parallel=2)
print(spec.describe())

# 2. Fabric + the paper's D-Mod-K routing (eq. 1).
fabric = build_fabric(spec)
tables = route_dmodk(fabric)

# 3. The Shift permutation sequence -- the superset of every
#    unidirectional MPI collective pattern (all-to-all, ring, ...).
n = spec.num_endports
cps = shift(n, displacements=range(1, 33))  # a 32-stage window

# 4+5. Compare placements.
for label, order in (
    ("topology-aware", topology_order(n)),
    ("random", random_order(n, seed=42)),
):
    hsd = sequence_hsd(tables, cps, order)
    wl = cps_workload(cps, order, n, message_size=256 * 1024)
    bw = FluidSimulator(tables).run_sequences(wl).normalized_bandwidth
    print(
        f"{label:15s} worst HSD = {hsd.worst}  "
        f"avg max HSD = {hsd.avg_max:.2f}  "
        f"normalized bandwidth = {bw:.2f}"
    )

print(
    "\nThe topology-aware order keeps every link at one flow per stage\n"
    "(HSD = 1) and the network at full bandwidth; the random order\n"
    "creates hot spots and loses roughly half the bandwidth -- the\n"
    "paper's headline result."
)
