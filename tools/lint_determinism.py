#!/usr/bin/env python
"""AST lint: no unordered set/dict iteration in deterministic packages.

The sweep engine promises bit-identical results for identical inputs
(``ParallelSweeper.order_sweep`` is documented as a drop-in for the
serial sweep) and the routing engines promise reproducible tables.
Iterating a ``set`` or the ``.keys()``/``.values()``/``.items()`` view
of a dict whose insertion order is not itself deterministic silently
breaks that promise, and such bugs only surface under ``PYTHONHASHSEED``
variation.  This lint rejects the syntactic patterns outright in the
packages that carry the determinism contract:

* ``for x in <set literal / set() / set comprehension / frozenset()>``
* ``for x in d.keys() / d.values() / d.items()`` and the same iterables
  inside comprehensions, ``sorted()``-less
* ``set(...)`` (or a set display) passed straight to ``list()``,
  ``tuple()``, ``enumerate()`` or ``iter()``

Wrap the iterable in ``sorted(...)`` (cheap at these sizes) or switch
to a list/np.unique.  A finding can be waived with a trailing
``# det: ok`` comment on the offending line when order provably cannot
escape (e.g. a pure membership reduction).

Usage: ``python tools/lint_determinism.py [paths...]``
Defaults to every package that carries the determinism contract:
``src/repro/routing``, ``src/repro/runtime``, ``src/repro/check``
(diagnostics and certificates are diffed in CI),
``src/repro/collectives``, ``src/repro/faults`` (precomputed repair
timelines must replay identically), ``src/repro/mpi`` (delivery
traces are compared across runs) and ``src/repro/sim`` (both packet
engines and the mega-batch engine promise bit-identical replays).
Exit code 1 when findings exist, 0 otherwise.  Stdlib only.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

DEFAULT_PATHS = ("src/repro/routing", "src/repro/runtime",
                 "src/repro/check", "src/repro/collectives",
                 "src/repro/faults", "src/repro/mpi",
                 "src/repro/jobs", "src/repro/fabric",
                 "src/repro/sim", "src/repro/serve")

#: dict-view methods whose iteration order mirrors insertion order of a
#: dict -- fine for literals, unordered when the dict was built from an
#: unordered source; we reject them wholesale and require sorted().
DICT_VIEWS = {"keys", "values", "items"}

ORDERING_WRAPPERS = {"sorted", "min", "max", "sum", "len", "any", "all",
                     "frozenset", "set"}

CONSUMERS = {"list", "tuple", "enumerate", "iter"}

WAIVER = "# det: ok"


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _is_dict_view(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in DICT_VIEWS
            and not node.args and not node.keywords)


class Visitor(ast.NodeVisitor):
    def __init__(self, path: Path, source_lines: list[str]):
        self.path = path
        self.lines = source_lines
        self.findings: list[tuple[int, str]] = []

    # -- helpers -----------------------------------------------------
    def _waived(self, node: ast.AST) -> bool:
        line = self.lines[node.lineno - 1]
        return WAIVER in line

    def _flag(self, node: ast.AST, what: str) -> None:
        if not self._waived(node):
            self.findings.append((node.lineno, what))

    def _check_iterable(self, it: ast.AST, where: str) -> None:
        if _is_set_expr(it):
            self._flag(it, f"iteration over a set in {where}; wrap in "
                           "sorted(...) for a deterministic order")
        elif _is_dict_view(it):
            self._flag(it, f"iteration over dict .{it.func.attr}() in "
                           f"{where}; wrap in sorted(...) for a "
                           "deterministic order")

    # -- visitors ----------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter, "a for loop")
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iterable(node.iter, "a for loop")
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            self._check_iterable(gen.iter, "a comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    def visit_Call(self, node: ast.Call) -> None:
        if (isinstance(node.func, ast.Name)
                and node.func.id in CONSUMERS and node.args):
            arg = node.args[0]
            if _is_set_expr(arg) or _is_dict_view(arg):
                self._flag(node, f"{node.func.id}() over an unordered "
                                 "set/dict view; sort first")
        self.generic_visit(node)


def lint_file(path: Path) -> list[str]:
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:  # pragma: no cover - broken file
        return [f"{path}:{exc.lineno}: syntax error: {exc.msg}"]
    v = Visitor(path, source.splitlines())
    v.visit(tree)
    return [f"{path}:{line}: {msg}" for line, msg in sorted(v.findings)]


def main(argv: list[str] | None = None) -> int:
    roots = [Path(p) for p in (argv if argv else DEFAULT_PATHS)]
    findings: list[str] = []
    checked = 0
    for root in roots:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for f in files:
            findings.extend(lint_file(f))
            checked += 1
    for line in findings:
        print(line)
    print(f"lint_determinism: {checked} file(s), {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
