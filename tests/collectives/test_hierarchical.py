"""Section VI: topology-aware hierarchical recursive doubling."""

import math

import numpy as np
import pytest

from repro.analysis import sequence_hsd
from repro.collectives import (
    classify,
    group_stage_plan,
    has_constant_displacement,
    hierarchical_recursive_doubling,
)
from repro.fabric import build_fabric
from repro.ordering import topology_order
from repro.routing import route_dmodk
from repro.topology import pgft, rlft_max


class TestPlan:
    def test_constants_for_324(self):
        spec = pgft(2, [18, 18], [1, 9], [1, 2])
        plan = group_stage_plan(spec)
        g1 = plan[0]
        assert g1["m"] == 18 and g1["L"] == 4 and g1["E"] == 16
        assert g1["needs_proxy"]  # 18 is not a power of two
        g2 = plan[1]
        assert g2["block"] == 18
        assert g2["E"] == 18 * 16

    def test_pow2_tree_needs_no_proxies(self):
        spec = rlft_max(4, 2)  # m = (4, 8)
        assert not any(g["needs_proxy"] for g in group_stage_plan(spec))


class TestSequence:
    def test_stage_count_pow2(self):
        spec = rlft_max(4, 2)  # m=(4,8): log2 4 + log2 8 = 2 + 3 stages
        cps = hierarchical_recursive_doubling(spec)
        assert len(cps) == 5

    def test_stage_count_with_proxies(self):
        spec = pgft(2, [6, 6], [1, 6], [1, 1])  # L=2 per level + pre/post x2
        cps = hierarchical_recursive_doubling(spec)
        assert len(cps) == 2 * (2 + 2)

    def test_bulk_stages_bidirectional(self, any_spec):
        cps = hierarchical_recursive_doubling(any_spec)
        from repro.collectives import is_bidirectional_stage

        for st in cps:
            if "pre" in st.label or "post" in st.label:
                continue
            assert is_bidirectional_stage(st), st.label

    def test_constant_displacement_per_stage(self, any_spec):
        n = any_spec.num_endports
        for st in hierarchical_recursive_doubling(any_spec):
            assert has_constant_displacement(st, n), st.label

    def test_level1_matches_local_xor(self):
        spec = rlft_max(4, 2)
        cps = hierarchical_recursive_doubling(spec)
        st = cps.stages[0]  # g1-s0: i <-> i^1 within leaves
        pairs = {tuple(p) for p in st.pairs}
        assert (0, 1) in pairs and (1, 0) in pairs
        assert (2, 3) in pairs

    def test_level2_swaps_whole_blocks(self):
        spec = rlft_max(4, 2)  # leaves of 4
        cps = hierarchical_recursive_doubling(spec)
        # first level-2 stage: blocks of 4 exchange, displacement 4.
        st = next(s for s in cps if s.label.startswith("g2"))
        disp = np.unique((st.destinations - st.sources))
        assert set(np.abs(disp)) == {4}

    def test_all_ranks_covered(self, any_spec):
        cps = hierarchical_recursive_doubling(any_spec)
        ranks = np.unique(cps.all_pairs())
        assert len(ranks) == any_spec.num_endports


class TestCongestionFreedom:
    """Theorem 3: hierarchical RD is HSD = 1 under D-Mod-K + topo order."""

    def test_hsd_one(self, any_spec):
        tables = route_dmodk(build_fabric(any_spec))
        n = any_spec.num_endports
        cps = hierarchical_recursive_doubling(any_spec)
        rep = sequence_hsd(tables, cps, topology_order(n))
        assert rep.congestion_free

    def test_beats_naive_rd_on_non_pow2_arity(self):
        from repro.collectives import recursive_doubling

        spec = pgft(2, [18, 18], [1, 9], [1, 2])
        tables = route_dmodk(build_fabric(spec))
        n = spec.num_endports
        naive = sequence_hsd(tables, recursive_doubling(n), topology_order(n))
        hier = sequence_hsd(
            tables, hierarchical_recursive_doubling(spec), topology_order(n)
        )
        assert hier.congestion_free
        assert naive.worst > 1
