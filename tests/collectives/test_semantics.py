"""Data-flow semantics: every CPS computes the collective it names."""

import numpy as np
import pytest

from repro.collectives import (
    binomial,
    dissemination,
    hierarchical_recursive_doubling,
    recursive_doubling,
    ring,
    tournament,
)
from repro.collectives.cps import CPS, Stage
from repro.collectives.semantics import (
    run_dataflow,
    verify_allgather,
    verify_allreduce,
    verify_broadcast,
    verify_gather,
    verify_reduce,
)
from repro.topology import pgft, rlft_max


class TestRunDataflow:
    def test_default_initial_state(self):
        st = Stage(np.array([[0, 1]]))
        final = run_dataflow(CPS("x", 2, (st,)))
        assert final == [{0}, {0, 1}]

    def test_concurrent_stage_semantics(self):
        # 0->1 and 1->2 in ONE stage: rank 2 must NOT receive chunk 0
        # (sends read the pre-stage state).
        st = Stage(np.array([[0, 1], [1, 2]]))
        final = run_dataflow(CPS("x", 3, (st,)))
        assert final[2] == {1, 2}

    def test_sequential_stages_propagate(self):
        s1 = Stage(np.array([[0, 1]]))
        s2 = Stage(np.array([[1, 2]]))
        final = run_dataflow(CPS("x", 3, (s1, s2)))
        assert final[2] == {0, 1, 2}

    def test_custom_initial(self):
        st = Stage(np.array([[0, 1]]))
        final = run_dataflow(CPS("x", 2, (st,)), initial=[{9}, set()])
        assert final[1] == {9}

    def test_initial_length_checked(self):
        st = Stage(np.array([[0, 1]]))
        with pytest.raises(ValueError, match="ranks"):
            run_dataflow(CPS("x", 2, (st,)), initial=[set()])

    def test_out_of_range_rank_rejected(self):
        st = Stage(np.array([[0, 5]]))
        with pytest.raises(ValueError, match="outside"):
            run_dataflow(CPS("x", 2, (st,)))


@pytest.mark.parametrize("n", [2, 5, 8, 13, 32, 67])
class TestAlgorithms:
    def test_binomial_is_a_broadcast(self, n):
        ok, msg = verify_broadcast(binomial(n))
        assert ok, msg

    def test_dissemination_is_an_allgather(self, n):
        ok, msg = verify_allgather(dissemination(n))
        assert ok, msg

    def test_ring_n_minus_1_is_an_allgather(self, n):
        ok, msg = verify_allgather(ring(n, repeats=n - 1))
        assert ok, msg

    def test_ring_too_few_rounds_is_not(self, n):
        if n <= 2:
            pytest.skip("n-2 rounds need n > 2")
        ok, _ = verify_allgather(ring(n, repeats=n - 2))
        assert not ok

    def test_tournament_is_a_gather(self, n):
        ok, msg = verify_gather(tournament(n))
        assert ok, msg
        ok, msg = verify_reduce(tournament(n))
        assert ok, msg

    def test_recursive_doubling_proxy_is_an_allreduce(self, n):
        ok, msg = verify_allreduce(recursive_doubling(n, nonpow2="proxy"))
        assert ok, msg

    def test_binomial_gather_direction(self, n):
        ok, msg = verify_gather(binomial(n, "gather"))
        assert ok, msg


class TestMaskedRdIncomplete:
    def test_masked_rd_fails_on_non_pow2(self):
        # Table 2 as literally written drops pairs with partners >= n,
        # which loses contributions -- the reason MPI adds proxy stages.
        ok, msg = verify_allreduce(recursive_doubling(13, nonpow2="mask"))
        assert not ok
        assert "missing" in msg

    def test_masked_rd_fine_on_pow2(self):
        ok, _ = verify_allreduce(recursive_doubling(16, nonpow2="mask"))
        assert ok


class TestHierarchicalRd:
    @pytest.mark.parametrize("spec", [
        rlft_max(4, 2),
        pgft(2, [6, 6], [1, 6], [1, 1]),
        pgft(2, [18, 18], [1, 9], [1, 2]),
        pgft(3, [2, 3, 4], [1, 2, 3], [1, 1, 1]),
    ], ids=str)
    def test_is_a_complete_allreduce(self, spec):
        ok, msg = verify_allreduce(hierarchical_recursive_doubling(spec))
        assert ok, (str(spec), msg)
