"""CPS generators: Table 2 definitions, stage structure, paper examples."""

import numpy as np
import pytest

from repro.collectives import (
    CPS_NAMES,
    Stage,
    binomial,
    by_name,
    dissemination,
    pairwise_exchange,
    recursive_doubling,
    recursive_halving,
    ring,
    shift,
    tournament,
)


class TestStage:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Stage(np.zeros((3, 3)))

    def test_permutation_detection(self):
        assert Stage(np.array([[0, 1], [1, 0]])).is_permutation()
        assert not Stage(np.array([[0, 1], [2, 1]])).is_permutation()

    def test_reversed(self):
        st = Stage(np.array([[0, 1], [2, 3]]), label="x")
        rev = st.reversed()
        assert np.array_equal(rev.pairs, [[1, 0], [3, 2]])
        assert rev.label == "x^R"


class TestShift:
    def test_stage_count(self):
        assert len(shift(10)) == 9

    def test_every_stage_full_permutation(self):
        for st in shift(7):
            assert len(st) == 7
            assert st.is_permutation()

    def test_displacements_cover_all(self):
        cps = shift(6)
        disp = [int((st.destinations[0] - st.sources[0]) % 6) for st in cps]
        assert disp == [1, 2, 3, 4, 5]

    def test_custom_displacements(self):
        cps = shift(100, displacements=range(1, 100, 10))
        assert len(cps) == 10


class TestRing:
    def test_single_stage_plus_one(self):
        cps = ring(5)
        assert len(cps) == 1
        st = cps.stages[0]
        assert np.array_equal(st.destinations, (st.sources + 1) % 5)

    def test_repeats(self):
        cps = ring(5, repeats=4)
        assert len(cps) == 4
        assert cps.total_messages() == 20


class TestBinomial:
    def test_paper_1024_example_stage_sizes(self):
        # Paper: "On the first stage only node-0 is sending to node-1. On
        # the second, node-0 -> node-2 and node-1 -> node-3. ..."
        cps = binomial(1024)
        assert len(cps.stages[0]) == 1
        assert list(map(tuple, cps.stages[0].pairs)) == [(0, 1)]
        assert list(map(tuple, cps.stages[1].pairs)) == [(0, 2), (1, 3)]
        assert list(map(tuple, cps.stages[2].pairs)) == [
            (0, 4), (1, 5), (2, 6), (3, 7)]
        assert len(cps) == 10

    def test_covers_all_ranks_exactly_once_as_dest(self):
        n = 37
        cps = binomial(n)
        dests = np.concatenate([st.destinations for st in cps])
        # Every rank except root receives exactly once (broadcast tree).
        assert sorted(dests) == list(range(1, n))

    def test_gather_reverses(self):
        fwd = binomial(16, "scatter")
        back = binomial(16, "gather")
        assert np.array_equal(
            fwd.stages[0].pairs, back.stages[-1].pairs[:, ::-1]
        )

    def test_rejects_bad_direction(self):
        with pytest.raises(ValueError):
            binomial(8, "sideways")


class TestTournament:
    def test_winners_halve_each_stage(self):
        cps = tournament(16)
        sizes = [len(st) for st in cps]
        assert sizes == [8, 4, 2, 1]

    def test_messages_flow_to_even_strides(self):
        st = tournament(8).stages[0]
        assert np.array_equal(st.sources, [1, 3, 5, 7])
        assert np.array_equal(st.destinations, [0, 2, 4, 6])

    def test_non_pow2(self):
        cps = tournament(6)
        total_dests = np.concatenate([st.sources for st in cps])
        # Every non-winner loses exactly once.
        assert sorted(total_dests) == [1, 2, 3, 4, 5]


class TestDissemination:
    def test_stage_count_is_ceil_log2(self):
        assert len(dissemination(8)) == 3
        assert len(dissemination(9)) == 4
        assert len(dissemination(1944)) == 11  # the paper's 1944-node example

    def test_all_ranks_send_every_stage(self):
        for st in dissemination(10):
            assert len(st) == 10
            assert st.is_permutation()


class TestRecursiveDoubling:
    def test_bidirectional_pairs(self):
        st = recursive_doubling(8).stages[0]
        pairs = {tuple(p) for p in st.pairs}
        assert (0, 1) in pairs and (1, 0) in pairs

    def test_mask_drops_out_of_range(self):
        cps = recursive_doubling(6, nonpow2="mask")
        # Stage s=2 (mask 4): partners 0<->4, 1<->5; 2,3 have partner >= 6.
        st = cps.stages[2]
        srcs = set(st.sources.tolist())
        assert srcs == {0, 1, 4, 5}

    def test_halving_is_reversed(self):
        d = recursive_doubling(16)
        h = recursive_halving(16)
        assert [st.label for st in h] == [st.label for st in reversed(d.stages)]

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            recursive_doubling(8, nonpow2="magic")


class TestPairwiseExchange:
    def test_default_matches_shift_stages(self):
        cps = pairwise_exchange(6)
        ref = shift(6)
        assert len(cps) == 5
        for a, b in zip(cps, ref):
            assert np.array_equal(a.pairs, b.pairs)

    def test_xor_variant(self):
        cps = pairwise_exchange(8, variant="xor")
        assert len(cps) == 7
        st = cps.stages[0]  # s=1
        assert (st.destinations == (st.sources ^ 1)).all()

    def test_xor_requires_pow2(self):
        with pytest.raises(ValueError, match="power-of-two"):
            pairwise_exchange(6, variant="xor")

    def test_xor_variant_breaks_constant_displacement(self):
        # The real-world reason the paper abstracts pairwise exchange as
        # displacement-based: XOR with a non-pow2 mask mixes distances.
        from repro.collectives import has_constant_displacement

        cps = pairwise_exchange(8, variant="xor")
        st3 = cps.stages[2]  # mask 3
        assert not has_constant_displacement(st3, 8)

    def test_unknown_variant(self):
        with pytest.raises(ValueError, match="variant"):
            pairwise_exchange(8, variant="quantum")


class TestByName:
    def test_all_names_instantiable(self):
        for name in CPS_NAMES:
            cps = by_name(name, 8)
            assert cps.num_ranks == 8
            assert len(cps) >= 1

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown CPS"):
            by_name("quantum-teleport", 8)

    def test_too_few_ranks(self):
        with pytest.raises(ValueError):
            shift(1)
