"""Table 1 data: coverage and internal consistency."""

from repro.collectives import CPS_NAMES, TABLE1, collectives_covered, distinct_cps
from repro.collectives.usage import render_matrix


def test_exactly_eight_cps():
    # The paper's headline: 18 algorithms, only 8 permutation sequences.
    assert len(distinct_cps()) == 8


def test_every_cps_name_is_implemented():
    assert distinct_cps() <= set(CPS_NAMES)


def test_both_libraries_surveyed():
    libs = {row.library for row in TABLE1}
    assert libs == {"mvapich", "openmpi"}


def test_major_collectives_covered():
    covered = collectives_covered()
    for name in ("AllGather", "AllReduce", "AlltoAll", "Barrier",
                 "Broadcast", "Reduce", "ReduceScatter", "Scatter"):
        assert name in covered


def test_marks_follow_convention():
    for row in TABLE1:
        mark = row.mark
        assert mark[0] in "mMoO"
        if row.pow2_only:
            assert mark.endswith("2")


def test_at_least_18_algorithms():
    algos = {(r.collective, r.algorithm) for r in TABLE1}
    assert len(algos) >= 15  # 18 in the paper; our reconstruction is close


def test_render_matrix_lists_all_cps():
    text = render_matrix()
    for name in distinct_cps():
        assert name in text
