"""Rank-to-port scheduling: stage flows and port sequences."""

import numpy as np
import pytest

from repro.collectives import (
    Stage,
    port_sequences,
    ring,
    shift,
    stage_flows,
    validate_placement,
)


class TestValidatePlacement:
    def test_accepts_valid(self):
        out = validate_placement([2, 0, 1], num_endports=4)
        assert out.dtype == np.int64

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="same end-port"):
            validate_placement([0, 0], num_endports=4)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="outside"):
            validate_placement([0, 9], num_endports=4)

    def test_rejects_wrong_rank_count(self):
        with pytest.raises(ValueError, match="ranks"):
            validate_placement([0, 1], num_endports=4, num_ranks=3)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            validate_placement([[0], [1]], num_endports=4)


class TestStageFlows:
    def test_identity_placement(self):
        st = Stage(np.array([[0, 1], [1, 2]]))
        src, dst = stage_flows(st, np.arange(4))
        assert list(src) == [0, 1]
        assert list(dst) == [1, 2]

    def test_permuted_placement(self):
        st = Stage(np.array([[0, 1]]))
        src, dst = stage_flows(st, np.array([3, 0]))
        assert list(src) == [3]
        assert list(dst) == [0]

    def test_ranks_beyond_job_dropped(self):
        st = Stage(np.array([[0, 5], [1, 2]]))
        src, dst = stage_flows(st, np.arange(3))  # job of 3 ranks
        assert list(src) == [1]

    def test_negative_slots_dropped(self):
        st = Stage(np.array([[0, 1], [1, 2]]))
        slots = np.array([0, -1, 2])
        src, dst = stage_flows(st, slots)
        assert len(src) == 0  # both pairs touch the missing slot 1

    def test_self_messages_dropped(self):
        st = Stage(np.array([[0, 0], [1, 2]]))
        src, dst = stage_flows(st, np.arange(3))
        assert list(src) == [1]


class TestPortSequences:
    def test_shift_sequences_lengths(self):
        cps = shift(6)
        seqs = port_sequences(cps, np.arange(6), 6)
        assert all(len(s) == 5 for s in seqs)

    def test_sequence_order_matches_stages(self):
        cps = shift(4)
        seqs = port_sequences(cps, np.arange(4), 4)
        assert seqs[0] == [1, 2, 3]

    def test_idle_ports_empty(self):
        cps = ring(3)
        seqs = port_sequences(cps, np.array([0, 2, 4]), 6)
        assert seqs[1] == [] and seqs[3] == [] and seqs[5] == []
        assert seqs[0] == [2]
