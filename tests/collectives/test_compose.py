"""Composite collective schedules."""

import pytest

from repro.analysis import sequence_hsd
from repro.collectives import has_constant_displacement, ring, shift
from repro.collectives.compose import (
    concatenate,
    rabenseifner_allreduce,
    rabenseifner_reduce,
    scatter_allgather_bcast,
)
from repro.collectives.semantics import (
    verify_allreduce,
    verify_broadcast,
    verify_reduce,
)
from repro.fabric import build_fabric
from repro.ordering import topology_order
from repro.routing import route_dmodk
from repro.topology import rlft_max


class TestConcatenate:
    def test_stage_counts_add(self):
        a, b = ring(8, repeats=2), shift(8)
        c = concatenate("combo", a, b)
        assert len(c) == 2 + 7
        assert c.num_ranks == 8

    def test_rank_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            concatenate("bad", ring(8), ring(9))

    def test_empty(self):
        with pytest.raises(ValueError):
            concatenate("empty")


@pytest.mark.parametrize("n", [8, 13, 32])
class TestSemantics:
    def test_bcast_composite_is_a_broadcast(self, n):
        ok, msg = verify_broadcast(scatter_allgather_bcast(n))
        assert ok, msg

    def test_rabenseifner_allreduce_complete(self, n):
        ok, msg = verify_allreduce(rabenseifner_allreduce(n))
        assert ok, msg

    def test_rabenseifner_reduce_complete(self, n):
        ok, msg = verify_reduce(rabenseifner_reduce(n))
        assert ok, msg


class TestStructure:
    @pytest.mark.parametrize("factory", [
        scatter_allgather_bcast, rabenseifner_allreduce, rabenseifner_reduce,
    ])
    def test_constant_displacement_every_stage(self, factory):
        cps = factory(24)
        for st in cps:
            assert has_constant_displacement(st, 24), st.label

    def test_unidirectional_composite_congestion_free(self):
        # scatter+allgather bcast contains only unidirectional stages:
        # clean under D-Mod-K + topology order.
        spec = rlft_max(4, 2)
        n = spec.num_endports
        tables = route_dmodk(build_fabric(spec))
        rep = sequence_hsd(tables, scatter_allgather_bcast(n),
                           topology_order(n))
        assert rep.congestion_free
