"""The paper's three observations, decided over every CPS."""

import numpy as np
import pytest

from repro.collectives import (
    CPS_NAMES,
    Stage,
    by_name,
    classify,
    has_constant_displacement,
    is_bidirectional,
    is_shift_subset,
    is_unidirectional,
    stage_displacements,
)

UNIDIRECTIONAL = ["shift", "ring", "binomial", "tournament", "dissemination"]
BIDIRECTIONAL = ["recursive-doubling", "recursive-halving"]


class TestObservation1:
    """Constant displacement in every stage of every CPS."""

    @pytest.mark.parametrize("name", sorted(CPS_NAMES))
    @pytest.mark.parametrize("n", [4, 8, 12, 17, 32])
    def test_constant_displacement(self, name, n):
        cps = by_name(name, n)
        for st in cps:
            assert has_constant_displacement(st, n), (name, st.label)

    def test_nonconstant_detected(self):
        st = Stage(np.array([[0, 1], [1, 3]]))
        assert not has_constant_displacement(st, 8)

    def test_bidirectional_pair_allowed(self):
        st = Stage(np.array([[0, 2], [2, 0]]))
        assert has_constant_displacement(st, 8)
        assert sorted(stage_displacements(st, 8)) == [2, 6]


class TestObservation2:
    """Every CPS is unidirectional or bidirectional (never mixed)."""

    @pytest.mark.parametrize("name", UNIDIRECTIONAL)
    def test_unidirectional(self, name):
        cps = by_name(name, 16)
        assert is_unidirectional(cps)
        assert classify(cps) == "unidirectional"

    @pytest.mark.parametrize("name", BIDIRECTIONAL)
    @pytest.mark.parametrize("n", [8, 16, 11])
    def test_bidirectional(self, name, n):
        cps = by_name(name, n)
        assert is_bidirectional(cps)
        assert classify(cps) == "bidirectional"

    def test_pairwise_exchange_classification(self):
        # Displacement variant is shift-like (unidirectional); the XOR
        # variant is bidirectional by construction.
        from repro.collectives import pairwise_exchange

        assert classify(by_name("pairwise-exchange", 16)) == "unidirectional"
        assert classify(pairwise_exchange(16, variant="xor")) == "bidirectional"

    def test_mixed_detected(self):
        from repro.collectives.cps import CPS

        st = Stage(np.array([[0, 1], [1, 0], [2, 3]]))
        cps = CPS("weird", 4, (st,))
        assert classify(cps) == "mixed"


class TestObservation3:
    """Shift is a superset of every unidirectional CPS."""

    @pytest.mark.parametrize("name", UNIDIRECTIONAL)
    @pytest.mark.parametrize("n", [6, 16, 23])
    def test_contained_in_shift(self, name, n):
        assert is_shift_subset(by_name(name, n))

    def test_bidirectional_not_contained(self):
        assert not is_shift_subset(by_name("recursive-doubling", 16))

    def test_containment_is_pairwise(self):
        # Verify against the literal definition for one case: binomial
        # stage s=2 of n=32 sits inside shift stage s=4.
        from repro.collectives import binomial, shift

        b = binomial(32).stages[2]
        s4 = shift(32).stages[3]  # displacement 4
        b_pairs = {tuple(p) for p in b.pairs}
        s_pairs = {tuple(p) for p in s4.pairs}
        assert b_pairs <= s_pairs


class TestEdgeCases:
    def test_empty_stage(self):
        st = Stage(np.empty((0, 2), dtype=np.int64))
        assert has_constant_displacement(st, 8)
        assert len(stage_displacements(st, 8)) == 0
