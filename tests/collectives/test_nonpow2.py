"""Proxy pre/post stages for non-power-of-two rank counts."""

import numpy as np
import pytest

from repro.collectives import (
    classify,
    has_constant_displacement,
    post_stage,
    pow2_floor,
    pre_stage,
    with_proxy_stages,
)


class TestPow2Floor:
    def test_values(self):
        assert pow2_floor(1) == 1
        assert pow2_floor(7) == 4
        assert pow2_floor(8) == 8
        assert pow2_floor(1944) == 1024

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            pow2_floor(0)


class TestPrePost:
    def test_none_for_powers_of_two(self):
        assert pre_stage(16) is None
        assert post_stage(16) is None

    def test_pre_folds_remainder(self):
        st = pre_stage(11)  # 2**L = 8, remainder 3
        assert np.array_equal(st.pairs, [[8, 0], [9, 1], [10, 2]])

    def test_post_is_reverse_of_pre(self):
        pre, post = pre_stage(11), post_stage(11)
        assert np.array_equal(pre.pairs, post.pairs[:, ::-1])

    def test_constant_displacement(self):
        for n in (5, 11, 1944):
            assert has_constant_displacement(pre_stage(n), n)
            assert has_constant_displacement(post_stage(n), n)


class TestWithProxyStages:
    def test_stage_count(self):
        cps = with_proxy_stages(11)
        # pre + 3 XOR stages on 8 + post
        assert len(cps) == 5
        assert cps.stages[0].label.startswith("pre")
        assert cps.stages[-1].label.startswith("post")

    def test_pow2_has_no_proxy_stages(self):
        cps = with_proxy_stages(16)
        assert len(cps) == 4
        assert not any("pre" in st.label or "post" in st.label for st in cps)

    def test_core_runs_on_pow2_ranks(self):
        cps = with_proxy_stages(11)
        for st in cps.stages[1:-1]:
            assert st.pairs.max() < 8

    def test_reverse_order(self):
        fwd = with_proxy_stages(11, reverse=False)
        rev = with_proxy_stages(11, reverse=True)
        assert [s.label for s in fwd.stages[1:-1]] == \
            [s.label for s in reversed(rev.stages[1:-1])]

    def test_every_rank_participates(self):
        cps = with_proxy_stages(13)
        ranks = np.unique(cps.all_pairs())
        assert sorted(ranks) == list(range(13))

    def test_proxy_preserves_constant_displacement(self):
        n = 19
        cps = with_proxy_stages(n)
        for st in cps:
            assert has_constant_displacement(st, n), st.label
