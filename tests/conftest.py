"""Shared fixtures: representative fabrics at test-friendly sizes."""

import pytest

from repro.fabric import build_fabric
from repro.routing import route_dmodk
from repro.topology import pgft


# Small topologies exercising every structural feature: parallel ports,
# multiple levels, non-power-of-two arity, single-switch trees.
SPECS = {
    "fig1": pgft(2, [4, 4], [1, 2], [1, 2]),          # paper Fig. 4(b)
    "xgft16": pgft(2, [4, 4], [1, 4], [1, 1]),        # paper Fig. 4(a)
    "tiny": pgft(1, [6], [1], [1]),                   # single switch
    "deep": pgft(3, [2, 2, 2], [1, 2, 2], [1, 1, 1]),  # 8 nodes, 3 levels
    "oddk": pgft(2, [3, 4], [1, 3], [1, 1]),          # non-pow2 arity 3
    "par3": pgft(2, [6, 4], [1, 2], [1, 3]),          # 3 parallel cables
}


@pytest.fixture(params=sorted(SPECS), ids=sorted(SPECS))
def any_spec(request):
    return SPECS[request.param]


@pytest.fixture(params=[k for k in sorted(SPECS) if SPECS[k].h > 1],
                ids=[k for k in sorted(SPECS) if SPECS[k].h > 1])
def multi_level_spec(request):
    return SPECS[request.param]


@pytest.fixture
def fig1_fabric():
    return build_fabric(SPECS["fig1"])


@pytest.fixture
def fig1_tables(fig1_fabric):
    return route_dmodk(fig1_fabric)
