"""Docs stay true: API.md modules import, TUTORIAL.md runs top to bottom.

This is the lightweight docs check wired into the tier-1 run -- it
fails whenever documentation references a module that no longer exists
or a tutorial snippet stops executing against the current API.
"""

import importlib
import re
from pathlib import Path

import pytest

DOCS = Path(__file__).resolve().parent.parent / "docs"

MODULE_RE = re.compile(r"`(repro(?:\.[a-z_][a-z0-9_]*)+)`")


def _doc_modules(text: str) -> list[str]:
    """Dotted ``repro.*`` references that name modules (not attributes)."""
    found = set()
    for name in MODULE_RE.findall(text):
        # Trim trailing attribute segments until the name imports; the
        # *module* prefix must import cleanly and own the final symbol.
        found.add(name)
    return sorted(found)


def test_api_md_modules_import():
    text = (DOCS / "API.md").read_text()
    names = _doc_modules(text)
    assert names, "API.md no longer references any repro modules?"
    for name in names:
        parts = name.split(".")
        # Find the longest importable module prefix...
        mod = None
        for cut in range(len(parts), 0, -1):
            try:
                mod = importlib.import_module(".".join(parts[:cut]))
            except ModuleNotFoundError:
                continue
            break
        assert mod is not None, f"API.md references unimportable {name!r}"
        # ...and require any remaining segments to resolve as attributes.
        obj = mod
        for attr in parts[cut:]:
            assert hasattr(obj, attr), (
                f"API.md references {name!r} but {obj.__name__!r} has no"
                f" attribute {attr!r}"
            )
            obj = getattr(obj, attr)


def test_api_md_covers_every_package():
    """Every repro subpackage gets a section (no silent API.md rot)."""
    import repro

    text = (DOCS / "API.md").read_text()
    src = Path(repro.__file__).parent
    packages = sorted(
        p.parent.name for p in src.glob("*/__init__.py")
        if not p.parent.name.startswith("_")
    )
    for pkg in packages:
        assert f"repro.{pkg}" in text, f"API.md has no section for repro.{pkg}"


PYTHON_BLOCK_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _tutorial_snippets() -> list[str]:
    text = (DOCS / "TUTORIAL.md").read_text()
    blocks = PYTHON_BLOCK_RE.findall(text)
    assert blocks, "TUTORIAL.md has no python snippets?"
    return blocks


def test_tutorial_snippets_execute():
    """TUTORIAL.md is runnable top to bottom, one shared namespace."""
    namespace: dict = {}
    for i, block in enumerate(_tutorial_snippets()):
        try:
            exec(compile(block, f"TUTORIAL.md[block {i}]", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(
                f"TUTORIAL.md block {i} failed: {exc!r}\n---\n{block}"
            )
