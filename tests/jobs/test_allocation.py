"""Sub-allocation: unit accounting, congestion freedom, job isolation."""

import numpy as np
import pytest

from repro.analysis import sequence_hsd, stage_link_loads
from repro.collectives import hierarchical_recursive_doubling, shift
from repro.collectives.schedule import stage_flows
from repro.fabric import build_fabric
from repro.jobs import AllocationError, Job, SubAllocator
from repro.routing import route_dmodk
from repro.topology import rlft_max


@pytest.fixture
def spec():
    return rlft_max(6, 2)  # 72 end-ports, 12 leaf units of 6


@pytest.fixture
def alloc(spec):
    return SubAllocator(spec)


class TestAccounting:
    def test_paper_unit_structure(self):
        a = SubAllocator(rlft_max(18, 3))
        assert a.num_units == 36       # section V: 36 sub-allocations
        assert a.unit_size == 324      # of 324 nodes each

    def test_units_needed_rounds_up(self, alloc):
        assert alloc.units_needed(1) == 1
        assert alloc.units_needed(6) == 1
        assert alloc.units_needed(7) == 2

    def test_allocate_and_release(self, alloc):
        job = alloc.allocate(13)
        assert job.units == (0, 1, 2)
        assert job.num_ranks == 13
        assert alloc.utilization() == pytest.approx(3 / 12)
        alloc.release(job)
        assert alloc.utilization() == 0.0
        assert alloc.free_units == list(range(12))

    def test_exhaustion(self, alloc):
        alloc.allocate(60)  # 10 units
        with pytest.raises(AllocationError, match="only 2 free"):
            alloc.allocate(30)

    def test_release_unknown(self, alloc):
        with pytest.raises(AllocationError):
            alloc.release(99)

    def test_zero_ranks_rejected(self, alloc):
        with pytest.raises(AllocationError):
            alloc.allocate(0)

    def test_fragmented_reuse(self, alloc):
        a = alloc.allocate(6)
        b = alloc.allocate(6)
        c = alloc.allocate(6)
        alloc.release(b)
        d = alloc.allocate(6)
        assert d.units == (1,)  # first-fit fills the hole

    def test_active_ports_sorted_and_in_units(self, alloc):
        job = alloc.allocate(10)
        assert (np.diff(job.active_ports) > 0).all()
        for p in job.active_ports:
            assert p // alloc.unit_size in job.units


class TestCongestionProperties:
    def test_each_job_congestion_free(self, spec, alloc):
        tables = route_dmodk(build_fabric(spec))
        jobs = [alloc.allocate(18), alloc.allocate(24), alloc.allocate(12)]
        for job in jobs:
            rep = sequence_hsd(tables, shift(job.num_ranks), job.placement)
            assert rep.congestion_free, job

    def test_inter_job_isolation(self, spec, alloc):
        # Concurrent shifts of all jobs never put 2 flows on one link.
        tables = route_dmodk(build_fabric(spec))
        jobs = [alloc.allocate(18), alloc.allocate(24), alloc.allocate(12)]
        stage_lists = [shift(j.num_ranks).stages for j in jobs]
        for k in range(max(len(s) for s in stage_lists)):
            srcs, dsts = [], []
            for job, stages in zip(jobs, stage_lists):
                if k < len(stages):
                    s, d = stage_flows(stages[k], job.placement)
                    srcs.append(s)
                    dsts.append(d)
            loads = stage_link_loads(
                tables, np.concatenate(srcs), np.concatenate(dsts))
            assert loads.max() <= 1

    def test_bidirectional_job_on_three_level(self):
        spec = rlft_max(2, 3)  # 16 nodes, units of 4
        alloc = SubAllocator(spec)
        alloc.allocate(4)  # occupy one unit
        job = alloc.allocate(8)
        tables = route_dmodk(build_fabric(spec))
        # Whole-unit jobs also run the hierarchical sequence cleanly via
        # physical slots.
        from repro.ordering import physical_placement

        slots = physical_placement(job.active_ports, spec.num_endports)
        cps = hierarchical_recursive_doubling(spec)
        rep = sequence_hsd(tables, cps, slots)
        assert rep.congestion_free


class TestTypedJobs:
    def test_node_type_defaults_and_tagging(self, alloc):
        a = alloc.allocate(6)
        b = alloc.allocate(6, node_type="storage")
        assert a.node_type == "compute"
        assert b.node_type == "storage"
        assert "storage" in repr(b)

    def test_job_active_alias(self, alloc):
        job = alloc.allocate(6, node_type="storage")
        assert np.array_equal(job.active, job.active_ports)

    def test_allocator_active_ports_union(self, alloc):
        a = alloc.allocate(6)
        b = alloc.allocate(6, node_type="storage")
        merged = alloc.active_ports()
        assert np.array_equal(
            merged, np.unique(np.concatenate([a.active_ports,
                                              b.active_ports])))
        alloc.release(a)
        assert np.array_equal(alloc.active_ports(), b.active_ports)

    def test_empty_allocator_active_ports(self, alloc):
        assert len(alloc.active_ports()) == 0

    def test_node_type_map_classes(self, spec, alloc):
        a = alloc.allocate(6)
        b = alloc.allocate(12, node_type="storage")
        types = alloc.node_type_map()
        # granted units carry their job's class, the rest is idle
        assert set(types.type_names) >= {"compute", "storage", "idle"}
        for job, name in ((a, "compute"), (b, "storage")):
            idx = types.type_names.index(name)
            assert np.array_equal(np.flatnonzero(types.type_of == idx),
                                  job.active_ports)
        n_idle = spec.num_endports - len(a.active_ports) - len(b.active_ports)
        idle_idx = types.type_names.index("idle")
        assert int((types.type_of == idle_idx).sum()) == n_idle

    def test_node_type_map_merges_same_class_jobs(self, alloc):
        a = alloc.allocate(6, node_type="storage")
        b = alloc.allocate(6, node_type="storage")
        types = alloc.node_type_map()
        idx = types.type_names.index("storage")
        assert int((types.type_of == idx).sum()) == (len(a.active_ports)
                                                    + len(b.active_ports))

    def test_typed_jobs_route_typeaware_cleanly(self, spec, alloc):
        # unit-granular typed jobs: type-aware routing keeps every
        # job's shift collective contention-free
        from repro.routing import route_typeaware

        a = alloc.allocate(18)
        b = alloc.allocate(12, node_type="storage")
        fab = build_fabric(spec)
        fab.node_types = alloc.node_type_map()
        tables = route_typeaware(fab, active=alloc.active_ports())
        for job in (a, b):
            rep = sequence_hsd(tables, shift(job.num_ranks), job.placement)
            assert rep.congestion_free
