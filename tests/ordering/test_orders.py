"""Placement generators."""

import numpy as np
import pytest

from repro.ordering import (
    invert_placement,
    physical_placement,
    random_order,
    random_subset,
    topology_order,
    topology_subset,
)


class TestTopologyOrder:
    def test_identity(self):
        assert np.array_equal(topology_order(8), np.arange(8))

    def test_partial(self):
        assert np.array_equal(topology_order(8, 5), np.arange(5))

    def test_too_many_ranks(self):
        with pytest.raises(ValueError):
            topology_order(4, 5)


class TestRandomOrder:
    def test_is_permutation(self):
        order = random_order(32, seed=1)
        assert sorted(order) == list(range(32))

    def test_partial_has_unique_ports(self):
        order = random_order(32, 10, seed=2)
        assert len(np.unique(order)) == 10

    def test_seed_determinism(self):
        assert np.array_equal(random_order(16, seed=9), random_order(16, seed=9))
        assert not np.array_equal(random_order(16, seed=9),
                                  random_order(16, seed=10))


class TestSubsets:
    def test_random_subset_size(self):
        order = random_subset(32, excluded=5, seed=0)
        assert len(order) == 27
        assert len(np.unique(order)) == 27

    def test_topology_subset_sorted(self):
        order = topology_subset(32, excluded=5, seed=0)
        assert (np.diff(order) > 0).all()
        assert len(order) == 27

    def test_same_seed_same_exclusions(self):
        a = random_subset(32, 5, seed=3)
        b = topology_subset(32, 5, seed=3)
        assert set(a) == set(b)


class TestPhysicalPlacement:
    def test_slots(self):
        slots = physical_placement(np.array([1, 3]), 5)
        assert list(slots) == [-1, 1, -1, 3, -1]

    def test_full_is_identity(self):
        slots = physical_placement(np.arange(6), 6)
        assert np.array_equal(slots, np.arange(6))


class TestInvert:
    def test_roundtrip(self):
        r2p = random_order(16, seed=4)
        p2r = invert_placement(r2p, 16)
        assert np.array_equal(r2p[p2r], np.arange(16))

    def test_idle_ports_minus_one(self):
        p2r = invert_placement(np.array([2, 0]), 4)
        assert list(p2r) == [1, -1, 0, -1]
