"""Scheduler placement policies: block vs cyclic."""

import numpy as np
import pytest

from repro.analysis import sequence_hsd
from repro.collectives import shift
from repro.fabric import build_fabric
from repro.ordering import block_order, cyclic_order, policy_order, topology_order
from repro.routing import route_dmodk
from repro.topology import pgft, rlft_max


@pytest.fixture(scope="module")
def spec():
    return rlft_max(6, 2)  # 72 nodes, 12 leaves of 6


class TestBlock:
    def test_block_is_topology_order(self, spec):
        assert np.array_equal(block_order(spec), topology_order(spec.num_endports))

    def test_partial(self, spec):
        assert np.array_equal(block_order(spec, 10), np.arange(10))


class TestCyclic:
    def test_full_is_permutation(self, spec):
        order = cyclic_order(spec)
        assert sorted(order) == list(range(spec.num_endports))

    def test_round_robin_across_leaves(self, spec):
        order = cyclic_order(spec)
        m = spec.m[0]
        leaves = order[: spec.num_endports // m] // m
        # The first L ranks land on L distinct leaves.
        assert len(np.unique(leaves)) == len(leaves)

    def test_partial_injective(self, spec):
        order = cyclic_order(spec, 29)
        assert len(np.unique(order)) == 29

    def test_level2_cyclic(self):
        spec = rlft_max(2, 3)  # 16 nodes, M(2) = 4
        order = cyclic_order(spec, level=2)
        assert sorted(order) == list(range(16))
        # First ranks spread across the 4 level-2 subtrees.
        assert len({int(p) // 4 for p in order[:4]}) == 4


class TestPolicyCost:
    def test_cyclic_is_also_congestion_free(self, spec):
        # A finding beyond the paper: per-leaf cyclic placement is the
        # *transpose* of the topology order, and D-Mod-K's modular
        # spreading survives transposition -- sources of one leaf target
        # stride-unit destinations, which still fan out over distinct
        # up-ports.  Both classic scheduler policies are safe; the
        # danger is unstructured (random) placement.
        tables = route_dmodk(build_fabric(spec))
        n = spec.num_endports
        cps = shift(n)
        assert sequence_hsd(tables, cps, block_order(spec)).congestion_free
        assert sequence_hsd(tables, cps, cyclic_order(spec)).congestion_free

    def test_cyclic_clean_on_three_level(self):
        spec = rlft_max(3, 3)
        tables = route_dmodk(build_fabric(spec))
        n = spec.num_endports
        cps = shift(n)
        for level in (1, 2):
            rep = sequence_hsd(tables, cps, cyclic_order(spec, level=level))
            assert rep.congestion_free, level

    def test_dispatch(self, spec):
        assert np.array_equal(policy_order(spec, "block"), block_order(spec))
        assert np.array_equal(policy_order(spec, "cyclic"), cyclic_order(spec))
        with pytest.raises(ValueError, match="policy"):
            policy_order(spec, "fractal")

    def test_range_checks(self, spec):
        with pytest.raises(ValueError):
            block_order(spec, spec.num_endports + 1)
        with pytest.raises(ValueError):
            cyclic_order(spec, 0)
