"""Adversarial ring ordering: leaf up-link convoys."""

import numpy as np
import pytest

from repro.analysis import sequence_hsd, stage_link_loads
from repro.collectives import ring
from repro.collectives.schedule import stage_flows
from repro.fabric import build_fabric
from repro.ordering import adversarial_ring_order, ring_successor_permutation
from repro.routing import route_dmodk
from repro.topology import paper_topologies, pgft, rlft_max


class TestSuccessorPermutation:
    def test_is_permutation(self):
        spec = pgft(2, [4, 8], [1, 4], [1, 1])  # L=8 leaves, m=4
        succ = ring_successor_permutation(spec)
        assert sorted(succ) == list(range(spec.num_endports))

    def test_destinations_share_leaf_up_port(self):
        spec = pgft(2, [4, 8], [1, 4], [1, 1])
        m = spec.m[0]
        succ = ring_successor_permutation(spec)
        for leaf in range(spec.num_endports // m):
            dests = succ[leaf * m:(leaf + 1) * m]
            residues = set(dests % m)  # D-Mod-K leaf up-port = dest mod m
            assert len(residues) == 1

    def test_mostly_cross_leaf(self):
        spec = pgft(2, [4, 8], [1, 4], [1, 1])
        m = spec.m[0]
        succ = ring_successor_permutation(spec)
        ports = np.arange(spec.num_endports)
        same_leaf = (ports // m) == (succ // m)
        assert same_leaf.sum() == 0  # g >= 2: fully cross-leaf

    def test_rejects_single_level(self):
        with pytest.raises(ValueError):
            ring_successor_permutation(pgft(1, [8], [1], [1]))


class TestAdversarialOrder:
    def test_is_placement(self):
        spec = paper_topologies()["n324"]
        order = adversarial_ring_order(spec)
        assert sorted(order) == list(range(spec.num_endports))

    def test_drives_hsd_to_oversubscription(self):
        # 8 leaves x 4 hosts: HSD should hit m = 4 on some leaf up link.
        spec = pgft(2, [4, 8], [1, 4], [1, 1])
        fab = build_fabric(spec)
        tables = route_dmodk(fab)
        order = adversarial_ring_order(spec)
        rep = sequence_hsd(tables, ring(spec.num_endports), order)
        assert rep.worst >= spec.m[0] - 1

    def test_hot_links_are_leaf_up_links(self):
        spec = pgft(2, [4, 8], [1, 4], [1, 1])
        fab = build_fabric(spec)
        tables = route_dmodk(fab)
        order = adversarial_ring_order(spec)
        st = ring(spec.num_endports).stages[0]
        src, dst = stage_flows(st, order)
        loads = stage_link_loads(tables, src, dst)
        hot = np.flatnonzero(loads == loads.max())
        assert (fab.node_level[fab.port_owner[hot]] == 1).all()
        assert fab.port_goes_up()[hot].all()

    def test_n324_reaches_seventeen(self):
        # L == m == 18 forces one self-flow per leaf: worst HSD = 17.
        spec = paper_topologies()["n324"]
        tables = route_dmodk(build_fabric(spec))
        order = adversarial_ring_order(spec)
        rep = sequence_hsd(tables, ring(spec.num_endports), order)
        assert rep.worst == spec.m[0] - 1
