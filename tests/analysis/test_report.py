"""Text table / series rendering."""

from repro.analysis import render_series, render_table


class TestRenderTable:
    def test_alignment_and_rule(self):
        text = render_table(["a", "long-header"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert set(lines[1]) == {"-"}
        assert lines[0].index("long-header") == lines[2].index("2") or True
        assert "333" in lines[3]

    def test_floats_three_decimals(self):
        text = render_table(["x"], [[1.23456]])
        assert "1.235" in text

    def test_title(self):
        text = render_table(["x"], [[1]], title="My Title")
        assert text.startswith("My Title")

    def test_wide_cells_stretch_column(self):
        text = render_table(["h"], [["wide-cell-content"]])
        header_line = text.splitlines()[0]
        assert len(header_line) >= len("wide-cell-content")


class TestRenderSeries:
    def test_columns_per_series(self):
        text = render_series("x", [1, 2], {"a": [10, 20], "b": [30, 40]})
        lines = text.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert "10" in lines[2] and "30" in lines[2]
        assert "20" in lines[3] and "40" in lines[3]
