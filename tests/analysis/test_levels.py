"""Per-level contention breakdown."""

import numpy as np
import pytest

from repro.analysis import (
    link_classes,
    sequence_level_profile,
    stage_level_profile,
)
from repro.collectives import ring, shift
from repro.fabric import build_fabric
from repro.ordering import adversarial_ring_order, topology_order
from repro.routing import route_dmodk
from repro.topology import pgft


@pytest.fixture(scope="module")
def setup():
    spec = pgft(2, [4, 8], [1, 4], [1, 1])
    tables = route_dmodk(build_fabric(spec))
    return spec, tables


class TestLinkClasses:
    def test_partitions_all_ports(self, setup):
        _, tables = setup
        classes = link_classes(tables)
        total = sum(int(m.sum()) for m in classes.values())
        assert total == tables.fabric.num_ports

    def test_expected_class_names(self, setup):
        _, tables = setup
        names = set(link_classes(tables))
        assert names == {"up 0->1", "up 1->2", "down 1->0", "down 2->1"}

    def test_masks_disjoint(self, setup):
        _, tables = setup
        classes = list(link_classes(tables).values())
        acc = np.zeros_like(classes[0])
        for m in classes:
            assert not (acc & m).any()
            acc |= m


class TestProfiles:
    def test_congestion_free_profile_all_ones(self, setup):
        spec, tables = setup
        n = spec.num_endports
        profile = sequence_level_profile(tables, shift(n), topology_order(n))
        assert profile.stage_max.max() == 1
        assert set(profile.worst_by_class().values()) == {1}

    def test_adversary_hits_leaf_uplinks_only(self, setup):
        spec, tables = setup
        order = adversarial_ring_order(spec)
        profile = sequence_level_profile(tables, ring(spec.num_endports), order)
        worst = profile.worst_by_class()
        assert profile.hottest_class() == "up 1->2"
        assert worst["up 1->2"] >= spec.m[0] - 1
        assert worst["up 0->1"] == 1  # injection stays clean

    def test_stage_profile_matches_sequence(self, setup):
        spec, tables = setup
        n = spec.num_endports
        src = np.arange(n)
        dst = (src + 1) % n
        by_stage = stage_level_profile(tables, src, dst)
        profile = sequence_level_profile(
            tables, ring(n), topology_order(n))
        assert by_stage == dict(zip(profile.classes, profile.stage_max[0]))
