"""Forwarding-table audit."""

import numpy as np
import pytest

from repro.analysis.audit import audit_tables
from repro.fabric import ForwardingTables, build_fabric
from repro.routing import route_dmodk, route_minhop, route_random
from repro.routing.repair import repair_tables
from repro.topology import rlft_max


@pytest.fixture(scope="module")
def fabric():
    return build_fabric(rlft_max(4, 2))


class TestAudit:
    def test_dmodk_is_clean(self, fabric):
        audit = audit_tables(route_dmodk(fabric))
        assert audit.clean
        assert audit.up_balance_worst == 0.0
        assert "CLEAN" in audit.render()

    def test_random_router_flagged(self, fabric):
        audit = audit_tables(route_random(fabric, seed=1))
        assert not audit.clean
        assert audit.theorem2_violations > 0
        assert audit.up_balance_worst > 0.5

    def test_minhop_first_skewed(self, fabric):
        audit = audit_tables(route_minhop(fabric, "first"))
        assert audit.up_balance_worst > 2.0

    def test_minhop_roundrobin_balanced(self, fabric):
        audit = audit_tables(route_minhop(fabric, "roundrobin"))
        assert audit.up_balance_worst == 0.0
        assert audit.non_minimal_entries == 0

    def test_unreachable_counted(self, fabric):
        tables = route_dmodk(fabric)
        sw = tables.switch_out.copy()
        sw[0, 5] = -1
        broken = ForwardingTables(fabric=fabric, switch_out=sw,
                                  host_up=tables.host_up)
        audit = audit_tables(broken, check_theorem2=False)
        assert audit.unreachable_entries == 1
        assert not audit.clean

    def test_repaired_tables_report_detours(self, fabric):
        base = route_dmodk(fabric)
        ups = np.flatnonzero(fabric.port_goes_up()
                             & (fabric.port_owner >= fabric.num_endports))
        degraded = fabric.with_failed_cables(ups[[0]])
        rep = repair_tables(base, degraded)
        # On the degraded graph the repaired tables are minimal again.
        audit = audit_tables(rep.tables, check_theorem2=False)
        assert audit.non_minimal_entries == 0

    def test_skip_theorem2(self, fabric):
        audit = audit_tables(route_dmodk(fabric), check_theorem2=False)
        assert audit.theorem2_violations == 0  # skipped = reported as 0


class TestCliAudit:
    def test_validate_audit_flag(self, tmp_path, capsys):
        from repro.fabric import save
        from repro.fabric.cli import main
        from repro.topology import pgft

        topo = tmp_path / "f.topo"
        save(build_fabric(pgft(2, [4, 4], [1, 2], [1, 2])), topo)
        assert main(["validate", str(topo), "--audit"]) == 0
        out = capsys.readouterr().out
        assert "table audit: CLEAN" in out
        assert "up-port skew" in out
