"""Hot-spot-degree engine: hand-checked flows and the Figure 1 scenario."""

import numpy as np
import pytest

from repro.analysis import (
    HSDReport,
    fixed_shift_pattern,
    random_order_sweep,
    sequence_hsd,
    stage_link_loads,
    stage_max_hsd,
    walk_flow_links,
)
from repro.collectives import shift
from repro.fabric import build_fabric
from repro.ordering import random_order, topology_order
from repro.routing import route_dmodk, trace_route
from repro.topology import pgft


class TestWalker:
    def test_matches_scalar_trace(self, fig1_tables):
        N = fig1_tables.fabric.num_endports
        src = np.repeat(np.arange(N), N)
        dst = np.tile(np.arange(N), N)
        flow_idx, gports = walk_flow_links(fig1_tables, src, dst)
        # Group by flow and compare sets against trace_route.
        by_flow = {}
        for f, gp in zip(flow_idx, gports):
            by_flow.setdefault(int(f), []).append(int(gp))
        for f, path in by_flow.items():
            assert sorted(path) == sorted(trace_route(
                fig1_tables, int(src[f]), int(dst[f])))

    def test_self_flows_contribute_nothing(self, fig1_tables):
        src = np.array([3, 5])
        dst = np.array([3, 5])
        flow_idx, gports = walk_flow_links(fig1_tables, src, dst)
        assert len(flow_idx) == 0

    def test_shape_mismatch_rejected(self, fig1_tables):
        with pytest.raises(ValueError):
            walk_flow_links(fig1_tables, np.arange(3), np.arange(4))


class TestStageLoads:
    def test_single_flow_counts_each_hop_once(self, fig1_tables):
        loads = stage_link_loads(fig1_tables, np.array([0]), np.array([15]))
        assert loads.sum() == len(trace_route(fig1_tables, 0, 15))
        assert loads.max() == 1

    def test_same_leaf_traffic_stays_local(self, fig1_tables):
        loads = stage_link_loads(fig1_tables, np.array([0]), np.array([1]))
        fab = fig1_tables.fabric
        touched = np.flatnonzero(loads)
        assert len(touched) == 2
        assert (fab.node_level[fab.port_owner[touched]] <= 1).all()

    def test_switch_links_only_filter(self, fig1_tables):
        # Host links loaded, switch links idle: same-leaf exchange.
        hsd_all = stage_max_hsd(
            fig1_tables, np.array([0]), np.array([1]), switch_links_only=False)
        hsd_sw = stage_max_hsd(
            fig1_tables, np.array([0]), np.array([1]), switch_links_only=True)
        assert hsd_all == 1
        assert hsd_sw == 0


class TestFigure1:
    """dst = (src + 4) mod 16: 3 hot links under one bad order, clean
    under the routing-aware order (the paper's Figure 1)."""

    def test_routing_aware_order_clean(self, fig1_tables):
        src, dst = fixed_shift_pattern(16, 4)
        assert stage_max_hsd(fig1_tables, src, dst) == 1

    def test_bad_order_creates_hot_spots(self, fig1_tables):
        rng = np.random.default_rng(5)
        worst = 0
        for _ in range(10):
            order = rng.permutation(16)
            src, dst = fixed_shift_pattern(16, 4, placement=order)
            worst = max(worst, stage_max_hsd(fig1_tables, src, dst))
        assert worst >= 2


class TestReport:
    def test_hsd_report_metrics(self):
        rep = HSDReport("x", np.array([1, 2, 3]))
        assert rep.avg_max == 2.0
        assert rep.worst == 3
        assert not rep.congestion_free

    def test_empty_report(self):
        rep = HSDReport("x", np.array([], dtype=np.int64))
        assert rep.avg_max == 0.0
        assert rep.congestion_free

    def test_sequence_hsd_counts_all_stages(self, fig1_tables):
        rep = sequence_hsd(fig1_tables, shift(16), topology_order(16))
        assert len(rep.stage_max) == 15
        assert rep.congestion_free


class TestOrderSweep:
    def test_sweep_statistics(self, fig1_tables):
        res = random_order_sweep(fig1_tables, shift, num_orders=5, seed=0)
        assert res.num_orders == 5
        assert res.min <= res.mean <= res.max
        assert res.mean > 1.0  # random orders congest

    def test_sweep_deterministic(self, fig1_tables):
        a = random_order_sweep(fig1_tables, shift, num_orders=3, seed=2)
        b = random_order_sweep(fig1_tables, shift, num_orders=3, seed=2)
        assert np.array_equal(a.avg_max, b.avg_max)
