"""Batched HSD fast path vs the one-placement-at-a-time reference."""

import numpy as np
import pytest

from repro.analysis import batched_sequence_hsd, sequence_hsd
from repro.analysis.traffic import sweep_placements
from repro.collectives import (
    binomial,
    recursive_doubling,
    ring,
    shift,
    tournament,
)
from repro.fabric import build_fabric
from repro.ordering import physical_placement, random_order
from repro.routing import route_dmodk, route_minhop
from repro.topology import pgft

CPS_FACTORIES = [shift, ring, binomial, tournament, recursive_doubling]


@pytest.fixture(scope="module")
def tables():
    return route_dmodk(build_fabric(pgft(2, [4, 4], [1, 2], [1, 2])))


@pytest.mark.parametrize("factory", CPS_FACTORIES,
                         ids=[f.__name__ for f in CPS_FACTORIES])
def test_matches_serial_per_row(tables, factory):
    n = tables.fabric.num_endports
    cps = factory(n)
    placements = sweep_placements(n, n, 7, seed=42)
    batched = batched_sequence_hsd(tables, cps, placements)
    for t in range(7):
        ref = sequence_hsd(tables, cps, placements[t])
        got = batched.report(t)
        assert np.array_equal(ref.stage_max, got.stage_max)
        assert batched.avg_max[t] == ref.avg_max


def test_single_row_input(tables):
    n = tables.fabric.num_endports
    cps = shift(n)
    placement = random_order(n, seed=9)
    ref = sequence_hsd(tables, cps, placement)
    batched = batched_sequence_hsd(tables, cps, placement)
    assert batched.num_orders == 1
    assert batched.avg_max[0] == ref.avg_max


def test_switch_links_only(tables):
    n = tables.fabric.num_endports
    cps = shift(n)
    placements = sweep_placements(n, n, 5, seed=0)
    batched = batched_sequence_hsd(tables, cps, placements,
                                   switch_links_only=True)
    for t in range(5):
        ref = sequence_hsd(tables, cps, placements[t],
                           switch_links_only=True)
        assert batched.avg_max[t] == ref.avg_max


def test_partial_placements_with_skipped_stages(tables):
    """Physical-slot placements (-1 entries) can leave some stages with
    no flows for some rows; the batched path must skip exactly the same
    stages the serial path skips."""
    n = tables.fabric.num_endports
    cps = binomial(n)
    rows = []
    for t in range(4):
        active = np.sort(random_order(n, n - 6, seed=100 + t))
        rows.append(physical_placement(active, n))
    placements = np.stack(rows)
    batched = batched_sequence_hsd(tables, cps, placements)
    for t in range(4):
        ref = sequence_hsd(tables, cps, placements[t])
        assert np.array_equal(ref.stage_max, batched.report(t).stage_max)
        assert batched.avg_max[t] == ref.avg_max


def test_other_routing_engine(tables):
    fab = tables.fabric
    other = route_minhop(fab, "random", seed=3)
    n = fab.num_endports
    cps = shift(n)
    placements = sweep_placements(n, n, 4, seed=7)
    batched = batched_sequence_hsd(other, cps, placements)
    for t in range(4):
        assert batched.avg_max[t] == sequence_hsd(other, cps,
                                                  placements[t]).avg_max


def test_rejects_bad_shapes(tables):
    cps = shift(tables.fabric.num_endports)
    with pytest.raises(ValueError):
        batched_sequence_hsd(tables, cps, np.zeros((2, 2, 2), dtype=np.int64))
