"""Experiment plumbing helpers."""

import pytest

from repro.experiments.common import (
    figure3_cps_factories,
    get_topology,
    sampled_shift,
)


class TestGetTopology:
    def test_known(self):
        assert get_topology("n324").num_endports == 324

    def test_unknown_exits_with_choices(self):
        with pytest.raises(SystemExit, match="n1944"):
            get_topology("n9999")


class TestSampledShift:
    def test_small_n_unsampled(self):
        cps = sampled_shift(10, max_stages=64)
        assert len(cps) == 9

    def test_large_n_capped(self):
        cps = sampled_shift(1944, max_stages=64)
        assert len(cps) <= 65
        # Sampling keeps distinct displacements.
        disp = [int((st.destinations[0] - st.sources[0]) % 1944)
                for st in cps]
        assert len(set(disp)) == len(disp)


class TestFigure3Factories:
    def test_six_collectives(self):
        fac = figure3_cps_factories()
        assert set(fac) == {"binomial", "butterfly", "dissemination",
                            "ring", "shift", "tournament"}

    def test_each_builds(self):
        for name, factory in figure3_cps_factories(16).items():
            cps = factory(32)
            assert len(cps.stages) >= 1, name
