"""Experiment drivers: every table/figure regenerates and asserts the
paper's qualitative claim in its own output."""

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments import (
    ablation,
    contention_free,
    failures,
    fig1,
    fig2,
    fig3,
    isolation,
    multijob,
    ring_adversarial,
    table1,
    table3,
)


class TestFig1:
    def test_run(self):
        out = fig1.run(num_random_orders=3)
        assert "congestion-free" in out
        assert "blocking" in out or "lucky" in out

    def test_routing_aware_row_always_clean(self):
        out = fig1.run(num_random_orders=1)
        aware = next(l for l in out.splitlines() if "routing-aware" in l)
        assert "congestion-free" in aware


class TestFig2:
    def test_fluid_small(self):
        out = fig2.run(topo="n16-pgft", sizes_kb=(64,), shift_stages=8)
        assert "shift/random" in out
        assert "ordered" in out

    def test_packet_model(self):
        out = fig2.run(topo="n16-pgft", sizes_kb=(16, 64),
                       shift_stages=8, model="packet", credits=4)
        assert "packet model" in out

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            fig2.run(model="quantum")

    def test_no_silent_topology_downgrade(self):
        # The packet model used to swap n324 for n16-pgft behind the
        # user's back; now the requested fabric is the simulated fabric.
        out = fig2.run(topo="n324", sizes_kb=(16,), shift_stages=2,
                       model="packet", credits=4)
        assert "18,18" in out      # n324 = PGFT(2; 18,18; 1,9; 1,2)
        assert "4,4" not in out    # n16-pgft = PGFT(2; 4,4; 1,2; 1,2)

    def test_reference_engine_warns_above_validated_size(self, monkeypatch):
        monkeypatch.setattr(fig2, "REFERENCE_ENGINE_VALIDATED_PORTS", 8)
        with pytest.warns(RuntimeWarning, match="validated size"):
            fig2.run(topo="n16-pgft", sizes_kb=(16,), shift_stages=2,
                     model="packet", credits=4, engine="reference")

    def test_vector_engine_no_warning(self, recwarn):
        fig2.run(topo="n16-pgft", sizes_kb=(16,), shift_stages=2,
                 model="packet", credits=4, engine="vector")
        assert not [w for w in recwarn.list
                    if issubclass(w.category, RuntimeWarning)]


class TestFig3:
    def test_shape(self):
        out = fig3.run(topos=("n128",), num_orders=3, max_shift_stages=12)
        lines = [l for l in out.splitlines() if l.startswith("n128")]
        assert len(lines) == 6  # six collectives
        vals = {l.split()[2]: float(l.split()[3]) for l in lines}
        assert vals["ring"] > vals["binomial"]
        assert vals["shift"] > vals["tournament"]

    def test_runtime_summary_line(self):
        out = fig3.run(topos=("n128",), num_orders=2, max_shift_stages=8)
        assert out.splitlines()[-1].startswith("runtime | jobs=1 cache=off")

    def test_warm_cache_recomputes_nothing(self, tmp_path):
        kwargs = dict(topos=("n128",), num_orders=2, max_shift_stages=8,
                      use_cache=True, cache_dir=tmp_path)
        cold = fig3.run(**kwargs)
        warm = fig3.run(**kwargs)
        assert "hits=0 misses=6 stores=6" in cold.splitlines()[-1]
        assert "hits=6 misses=0 stores=0" in warm.splitlines()[-1]
        # Identical rows either way.
        strip = lambda s: s.split("runtime |")[0]  # noqa: E731
        assert strip(cold) == strip(warm)

    @pytest.mark.slow
    def test_jobs_flag_matches_serial(self, tmp_path):
        a = fig3.run(topos=("n128",), num_orders=3, max_shift_stages=8)
        b = fig3.run(topos=("n128",), num_orders=3, max_shift_stages=8,
                     jobs=2)
        strip = lambda s: s.split("runtime |")[0]  # noqa: E731
        assert strip(a) == strip(b)


class TestTables:
    def test_table1(self):
        out = table1.run()
        assert "8 (paper: 8)" in out
        assert "True" in out

    def test_table3_proposed_always_one(self):
        out = table3.run(cases=(("n16-pgft", 0), ("n16-pgft", 3)),
                         num_random_orders=2, max_shift_stages=8)
        rows = [l for l in out.splitlines()
                if l.startswith("n16")]
        assert rows
        for row in rows:
            assert "1.000" in row  # proposed avg HSD column

    def test_table3_cache_roundtrip(self, tmp_path):
        kwargs = dict(cases=(("n16-pgft", 0),), num_random_orders=2,
                      max_shift_stages=8, use_cache=True,
                      cache_dir=tmp_path)
        cold = table3.run(**kwargs)
        warm = table3.run(**kwargs)
        assert "misses=0" in warm.splitlines()[-1]
        strip = lambda s: s.split("runtime |")[0]  # noqa: E731
        assert strip(cold) == strip(warm)


class TestRingAdversarial:
    def test_collapse_and_reference(self):
        out = ring_adversarial.run(topo="n16-pgft", message_kb=64, repeats=2)
        assert "adversarial" in out
        assert "topology-aware" in out
        # Adversarial normalized percentage is far below the reference.
        rows = {l.split()[0]: l for l in out.splitlines()
                if l.startswith(("adversarial", "topology-aware"))}
        adv = float(rows["adversarial"].split()[2])
        ref = float(rows["topology-aware"].split()[2])
        assert adv < ref / 2


class TestContentionFree:
    def test_ordered_reaches_ideal(self):
        out = contention_free.run(topo="n16-pgft", message_kb=32)
        lines = [l for l in out.splitlines() if l.startswith("shift")]
        ordered = next(l for l in lines if "ordered" in l)
        rand = next(l for l in lines if "random" in l)
        assert float(ordered.split()[2]) > float(rand.split()[2])


class TestAblation:
    def test_four_sections(self):
        out = ablation.run(topo="n16-pgft", max_shift_stages=8)
        assert out.count("Ablation") == 4
        assert "dmodk" in out and "random-router" in out
        assert "ftree-counting" in out
        assert "3-level" in out

    @pytest.mark.slow
    def test_jobs_flag_matches_serial(self):
        a = ablation.run(topo="n16-pgft", max_shift_stages=8)
        b = ablation.run(topo="n16-pgft", max_shift_stages=8, jobs=2)
        strip = lambda s: s.split("runtime |")[0]  # noqa: E731
        assert strip(a) == strip(b)


class TestFailures:
    def test_degradation_table(self):
        out = failures.run(topo="rlft2-max36", failures=(0, 1, 4),
                           max_shift_stages=8)
        lines = [l.split() for l in out.splitlines()
                 if l and l[0].isdigit()]
        assert len(lines) == 3
        zero, one, four = lines
        assert zero[2] == "1"                 # healthy: HSD 1
        assert int(one[2]) >= 2               # one failure: local bump
        assert float(four[3]) >= float(one[3])


class TestLatency:
    def test_ordered_holds_cut_through(self):
        from repro.experiments import latency

        out = latency.run(topo="n16-pgft", message_kb=32)
        ordered = next(l for l in out.splitlines() if l.startswith("ordered"))
        rand = next(l for l in out.splitlines() if l.startswith("random"))
        # max / zero-load column: ordered ~1.0, random well above.
        assert float(ordered.split()[-1]) < 1.1
        assert float(rand.split()[-1]) > 1.5


class TestGenerations:
    def test_overprovisioning_masks_contention(self):
        from repro.experiments import generations

        out = generations.run(topo="n16-pgft", message_kb=64,
                              shift_stages=8)
        over = next(l for l in out.splitlines()
                    if l.startswith("overprovisioned"))
        qdr = next(l for l in out.splitlines() if l.startswith("QDR"))
        # random/ordered ratio: ~1.0 with 3x headroom, well below on QDR.
        assert float(over.split()[-1]) > 0.97
        assert float(qdr.split()[-1]) < 0.8


class TestMultijob:
    def test_isolation_row(self):
        out = multijob.run(topo="rlft2-max36", job_units=(2, 3),
                           message_kb=64)
        concurrent = next(l for l in out.splitlines()
                          if l.startswith("all concurrent"))
        assert " 1 " in concurrent  # combined worst HSD == 1


class TestIsolation:
    def test_dynamics_never_exceed_static_bounds(self):
        # the acceptance claim: for BOTH routings the per-link flow
        # accounting and the fluid slowdown stay within the static
        # certificates the analyzer reported
        for routing in isolation.ROUTINGS:
            m = isolation.measure(topo="n324", storage_per_leaf=2,
                                  routing=routing, max_stages=8,
                                  message_kb=16)
            for name, worst in m["dynamic_worst"].items():
                assert worst <= m["static_worst"][name], (routing, name)
            assert m["dynamic_combined"] <= m["max_combined_load"], routing
            assert m["dynamic_within_static"], routing
            assert m["slowdown"] <= m["max_combined_load"] + 0.05, routing

    def test_typeaware_isolates_where_dmodk_contends(self):
        ta = isolation.measure(topo="n324", storage_per_leaf=2,
                               routing="typeaware", max_stages=8,
                               message_kb=16)
        dm = isolation.measure(topo="n324", storage_per_leaf=2,
                               routing="dmodk", max_stages=8,
                               message_kb=16)
        assert max(ta["static_worst"].values()) == 1
        assert max(dm["static_worst"].values()) > 1
        # the dynamics agree: the contended class pays solo bandwidth
        assert min(dm["solo_normbw"].values()) < min(ta["solo_normbw"].values())

    def test_packet_spot_check_runs(self):
        m = isolation.measure(topo="n324", storage_per_leaf=2,
                              routing="typeaware", max_stages=4,
                              message_kb=16, packet_stages=2)
        assert m["packet_normbw"] is not None and m["packet_normbw"] > 0

    def test_report_renders_verdict(self):
        out = isolation.run(topo="n324", storage_per_leaf=2, max_stages=4,
                            message_kb=16, packet_stages=0)
        assert "dynamics never exceed the static certificates" in out
        assert "typeaware" in out and "dmodk" in out


class TestCli:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "fig1", "fig2", "fig3", "table1", "table3",
            "ring-adversarial", "contention-free", "ablation", "multijob",
            "failures", "degradation", "latency", "generations", "chaos",
            "isolation",
        }

    def test_list(self, capsys):
        from repro.experiments import main

        main(["list"])
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out
