"""Mini-MPI communicator: numeric correctness and timing sanity."""

import numpy as np
import pytest

from repro.fabric import build_fabric
from repro.mpi import Communicator
from repro.ordering import random_order
from repro.routing import route_dmodk
from repro.topology import rlft_max


@pytest.fixture(scope="module")
def tables():
    return route_dmodk(build_fabric(rlft_max(4, 2)))  # 32 end-ports


@pytest.fixture(scope="module")
def comm(tables):
    return Communicator(tables)


@pytest.fixture(scope="module")
def comm13(tables):
    return Communicator(tables, placement=np.arange(13))


def _data(n, size=64, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=size) for _ in range(n)]


class TestBroadcast:
    @pytest.mark.parametrize("algorithm", ["binomial", "scatter-allgather"])
    @pytest.mark.parametrize("root", [0, 5])
    def test_everyone_gets_root_data(self, comm, algorithm, root):
        payload = np.arange(777.0)
        res = comm.broadcast(payload, root=root, algorithm=algorithm)
        assert all(np.allclose(v, payload) for v in res.values)
        assert res.time_us > 0

    def test_odd_size_and_nonzero_root(self, comm13):
        payload = np.arange(33.0)
        for algorithm in ("binomial", "scatter-allgather"):
            res = comm13.broadcast(payload, root=9, algorithm=algorithm)
            assert all(np.allclose(v, payload) for v in res.values)

    def test_unknown_algorithm(self, comm):
        with pytest.raises(ValueError):
            comm.broadcast(np.zeros(4), algorithm="telepathy")

    def test_bad_root(self, comm):
        with pytest.raises(ValueError, match="rank"):
            comm.broadcast(np.zeros(4), root=99)


class TestAllgather:
    @pytest.mark.parametrize("algorithm",
                             ["ring", "recursive-doubling", "bruck"])
    def test_concatenation(self, comm, algorithm):
        data = _data(comm.size)
        res = comm.allgather(data, algorithm=algorithm)
        want = np.concatenate(data)
        assert all(np.allclose(v, want) for v in res.values)

    def test_auto_odd_size_uses_ring(self, comm13):
        data = _data(13)
        res = comm13.allgather(data)
        assert res.algorithm == "ring"
        assert all(np.allclose(v, np.concatenate(data)) for v in res.values)

    def test_rd_requires_pow2(self, comm13):
        with pytest.raises(ValueError, match="pow2"):
            comm13.allgather(_data(13), algorithm="recursive-doubling")

    def test_log_stages_beat_ring(self, comm):
        data = _data(comm.size)
        ring = comm.allgather(data, algorithm="ring")
        rd = comm.allgather(data, algorithm="recursive-doubling")
        assert rd.num_stages < ring.num_stages


class TestAllreduce:
    @pytest.mark.parametrize("algorithm",
                             ["recursive-doubling", "rabenseifner"])
    @pytest.mark.parametrize("n", [32, 13])
    def test_sum(self, tables, algorithm, n):
        comm = Communicator(tables, placement=np.arange(n))
        data = _data(n)
        res = comm.allreduce(data, algorithm=algorithm)
        want = np.sum(data, axis=0)
        assert all(np.allclose(v, want) for v in res.values)

    def test_other_op(self, comm):
        data = _data(comm.size)
        res = comm.allreduce(data, op=np.maximum,
                             algorithm="recursive-doubling")
        want = np.max(data, axis=0)
        assert all(np.allclose(v, want) for v in res.values)

    def test_rabenseifner_moves_fewer_bytes(self, comm):
        # The reason large-message allreduce uses it: ~2(n-1)/n of the
        # vector vs 2*log2(n) full copies.
        data = _data(comm.size, size=4096)
        rd = comm.allreduce(data, algorithm="recursive-doubling")
        rab = comm.allreduce(data, algorithm="rabenseifner")
        assert rab.bytes_on_wire < rd.bytes_on_wire / 2

    def test_auto_picks_by_size(self, comm):
        small = comm.allreduce(_data(comm.size, size=8))
        large = comm.allreduce(_data(comm.size, size=4096))
        assert small.algorithm == "recursive-doubling"
        assert large.algorithm == "rabenseifner"


class TestReduce:
    @pytest.mark.parametrize("n,root", [(32, 0), (32, 17), (13, 7)])
    def test_root_gets_sum(self, tables, n, root):
        comm = Communicator(tables, placement=np.arange(n))
        data = _data(n)
        res = comm.reduce(data, root=root)
        assert np.allclose(res.values[root], np.sum(data, axis=0))
        assert all(v is None for r, v in enumerate(res.values) if r != root)


class TestAlltoall:
    def test_personalized_exchange(self, comm):
        n = comm.size
        mat = [[np.full(3, 100.0 * i + j) for j in range(n)]
               for i in range(n)]
        res = comm.alltoall(mat)
        for j in range(n):
            want = np.concatenate([np.full(3, 100.0 * i + j)
                                   for i in range(n)])
            assert np.allclose(res.values[j], want)

    def test_shape_checked(self, comm):
        with pytest.raises(ValueError, match="matrix"):
            comm.alltoall([[np.zeros(2)]])


class TestBarrierAndTiming:
    def test_barrier_stage_count(self, comm):
        res = comm.barrier()
        assert res.num_stages == 5  # ceil(log2(32))
        assert res.time_us > 0

    def test_placement_changes_time_not_values(self, tables):
        n = 32
        data = _data(n, size=16384)
        good = Communicator(tables)
        bad = Communicator(tables, placement=random_order(n, seed=3))
        rg = good.alltoall([[d] * n for d in data])
        rb = bad.alltoall([[d] * n for d in data])
        for vg, vb in zip(rg.values, rb.values):
            assert np.allclose(vg, vb)
        # The topology-ordered placement is strictly faster (the paper).
        assert rg.time_us < rb.time_us

    def test_no_simulation_mode(self, tables):
        comm = Communicator(tables, simulate=False)
        res = comm.allreduce(_data(comm.size))
        assert res.time_us == 0.0

    def test_duplicate_placement_rejected(self, tables):
        with pytest.raises(ValueError):
            Communicator(tables, placement=np.array([0, 0, 1]))
