"""At-least-once collectives: retry policy, DeliveryError, healing."""

import numpy as np
import pytest

from repro.faults import FaultEvent, FaultSchedule
from repro.faults.schedule import LINK_DOWN, LINK_UP
from repro.mpi import Communicator, DeliveryError, RetryPolicy
from repro.routing.validate import trace_route


def _sw_cut(tables, src, dst):
    """A switch-to-switch gport on the route src -> dst."""
    fab = tables.fabric
    N = fab.num_endports
    for gp in trace_route(tables, src, dst):
        peer = int(fab.port_peer[gp])
        if fab.port_owner[gp] >= N and fab.port_owner[peer] >= N:
            return gp
    raise AssertionError("route never crosses a sw-sw cable")


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="ack_timeout"):
            RetryPolicy(ack_timeout=0.0)
        with pytest.raises(ValueError, match="backoff"):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)

    def test_delay_grows_exponentially(self):
        pol = RetryPolicy(ack_timeout=10.0, backoff=2.0, jitter=0.0)
        rng = np.random.default_rng(0)
        assert pol.delay(1, rng) == 10.0
        assert pol.delay(2, rng) == 20.0
        assert pol.delay(3, rng) == 40.0

    def test_jitter_bounds(self):
        pol = RetryPolicy(ack_timeout=10.0, backoff=1.0, jitter=0.5)
        rng = np.random.default_rng(0)
        for _ in range(100):
            d = pol.delay(1, rng)
            assert 10.0 <= d <= 15.0


class TestCommunicatorWiring:
    def test_retry_requires_faults(self, fig1_tables):
        with pytest.raises(ValueError, match="without a fault schedule"):
            Communicator(fig1_tables, retry=RetryPolicy())

    def test_sweep_delay_requires_faults(self, fig1_tables):
        with pytest.raises(ValueError, match="without a fault schedule"):
            Communicator(fig1_tables, sweep_delay=10.0)

    def test_last_faults_none_without_schedule(self, fig1_tables):
        comm = Communicator(fig1_tables)
        comm.allreduce([np.ones(4) for _ in range(comm.size)])
        assert comm.last_faults is None


class TestEmptySchedule:
    def test_clean_run_metrics(self, fig1_tables):
        comm = Communicator(fig1_tables, faults=FaultSchedule())
        n = comm.size
        data = [np.full(8, float(r)) for r in range(n)]
        res = comm.allreduce(data)
        m = comm.last_faults
        assert m is not None
        assert m.delivered_fraction == 1.0
        assert m.retransmissions == 0
        assert m.dropped_packets == 0
        assert m.repairs == ()
        expect = np.sum(np.stack(data), axis=0)
        for v in res.values:
            assert np.array_equal(v, expect)


class TestRetryRecovery:
    def test_transient_cut_recovers(self, fig1_tables):
        """A cable down for a while: retries carry the data through."""
        gp = _sw_cut(fig1_tables, 3, 4)
        faults = FaultSchedule(events=(
            FaultEvent(time=0.0, kind=LINK_DOWN, gport=gp),
            FaultEvent(time=120.0, kind=LINK_UP, gport=gp),
        ))
        comm = Communicator(
            fig1_tables, faults=faults,
            retry=RetryPolicy(max_retries=8, ack_timeout=40.0, seed=1))
        n = comm.size
        data = [np.full(16, float(r)) for r in range(n)]
        res = comm.allreduce(data)
        m = comm.last_faults
        assert m.delivered_fraction == 1.0
        assert m.retransmissions > 0
        assert m.retry_rounds > 0
        expect = np.sum(np.stack(data), axis=0)
        for v in res.values:
            assert np.array_equal(v, expect)

    def test_permanent_cut_raises_with_exact_triples(self, fig1_tables):
        gp = _sw_cut(fig1_tables, 3, 4)
        faults = FaultSchedule(events=(
            FaultEvent(time=0.0, kind=LINK_DOWN, gport=gp),))
        comm = Communicator(
            fig1_tables, faults=faults,
            retry=RetryPolicy(max_retries=2, ack_timeout=10.0, seed=1))
        n = comm.size
        data = [np.full(16, float(r)) for r in range(n)]
        with pytest.raises(DeliveryError) as exc:
            comm.allreduce(data)
        err = exc.value
        assert err.lost
        for src, dst, stage in err.lost:
            assert 0 <= src < n and 0 <= dst < n and stage >= 0
        assert err.metrics.delivered_fraction < 1.0
        assert "undeliverable" in str(err)
        # Metrics are also left on the communicator for post-mortems.
        assert comm.last_faults == err.metrics

    def test_healing_rescues_permanent_cut(self, fig1_tables):
        gp = _sw_cut(fig1_tables, 3, 4)
        faults = FaultSchedule(events=(
            FaultEvent(time=0.0, kind=LINK_DOWN, gport=gp),))
        comm = Communicator(
            fig1_tables, faults=faults,
            retry=RetryPolicy(max_retries=8, ack_timeout=20.0, seed=1),
            sweep_delay=30.0)
        n = comm.size
        data = [np.full(16, float(r)) for r in range(n)]
        res = comm.allreduce(data)
        m = comm.last_faults
        assert m.delivered_fraction == 1.0
        assert len(m.repairs) == 1
        assert m.recovery_latency == 30.0
        expect = np.sum(np.stack(data), axis=0)
        for v in res.values:
            assert np.array_equal(v, expect)


class TestAllCollectivesUnderFaults:
    """Every collective either completes correctly or raises loudly."""

    @pytest.mark.parametrize("name", [
        "allgather", "broadcast", "alltoall", "reduce",
        "scatter", "gather", "scan", "barrier",
    ])
    def test_completes_with_healing(self, fig1_tables, name):
        gp = _sw_cut(fig1_tables, 3, 4)
        faults = FaultSchedule(events=(
            FaultEvent(time=0.0, kind=LINK_DOWN, gport=gp),))
        comm = Communicator(
            fig1_tables, faults=faults,
            retry=RetryPolicy(max_retries=8, ack_timeout=20.0, seed=2),
            sweep_delay=25.0)
        n = comm.size
        if name == "barrier":
            comm.barrier()
        elif name == "broadcast":
            comm.broadcast(np.arange(8.0))
        elif name == "scatter":
            comm.scatter([np.full(4, float(r)) for r in range(n)])
        elif name == "alltoall":
            matrix = [[np.full(2, float(i * n + j)) for j in range(n)]
                      for i in range(n)]
            comm.alltoall(matrix)
        else:
            data = [np.full(8, float(r)) for r in range(n)]
            getattr(comm, name)(data)
        m = comm.last_faults
        assert m is not None
        assert m.delivered_fraction == 1.0


class TestDeterminism:
    def test_identical_runs_identical_metrics(self, fig1_tables):
        fab = fig1_tables.fabric
        faults = FaultSchedule.random(fab, seed=5, horizon=150.0, mtbf=30.0)
        outs = []
        for _ in range(2):
            comm = Communicator(
                fig1_tables, faults=faults,
                retry=RetryPolicy(max_retries=6, ack_timeout=25.0, seed=5),
                sweep_delay=40.0)
            data = [np.full(8, float(r)) for r in range(comm.size)]
            try:
                res = comm.allreduce(data)
                outs.append(("ok", res.time_us, comm.last_faults))
            except DeliveryError as err:
                outs.append(("err", err.lost, err.metrics))
        assert outs[0] == outs[1]
