"""Scan, scatter and gather collectives."""

import numpy as np
import pytest

from repro.fabric import build_fabric
from repro.mpi import Communicator
from repro.routing import route_dmodk
from repro.topology import rlft_max


@pytest.fixture(scope="module")
def tables():
    return route_dmodk(build_fabric(rlft_max(4, 2)))


@pytest.mark.parametrize("n", [1, 2, 8, 13, 32])
class TestScan:
    def test_inclusive_prefix_sum(self, tables, n):
        comm = Communicator(tables, placement=np.arange(n))
        data = [np.full(4, float(r + 1)) for r in range(n)]
        res = comm.scan(data)
        for r in range(n):
            want = np.full(4, sum(range(1, r + 2)))
            assert np.allclose(res.values[r], want), r

    def test_stage_count_logarithmic(self, tables, n):
        comm = Communicator(tables, placement=np.arange(n))
        res = comm.scan([np.zeros(2)] * n)
        import math

        assert res.num_stages == (math.ceil(math.log2(n)) if n > 1 else 0)


@pytest.mark.parametrize("n,root", [(8, 0), (8, 3), (13, 7), (32, 31)])
class TestScatterGather:
    def test_scatter_delivers_personal_chunks(self, tables, n, root):
        comm = Communicator(tables, placement=np.arange(n))
        data = [np.full(3, float(r)) for r in range(n)]
        res = comm.scatter(data, root=root)
        for r in range(n):
            assert np.allclose(res.values[r], np.full(3, float(r))), r

    def test_gather_is_inverse(self, tables, n, root):
        comm = Communicator(tables, placement=np.arange(n))
        data = [np.full(2, float(r)) for r in range(n)]
        res = comm.gather(data, root=root)
        want = np.concatenate(data)
        assert np.allclose(res.values[root], want)
        assert all(v is None for r, v in enumerate(res.values) if r != root)

    def test_scatter_halves_traffic_vs_broadcast(self, tables, n, root):
        # Scatter moves each byte O(1) times; broadcast of the full
        # concatenation moves it to everyone.
        comm = Communicator(tables, placement=np.arange(n))
        data = [np.full(256, float(r)) for r in range(n)]
        sc = comm.scatter(data, root=root)
        bc = comm.broadcast(np.concatenate(data), root=root)
        assert sc.bytes_on_wire < bc.bytes_on_wire


class TestScanOp:
    def test_max_scan(self, tables):
        comm = Communicator(tables, placement=np.arange(6))
        data = [np.array([float(v)]) for v in (3, 1, 4, 1, 5, 9)]
        res = comm.scan(data, op=np.maximum)
        want = [3, 3, 4, 4, 5, 9]
        for r, w in enumerate(want):
            assert np.allclose(res.values[r], [w])
