"""Mini-MPI edge cases: tiny communicators, scalar payloads."""

import numpy as np
import pytest

from repro.fabric import build_fabric
from repro.mpi import Communicator
from repro.routing import route_dmodk
from repro.topology import rlft_max


@pytest.fixture(scope="module")
def tables():
    return route_dmodk(build_fabric(rlft_max(3, 2)))  # 18 end-ports


class TestTinyCommunicators:
    def test_single_rank(self, tables):
        comm = Communicator(tables, placement=np.array([4]))
        res = comm.allreduce([np.array([7.0])])
        assert np.allclose(res.values[0], [7.0])
        b = comm.broadcast(np.array([1.0, 2.0]))
        assert np.allclose(b.values[0], [1.0, 2.0])
        assert comm.barrier().num_stages == 0

    def test_two_ranks(self, tables):
        comm = Communicator(tables, placement=np.array([0, 9]))
        data = [np.array([1.0, 2.0]), np.array([10.0, 20.0])]
        r = comm.allreduce(data, algorithm="recursive-doubling")
        assert all(np.allclose(v, [11.0, 22.0]) for v in r.values)
        g = comm.allgather(data)
        assert all(np.allclose(v, [1, 2, 10, 20]) for v in g.values)

    def test_scalar_payload_promoted(self, tables):
        comm = Communicator(tables, placement=np.arange(4))
        r = comm.allreduce([1.0, 2.0, 3.0, 4.0])
        assert all(np.allclose(v, [10.0]) for v in r.values)


class TestValidation:
    def test_wrong_buffer_count(self, tables):
        comm = Communicator(tables, placement=np.arange(4))
        with pytest.raises(ValueError, match="buffer per rank"):
            comm.allreduce([np.zeros(2)] * 3)
        with pytest.raises(ValueError, match="buffer per rank"):
            comm.allgather([np.zeros(2)] * 5)

    def test_unknown_allreduce_algorithm(self, tables):
        comm = Communicator(tables, placement=np.arange(4))
        with pytest.raises(ValueError, match="algorithm"):
            comm.allreduce([np.zeros(2)] * 4, algorithm="sorcery")


class TestCrossPlacementInvariance:
    def test_values_independent_of_placement(self, tables):
        # Any placement of the same ranks yields identical numerics.
        data = [np.arange(4.0) + r for r in range(6)]
        want = np.sum(data, axis=0)
        for placement in (np.arange(6), np.array([17, 3, 8, 0, 12, 5])):
            comm = Communicator(tables, placement=placement)
            res = comm.allreduce(data, algorithm="rabenseifner")
            assert all(np.allclose(v, want) for v in res.values)
