"""Packet simulator: latency arithmetic and agreement with the fluid model."""

import numpy as np
import pytest

from repro.collectives import shift
from repro.fabric import build_fabric
from repro.ordering import random_order, topology_order
from repro.routing import route_dmodk
from repro.sim import (
    QDR_PCIE_GEN2,
    FluidSimulator,
    PacketSimulator,
    cps_workload,
)
from repro.topology import pgft

CAL = QDR_PCIE_GEN2


class TestSinglePacket:
    def test_cut_through_latency(self, fig1_tables):
        # One MTU cross-leaf (4 links, 3 switch hops... 2 switches + NIC):
        seqs = [[] for _ in range(16)]
        seqs[0] = [(8, 2048.0)]
        res = PacketSimulator(fig1_tables).run_sequences(seqs)
        expect = (
            CAL.host_overhead
            + 2048.0 / CAL.host_bandwidth       # bottleneck serialisation
            + 3 * CAL.switch_latency            # leaf, spine, leaf
            + 4 * CAL.wire_latency
        )
        # Cut-through: no per-hop serialisation beyond the bottleneck.
        assert res.latencies[0] == pytest.approx(expect, abs=0.2)

    def test_same_leaf_shorter_than_cross_leaf(self, fig1_tables):
        seqs = [[] for _ in range(16)]
        seqs[0] = [(1, 2048.0)]
        same = PacketSimulator(fig1_tables).run_sequences(seqs).latencies[0]
        seqs[0] = [(8, 2048.0)]
        cross = PacketSimulator(fig1_tables).run_sequences(seqs).latencies[0]
        assert same < cross


class TestMultiPacket:
    def test_segmentation_pipeline(self, fig1_tables):
        # 8 MTUs: latency ~ overhead + size/bottleneck + hop latencies.
        size = 8 * 2048.0
        seqs = [[] for _ in range(16)]
        seqs[0] = [(8, size)]
        res = PacketSimulator(fig1_tables).run_sequences(seqs)
        expect = CAL.host_overhead + size / CAL.host_bandwidth
        assert res.latencies[0] == pytest.approx(expect, abs=1.0)

    def test_sub_mtu_message(self, fig1_tables):
        seqs = [[] for _ in range(16)]
        seqs[0] = [(8, 100.0)]
        res = PacketSimulator(fig1_tables).run_sequences(seqs)
        assert res.latencies[0] < 2.0


class TestAgainstFluid:
    """The two simulators must agree when there is no contention."""

    @pytest.mark.parametrize("size", [16384.0, 262144.0])
    def test_contention_free_shift_agreement(self, fig1_tables, size):
        wl = cps_workload(shift(16), topology_order(16), 16, size)
        bw_pkt = PacketSimulator(fig1_tables).run_sequences(wl).normalized_bandwidth
        bw_fld = FluidSimulator(fig1_tables).run_sequences(wl).normalized_bandwidth
        assert bw_pkt == pytest.approx(bw_fld, rel=0.03)

    def test_random_order_contention_visible(self, fig1_tables):
        wl_t = cps_workload(shift(16), topology_order(16), 16, 65536.0)
        wl_r = cps_workload(shift(16), random_order(16, seed=1), 16, 65536.0)
        sim = PacketSimulator(fig1_tables)
        bw_t = sim.run_sequences(wl_t).normalized_bandwidth
        bw_r = PacketSimulator(fig1_tables).run_sequences(wl_r).normalized_bandwidth
        assert bw_r < bw_t
        # Contention also shows up as latency.
        lat_t = sim.run_sequences(wl_t).mean_latency
        lat_r = PacketSimulator(fig1_tables).run_sequences(wl_r).mean_latency
        assert lat_r > lat_t


class TestGuards:
    def test_sequence_count_checked(self, fig1_tables):
        with pytest.raises(ValueError):
            PacketSimulator(fig1_tables).run_sequences([[]])

    def test_event_budget(self, fig1_tables):
        wl = cps_workload(shift(16), topology_order(16), 16, 1 << 20)
        from repro.sim import SimulationError

        with pytest.raises(SimulationError):
            PacketSimulator(fig1_tables, max_events=100).run_sequences(wl)

    def test_empty_run(self, fig1_tables):
        res = PacketSimulator(fig1_tables).run_sequences([[] for _ in range(16)])
        assert res.makespan == 0.0
        assert res.mean_latency == 0.0
