"""Calibration constants and derived timings."""

import pytest

from repro.sim import DDR_PCIE_GEN1, EDR_PCIE_GEN3, QDR_PCIE_GEN2, LinkCalibration


def test_paper_numbers():
    # Section II: QDR 4000 MB/s links, PCIe Gen2 x8 hosts at 3250 MB/s.
    assert QDR_PCIE_GEN2.link_bandwidth == 4000.0
    assert QDR_PCIE_GEN2.host_bandwidth == 3250.0
    assert QDR_PCIE_GEN2.mtu == 2048


def test_min_bandwidth_is_bottleneck():
    assert QDR_PCIE_GEN2.min_bandwidth == 3250.0
    assert EDR_PCIE_GEN3.min_bandwidth == 12000.0  # wire-bound generation


def test_wire_and_host_time():
    assert QDR_PCIE_GEN2.wire_time(4000) == pytest.approx(1.0)
    assert QDR_PCIE_GEN2.host_time(3250) == pytest.approx(1.0)


def test_zero_load_latency_monotone_in_hops_and_size():
    small = QDR_PCIE_GEN2.zero_load_latency(2048, hops=2)
    more_hops = QDR_PCIE_GEN2.zero_load_latency(2048, hops=6)
    bigger = QDR_PCIE_GEN2.zero_load_latency(1 << 20, hops=2)
    assert small < more_hops < bigger


def test_validation():
    with pytest.raises(ValueError):
        LinkCalibration("bad", link_bandwidth=0, host_bandwidth=1)
    with pytest.raises(ValueError):
        LinkCalibration("bad", link_bandwidth=1, host_bandwidth=1, mtu=0)


def test_generations_ordered():
    assert DDR_PCIE_GEN1.min_bandwidth < QDR_PCIE_GEN2.min_bandwidth \
        < EDR_PCIE_GEN3.min_bandwidth
