"""Workload builders."""

import numpy as np
import pytest

from repro.collectives import recursive_halving, ring, shift
from repro.ordering import topology_order
from repro.sim import (
    cps_workload,
    merge_sequences,
    permutation_workload,
    shard_workload,
    uniform_random_workload,
)


class TestCpsWorkload:
    def test_uniform_size(self):
        wl = cps_workload(shift(4), topology_order(4), 4, 1024.0)
        assert all(len(seq) == 3 for seq in wl)
        assert all(size == 1024.0 for seq in wl for _, size in seq)

    def test_per_stage_sizes(self):
        cps = recursive_halving(8)
        sizes = [4096.0, 2048.0, 1024.0]
        wl = cps_workload(cps, topology_order(8), 8, sizes)
        assert [s for _, s in wl[0]] == sizes

    def test_size_count_mismatch(self):
        with pytest.raises(ValueError, match="sizes"):
            cps_workload(shift(4), topology_order(4), 4, [1.0, 2.0])

    def test_idle_ports_have_empty_sequences(self):
        wl = cps_workload(ring(3), np.array([0, 2, 4]), 6, 10.0)
        assert wl[1] == [] and wl[5] == []


class TestPermutationWorkload:
    def test_repeats(self):
        wl = permutation_workload([0, 1], [1, 0], 4, 100.0, repeats=3)
        assert wl[0] == [(1, 100.0)] * 3
        assert wl[2] == []

    def test_self_flows_skipped(self):
        wl = permutation_workload([0, 1], [0, 0], 4, 100.0)
        assert wl[0] == []
        assert wl[1] == [(0, 100.0)]


class TestUniformRandom:
    def test_no_self_messages(self):
        wl = uniform_random_workload(10, 50, 1.0, seed=3)
        for p, seq in enumerate(wl):
            assert all(d != p for d, _ in seq)

    def test_shapes_and_determinism(self):
        a = uniform_random_workload(8, 5, 2.0, seed=1)
        b = uniform_random_workload(8, 5, 2.0, seed=1)
        assert a == b
        assert all(len(seq) == 5 for seq in a)

    def test_destination_range(self):
        wl = uniform_random_workload(6, 100, 1.0, seed=0)
        dests = {d for seq in wl for d, _ in seq}
        assert dests <= set(range(6))


class TestMergeAndShard:
    def test_merge_concatenates_per_port(self):
        a = cps_workload(shift(4), topology_order(4), 6, 64.0)
        b = cps_workload(ring(4), topology_order(4), 6, 32.0)
        merged = merge_sequences(a, b)
        for p in range(6):
            assert merged[p] == a[p] + b[p]

    def test_merge_empty_and_mismatch(self):
        assert merge_sequences() == []
        with pytest.raises(ValueError):
            merge_sequences([[], []], [[]])

    def test_shard_roundtrip(self):
        wl = uniform_random_workload(6, 13, 1.0, seed=4)
        for num_shards in (1, 2, 3, 5, 20):
            shards = shard_workload(wl, num_shards)
            assert len(shards) == num_shards
            assert merge_sequences(*shards) == wl

    def test_shard_preserves_port_count(self):
        wl = uniform_random_workload(5, 4, 1.0, seed=0)
        for shard in shard_workload(wl, 3):
            assert len(shard) == 5

    def test_shard_rejects_bad_count(self):
        with pytest.raises(ValueError):
            shard_workload([[]], 0)
