"""Workload builders."""

import numpy as np
import pytest

from repro.collectives import recursive_halving, ring, shift
from repro.ordering import topology_order
from repro.sim import (
    cps_workload,
    permutation_workload,
    uniform_random_workload,
)


class TestCpsWorkload:
    def test_uniform_size(self):
        wl = cps_workload(shift(4), topology_order(4), 4, 1024.0)
        assert all(len(seq) == 3 for seq in wl)
        assert all(size == 1024.0 for seq in wl for _, size in seq)

    def test_per_stage_sizes(self):
        cps = recursive_halving(8)
        sizes = [4096.0, 2048.0, 1024.0]
        wl = cps_workload(cps, topology_order(8), 8, sizes)
        assert [s for _, s in wl[0]] == sizes

    def test_size_count_mismatch(self):
        with pytest.raises(ValueError, match="sizes"):
            cps_workload(shift(4), topology_order(4), 4, [1.0, 2.0])

    def test_idle_ports_have_empty_sequences(self):
        wl = cps_workload(ring(3), np.array([0, 2, 4]), 6, 10.0)
        assert wl[1] == [] and wl[5] == []


class TestPermutationWorkload:
    def test_repeats(self):
        wl = permutation_workload([0, 1], [1, 0], 4, 100.0, repeats=3)
        assert wl[0] == [(1, 100.0)] * 3
        assert wl[2] == []

    def test_self_flows_skipped(self):
        wl = permutation_workload([0, 1], [0, 0], 4, 100.0)
        assert wl[0] == []
        assert wl[1] == [(0, 100.0)]


class TestUniformRandom:
    def test_no_self_messages(self):
        wl = uniform_random_workload(10, 50, 1.0, seed=3)
        for p, seq in enumerate(wl):
            assert all(d != p for d, _ in seq)

    def test_shapes_and_determinism(self):
        a = uniform_random_workload(8, 5, 2.0, seed=1)
        b = uniform_random_workload(8, 5, 2.0, seed=1)
        assert a == b
        assert all(len(seq) == 5 for seq in a)

    def test_destination_range(self):
        wl = uniform_random_workload(6, 100, 1.0, seed=0)
        dests = {d for seq in wl for d, _ in seq}
        assert dests <= set(range(6))
