"""Discrete-event queue semantics."""

import pytest

from repro.sim import EventQueue, SimulationError


def test_events_fire_in_time_order():
    q = EventQueue()
    log = []
    q.schedule(2.0, log.append, "b")
    q.schedule(1.0, log.append, "a")
    q.schedule(3.0, log.append, "c")
    q.run()
    assert log == ["a", "b", "c"]


def test_equal_times_fifo():
    q = EventQueue()
    log = []
    for tag in "abc":
        q.schedule(1.0, log.append, tag)
    q.run()
    assert log == ["a", "b", "c"]


def test_now_advances():
    q = EventQueue()
    seen = []
    q.schedule(5.0, lambda: seen.append(q.now))
    q.run()
    assert seen == [5.0]
    assert q.now == 5.0


def test_schedule_in_is_relative():
    q = EventQueue()
    log = []

    def first():
        q.schedule_in(2.0, lambda: log.append(q.now))

    q.schedule(1.0, first)
    q.run()
    assert log == [3.0]


def test_cannot_schedule_in_past():
    q = EventQueue()
    q.schedule(5.0, lambda: None)
    q.run()
    with pytest.raises(SimulationError):
        q.schedule(1.0, lambda: None)


def test_run_until_stops_early():
    q = EventQueue()
    log = []
    q.schedule(1.0, log.append, 1)
    q.schedule(10.0, log.append, 2)
    q.run(until=5.0)
    assert log == [1]
    assert len(q) == 1


def test_max_events_guard():
    q = EventQueue()

    def loop():
        q.schedule_in(1.0, loop)

    q.schedule(0.0, loop)
    with pytest.raises(SimulationError, match="exceeded"):
        q.run(max_events=100)


def test_step_on_empty_queue():
    assert EventQueue().step() is False


def test_past_tolerance_is_relative():
    # At large simulated times the float spacing between adjacent
    # doubles exceeds any absolute epsilon: scheduling "now" computed
    # through a different arithmetic path may land a few ULPs early.
    # The guard must scale with the clock instead of rejecting it.
    q = EventQueue()
    big = 1e7
    q.schedule(big, lambda: None)
    q.run()
    assert q.now == big
    jitter = big * 1e-10  # well inside 1e-9 * now, far above 1e-9 abs
    q.schedule(big - jitter, lambda: None)  # must NOT raise
    q.run()


def test_past_tolerance_still_rejects_genuine_past():
    q = EventQueue()
    q.schedule(1e7, lambda: None)
    q.run()
    with pytest.raises(SimulationError, match="past"):
        q.schedule(1e7 - 1.0, lambda: None)


def test_past_tolerance_small_times_unchanged():
    q = EventQueue()
    q.schedule(1.0, lambda: None)
    q.run()
    q.schedule(1.0 - 1e-12, lambda: None)  # inside tolerance
    with pytest.raises(SimulationError):
        q.schedule(1.0 - 1e-6, lambda: None)


def test_pop_batch_drains_equal_times_in_order():
    q = EventQueue()
    log = []
    q.schedule(2.0, log.append, "late")
    for tag in "abc":
        q.schedule(1.0, log.append, tag)
    batch = q.pop_batch()
    assert q.now == 1.0
    assert [args[0] for _, args in batch] == ["a", "b", "c"]
    for cb, args in batch:
        cb(*args)
    assert log == ["a", "b", "c"]
    assert len(q) == 1 and q.peek_time() == 2.0


def test_pop_batch_empty_queue():
    q = EventQueue()
    assert q.pop_batch() == []
    assert q.peek_time() is None
