"""Discrete-event queue semantics."""

import pytest

from repro.sim import EventQueue, SimulationError


def test_events_fire_in_time_order():
    q = EventQueue()
    log = []
    q.schedule(2.0, log.append, "b")
    q.schedule(1.0, log.append, "a")
    q.schedule(3.0, log.append, "c")
    q.run()
    assert log == ["a", "b", "c"]


def test_equal_times_fifo():
    q = EventQueue()
    log = []
    for tag in "abc":
        q.schedule(1.0, log.append, tag)
    q.run()
    assert log == ["a", "b", "c"]


def test_now_advances():
    q = EventQueue()
    seen = []
    q.schedule(5.0, lambda: seen.append(q.now))
    q.run()
    assert seen == [5.0]
    assert q.now == 5.0


def test_schedule_in_is_relative():
    q = EventQueue()
    log = []

    def first():
        q.schedule_in(2.0, lambda: log.append(q.now))

    q.schedule(1.0, first)
    q.run()
    assert log == [3.0]


def test_cannot_schedule_in_past():
    q = EventQueue()
    q.schedule(5.0, lambda: None)
    q.run()
    with pytest.raises(SimulationError):
        q.schedule(1.0, lambda: None)


def test_run_until_stops_early():
    q = EventQueue()
    log = []
    q.schedule(1.0, log.append, 1)
    q.schedule(10.0, log.append, 2)
    q.run(until=5.0)
    assert log == [1]
    assert len(q) == 1


def test_max_events_guard():
    q = EventQueue()

    def loop():
        q.schedule_in(1.0, loop)

    q.schedule(0.0, loop)
    with pytest.raises(SimulationError, match="exceeded"):
        q.run(max_events=100)


def test_step_on_empty_queue():
    assert EventQueue().step() is False
