"""Credit flow control in the packet simulator."""

import numpy as np
import pytest

from repro.collectives import shift
from repro.fabric import build_fabric
from repro.ordering import random_order, topology_order
from repro.routing import route_dmodk
from repro.sim import PacketSimulator, cps_workload
from repro.topology import pgft


@pytest.fixture(scope="module")
def tables():
    return route_dmodk(build_fabric(pgft(2, [4, 4], [1, 2], [1, 2])))


class TestCreditSemantics:
    def test_rejects_bad_limit(self, tables):
        with pytest.raises(ValueError, match="credit_limit"):
            PacketSimulator(tables, credit_limit=0)

    def test_single_flow_unaffected_by_credits(self, tables):
        # A lone flow never exhausts even a one-packet buffer *in steady
        # state pipelining is throttled to one packet in flight*: with
        # credit 2+ the flow runs at full speed.
        seqs = [[] for _ in range(16)]
        seqs[0] = [(8, 16384.0)]
        free = PacketSimulator(tables).run_sequences(seqs)
        credited = PacketSimulator(tables, credit_limit=2).run_sequences(seqs)
        assert credited.latencies[0] == pytest.approx(free.latencies[0],
                                                      rel=0.05)

    def test_contention_free_traffic_unaffected(self, tables):
        wl = cps_workload(shift(16), topology_order(16), 16, 65536.0)
        free = PacketSimulator(tables).run_sequences(wl)
        credited = PacketSimulator(tables, credit_limit=4).run_sequences(wl)
        assert credited.normalized_bandwidth == pytest.approx(
            free.normalized_bandwidth, rel=0.02)

    def test_backpressure_hurts_congested_traffic(self, tables):
        wl = cps_workload(shift(16), random_order(16, seed=1), 16, 262144.0)
        free = PacketSimulator(tables).run_sequences(wl)
        tight = PacketSimulator(tables, credit_limit=2).run_sequences(wl)
        assert tight.normalized_bandwidth < free.normalized_bandwidth

    def test_monotone_in_buffer_size(self, tables):
        wl = cps_workload(shift(16), random_order(16, seed=1), 16, 131072.0)
        bws = []
        for credits in (2, 8, None):
            res = PacketSimulator(tables, credit_limit=credits).run_sequences(wl)
            bws.append(res.normalized_bandwidth)
        assert bws[0] <= bws[1] * 1.02
        assert bws[1] <= bws[2] * 1.02

    def test_no_deadlock_on_updown_routing(self, tables):
        # Credits + cyclic dependencies can deadlock; up*/down* routing
        # must not.  All messages must complete even with 1 credit.
        wl = cps_workload(shift(16), random_order(16, seed=3), 16, 16384.0)
        res = PacketSimulator(tables, credit_limit=1).run_sequences(wl)
        assert res.total_bytes > 0
        assert res.makespan > 0

    def test_bytes_conserved(self, tables):
        wl = cps_workload(shift(16), random_order(16, seed=2), 16, 40000.0)
        free = PacketSimulator(tables).run_sequences(wl)
        tight = PacketSimulator(tables, credit_limit=3).run_sequences(wl)
        assert tight.total_bytes == free.total_bytes


class TestFigure2Slope:
    def test_bandwidth_decreases_with_message_size(self, tables):
        # The paper's Figure 2 shape, produced by credit back-pressure.
        bws = []
        for kb in (8, 64, 256):
            wl = cps_workload(shift(16), random_order(16, seed=1), 16,
                              kb * 1024.0)
            res = PacketSimulator(tables, credit_limit=4,
                                  max_events=20_000_000).run_sequences(wl)
            bws.append(res.normalized_bandwidth)
        assert bws[-1] < bws[0]
