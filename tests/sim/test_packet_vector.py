"""Vectorized packet engine vs event-driven reference: bit-identical.

The vector engine (``repro.sim.packet_vector``) is a reimplementation
of the packet model, not an approximation: on every run it must either
produce the *exact* float timestamps the reference core would (fast
path, proven conflict-free), or detect the conflict and fall back to
the reference core itself.  Either way the observable result is
bit-identical -- which this suite checks across the same topology, CPS
and ordering families the check suite enumerates, plus credit-limit
regimes and edge-case workloads.

Scale behaviour (n324, the paper's fabric) is asserted separately: an
ordered D-Mod-K all-to-all window must deliver full bandwidth with
every message at its analytic zero-load cut-through latency.
"""

import numpy as np
import pytest

from repro.collectives.cps import (
    binomial,
    dissemination,
    recursive_doubling,
    ring,
    shift,
)
from repro.fabric import build_fabric
from repro.ordering import random_order, topology_order
from repro.routing import route_dmodk
from repro.sim import (
    FluidSimulator,
    PacketSimulator,
    SimulationError,
    cps_workload,
)
from repro.sim.metrics import zero_load_latencies
from repro.topology import paper_topologies, pgft

TOPOLOGIES = {
    "rlft2": pgft(2, [4, 4], [1, 4], [1, 1]),
    "fig1": pgft(2, [4, 4], [1, 2], [1, 2]),
    "deep": pgft(3, [2, 2, 2], [1, 2, 2], [1, 1, 1]),
    "oblong": pgft(3, [3, 2, 4], [1, 3, 2], [1, 1, 1]),
    "multirail": pgft(2, [4, 3], [2, 4], [2, 3]),
}

CPS_FACTORIES = {
    "shift": shift,
    "ring": ring,
    "dissemination": dissemination,
    "recursive-doubling": recursive_doubling,
    "binomial": binomial,
}

SIZE = 8 * 1024.0  # 4 MTU segments: multi-packet but quick


@pytest.fixture(scope="module", params=sorted(TOPOLOGIES))
def topo_tables(request):
    spec = TOPOLOGIES[request.param]
    return route_dmodk(build_fabric(spec))


def run_both(tables, wl, **kw):
    kw.setdefault("credit_limit", 4)
    vec = PacketSimulator(tables, engine="vector", **kw).run_sequences(wl)
    ref = PacketSimulator(tables, engine="reference", **kw).run_sequences(wl)
    return vec, ref


def assert_identical(vec, ref):
    """Bit-identical observable results -- no tolerances anywhere."""
    assert np.array_equal(vec.latencies, ref.latencies)
    assert vec.makespan == ref.makespan
    assert vec.total_bytes == ref.total_bytes
    assert vec.normalized_bandwidth == ref.normalized_bandwidth
    assert vec.messages == ref.messages  # per-message start/inject/finish


@pytest.mark.parametrize("cps_name", sorted(CPS_FACTORIES))
@pytest.mark.parametrize("order_kind", ["ordered", "random"])
def test_differential_families(topo_tables, cps_name, order_kind):
    n = topo_tables.fabric.num_endports
    cps = CPS_FACTORIES[cps_name](n)
    order = (topology_order(n) if order_kind == "ordered"
             else random_order(n, seed=7))
    wl = cps_workload(cps, order, n, SIZE)
    vec, ref = run_both(topo_tables, wl)
    assert_identical(vec, ref)
    assert vec.engine_stats is not None
    # Exactly one of the two resolution modes fired.
    assert vec.engine_stats.fast_path != vec.engine_stats.fallback


@pytest.mark.parametrize("credits", [None, 2, 1])
@pytest.mark.parametrize("order_kind", ["ordered", "random"])
def test_differential_credit_regimes(credits, order_kind):
    tables = route_dmodk(build_fabric(TOPOLOGIES["fig1"]))
    n = tables.fabric.num_endports
    order = (topology_order(n) if order_kind == "ordered"
             else random_order(n, seed=11))
    wl = cps_workload(shift(n), order, n, SIZE)
    vec, ref = run_both(tables, wl, credit_limit=credits)
    assert_identical(vec, ref)


def test_fast_path_on_ordered_contention_free():
    tables = route_dmodk(build_fabric(TOPOLOGIES["rlft2"]))
    n = tables.fabric.num_endports
    wl = cps_workload(shift(n), topology_order(n), n, SIZE)
    res = PacketSimulator(tables, credit_limit=4).run_sequences(wl)
    stats = res.engine_stats
    assert stats is not None and stats.fast_path and not stats.fallback
    assert stats.conflicts == 0
    assert stats.events_saved > 0  # heap events the calendar never paid


def test_fallback_on_contended_random_order():
    tables = route_dmodk(build_fabric(TOPOLOGIES["rlft2"]))
    n = tables.fabric.num_endports
    wl = cps_workload(shift(n), random_order(n, seed=7), n, SIZE)
    vec, ref = run_both(tables, wl)
    stats = vec.engine_stats
    assert stats is not None and stats.fallback and not stats.fast_path
    assert stats.conflicts > 0
    assert_identical(vec, ref)  # fallback is the reference core itself


def test_edge_case_workload_identical():
    """Self-messages, zero-byte sends, sub-MTU and odd sizes."""
    tables = route_dmodk(build_fabric(TOPOLOGIES["fig1"]))
    n = tables.fabric.num_endports
    wl = [[] for _ in range(n)]
    wl[0] = [(0, 4096.0), (5, 100.0), (3, 0.0), (9, 2048.0)]
    wl[5] = [(2, 2049.0)]  # one full MTU + 1-byte tail
    wl[7] = [(7, 0.0)]
    vec, ref = run_both(tables, wl)
    assert_identical(vec, ref)
    assert len(vec.messages) == 6


def test_credit_starvation_hol_blocking():
    """credit_limit=1 makes convoys self-throttle (head-of-line): both
    engines must agree on the degraded schedule, and it must be slower
    than the infinite-credit run."""
    tables = route_dmodk(build_fabric(TOPOLOGIES["fig1"]))
    n = tables.fabric.num_endports
    wl = cps_workload(shift(n), topology_order(n), n, 64 * 1024.0)
    vec1, ref1 = run_both(tables, wl, credit_limit=1)
    assert_identical(vec1, ref1)
    free, _ = run_both(tables, wl, credit_limit=None)
    assert vec1.normalized_bandwidth < free.normalized_bandwidth
    assert vec1.makespan > free.makespan


def test_event_budget_enforced_by_both_engines():
    tables = route_dmodk(build_fabric(TOPOLOGIES["fig1"]))
    n = tables.fabric.num_endports
    wl = cps_workload(shift(n), topology_order(n), n, 64 * 1024.0)
    for engine in ("vector", "reference"):
        with pytest.raises(SimulationError):
            PacketSimulator(
                tables, engine=engine, max_events=100
            ).run_sequences(wl)


def test_engine_name_validated():
    tables = route_dmodk(build_fabric(TOPOLOGIES["fig1"]))
    with pytest.raises(ValueError, match="engine"):
        PacketSimulator(tables, engine="quantum")


@pytest.mark.slow
def test_n324_ordered_full_bandwidth_and_cut_through():
    """Paper scale: contention-free all-to-all window on the 324-node
    RLFT runs at the overhead-limited ideal bandwidth with *every*
    message at its analytic zero-load cut-through latency."""
    spec = paper_topologies()["n324"]
    tables = route_dmodk(build_fabric(spec))
    n = tables.fabric.num_endports
    assert n == 324
    size = 64 * 1024.0
    wl = cps_workload(shift(n, displacements=range(1, 9)),
                      topology_order(n), n, size)
    res = PacketSimulator(
        tables, max_events=50_000_000
    ).run_sequences(wl)
    stats = res.engine_stats
    assert stats is not None and stats.fast_path

    cal = PacketSimulator(tables).cal
    ideal = (size / cal.host_bandwidth) / (
        size / cal.host_bandwidth + cal.host_overhead)
    assert res.normalized_bandwidth == pytest.approx(ideal, rel=0.02)

    # Packet-vs-fluid agreement at scale: with zero contention the two
    # models must land on the same (overhead-limited) bandwidth.
    fres = FluidSimulator(tables).run_sequences(wl)
    assert res.normalized_bandwidth == pytest.approx(
        fres.normalized_bandwidth, rel=0.02)

    zl = zero_load_latencies(tables, wl, cal)
    assert res.latencies.shape == zl.shape
    # Cut-through: measured latency IS the zero-load latency (float
    # noise only) -- the paper's section-VII claim, message by message.
    np.testing.assert_allclose(res.latencies, zl, rtol=1e-9, atol=1e-6)
    assert res.mean_latency == pytest.approx(zl.mean(), rel=1e-6)
