"""Fluid simulator: analytic cross-checks on small scenarios."""

import numpy as np
import pytest

from repro.collectives import ring, shift
from repro.fabric import build_fabric
from repro.ordering import random_order, topology_order
from repro.routing import route_dmodk
from repro.sim import (
    QDR_PCIE_GEN2,
    FluidSimulator,
    LinkCalibration,
    cps_workload,
    permutation_workload,
)
from repro.topology import pgft


@pytest.fixture
def sim16(fig1_tables):
    return FluidSimulator(fig1_tables, record_messages=True)


CAL = QDR_PCIE_GEN2


class TestSingleFlow:
    def test_uncontended_transfer_time(self, sim16):
        seqs = [[] for _ in range(16)]
        seqs[0] = [(8, 32500.0)]  # 10 us at PCIe speed
        res = sim16.run_sequences(seqs)
        assert res.makespan == pytest.approx(CAL.host_overhead + 10.0)

    def test_zero_size_message(self, sim16):
        seqs = [[] for _ in range(16)]
        seqs[0] = [(8, 0.0)]
        res = sim16.run_sequences(seqs)
        assert res.makespan == pytest.approx(CAL.host_overhead)

    def test_message_records(self, sim16):
        seqs = [[] for _ in range(16)]
        seqs[0] = [(8, 3250.0), (9, 3250.0)]
        res = sim16.run_sequences(seqs)
        assert len(res.messages) == 2
        first, second = sorted(res.messages, key=lambda m: m.start)
        assert first.finish == pytest.approx(CAL.host_overhead + 1.0)
        # Second message starts its overhead when the first finished.
        assert second.inject == pytest.approx(first.finish + CAL.host_overhead)


class TestSharing:
    def test_two_flows_share_one_link(self):
        # Two hosts on the same leaf send to hosts on one other leaf of a
        # 2-leaf fabric with a single spine path of capacity 4000.
        spec = pgft(2, [2, 2], [1, 1], [1, 2])
        tables = route_dmodk(build_fabric(spec))
        sim = FluidSimulator(tables)
        seqs = [[] for _ in range(4)]
        # Routing sends dst 2 and dst 3 over different parallel cables, so
        # force sharing through the hosts' *ejection* into one port:
        seqs[0] = [(2, 32500.0)]
        seqs[1] = [(2, 32500.0)]  # same destination: share PCIe ejection
        res = sim.run_sequences(seqs)
        # 2 x 32500 B through one 3250 B/us port: 20 us + overhead.
        assert res.makespan == pytest.approx(CAL.host_overhead + 20.0, rel=1e-6)

    def test_max_min_fairness_three_flows(self):
        # One link with 3 flows and another with 1: rates 1/3 and 2/3-ish.
        spec = pgft(2, [3, 3], [1, 3], [1, 1])
        tables = route_dmodk(build_fabric(spec))
        sim = FluidSimulator(tables, record_messages=True)
        seqs = [[] for _ in range(9)]
        # All three hosts of leaf 0 send to host 3 (one ejection port).
        for h in range(3):
            seqs[h] = [(3, 3250.0)]
        res = sim.run_sequences(seqs)
        assert res.makespan == pytest.approx(CAL.host_overhead + 3.0, rel=1e-6)

    def test_congestion_free_shift_full_bandwidth(self, fig1_tables):
        wl = cps_workload(shift(16), topology_order(16), 16, 325000.0)
        res = FluidSimulator(fig1_tables).run_sequences(wl)
        # 15 messages of 100 us each, plus overheads: efficiency > 98%.
        ideal = 15 * (CAL.host_overhead + 100.0)
        assert res.makespan == pytest.approx(ideal, rel=0.02)

    def test_random_order_slower_than_topo(self, fig1_tables):
        wl_topo = cps_workload(shift(16), topology_order(16), 16, 65536.0)
        wl_rand = cps_workload(shift(16), random_order(16, seed=2), 16, 65536.0)
        t_topo = FluidSimulator(fig1_tables).run_sequences(wl_topo).makespan
        t_rand = FluidSimulator(fig1_tables).run_sequences(wl_rand).makespan
        assert t_rand > t_topo * 1.2


class TestBarrierMode:
    def test_barrier_stage_times(self, fig1_tables):
        wl = cps_workload(ring(16, repeats=3), topology_order(16), 16, 32500.0)
        res = FluidSimulator(fig1_tables).run_sequences(wl, mode="barrier")
        assert len(res.stage_times) == 3
        for t in res.stage_times:
            assert t == pytest.approx(CAL.host_overhead + 10.0, rel=1e-6)

    def test_barrier_equals_async_when_contention_free(self, fig1_tables):
        # With HSD = 1 all ports stay in lockstep, so the barrier is free.
        wl = cps_workload(shift(16), topology_order(16), 16, 65536.0)
        t_async = FluidSimulator(fig1_tables).run_sequences(wl, mode="async").makespan
        t_barrier = FluidSimulator(fig1_tables).run_sequences(wl, mode="barrier").makespan
        assert t_barrier == pytest.approx(t_async, rel=1e-6)

    def test_barrier_and_async_comparable_under_contention(self, fig1_tables):
        # No strict ordering exists (async drift can hurt or help); both
        # must land in the same ballpark.
        wl = cps_workload(shift(16), random_order(16, seed=0), 16, 65536.0)
        t_async = FluidSimulator(fig1_tables).run_sequences(wl, mode="async").makespan
        t_barrier = FluidSimulator(fig1_tables).run_sequences(wl, mode="barrier").makespan
        assert 0.5 < t_barrier / t_async < 2.0

    def test_unknown_mode(self, fig1_tables):
        with pytest.raises(ValueError, match="mode"):
            FluidSimulator(fig1_tables).run_sequences([[]] * 16, mode="warp")


class TestResultMetrics:
    def test_normalized_bandwidth_bounds(self, fig1_tables):
        wl = cps_workload(shift(16), topology_order(16), 16, 1 << 20)
        res = FluidSimulator(fig1_tables).run_sequences(wl)
        assert 0.9 < res.normalized_bandwidth <= 1.0

    def test_sequence_length_checked(self, fig1_tables):
        with pytest.raises(ValueError, match="sequence"):
            FluidSimulator(fig1_tables).run_sequences([[]])

    def test_empty_workload(self, fig1_tables):
        res = FluidSimulator(fig1_tables).run_sequences([[] for _ in range(16)])
        assert res.makespan == 0.0
        assert res.normalized_bandwidth == 0.0


class TestAdversarialRing:
    def test_ring_adversary_bandwidth_collapse(self):
        from repro.ordering import adversarial_ring_order

        spec = pgft(2, [4, 8], [1, 4], [1, 1])
        tables = route_dmodk(build_fabric(spec))
        N = spec.num_endports
        order = adversarial_ring_order(spec)
        from repro.collectives.schedule import stage_flows

        src, dst = stage_flows(ring(N).stages[0], order)
        wl = permutation_workload(src, dst, N, 262144.0, repeats=4)
        res = FluidSimulator(tables).run_sequences(wl)
        # 4 flows forced onto single up links: about 1/4 of wire speed.
        assert res.normalized_bandwidth < 0.45
