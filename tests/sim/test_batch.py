"""Mega-batch engine vs the unbatched vector engine: bit-identical
per element.

The batch engine (``repro.sim.batch``) folds many scenarios into one
wave calendar but promises the *same* per-element results as running
``PacketSimulator(engine="vector")`` once per scenario -- fast path,
demoted, or error alike.  The suite mixes fast and demoted elements in
one batch (conflicts, fault overlaps, route anomalies, event budgets,
credit regimes, empty workloads) and checks full result equality:
makespan, latency array, per-message records, and engine stats.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.cps import CPS, ring, shift
from repro.fabric import build_fabric
from repro.faults import FaultEvent, FaultSchedule
from repro.ordering import random_order, topology_order
from repro.routing import route_dmodk
from repro.sim import (
    INHERIT,
    BatchSpec,
    PacketSimulator,
    ScenarioSpec,
    SimulationError,
    cps_workload,
    cps_workload_arrays,
    ordering_batch,
    run_batch,
)
from repro.topology import pgft

SIZE = 8 * 1024.0


@pytest.fixture(scope="module")
def tables16():
    return route_dmodk(build_fabric(pgft(2, [4, 4], [1, 4], [1, 1])))


def unbatched(tables, el, *, credit_limit=None, max_events=5_000_000):
    n = tables.fabric.num_endports
    cl = credit_limit if isinstance(el.credit_limit, type(INHERIT)) \
        else el.credit_limit
    from repro.sim.batch import _lazy_healing

    sim = PacketSimulator(tables, credit_limit=cl, max_events=max_events,
                          engine="vector", faults=el.faults,
                          healing=_lazy_healing(tables, el))
    return sim.run_sequences(el.materialize_sequences(n))


def assert_result_identical(got, ref):
    assert got.makespan == ref.makespan
    assert np.array_equal(got.latencies, ref.latencies)
    assert got.total_bytes == ref.total_bytes
    assert got.messages == ref.messages
    gs, rs = got.engine_stats, ref.engine_stats
    assert (gs.engine, gs.fast_path, gs.fallback, gs.conflicts,
            gs.messages, gs.packets, gs.events_saved) == \
        (rs.engine, rs.fast_path, rs.fallback, rs.conflicts,
         rs.messages, rs.packets, rs.events_saved)


def assert_batch_matches(spec: BatchSpec):
    """Every element of a batch equals its one-scenario-at-a-time run."""
    res = run_batch(spec)
    assert len(res) == len(spec.elements)
    for i, e in enumerate(res.elements):
        el = spec.elements[i]
        try:
            ref = unbatched(spec.tables, el,
                            credit_limit=spec.credit_limit,
                            max_events=spec.max_events)
        except SimulationError as err:
            assert e.status == "error"
            with pytest.raises(SimulationError) as exc:
                e.packet_result()
            assert str(exc.value) == str(err)
            assert math.isnan(e.makespan)
            continue
        got = e.packet_result()
        assert_result_identical(got, ref)
        # the cheap array metrics agree with the materialised result
        assert e.makespan == ref.makespan
        assert np.array_equal(e.latencies, ref.latencies)
    return res


def seqs_for(tables, cps, order, size=SIZE):
    n = tables.fabric.num_endports
    return cps_workload(cps, order, n, size)


def test_mixed_batch_fast_and_demoted(tables16):
    """One batch holding every resolution mode the engine knows."""
    tables = tables16
    fab = tables.fabric
    n = fab.num_endports
    ordered = seqs_for(tables, shift(n), topology_order(n))
    conflicted = seqs_for(tables, shift(n), random_order(n, seed=3))
    # a fault window squarely inside the run: forces the fault fallback
    used_gport = int(fab.port_start[0])
    hot = FaultSchedule(events=(
        FaultEvent(time=0.0, kind="link_down", gport=used_gport),))
    # a fault far beyond the run: stays on the analytic fast path
    cold = FaultSchedule(events=(
        FaultEvent(time=1e9, kind="link_down", gport=used_gport),))
    spec = BatchSpec(tables=tables, elements=[
        ScenarioSpec(sequences=ordered, label="fast"),
        ScenarioSpec(sequences=conflicted, label="conflict"),
        ScenarioSpec(sequences=ordered, faults=hot, label="fault"),
        ScenarioSpec(sequences=ordered, faults=cold, label="fault-free"),
        ScenarioSpec(sequences=[[] for _ in range(n)], label="empty"),
        ScenarioSpec(sequences=ordered, credit_limit=1, label="credit1"),
    ], credit_limit=4)
    res = assert_batch_matches(spec)
    statuses = {e.label: e.status for e in res.elements}
    assert statuses["fast"] == "fast"
    assert statuses["conflict"] == "fallback"
    assert res.elements[1].reason == "conflict"
    assert statuses["fault"] == "fallback"
    assert res.elements[2].reason == "fault"
    assert statuses["fault-free"] == "fast"
    assert statuses["empty"] == "fast"
    # credit1 stalls on its single credit and demotes via conflict too
    assert res.stats.total == 6
    assert res.stats.fast_path == 3
    assert res.stats.fallback_conflict == 2
    assert res.stats.fallback_fault == 1


def test_route_anomaly_demotes_only_owner(tables16):
    """Dead-cable routes demote their element; the rest stay batched."""
    fab = build_fabric(pgft(2, [4, 4], [1, 4], [1, 1]))
    base = route_dmodk(fab)
    # Kill a switch-to-switch cable but keep the *stale* tables: routes
    # through it walk into a dead cable, exactly the per-row anomaly.
    up = np.flatnonzero(fab.port_goes_up() &
                        (fab.port_owner >= fab.num_endports))
    dead = build_fabric(pgft(2, [4, 4], [1, 4], [1, 1])) \
        .with_failed_cables(np.asarray([int(up[0])]))
    from repro.fabric import ForwardingTables

    stale = ForwardingTables(fabric=dead, switch_out=base.switch_out,
                             host_up=base.host_up)
    n = dead.num_endports
    all2 = seqs_for(stale, shift(n), topology_order(n))
    one = [[(1, SIZE)] if p == 0 else [] for p in range(n)]
    spec = BatchSpec(tables=stale, elements=[
        ScenarioSpec(sequences=all2, label="through-dead"),
        ScenarioSpec(sequences=one, label="leaf-local"),
    ])
    res = run_batch(spec)
    assert res.elements[0].status in ("fallback", "error")
    if res.elements[0].status == "fallback":
        assert res.elements[0].reason == "route"
    assert res.elements[1].status == "fast"
    ref = unbatched(stale, spec.elements[1])
    assert_result_identical(res.elements[1].packet_result(), ref)


def test_budget_demotion(tables16):
    n = tables16.fabric.num_endports
    ordered = seqs_for(tables16, shift(n), topology_order(n))
    tiny = [[(n - 1 - p if p != n - 1 - p else (p + 1) % n, 1024.0)]
            for p in range(n)]
    spec = BatchSpec(tables=tables16, elements=[
        ScenarioSpec(sequences=ordered, label="big"),
        ScenarioSpec(sequences=tiny, label="small"),
    ], max_events=40)
    res = assert_batch_matches(spec)
    assert res.elements[0].status in ("fallback", "error")
    assert res.elements[0].reason == "budget"


def test_credit_grouping_matches_per_element(tables16):
    n = tables16.fabric.num_endports
    wl = seqs_for(tables16, ring(n), topology_order(n))
    spec = BatchSpec(tables=tables16, elements=[
        ScenarioSpec(sequences=wl, credit_limit=c, label=f"c{c}")
        for c in (1, 2, None, 2, 1, 8)
    ] + [ScenarioSpec(sequences=wl, label="inherit")], credit_limit=4)
    assert_batch_matches(spec)


def test_occupancy_exposed_only_on_fast_path(tables16):
    n = tables16.fabric.num_endports
    spec = BatchSpec(tables=tables16, elements=[
        ScenarioSpec(sequences=seqs_for(tables16, shift(n),
                                        topology_order(n))),
        ScenarioSpec(sequences=seqs_for(tables16, shift(n),
                                        random_order(n, seed=3))),
    ], credit_limit=4)
    res = run_batch(spec)
    la, ea, xa = res.elements[0].occupancy()
    assert len(la) == len(ea) == len(xa) > 0
    assert (ea <= xa).all()
    assert res.elements[1].status == "fallback"
    with pytest.raises(ValueError, match="no analytic occupancy"):
        res.elements[1].occupancy()


def test_spec_validation(tables16):
    with pytest.raises(ValueError, match="exactly one"):
        ScenarioSpec()
    with pytest.raises(ValueError, match="exactly one"):
        ScenarioSpec(sequences=[[]], dst=np.zeros((1, 1), dtype=np.int64),
                     size=np.zeros((1, 1)), nmsg=np.zeros(1, dtype=np.int64))
    with pytest.raises(ValueError, match="without faults"):
        ScenarioSpec(sequences=[[]], sweep_delay=5.0)
    with pytest.raises(ValueError, match="need 16 sequences"):
        run_batch(BatchSpec(tables=tables16,
                            elements=[ScenarioSpec(sequences=[[]])]))
    assert len(run_batch(BatchSpec(tables=tables16, elements=[]))) == 0


def test_cps_workload_arrays_matches_lists(tables16):
    n = tables16.fabric.num_endports
    placements = np.stack([topology_order(n), random_order(n, seed=1),
                           np.roll(topology_order(n), 3)])
    for cps in (shift(n), ring(n)):
        dst3, size3, nmsg2 = cps_workload_arrays(cps, placements, n, SIZE)
        for t in range(placements.shape[0]):
            ref = cps_workload(cps, placements[t], n, SIZE)
            for p in range(n):
                got = [(int(dst3[t, p, k]), float(size3[t, p, k]))
                       for k in range(int(nmsg2[t, p]))]
                assert got == [(d, s) for d, s in ref[p]], (t, p)


def test_cps_workload_arrays_rejects_multi_send():
    # a hand-built stage where rank 0 sends twice
    n = 4
    st_ = shift(n).stages[0]
    twice = CPS(name="twice", num_ranks=n, stages=(st_, st_))
    pairs = np.asarray([[0, 1], [0, 2]] + [[-1, -1]] * 2)
    bad = CPS(name="bad", num_ranks=n, stages=(
        type(st_)(label="x", pairs=pairs),))
    with pytest.raises(ValueError, match="more than one message"):
        cps_workload_arrays(bad, np.arange(n)[None, :], n, SIZE)
    # but one send per stage across two stages is fine (K == 2)
    dst3, _s, nmsg2 = cps_workload_arrays(
        twice, np.arange(n)[None, :], n, SIZE)
    assert dst3.shape[2] == 2
    assert int(nmsg2.max()) == 2


def test_ordering_batch_grid(tables16):
    n = tables16.fabric.num_endports
    placements = np.stack([np.roll(topology_order(n), k)
                           for k in range(4)] + [random_order(n, seed=3)])
    spec = ordering_batch(tables16, shift(n), placements, SIZE,
                          credit_limit=4)
    assert len(spec.elements) == 5
    res = assert_batch_matches(spec)
    # the ordered rolls stay analytic; the random row conflicts
    assert [e.status for e in res.elements[:4]] == ["fast"] * 4
    assert res.elements[4].status == "fallback"


def test_ordering_batch_with_faults_and_sweep_delay(tables16):
    n = tables16.fabric.num_endports
    fab = tables16.fabric
    placements = np.stack([topology_order(n), np.roll(topology_order(n), 2)])
    used = int(fab.port_start[0])
    scheds = [
        FaultSchedule(events=(
            FaultEvent(time=0.0, kind="link_down", gport=used),)),
        FaultSchedule(events=(
            FaultEvent(time=1e9, kind="link_down", gport=used),)),
    ]
    spec = ordering_batch(tables16, shift(n), placements, SIZE,
                          credit_limit=4, faults=scheds, sweep_delay=25.0)
    res = assert_batch_matches(spec)
    assert res.elements[0].status == "fallback"
    assert res.elements[0].reason == "fault"
    assert res.elements[1].status == "fast"


class TestBatchOfOneProperty:
    @given(st.integers(0, 2**31 - 1), st.sampled_from([1, 2, 4]),
           st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_batch_of_one_is_bit_identical(self, seed, credit, use_arrays):
        tables = route_dmodk(build_fabric(pgft(2, [4, 4], [1, 4], [1, 1])))
        n = tables.fabric.num_endports
        rng = np.random.default_rng(seed)
        # random workload: each port sends 0-3 messages of varied size
        seqs = []
        for p in range(n):
            k = int(rng.integers(0, 4))
            seqs.append([(int(rng.integers(0, n)),
                          float(rng.choice([512.0, 2048.0, 8192.0])))
                         for _ in range(k)])
        if use_arrays:
            kmax = max((len(s) for s in seqs), default=0)
            dst = np.zeros((n, max(kmax, 1)), dtype=np.int64)
            size = np.zeros((n, max(kmax, 1)))
            nmsg = np.zeros(n, dtype=np.int64)
            for p, s in enumerate(seqs):
                nmsg[p] = len(s)
                for k, (d, sz) in enumerate(s):
                    dst[p, k] = d
                    size[p, k] = sz
            el = ScenarioSpec(dst=dst, size=size, nmsg=nmsg)
        else:
            el = ScenarioSpec(sequences=seqs)
        res = run_batch(BatchSpec(tables=tables, elements=[el],
                                  credit_limit=credit))
        ref = PacketSimulator(tables, credit_limit=credit,
                              engine="vector").run_sequences(seqs)
        got = res.elements[0].packet_result()
        assert_result_identical(got, ref)
