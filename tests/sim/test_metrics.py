"""Derived metrics: ideal baselines and HSD-implied bandwidth bounds."""

import pytest

from repro.sim import (
    QDR_PCIE_GEN2,
    bandwidth_lower_bound,
    efficiency,
    ideal_sequence_time,
)


def test_ideal_time_is_slowest_port():
    seqs = [
        [(1, 3250.0)],                   # 1 us + overhead
        [(0, 3250.0), (2, 3250.0)],      # 2 us + 2 overheads
        [],
    ]
    t = ideal_sequence_time(seqs, QDR_PCIE_GEN2)
    assert t == pytest.approx(2 * (1.0 + 1.0))


def test_efficiency_of_ideal_run_is_one():
    seqs = [[(1, 3250.0)]]
    ideal = ideal_sequence_time(seqs, QDR_PCIE_GEN2)
    assert efficiency(ideal, seqs, QDR_PCIE_GEN2) == pytest.approx(1.0)


def test_efficiency_decreases_with_slowdown():
    seqs = [[(1, 3250.0)]]
    ideal = ideal_sequence_time(seqs, QDR_PCIE_GEN2)
    assert efficiency(2 * ideal, seqs, QDR_PCIE_GEN2) == pytest.approx(0.5)


def test_bandwidth_lower_bound_ring_adversary():
    # The paper's arithmetic: oversubscription 18 -> 4000/18 = 222 MB/s,
    # i.e. ~6.8 % of the 3250 MB/s PCIe bandwidth (the paper rounds the
    # measured 231.5 MB/s to 7.1 %).
    bound = bandwidth_lower_bound(18, QDR_PCIE_GEN2)
    assert bound == pytest.approx(4000 / 18 / 3250, rel=1e-9)
    assert 0.06 < bound < 0.08


def test_bandwidth_lower_bound_no_contention():
    assert bandwidth_lower_bound(1, QDR_PCIE_GEN2) == 1.0
    assert bandwidth_lower_bound(0, QDR_PCIE_GEN2) == 1.0
