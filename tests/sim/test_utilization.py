"""Per-link byte accounting and utilisation reports."""

import numpy as np
import pytest

from repro.collectives import shift
from repro.fabric import build_fabric
from repro.ordering import random_order, topology_order
from repro.routing import route_dmodk
from repro.sim import (
    QDR_PCIE_GEN2,
    FluidSimulator,
    cps_workload,
    link_byte_loads,
    utilization_report,
)
from repro.topology import pgft


@pytest.fixture(scope="module")
def tables():
    return route_dmodk(build_fabric(pgft(2, [4, 4], [1, 2], [1, 2])))


class TestByteLoads:
    def test_single_message_loads_its_path(self, tables):
        seqs = [[] for _ in range(16)]
        seqs[0] = [(9, 1000.0)]
        loads = link_byte_loads(tables, seqs)
        from repro.routing import trace_route

        path = trace_route(tables, 0, 9)
        assert (loads[path] == 1000.0).all()
        assert loads.sum() == 1000.0 * len(path)

    def test_empty_workload(self, tables):
        loads = link_byte_loads(tables, [[] for _ in range(16)])
        assert loads.sum() == 0

    def test_self_and_zero_messages_ignored(self, tables):
        seqs = [[] for _ in range(16)]
        seqs[2] = [(2, 5000.0), (3, 0.0)]
        assert link_byte_loads(tables, seqs).sum() == 0

    def test_host_links_carry_full_volume(self, tables):
        wl = cps_workload(shift(16), topology_order(16), 16, 1024.0)
        loads = link_byte_loads(tables, wl)
        fab = tables.fabric
        # Every host injects 15 KB over its single up-link.
        for p in range(16):
            assert loads[fab.port_start[p]] == 15 * 1024.0


class TestUtilizationReport:
    def test_ordered_traffic_uniform(self, tables):
        wl = cps_workload(shift(16), topology_order(16), 16, 65536.0)
        res = FluidSimulator(tables).run_sequences(wl)
        text = utilization_report(tables, wl, res.makespan, QDR_PCIE_GEN2)
        assert "utilisation" in text
        # Top link utilisation stays below 100 %.
        top = float(text.splitlines()[1].strip().split("%")[0]) / 100
        assert 0.3 < top <= 1.0

    def test_random_traffic_shows_hot_links(self, tables):
        wl_r = cps_workload(shift(16), random_order(16, seed=1), 16, 65536.0)
        res = FluidSimulator(tables).run_sequences(wl_r)
        text = utilization_report(tables, wl_r, res.makespan, QDR_PCIE_GEN2)
        lines = text.splitlines()[1:]
        vals = [float(l.strip().split("%")[0]) for l in lines]
        assert vals == sorted(vals, reverse=True)
