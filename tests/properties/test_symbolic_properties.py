"""Property-based tests: symbolic engine vs enumeration under random
Cont.-X populations and sparse placements."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.hsd import walk_flow_links
from repro.check import SymbolicCertifier, symbolic_flow_links
from repro.collectives.cps import dissemination, ring, shift
from repro.collectives.schedule import stage_flows
from repro.fabric import build_fabric
from repro.routing import route_dmodk
from repro.routing.dmodk import dense_ranks
from repro.topology import pgft

SPECS = {
    "rlft2": pgft(2, [4, 4], [1, 4], [1, 1]),
    "deep": pgft(3, [2, 2, 2], [1, 2, 2], [1, 1, 1]),
}
FABRICS = {k: build_fabric(s) for k, s in SPECS.items()}


def enumerated_maxima(tables, cps, placement):
    maxima = []
    for stage in cps:
        src, dst = stage_flows(stage, placement)
        if len(src) == 0:
            maxima.append(0)
            continue
        _, gports = walk_flow_links(tables, src, dst)
        loads = np.zeros(tables.fabric.num_ports, dtype=np.int64)
        np.add.at(loads, gports, 1)
        maxima.append(int(loads.max()))
    return maxima


def active_sets(spec):
    """Random non-trivial active end-port subsets (Cont.-X jobs)."""
    n = spec.num_endports
    return st.sets(st.integers(0, n - 1), min_size=2, max_size=n).map(
        lambda s: np.array(sorted(s), dtype=np.int64))


class TestContXProperties:
    @given(name=st.sampled_from(sorted(SPECS)), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_ring_certifies_on_any_active_set_under_both_engines(
            self, name, data):
        """Paper Cont.-X: ring's +1 displacement over densely re-ranked
        survivors stays contention-free for *any* active subset -- and
        both engines prove it with identical per-stage maxima."""
        spec = SPECS[name]
        active = data.draw(active_sets(spec))
        order = active.copy()
        cps = ring(len(order))
        sym = SymbolicCertifier(spec, active)
        res, _ = sym.certify(cps, order)
        tables = route_dmodk(FABRICS[name], active=active)
        enum = enumerated_maxima(tables, cps, order)
        assert res.maxima == enum
        assert res.verdict == "contention-free"

    @given(name=st.sampled_from(sorted(SPECS)), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_engines_agree_on_any_active_set(self, name, data):
        """Shift/dissemination may legitimately refute on partial
        populations (the wrapped displacement mod n_active); whatever
        the verdict, the engines must coincide stage for stage."""
        spec = SPECS[name]
        active = data.draw(active_sets(spec))
        cps_fn = data.draw(st.sampled_from([shift, dissemination]))
        order = active.copy()
        cps = cps_fn(len(order))
        sym = SymbolicCertifier(spec, active)
        res, _ = sym.certify(cps, order)
        tables = route_dmodk(FABRICS[name], active=active)
        assert res.maxima == enumerated_maxima(tables, cps, order)


class TestSparsePlacementProperties:
    @given(name=st.sampled_from(sorted(SPECS)), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_sparse_rank_placements_match_counterexamples(self, name, data):
        """Placements with -1 holes and a shuffled rank order: the two
        engines must report the same maxima and, when refuted, the same
        offending link (the lowest-gport argmax tie-break)."""
        spec = SPECS[name]
        n = spec.num_endports
        perm = data.draw(st.permutations(range(n)))
        holes = data.draw(st.sets(st.integers(0, n - 1), max_size=n - 2))
        placement = np.array(perm, dtype=np.int64)
        placement[sorted(holes)] = -1
        cps = shift(n)
        sym = SymbolicCertifier(spec)
        res, _ = sym.certify(cps, placement)
        tables = route_dmodk(FABRICS[name])
        assert res.maxima == enumerated_maxima(tables, cps, placement)
        for v in res.violations:
            src, dst = stage_flows(cps.stages[v["stage"]], placement)
            _, gports = walk_flow_links(tables, src, dst)
            loads = np.zeros(tables.fabric.num_ports, dtype=np.int64)
            np.add.at(loads, gports, 1)
            assert v["gport"] == int(loads.argmax())
            assert v["link_load"] == int(loads.max())
            assert v["total_pairs"] == v["link_load"]

    @given(name=st.sampled_from(sorted(SPECS)), seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_flow_links_equal_walk_on_random_flow_sets(self, name, seed):
        """The core lemma, fuzzed: closed-form links == table-walk links
        for arbitrary (src, dst) multisets, including repeats."""
        spec = SPECS[name]
        n = spec.num_endports
        rng = np.random.default_rng(seed)
        src = rng.integers(0, n, size=25)
        dst = rng.integers(0, n, size=25)
        keep = src != dst
        src, dst = src[keep], dst[keep]
        tables = route_dmodk(FABRICS[name])
        fi_w, gp_w = walk_flow_links(tables, src, dst)
        fi_s, gp_s = symbolic_flow_links(spec, src, dst,
                                         dense_ranks(n, None))
        per_flow_w = [sorted(gp_w[fi_w == i].tolist())
                      for i in range(len(src))]
        per_flow_s = [sorted(gp_s[fi_s == i].tolist())
                      for i in range(len(src))]
        assert per_flow_s == per_flow_w
