"""Property-based tests: fault schedules, repair locality, switch death."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric import build_fabric
from repro.faults import FaultSchedule
from repro.faults.packetsim import run_faulty
from repro.routing import route_dmodk
from repro.routing.repair import repair_tables
from repro.routing.validate import trace_route
from repro.sim import PacketSimulator
from repro.topology import pgft

SPEC = pgft(2, [4, 4], [1, 2], [1, 2])
FAB = build_fabric(SPEC)
BASE = route_dmodk(FAB)
N = FAB.num_endports
SW_UP = np.flatnonzero(FAB.port_goes_up()
                       & (FAB.port_owner >= N)
                       & (FAB.port_peer >= 0))


class TestRepairLocality:
    """Repair must not disturb routes the failure never touched."""

    @given(st.sets(st.integers(0, len(SW_UP) - 1), min_size=1, max_size=3))
    @settings(max_examples=25, deadline=None)
    def test_untouched_routes_bit_identical(self, picks):
        dead = SW_UP[sorted(picks)]
        dead_set = {int(g) for g in dead} | {
            int(FAB.port_peer[g]) for g in dead}
        degraded = FAB.with_failed_cables(dead)
        rep = repair_tables(BASE, degraded)
        for src in range(N):
            for dst in range(N):
                if src == dst:
                    continue
                before = trace_route(BASE, src, dst)
                if any(gp in dead_set for gp in before):
                    continue  # the failure touched this route
                after = trace_route(rep.tables, src, dst)
                assert after == before, (
                    f"repair rerouted untouched {src}->{dst}")

    @given(st.integers(0, len(SW_UP) - 1))
    @settings(max_examples=15, deadline=None)
    def test_single_cut_repair_only_edits_dead_entries(self, pick):
        gp = int(SW_UP[pick])
        degraded = FAB.with_failed_cables([gp])
        rep = repair_tables(BASE, degraded)
        changed = BASE.switch_out != rep.tables.switch_out
        # Every edited entry previously pointed into the dead cable.
        dead_pair = {gp, int(FAB.port_peer[gp])}
        assert all(int(v) in dead_pair
                   for v in BASE.switch_out[changed])


class TestSwitchDeath:
    @given(st.integers(N, FAB.num_nodes - 1))
    @settings(max_examples=20, deadline=None)
    def test_with_failed_switches_severs_symmetrically(self, node):
        fab2 = FAB.with_failed_switches([node])
        for gp in FAB.ports_of(node):
            peer = int(FAB.port_peer[gp])
            if peer < 0:
                continue
            assert fab2.port_peer[gp] == -1
            assert fab2.port_peer[peer] == -1
        # Untouched cables survive verbatim.
        touched = set()
        for gp in FAB.ports_of(node):
            peer = int(FAB.port_peer[gp])
            if peer >= 0:
                touched.update((int(gp), peer))
        keep = np.setdiff1d(np.arange(FAB.num_ports), sorted(touched))
        assert np.array_equal(fab2.port_peer[keep], FAB.port_peer[keep])

    def test_bad_node_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="no such node"):
            FAB.with_failed_switches([FAB.num_nodes])

    @given(st.integers(N, FAB.num_nodes - 1))
    @settings(max_examples=10, deadline=None)
    def test_dead_switch_repair_never_blames_other_destinations(self, node):
        """A dead switch's all-dead row must not poison reachability."""
        fab2 = FAB.with_failed_switches([node])
        rep = repair_tables(BASE, fab2)
        # Only hosts physically attached to the dead node can be lost.
        attached = {int(FAB.peer_node[gp]) for gp in FAB.ports_of(node)
                    if 0 <= FAB.port_peer[gp]
                    and FAB.peer_node[gp] < N}
        assert set(rep.unreachable) <= attached


class TestScheduleProperties:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_random_schedule_pure_function_of_seed(self, seed):
        a = FaultSchedule.random(FAB, seed=seed, horizon=200.0, mtbf=40.0)
        b = FaultSchedule.random(FAB, seed=seed, horizon=200.0, mtbf=40.0)
        assert a == b
        assert FaultSchedule.from_json(a.to_json()) == a

    @given(st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_run_accounting_under_random_damage(self, seed):
        """delivered + lost == attempted for any schedule; identical
        seeds give identical reports (byte-for-byte chaos)."""
        faults = FaultSchedule.random(FAB, seed=seed, horizon=15.0, mtbf=3.0)
        seqs = [[((p + 1) % N, 2048.0)] for p in range(N)]
        sim = PacketSimulator(BASE, engine="reference")
        _, rep_a = run_faulty(sim, seqs, faults)
        _, rep_b = run_faulty(sim, seqs, faults)
        assert rep_a == rep_b
        assert rep_a.delivered_messages + len(rep_a.lost) == rep_a.total_messages
