"""Property-based tests: mini-MPI collectives equal their NumPy oracle
for arbitrary data, rank counts and algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric import build_fabric
from repro.mpi import Communicator
from repro.routing import route_dmodk
from repro.topology import rlft_max

TABLES = route_dmodk(build_fabric(rlft_max(4, 2)))  # 32 end-ports


@st.composite
def comm_and_data(draw, max_ranks=32, vec=8):
    n = draw(st.integers(1, max_ranks))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    placement = rng.permutation(32)[:n]
    data = [rng.normal(size=vec) for _ in range(n)]
    return Communicator(TABLES, placement=placement, simulate=False), data


class TestOracleEquivalence:
    @given(comm_and_data())
    @settings(max_examples=40, deadline=None)
    def test_allreduce_sum(self, cd):
        comm, data = cd
        want = np.sum(data, axis=0)
        for algorithm in ("recursive-doubling", "rabenseifner"):
            res = comm.allreduce(data, algorithm=algorithm)
            assert all(np.allclose(v, want) for v in res.values), algorithm

    @given(comm_and_data())
    @settings(max_examples=40, deadline=None)
    def test_allgather_concat(self, cd):
        comm, data = cd
        want = np.concatenate(data)
        algorithms = ["ring", "bruck"]
        if comm.size & (comm.size - 1) == 0:
            algorithms.append("recursive-doubling")
        for algorithm in algorithms:
            res = comm.allgather(data, algorithm=algorithm)
            assert all(np.allclose(v, want) for v in res.values), algorithm

    @given(comm_and_data(), st.integers(0, 31))
    @settings(max_examples=40, deadline=None)
    def test_broadcast_any_root(self, cd, root_pick):
        comm, data = cd
        root = root_pick % comm.size
        payload = data[0]
        for algorithm in ("binomial", "scatter-allgather"):
            res = comm.broadcast(payload, root=root, algorithm=algorithm)
            assert all(np.allclose(v, payload) for v in res.values), algorithm

    @given(comm_and_data(), st.integers(0, 31))
    @settings(max_examples=40, deadline=None)
    def test_reduce_any_root(self, cd, root_pick):
        comm, data = cd
        root = root_pick % comm.size
        res = comm.reduce(data, root=root)
        assert np.allclose(res.values[root], np.sum(data, axis=0))

    @given(comm_and_data(max_ranks=8, vec=2))
    @settings(max_examples=25, deadline=None)
    def test_alltoall_transpose(self, cd):
        comm, _ = cd
        n = comm.size
        mat = [[np.array([float(i * n + j)]) for j in range(n)]
               for i in range(n)]
        res = comm.alltoall(mat)
        for j in range(n):
            want = np.array([float(i * n + j) for i in range(n)])
            assert np.allclose(res.values[j], want)
