"""Property-based tests: the paper's theorems over random RLFT-class
fabrics -- D-Mod-K stays congestion-free on Shift for *any* valid
constant-CBB tree, not just the hand-picked evaluation topologies."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    down_port_destination_counts,
    sequence_hsd,
    stage_max_hsd,
)
from repro.collectives import hierarchical_recursive_doubling, shift
from repro.fabric import build_fabric
from repro.ordering import physical_placement, topology_order
from repro.routing import route_dmodk, route_minhop
from repro.topology import pgft

from .test_topology_properties import cbb_specs


def _small(spec, limit=120):
    return spec.num_endports <= limit and spec.num_endports >= 2


class TestTheorem1:
    @given(cbb_specs())
    @settings(max_examples=30, deadline=None)
    def test_shift_hsd_one(self, spec):
        if not _small(spec):
            return
        tables = route_dmodk(build_fabric(spec))
        n = spec.num_endports
        rep = sequence_hsd(tables, shift(n), topology_order(n))
        assert rep.congestion_free, spec

    @given(cbb_specs(), st.data())
    @settings(max_examples=30, deadline=None)
    def test_single_stage_permutation_hsd_one(self, spec, data):
        # Any constant-displacement permutation (not only the Shift
        # stages we enumerate) is clean: draw a random displacement.
        if not _small(spec):
            return
        n = spec.num_endports
        s = data.draw(st.integers(1, n - 1))
        tables = route_dmodk(build_fabric(spec))
        src = np.arange(n)
        assert stage_max_hsd(tables, src, (src + s) % n) == 1


class TestTheorem2:
    @given(cbb_specs())
    @settings(max_examples=15, deadline=None)
    def test_one_destination_per_down_port(self, spec):
        if not _small(spec, limit=60):
            return
        tables = route_dmodk(build_fabric(spec))
        assert down_port_destination_counts(tables).max() <= 1


class TestTheorem3:
    @given(cbb_specs())
    @settings(max_examples=25, deadline=None)
    def test_hierarchical_rd_hsd_one(self, spec):
        if not _small(spec):
            return
        tables = route_dmodk(build_fabric(spec))
        n = spec.num_endports
        cps = hierarchical_recursive_doubling(spec)
        rep = sequence_hsd(tables, cps, topology_order(n))
        assert rep.congestion_free, spec


class TestPartialPopulations:
    @given(cbb_specs(), st.data())
    @settings(max_examples=20, deadline=None)
    def test_skip_semantics_hsd_one(self, spec, data):
        if not _small(spec):
            return
        n = spec.num_endports
        if n < 4:
            return
        excluded = data.draw(st.integers(1, n // 2))
        rng = np.random.default_rng(data.draw(st.integers(0, 1000)))
        active = np.sort(rng.permutation(n)[: n - excluded])
        tables = route_dmodk(build_fabric(spec))
        slots = physical_placement(active, n)
        rep = sequence_hsd(tables, shift(n), slots)
        assert rep.congestion_free, spec


class TestGenericRouters:
    @given(cbb_specs())
    @settings(max_examples=15, deadline=None)
    def test_minhop_reaches_everything(self, spec):
        if not _small(spec, limit=80):
            return
        tables = route_minhop(build_fabric(spec))
        hops = tables.paths_matrix()
        assert (hops >= 0).all()
        assert hops.max() <= 2 * spec.h + 1
