"""Property-based tests: topology digit arithmetic over random PGFTs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import PGFT, endport_digits, endport_index, pgft


@st.composite
def pgft_specs(draw, max_levels=3, max_digit=5):
    """Random small-but-structurally-diverse PGFT tuples."""
    h = draw(st.integers(1, max_levels))
    m = [draw(st.integers(1, max_digit)) for _ in range(h)]
    w = [1] + [draw(st.integers(1, max_digit)) for _ in range(h - 1)]
    p = [1] + [draw(st.integers(1, 3)) for _ in range(h - 1)]
    return pgft(h, m, w, p)


@st.composite
def cbb_specs(draw, max_levels=3):
    """Random constant-CBB, single-rail PGFTs (the paper's class)."""
    h = draw(st.integers(2, max_levels))
    m = [draw(st.integers(2, 6)) for _ in range(h)]
    w, p = [1], [1]
    for level in range(1, h):
        need = m[level - 1] * p[level - 1]
        divisors = [d for d in range(1, need + 1) if need % d == 0]
        w_l = draw(st.sampled_from(divisors))
        w.append(w_l)
        p.append(need // w_l)
    return pgft(h, m, w, p)


class TestDigitArithmetic:
    @given(pgft_specs())
    @settings(max_examples=60, deadline=None)
    def test_endport_digits_bijective(self, spec):
        j = np.arange(spec.num_endports)
        assert np.array_equal(endport_index(spec, endport_digits(spec, j)), j)

    @given(pgft_specs())
    @settings(max_examples=60, deadline=None)
    def test_node_index_bijective_all_levels(self, spec):
        tree = PGFT(spec)
        for level in range(spec.h + 1):
            idx = np.arange(tree.num_nodes_at(level))
            back = tree.node_index(level, tree.node_digits(level, idx))
            assert np.array_equal(back, idx)

    @given(pgft_specs())
    @settings(max_examples=40, deadline=None)
    def test_structural_validation_passes(self, spec):
        PGFT(spec).validate()


class TestCounting:
    @given(pgft_specs())
    @settings(max_examples=60, deadline=None)
    def test_switch_count_formula(self, spec):
        # switches_at(l) == prod(m[l:]) * prod(w[:l])
        import math

        for level in spec.iter_levels():
            expect = math.prod(spec.m[level:]) * math.prod(spec.w[:level])
            assert spec.switches_at(level) == expect

    @given(cbb_specs())
    @settings(max_examples=40, deadline=None)
    def test_cbb_specs_have_constant_cbb(self, spec):
        assert spec.has_constant_cbb()
        assert spec.is_single_rail()

    @given(pgft_specs())
    @settings(max_examples=40, deadline=None)
    def test_cable_conservation(self, spec):
        # Up cables leaving level l-1 == down cables entering level l.
        tree = PGFT(spec)
        for level in spec.iter_levels():
            lower_n = tree.num_nodes_at(level - 1)
            upper_n = tree.num_nodes_at(level)
            assert (lower_n * spec.up_ports_at(level - 1)
                    == upper_n * spec.down_ports_at(level))


class TestAncestry:
    @given(cbb_specs(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_every_endport_has_one_leaf_ancestor(self, spec, data):
        tree = PGFT(spec)
        j = data.draw(st.integers(0, spec.num_endports - 1))
        leaves = np.arange(tree.num_nodes_at(1))
        mask = tree.ancestor_mask(1, leaves, np.full_like(leaves, j))
        assert mask.sum() == 1

    @given(cbb_specs(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_ancestor_transitivity(self, spec, data):
        # Parent of an ancestor (along j's digits) is an ancestor.
        if spec.h < 2:
            return
        tree = PGFT(spec)
        j = data.draw(st.integers(0, spec.num_endports - 1))
        leaf = int(tree.leaf_of_endport(j))
        for parent in np.atleast_1d(tree.parents_of(1, leaf)):
            # At least one parent must be an ancestor of j at level 2.
            pass
        parents = np.atleast_1d(tree.parents_of(1, leaf))
        anc = tree.ancestor_mask(2, parents, np.full(len(parents), j))
        assert anc.all()  # all parents of j's leaf are ancestors of j
