"""Property-based tests: the CPS algebra over arbitrary rank counts."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import (
    CPS_NAMES,
    by_name,
    classify,
    has_constant_displacement,
    is_shift_subset,
    pow2_floor,
    with_proxy_stages,
)

ranks = st.integers(2, 200)
names = st.sampled_from(sorted(CPS_NAMES))


class TestUniversalInvariants:
    @given(names, ranks)
    @settings(max_examples=120, deadline=None)
    def test_constant_displacement_everywhere(self, name, n):
        cps = by_name(name, n)
        for stage in cps:
            assert has_constant_displacement(stage, n), (name, n, stage.label)

    @given(names, ranks)
    @settings(max_examples=120, deadline=None)
    def test_ranks_in_range(self, name, n):
        cps = by_name(name, n)
        pairs = cps.all_pairs()
        if len(pairs):
            assert pairs.min() >= 0
            assert pairs.max() < n

    @given(names, ranks)
    @settings(max_examples=120, deadline=None)
    def test_never_mixed(self, name, n):
        # Observation 2: every CPS is unidirectional or bidirectional.
        assert classify(by_name(name, n)) != "mixed"

    @given(names, ranks)
    @settings(max_examples=80, deadline=None)
    def test_stages_are_partial_permutations(self, name, n):
        for stage in by_name(name, n):
            assert stage.is_permutation(), (name, n, stage.label)


class TestShiftSuperset:
    @given(st.sampled_from(["shift", "ring", "binomial", "tournament",
                            "dissemination", "pairwise-exchange"]), ranks)
    @settings(max_examples=100, deadline=None)
    def test_unidirectional_contained_in_shift(self, name, n):
        assert is_shift_subset(by_name(name, n))


class TestProxyStages:
    @given(st.integers(2, 500))
    @settings(max_examples=100, deadline=None)
    def test_pow2_floor_bounds(self, n):
        p = pow2_floor(n)
        assert p <= n < 2 * p
        assert p & (p - 1) == 0

    @given(st.integers(3, 200))
    @settings(max_examples=80, deadline=None)
    def test_proxy_covers_all_ranks(self, n):
        cps = with_proxy_stages(n)
        assert set(np.unique(cps.all_pairs())) == set(range(n))

    @given(st.integers(3, 200))
    @settings(max_examples=80, deadline=None)
    def test_proxy_pre_post_are_inverses(self, n):
        cps = with_proxy_stages(n)
        if pow2_floor(n) == n:
            return
        pre, post = cps.stages[0], cps.stages[-1]
        assert np.array_equal(pre.pairs, post.pairs[:, ::-1])


class TestDissemination:
    @given(ranks)
    @settings(max_examples=80, deadline=None)
    def test_stage_count_is_ceil_log2(self, n):
        import math

        cps = by_name("dissemination", n)
        assert len(cps) == max(1, math.ceil(math.log2(n)))

    @given(ranks)
    @settings(max_examples=80, deadline=None)
    def test_every_stage_is_full_permutation(self, n):
        for stage in by_name("dissemination", n):
            assert len(stage) == n
