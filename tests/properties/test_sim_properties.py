"""Property-based tests over the simulators.

Conservation and consistency laws that must hold for *any* workload:
bytes are conserved, makespans are bounded below by the analytic ideal,
the two simulators agree when there is no contention, and adding
contention never speeds anything up.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric import build_fabric
from repro.routing import route_dmodk
from repro.sim import (
    QDR_PCIE_GEN2,
    FluidSimulator,
    PacketSimulator,
    ideal_sequence_time,
)
from repro.topology import pgft

SPEC = pgft(2, [4, 4], [1, 4], [1, 1])
N = SPEC.num_endports
TABLES = route_dmodk(build_fabric(SPEC))


@st.composite
def workloads(draw, max_msgs=3):
    """Random small per-port message sequences."""
    seqs = []
    for p in range(N):
        k = draw(st.integers(0, max_msgs))
        seq = []
        for _ in range(k):
            dst = draw(st.integers(0, N - 1).filter(lambda d: d != p))
            size = draw(st.sampled_from([2048.0, 16384.0, 65536.0]))
            seq.append((dst, size))
        seqs.append(seq)
    return seqs


class TestFluidLaws:
    @given(workloads())
    @settings(max_examples=40, deadline=None)
    def test_bytes_conserved(self, seqs):
        res = FluidSimulator(TABLES).run_sequences(seqs)
        assert res.total_bytes == sum(s for q in seqs for _, s in q)

    @given(workloads())
    @settings(max_examples=40, deadline=None)
    def test_makespan_at_least_ideal(self, seqs):
        res = FluidSimulator(TABLES).run_sequences(seqs)
        ideal = ideal_sequence_time(seqs, QDR_PCIE_GEN2)
        assert res.makespan >= ideal - 1e-6

    @given(workloads())
    @settings(max_examples=30, deadline=None)
    def test_barrier_vs_async_both_complete(self, seqs):
        a = FluidSimulator(TABLES).run_sequences(seqs, mode="async")
        b = FluidSimulator(TABLES).run_sequences(seqs, mode="barrier")
        assert a.total_bytes == b.total_bytes
        if a.makespan:
            assert b.makespan > 0

    @given(workloads())
    @settings(max_examples=25, deadline=None)
    def test_messages_ordered_per_port(self, seqs):
        sim = FluidSimulator(TABLES, record_messages=True)
        res = sim.run_sequences(seqs)
        by_port: dict[int, list] = {}
        for m in res.messages:
            by_port.setdefault(m.src, []).append(m)
        for p, msgs in by_port.items():
            msgs.sort(key=lambda m: m.start)
            # Each message starts only after the previous one finished.
            for a, b in zip(msgs, msgs[1:]):
                assert b.start >= a.finish - 1e-9
            # And the sequence order matches the workload order.
            assert [m.dst for m in msgs] == [d for d, s in seqs[p] if True]


class TestPacketLaws:
    @given(workloads(max_msgs=2))
    @settings(max_examples=20, deadline=None)
    def test_bytes_conserved(self, seqs):
        res = PacketSimulator(TABLES).run_sequences(seqs)
        assert res.total_bytes == sum(s for q in seqs for _, s in q)

    @given(workloads(max_msgs=2))
    @settings(max_examples=15, deadline=None)
    def test_latency_at_least_zero_load(self, seqs):
        res = PacketSimulator(TABLES).run_sequences(seqs)
        if len(res.latencies):
            floor = QDR_PCIE_GEN2.host_overhead
            assert res.latencies.min() >= floor

    @given(workloads(max_msgs=2), st.sampled_from([2, 8]))
    @settings(max_examples=15, deadline=None)
    def test_credits_never_lose_bytes(self, seqs, credits):
        res = PacketSimulator(TABLES, credit_limit=credits,
                              max_events=20_000_000).run_sequences(seqs)
        assert res.total_bytes == sum(s for q in seqs for _, s in q)


class TestCrossModel:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_agree_on_contention_free_permutations(self, seed):
        # A random constant-displacement permutation is congestion-free
        # (theorem 1): both simulators must report the same bandwidth.
        rng = np.random.default_rng(seed)
        s = int(rng.integers(1, N))
        src = np.arange(N)
        dst = (src + s) % N
        seqs = [[(int(d), 65536.0)] for d in dst]
        f = FluidSimulator(TABLES).run_sequences(seqs)
        p = PacketSimulator(TABLES).run_sequences(seqs)
        assert p.normalized_bandwidth == pytest.approx(
            f.normalized_bandwidth, rel=0.05)
