"""Property-based tests: fabric wiring and topology-file round-trips."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric import build_fabric, dumps, loads
from repro.sim import EventQueue

from .test_topology_properties import pgft_specs


class TestFabricInvariants:
    @given(pgft_specs())
    @settings(max_examples=40, deadline=None)
    def test_peer_involution(self, spec):
        fab = build_fabric(spec)
        gp = np.arange(fab.num_ports)
        connected = fab.port_peer >= 0
        assert connected.all()
        assert np.array_equal(fab.port_peer[fab.port_peer], gp)

    @given(pgft_specs())
    @settings(max_examples=40, deadline=None)
    def test_total_ports_even(self, spec):
        fab = build_fabric(spec)
        assert fab.num_ports % 2 == 0

    @given(pgft_specs())
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_exact(self, spec):
        fab = build_fabric(spec)
        fab2 = loads(dumps(fab))
        assert np.array_equal(fab.port_peer, fab2.port_peer)
        assert np.array_equal(fab.port_start, fab2.port_start)
        assert fab.node_names == fab2.node_names
        assert fab2.spec == spec


class TestEventQueueProperties:
    @given(st.lists(st.floats(0, 1000, allow_nan=False), min_size=1,
                    max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_events_always_fire_in_order(self, times):
        q = EventQueue()
        fired = []
        for t in times:
            q.schedule(t, fired.append, t)
        q.run()
        assert fired == sorted(times)
        assert len(fired) == len(times)
