"""Property-based tests: repair and discovery under random damage."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric import build_fabric
from repro.routing import check_reachability, route_dmodk
from repro.routing.repair import repair_tables
from repro.topology import DiscoveryError, discover_pgft, rlft_max

from .test_topology_properties import cbb_specs

SPEC = rlft_max(4, 2)
FAB = build_fabric(SPEC)
BASE = route_dmodk(FAB)
UPLINKS = np.flatnonzero(FAB.port_goes_up()
                         & (FAB.port_owner >= FAB.num_endports))


class TestRepairProperties:
    @given(st.sets(st.integers(0, len(UPLINKS) - 1), min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_reachability_after_any_small_failure_set(self, picks):
        dead = UPLINKS[sorted(picks)]
        degraded = FAB.with_failed_cables(dead)
        rep = repair_tables(BASE, degraded)
        if rep.ok:
            check_reachability(rep.tables)
        # Fabrics with enough redundancy always survive <= 3 failures
        # of distinct leaves' links; assert ok for the single-failure case.
        if len(picks) == 1:
            assert rep.ok

    @given(st.sets(st.integers(0, len(UPLINKS) - 1), min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_repaired_entries_avoid_dead_ports(self, picks):
        dead = UPLINKS[sorted(picks)]
        degraded = FAB.with_failed_cables(dead)
        rep = repair_tables(BASE, degraded)
        live_entries = rep.tables.switch_out[rep.tables.switch_out >= 0]
        assert not np.isin(live_entries, degraded.dead_ports()).any()


class TestDiscoveryProperties:
    @given(cbb_specs())
    @settings(max_examples=25, deadline=None)
    def test_every_generated_cbb_spec_recognised(self, spec):
        if spec.num_endports > 200:
            return
        fab = build_fabric(spec)
        fab.spec = None
        assert discover_pgft(fab) == spec

    @given(cbb_specs(), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_damaged_fabric_rejected(self, spec, seed):
        # Removing one switch-level cable breaks the complete-bipartite
        # block structure (or strands a node): discovery must not
        # silently return a spec for it.
        if spec.num_endports > 200 or spec.h < 2:
            return
        fab = build_fabric(spec)
        rng = np.random.default_rng(seed)
        ups = np.flatnonzero(fab.port_goes_up()
                             & (fab.port_owner >= fab.num_endports))
        if not len(ups):
            return
        degraded = fab.with_failed_cables([int(rng.choice(ups))])
        degraded.spec = None
        try:
            got = discover_pgft(degraded)
        except DiscoveryError:
            return  # correctly rejected
        raise AssertionError(f"damaged {spec} mis-recognised as {got}")
