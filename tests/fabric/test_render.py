"""Text rendering helpers."""

import numpy as np

from repro.analysis import stage_link_loads
from repro.fabric import (
    build_fabric,
    render_levels,
    render_link_loads,
    render_route,
)
from repro.routing import route_dmodk
from repro.topology import pgft


def test_render_levels_rows(fig1_fabric):
    text = render_levels(fig1_fabric)
    lines = text.splitlines()
    assert len(lines) == 3  # L2, L1, hosts
    assert lines[0].startswith("   L2")
    assert "hosts" in lines[-1]


def test_render_levels_abbreviates_wide_rows():
    fab = build_fabric(pgft(2, [18, 18], [1, 9], [1, 2]))
    text = render_levels(fab, max_width=60)
    assert "324 nodes" in text


def test_render_route_endpoints(fig1_tables):
    text = render_route(fig1_tables, 0, 9)
    assert text.startswith("H0000")
    assert text.endswith("H0009")
    assert "SW" in text


def test_render_route_local(fig1_tables):
    assert "(local)" in render_route(fig1_tables, 3, 3)


def test_render_link_loads_sorted(fig1_tables):
    fab = fig1_tables.fabric
    n = fab.num_endports
    src = np.arange(n)
    loads = stage_link_loads(fig1_tables, src, (src + 4) % n)
    text = render_link_loads(fab, loads)
    counts = [int(line.split()[0]) for line in text.splitlines()]
    assert counts == sorted(counts, reverse=True)
    assert all(c >= 1 for c in counts)


def test_render_link_loads_empty():
    fab = build_fabric(pgft(1, [4], [1], [1]))
    assert "no loaded links" in render_link_loads(
        fab, np.zeros(fab.num_ports, dtype=int))
