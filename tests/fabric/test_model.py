"""Fabric construction: wiring invariants over every test topology."""

import numpy as np
import pytest

from repro.fabric import Fabric, build_fabric
from repro.topology import PGFT, pgft


class TestBuildFabric:
    def test_every_port_connected(self, any_spec):
        fab = build_fabric(any_spec)
        assert (fab.port_peer >= 0).all()

    def test_peer_symmetry(self, any_spec):
        fab = build_fabric(any_spec)
        gp = np.arange(fab.num_ports)
        assert np.array_equal(fab.port_peer[fab.port_peer], gp)

    def test_no_self_links(self, any_spec):
        fab = build_fabric(any_spec)
        assert (fab.peer_node != fab.port_owner).all()

    def test_node_counts(self, any_spec):
        fab = build_fabric(any_spec)
        assert fab.num_endports == any_spec.num_endports
        assert fab.num_switches == any_spec.num_switches

    def test_port_counts_per_level(self, any_spec):
        fab = build_fabric(any_spec)
        for v in range(fab.num_nodes):
            lvl = int(fab.node_level[v])
            if lvl == 0:
                assert fab.degree(v) == any_spec.up_ports_at(0)
            else:
                assert fab.degree(v) == any_spec.ports_at(lvl)

    def test_links_cross_exactly_one_level(self, any_spec):
        fab = build_fabric(any_spec)
        src = fab.node_level[fab.port_owner]
        dst = fab.node_level[fab.peer_node]
        assert (np.abs(src - dst) == 1).all()

    def test_up_down_port_split(self, multi_level_spec):
        # Switch local ports: down ports first, then up ports.
        fab = build_fabric(multi_level_spec)
        goes_up = fab.port_goes_up()
        for v in range(fab.num_endports, fab.num_nodes):
            lvl = int(fab.node_level[v])
            n_down = multi_level_spec.down_ports_at(lvl)
            ports = fab.ports_of(v)
            assert not goes_up[ports[:n_down]].any()
            assert goes_up[ports[n_down:]].all()

    def test_endport_connects_to_its_leaf(self, multi_level_spec):
        fab = build_fabric(multi_level_spec)
        tree = PGFT(multi_level_spec)
        eps = np.arange(multi_level_spec.num_endports)
        leaves = tree.leaf_of_endport(eps)
        expected_node = fab.switch_node(1, leaves)
        got = fab.peer_node[fab.port_start[eps]]
        assert np.array_equal(got, expected_node)


class TestFromLinks:
    def test_duplicate_port_rejected(self):
        with pytest.raises(ValueError, match="port reused"):
            Fabric.from_links(
                num_endports=2,
                port_counts=[1, 1, 4],
                links=[(0, 0, 2, 0), (1, 0, 2, 0)],
            )

    def test_infers_levels(self):
        fab = Fabric.from_links(
            num_endports=2,
            port_counts=[1, 1, 2],
            links=[(0, 0, 2, 0), (1, 0, 2, 1)],
        )
        assert list(fab.node_level) == [0, 0, 1]

    def test_gport_and_local_port(self):
        fab = Fabric.from_links(
            num_endports=2,
            port_counts=[1, 1, 2],
            links=[(0, 0, 2, 0), (1, 0, 2, 1)],
        )
        assert fab.gport(2, 1) == 3
        assert fab.local_port(3) == 1

    def test_default_names_unique(self, any_spec):
        fab = build_fabric(any_spec)
        assert len(set(fab.node_names)) == fab.num_nodes
