"""repro-fabric command-line tool."""

import numpy as np
import pytest

from repro.fabric import build_fabric, dumps, loads, save
from repro.fabric.cli import main
from repro.topology import pgft


@pytest.fixture
def topo_file(tmp_path):
    path = tmp_path / "f.topo"
    save(build_fabric(pgft(2, [4, 4], [1, 4], [1, 1])), path)
    return str(path)


class TestGenerate:
    def test_generate_roundtrip(self, tmp_path, capsys):
        out = str(tmp_path / "gen.topo")
        assert main(["generate", "2; 4,4; 1,2; 1,2", out]) == 0
        fab = loads(open(out).read())
        assert fab.num_endports == 16
        assert "PGFT(2; 4,4; 1,2; 1,2)" in capsys.readouterr().out

    def test_bad_spec(self):
        with pytest.raises(SystemExit):
            main(["generate", "2; 4,4", "/tmp/x.topo"])


class TestDescribe:
    def test_describe(self, topo_file, capsys):
        assert main(["describe", topo_file]) == 0
        out = capsys.readouterr().out
        assert "end-ports : 16" in out
        assert "switches  : 8" in out


class TestDiscover:
    def test_valid(self, topo_file, capsys):
        assert main(["discover", topo_file]) == 0
        assert "valid PGFT" in capsys.readouterr().out

    def test_miswired_fails(self, tmp_path, capsys):
        fab = build_fabric(pgft(2, [4, 4], [1, 4], [1, 1]))
        lines = [l for l in dumps(fab).splitlines()
                 if not l.startswith("pgft")]
        ups = [i for i, l in enumerate(lines) if l.startswith("link SW1-")]
        a_head, a_tail = lines[ups[0]].rsplit(" ", 1)
        b_head, b_tail = lines[ups[5]].rsplit(" ", 1)
        lines[ups[0]] = f"{a_head} {b_tail}"
        lines[ups[5]] = f"{b_head} {a_tail}"
        path = tmp_path / "bad.topo"
        path.write_text("\n".join(lines))
        assert main(["discover", str(path)]) == 1
        assert "NOT a valid PGFT" in capsys.readouterr().out

    def test_declared_mismatch_flagged(self, tmp_path, capsys):
        fab = build_fabric(pgft(2, [4, 4], [1, 4], [1, 1]))
        text = dumps(fab).replace("pgft 2; 4,4; 1,4; 1,1",
                                  "pgft 2; 4,4; 1,2; 1,2")
        path = tmp_path / "lie.topo"
        path.write_text(text)
        assert main(["discover", str(path)]) == 1
        assert "WARNING" in capsys.readouterr().out


class TestValidate:
    def test_full_battery(self, topo_file, capsys):
        assert main(["validate", topo_file]) == 0
        out = capsys.readouterr().out
        for marker in ("reachability", "up*/down*", "deadlock", "theorem-2"):
            assert marker in out

    def test_generic_fabric_uses_minhop(self, tmp_path, capsys):
        path = tmp_path / "generic.topo"
        path.write_text(
            "hca A ports=1\nhca B ports=1\nswitch S ports=2\n"
            "link A[0] S[0]\nlink B[0] S[1]\n"
        )
        assert main(["validate", str(path)]) == 0
        assert "minhop" in capsys.readouterr().out


class TestHsd:
    def test_topology_order_clean(self, topo_file, capsys):
        assert main(["hsd", topo_file, "--cps", "shift"]) == 0
        assert "congestion-free" in capsys.readouterr().out

    def test_random_order_blocks(self, topo_file, capsys):
        main(["hsd", topo_file, "--order", "random", "--seed", "1"])
        assert "BLOCKING" in capsys.readouterr().out

    def test_hier_rd(self, topo_file, capsys):
        assert main(["hsd", topo_file, "--cps", "recdbl-hier"]) == 0

    def test_unknown_cps(self, topo_file):
        with pytest.raises(ValueError):
            main(["hsd", topo_file, "--cps", "warp-speed"])
