"""Forwarding-table file round-trips."""

import numpy as np
import pytest

from repro.fabric import build_fabric
from repro.fabric.lftfile import (
    LftFileError,
    dumps_lft,
    load_lft,
    loads_lft,
    save_lft,
)
from repro.routing import route_dmodk, route_minhop
from repro.topology import pgft


@pytest.fixture
def fabric():
    return build_fabric(pgft(2, [4, 4], [1, 2], [1, 2]))


class TestRoundTrip:
    @pytest.mark.parametrize("router", [route_dmodk, route_minhop])
    def test_tables_preserved(self, fabric, router):
        tables = router(fabric)
        back = loads_lft(dumps_lft(tables), fabric)
        assert np.array_equal(back.switch_out, tables.switch_out)

    def test_file_io(self, fabric, tmp_path):
        tables = route_dmodk(fabric)
        path = tmp_path / "t.lft"
        save_lft(tables, path)
        back = load_lft(path, fabric)
        assert np.array_equal(back.switch_out, tables.switch_out)

    def test_unreachable_entries(self, fabric):
        tables = route_dmodk(fabric)
        tables.switch_out[0, 5] = -1
        back = loads_lft(dumps_lft(tables), fabric)
        assert back.switch_out[0, 5] == -1

    def test_host_up_preserved(self, fabric):
        tables = route_dmodk(fabric)
        host_up = np.arange(16 * 16, dtype=np.int32).reshape(16, 16) % 1
        from repro.fabric import ForwardingTables

        t2 = ForwardingTables(fabric=fabric,
                              switch_out=tables.switch_out,
                              host_up=host_up)
        back = loads_lft(dumps_lft(t2), fabric)
        assert np.array_equal(back.host_up, host_up)


class TestErrors:
    def test_unknown_switch(self, fabric):
        with pytest.raises(LftFileError, match="unknown switch"):
            loads_lft("switch NOPE\n  0 : 1\n", fabric)

    def test_entry_before_switch(self, fabric):
        with pytest.raises(LftFileError, match="before switch"):
            loads_lft("  0 : 1\n", fabric)

    def test_port_out_of_range(self, fabric):
        name = fabric.node_names[fabric.num_endports]
        with pytest.raises(LftFileError, match="out of range"):
            loads_lft(f"switch {name}\n  0 : 99\n", fabric)

    def test_garbage_line(self, fabric):
        with pytest.raises(LftFileError, match="cannot parse"):
            loads_lft("switch-ahoy\n", fabric)

    def test_host_name_rejected(self, fabric):
        with pytest.raises(LftFileError, match="not a switch"):
            loads_lft("switch H0000\n  0 : 0\n", fabric)


class TestCliRoute:
    def test_route_subcommand(self, tmp_path, capsys):
        from repro.fabric import save
        from repro.fabric.cli import main

        topo = tmp_path / "f.topo"
        save(build_fabric(pgft(2, [4, 4], [1, 2], [1, 2])), topo)
        out = tmp_path / "f.lft"
        assert main(["route", str(topo), str(out)]) == 0
        assert "dmodk" in capsys.readouterr().out
        # And the file parses back against the same fabric.
        fab = build_fabric(pgft(2, [4, 4], [1, 2], [1, 2]))
        tables = load_lft(out, fab)
        assert (tables.switch_out >= 0).all()
