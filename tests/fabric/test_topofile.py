"""Topology file parse/serialise round-trips and error reporting."""

import numpy as np
import pytest

from repro.fabric import TopoFileError, build_fabric, dumps, load, loads, save
from repro.topology import pgft


class TestRoundTrip:
    def test_wiring_preserved(self, any_spec):
        fab = build_fabric(any_spec)
        fab2 = loads(dumps(fab))
        assert np.array_equal(fab.port_peer, fab2.port_peer)
        assert np.array_equal(fab.port_start, fab2.port_start)
        assert np.array_equal(fab.node_level, fab2.node_level)
        assert fab.num_endports == fab2.num_endports

    def test_spec_preserved(self):
        fab = build_fabric(pgft(2, [4, 4], [1, 2], [1, 2]))
        fab2 = loads(dumps(fab))
        assert fab2.spec == fab.spec

    def test_file_roundtrip(self, tmp_path):
        fab = build_fabric(pgft(2, [3, 4], [1, 3], [1, 1]))
        path = tmp_path / "fabric.topo"
        save(fab, path)
        fab2 = load(path)
        assert np.array_equal(fab.port_peer, fab2.port_peer)

    def test_double_roundtrip_stable(self):
        fab = build_fabric(pgft(2, [4, 4], [1, 2], [1, 2]))
        text1 = dumps(fab)
        text2 = dumps(loads(text1))
        assert text1 == text2


class TestParsing:
    def test_comments_and_blanks_ignored(self):
        fab = loads(
            """
            # a fabric
            hca H0 ports=1

            switch S ports=1 level=1  # trailing comment
            link H0[0] S[0]
            """
        )
        assert fab.num_endports == 1
        assert fab.num_switches == 1

    def test_levels_inferred_when_missing(self):
        fab = loads(
            "hca H0 ports=1\nhca H1 ports=1\n"
            "switch S ports=2\n"
            "link H0[0] S[0]\nlink H1[0] S[1]\n"
        )
        assert list(fab.node_level) == [0, 0, 1]

    def test_unknown_directive(self):
        with pytest.raises(TopoFileError, match="unknown directive"):
            loads("router R ports=3\n")

    def test_bad_link_syntax(self):
        with pytest.raises(TopoFileError, match="line 2"):
            loads("hca H0 ports=1\nlink H0[0] -> H0[0]\n")

    def test_unknown_node_in_link(self):
        with pytest.raises(TopoFileError, match="unknown node"):
            loads("hca H0 ports=1\nlink H0[0] NOPE[0]\n")

    def test_port_out_of_range(self):
        with pytest.raises(TopoFileError, match="out of range"):
            loads("hca H0 ports=1\nhca H1 ports=1\nlink H0[5] H1[0]\n")

    def test_duplicate_names(self):
        with pytest.raises(TopoFileError, match="duplicate"):
            loads("hca X ports=1\nswitch X ports=2\n")

    def test_bad_pgft_line(self):
        with pytest.raises(TopoFileError, match="pgft"):
            loads("pgft 2; 4,4; 1,2\n")
