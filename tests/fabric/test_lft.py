"""ForwardingTables container: queries, dump, paths matrix."""

import numpy as np
import pytest

from repro.fabric import ForwardingTables, build_fabric
from repro.routing import route_dmodk, trace_route
from repro.topology import pgft


def test_shape_validation():
    fab = build_fabric(pgft(2, [4, 4], [1, 2], [1, 2]))
    with pytest.raises(ValueError, match="does not match"):
        ForwardingTables(fabric=fab, switch_out=np.zeros((3, 16), dtype=np.int64))


def test_out_port_matches_dump(fig1_fabric, fig1_tables):
    text = fig1_tables.dump()
    assert "Switch" in text
    # Every switch block lists all 16 destinations.
    assert text.count(" : ") == fig1_fabric.num_switches * 16


def test_paths_matrix_agrees_with_trace(fig1_tables):
    hops = fig1_tables.paths_matrix()
    N = fig1_tables.fabric.num_endports
    for s in range(N):
        for d in range(N):
            if s == d:
                assert hops[s, d] == 0
            else:
                assert hops[s, d] == len(trace_route(fig1_tables, s, d))


def test_paths_matrix_bounds(any_spec):
    fab = build_fabric(any_spec)
    tables = route_dmodk(fab)
    hops = tables.paths_matrix()
    assert hops.min() >= 0
    assert hops.max() <= 2 * any_spec.h + 1
    # Same-leaf pairs take exactly 2 hops (up to leaf, down to host).
    if any_spec.m[0] >= 2:
        assert hops[0, 1] == 2


def test_next_node_walks_toward_destination(fig1_fabric, fig1_tables):
    # From any leaf switch, next hop toward a local host is that host.
    fab = fig1_fabric
    leaf = fab.num_endports  # first switch node
    for dest in range(4):  # hosts 0..3 are under leaf 0
        assert fig1_tables.next_node(leaf, dest) == dest


def test_host_out_port_single_rail(fig1_fabric, fig1_tables):
    src = np.arange(4)
    dst = np.full(4, 9)
    gp = fig1_tables.host_out_port(src, dst)
    assert np.array_equal(gp, fig1_fabric.port_start[src])
