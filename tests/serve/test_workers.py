"""Worker execution semantics and the supervised pool."""

import json
import time

import pytest

from repro.serve import CertRequest, WorkerPool, execute_request
from repro.serve.workers import _base_request


class TestExecuteRequest:
    def test_cold_symbolic_certifies(self):
        out = execute_request({"topo": "n16-pgft"})
        assert out["status"] == "certified"
        [cert] = out["certificates"]
        assert cert["certificate_kind"] == "symbolic"
        assert cert["verdict"] == "contention-free"
        assert out["num_flows"] > 0

    def test_random_order_refuted_with_counterexample(self):
        out = execute_request({"topo": "n16-pgft", "order": "random",
                               "order_seed": 1})
        assert out["status"] == "refuted"
        ce = out["counterexample"]
        assert ce["link_load"] > 1 and "stage" in ce

    def test_enumerate_engine_uses_pipeline(self):
        out = execute_request({"topo": "n16-pgft", "engine": "enumerate"})
        assert out["status"] == "certified"
        [cert] = out["certificates"]
        assert cert["certificate_kind"] == "enumerated"
        assert "tables_digest" in cert

    def test_both_engines_emit_two_certificates(self):
        out = execute_request({"topo": "n16-pgft", "engine": "both"})
        assert out["status"] == "certified"
        kinds = sorted(c["certificate_kind"] for c in out["certificates"])
        assert kinds == ["enumerated", "symbolic"]

    def test_delta_reuses_cached_base_state(self):
        states = {}
        base = _base_request(CertRequest(topo="n16-pgft", kind="delta",
                                         order="rotate", order_seed=3))
        execute_request(base.to_json(), states)
        out = execute_request({"topo": "n16-pgft", "kind": "delta",
                               "order": "rotate", "order_seed": 3}, states)
        assert out["status"] == "certified"
        assert out["incremental"]["base_cached"] is True

    def test_delta_cold_base_matches_cached_base(self):
        """A replayed delta (no cached state) must yield the same
        certificate as one served incrementally -- byte for byte."""
        payload = {"topo": "n16-pgft", "kind": "delta", "order": "rotate",
                   "order_seed": 5}
        states = {}
        execute_request(_base_request(
            CertRequest.from_json(payload)).to_json(), states)
        warm = execute_request(payload, states)
        cold = execute_request(payload, {})
        assert warm["incremental"]["base_cached"] is True
        assert cold["incremental"]["base_cached"] is False
        assert (json.dumps(warm["certificates"], sort_keys=True)
                == json.dumps(cold["certificates"], sort_keys=True))

    def test_delta_both_cross_checks_engines(self):
        out = execute_request({"topo": "n16-pgft", "kind": "delta",
                               "order": "random", "order_seed": 1,
                               "engine": "both"})
        assert out["status"] == "refuted"
        assert out["engine_agreement"] is True

    def test_exclusion_certifies_active_subset(self):
        out = execute_request({"topo": "n16-pgft", "exclude": 4,
                               "exclude_seed": 2})
        assert out["status"] in ("certified", "refuted")
        if out["status"] == "certified":
            assert out["certificates"][0]["num_flows"] == out["num_flows"]

    def test_malformed_payload_is_structured_error(self):
        out = execute_request({"topo": "missing-topo"})
        assert out["status"] == "error"
        assert "unknown topology" in out["error"]

    def test_state_cache_bounded(self):
        from repro.serve.workers import STATE_CACHE_SIZE
        states = {}
        for seed in range(STATE_CACHE_SIZE + 3):
            execute_request({"topo": "n16-pgft", "order": "random",
                             "order_seed": seed}, states)
        assert len(states) <= STATE_CACHE_SIZE


@pytest.mark.slow
class TestWorkerPool:
    def _roundtrip(self, pool, handle, seq, request, timeout=30.0):
        pool.dispatch(handle, seq, request, now=time.monotonic())
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            results, deaths = pool.poll()
            if results:
                return results[0][1]
            if deaths:
                return None
            time.sleep(0.01)
        raise TimeoutError("worker never answered")

    def test_dispatch_and_result(self):
        pool = WorkerPool(size=1)
        pool.start()
        try:
            handle = pool.idle()[0]
            out = self._roundtrip(pool, handle, 7,
                                  {"topo": "n16-pgft"})
            assert out["seq"] == 7
            assert out["status"] == "certified"
            assert out["compute_s"] > 0
            assert not handle.busy
        finally:
            pool.stop()

    def test_crash_detected_and_respawned(self):
        pool = WorkerPool(size=1)
        pool.start()
        try:
            handle = pool.idle()[0]
            pool.dispatch(handle, 1, {"topo": "n16-pgft",
                                      "test_crash": True},
                          now=time.monotonic())
            deadline = time.monotonic() + 30.0
            deaths = []
            while not deaths and time.monotonic() < deadline:
                _, deaths = pool.poll()
                time.sleep(0.01)
            assert deaths == [handle]
            fresh = pool.respawn(handle)
            assert pool.respawns == 1
            out = self._roundtrip(pool, fresh, 2, {"topo": "n16-pgft"})
            assert out["status"] == "certified"
        finally:
            pool.stop()

    def test_kill_is_deadline_cancellation(self):
        pool = WorkerPool(size=1)
        pool.start()
        try:
            handle = pool.idle()[0]
            pool.dispatch(handle, 1, {"topo": "n16-pgft",
                                      "test_delay_s": 30.0},
                          now=time.monotonic())
            time.sleep(0.1)
            pool.kill(handle)
            assert not handle.alive()
            fresh = pool.respawn(handle)
            out = self._roundtrip(pool, fresh, 2, {"topo": "n16-pgft"})
            assert out["status"] == "certified"
        finally:
            pool.stop()

    def test_reap_idle_deaths(self):
        pool = WorkerPool(size=2)
        pool.start()
        try:
            victim = pool.handles[0]
            victim.proc.kill()
            victim.proc.join(timeout=5.0)
            assert pool.reap_idle_deaths() == 1
            assert all(h.alive() for h in pool.handles)
        finally:
            pool.stop()

    def test_stop_is_idempotent_and_clean(self):
        pool = WorkerPool(size=2)
        pool.start()
        pids = pool.pids()
        pool.stop()
        assert pool.handles == []
        # all processes actually gone
        import os
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
