"""Bounded queue and the seeded requeue backoff policy."""

import pytest

from repro.serve import BoundedRequestQueue, CertRequest, PendingRequest
from repro.serve.queue import RequeuePolicy


def _pending(seq, digest=None):
    req = CertRequest(topo="n324", order="random", order_seed=seq)
    return PendingRequest(seq=seq, request=req,
                          digest=digest or f"digest-{seq}")


class TestRequeuePolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RequeuePolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RequeuePolicy(base_delay=0)
        with pytest.raises(ValueError):
            RequeuePolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RequeuePolicy(jitter=1.0)

    def test_exponential_growth_capped(self):
        pol = RequeuePolicy(base_delay=0.1, backoff=2.0, max_delay=0.5,
                            jitter=0.0)
        rng = pol.rng()
        delays = [pol.delay(a, rng) for a in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_seeded_and_bounded(self):
        pol = RequeuePolicy(base_delay=0.1, backoff=1.0, jitter=0.25,
                            seed=7)
        a = [pol.delay(0, pol.rng()) for _ in range(3)]
        b = [pol.delay(0, pol.rng()) for _ in range(3)]
        assert a == b  # same seed, same draws
        for d in a:
            assert 0.075 <= d <= 0.125


class TestBoundedQueue:
    def test_fifo_order(self):
        q = BoundedRequestQueue(capacity=8)
        for seq in range(3):
            q.push(_pending(seq))
        assert [q.pop_ready(0.0).seq for _ in range(3)] == [0, 1, 2]
        assert q.pop_ready(0.0) is None

    def test_capacity_and_pressure_thresholds(self):
        q = BoundedRequestQueue(capacity=4, high_water=2)
        assert not q.under_pressure and not q.would_shed
        for seq in range(2):
            q.push(_pending(seq))
        assert q.under_pressure and not q.would_shed
        for seq in range(2, 4):
            q.push(_pending(seq))
        assert q.would_shed

    def test_default_high_water_is_three_quarters(self):
        assert BoundedRequestQueue(capacity=100).high_water == 75

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            BoundedRequestQueue(capacity=0)
        with pytest.raises(ValueError):
            BoundedRequestQueue(capacity=4, high_water=5)

    def test_delayed_matures_by_time(self):
        q = BoundedRequestQueue(capacity=8)
        late, early = _pending(0), _pending(1)
        q.push_delayed(late, not_before=10.0)
        q.push_delayed(early, not_before=5.0)
        assert q.depth == 2
        assert q.pop_ready(1.0) is None
        assert q.next_delay(1.0) == 4.0
        assert q.pop_ready(5.0) is early
        assert q.pop_ready(5.0) is None
        assert q.pop_ready(11.0) is late

    def test_delayed_counts_toward_shedding(self):
        q = BoundedRequestQueue(capacity=2)
        q.push_delayed(_pending(0), not_before=100.0)
        q.push(_pending(1))
        assert q.would_shed

    def test_matured_delays_beat_fresh_pushes(self):
        q = BoundedRequestQueue(capacity=8)
        q.push_delayed(_pending(0), not_before=1.0)
        q.push(_pending(1))
        # at t=2 the delayed request matured; FIFO appends it after the
        # already-ready one
        assert q.pop_ready(2.0).seq == 1
        assert q.pop_ready(2.0).seq == 0

    def test_drain_all(self):
        q = BoundedRequestQueue(capacity=8)
        q.push(_pending(2))
        q.push_delayed(_pending(0), not_before=7.0)
        q.push_delayed(_pending(1), not_before=3.0)
        drained = q.drain_all()
        assert [p.seq for p in drained] == [2, 1, 0]
        assert q.depth == 0
