"""Shared fixtures for the certification-service tests.

Tests drive the asyncio service from synchronous pytest via
``asyncio.run`` (no pytest-asyncio in the toolchain).  ``make_service``
builds a service wired entirely into a tmp dir with chaos hooks
enabled and a fast supervisor tick.
"""

import os

import pytest

from repro.serve import CertificationService, ServiceConfig
from repro.serve.queue import RequeuePolicy


@pytest.fixture
def make_service(tmp_path):
    def _make(**overrides):
        defaults = dict(
            workers=2,
            journal_path=os.path.join(tmp_path, "journal.jsonl"),
            cache_dir=os.path.join(tmp_path, "cache"),
            tick_s=0.004,
            allow_test_hooks=True,
            requeue=RequeuePolicy(max_retries=3, base_delay=0.02,
                                  jitter=0.0),
            default_deadline_s=20.0,
        )
        defaults.update(overrides)
        return CertificationService(ServiceConfig(**defaults))

    return _make
