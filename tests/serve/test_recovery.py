"""Crash-safe recovery: SIGKILL the whole service mid-certification.

Runs the real ``repro-serve serve`` CLI in a subprocess, gets requests
accepted (journaled) and in flight, SIGKILLs the service before any
finish, then restarts on the same journal and verifies every accepted
request replays to completion -- with a certificate byte-identical to
an uninterrupted run.
"""

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve import CertificationService, Journal, ServiceConfig
from repro.serve.protocol import decode_line, encode_line
from repro.serve.workers import execute_request

SRC = str(Path(__file__).resolve().parents[2] / "src")

FAST_REQUEST = {"topo": "n16-pgft", "order": "rotate", "order_seed": 11}
SLOW_REQUEST = {"topo": "n16-pgft", "test_delay_s": 1.0}


def _spawn_service(sock, journal, cache):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "serve", "--socket", sock,
         "--journal", journal, "--cache-dir", cache, "--workers", "1",
         "--tick", "0.005", "--allow-test-hooks"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            out = proc.stdout.read().decode()
            raise RuntimeError(f"service died on startup:\n{out}")
        if os.path.exists(sock):
            try:
                with socket.socket(socket.AF_UNIX) as probe:
                    probe.settimeout(5.0)
                    probe.connect(sock)
                    probe.sendall(encode_line({"op": "ping"}))
                    if probe.recv(4096):
                        return proc
            except OSError:
                pass
        time.sleep(0.05)
    proc.kill()
    raise RuntimeError("service never came up")


def _fire_and_forget(sock, request):
    """Submit without waiting for the response; returns the open socket
    (closing it must not cancel the journaled request)."""
    client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    client.settimeout(10.0)
    client.connect(sock)
    client.sendall(encode_line({"op": "submit", "request": request}))
    return client


@pytest.mark.slow
def test_sigkill_mid_certification_replays_byte_identical(tmp_path):
    sock = os.path.join(tmp_path, "serve.sock")
    journal_path = os.path.join(tmp_path, "journal.jsonl")
    cache_dir = os.path.join(tmp_path, "cache")

    proc = _spawn_service(sock, journal_path, cache_dir)
    clients = []
    try:
        # The slow request occupies the single worker (mid-certification
        # when we strike); the fast one is accepted and queued behind it.
        clients.append(_fire_and_forget(sock, SLOW_REQUEST))
        clients.append(_fire_and_forget(sock, FAST_REQUEST))
        deadline = time.monotonic() + 30.0
        pending = []
        while time.monotonic() < deadline:
            pending = Journal(journal_path).replay()
            if len(pending) >= 2:
                break
            time.sleep(0.05)
        assert len(pending) == 2, "requests were not journaled in time"
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30.0)
    finally:
        for client in clients:
            client.close()
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30.0)

    # Nothing finished: the journal holds two accepted, zero done.
    j = Journal(journal_path)
    assert len(j.replay()) == 2
    assert j.stats.finished == 0

    # Restart on the same journal (in process, for introspection).
    async def restart():
        svc = CertificationService(ServiceConfig(
            workers=2, journal_path=journal_path, cache_dir=cache_dir,
            tick_s=0.005, allow_test_hooks=True))
        await svc.start()
        try:
            replayed = svc.metrics.replayed
            while svc.queue.depth or svc.dispatched:
                await asyncio.sleep(0.02)
            cached = await svc.submit(dict(FAST_REQUEST))
            return replayed, svc.metrics, cached
        finally:
            await svc.stop()

    replayed, metrics, cached = asyncio.run(restart())
    assert replayed == 2
    assert metrics.completed == 2
    assert metrics.certified == 2

    # The replayed result was cached; its certificate must be
    # byte-identical to an uninterrupted in-process run.
    assert cached["cached"] is True
    assert cached["replayed"] is True
    direct = execute_request(dict(FAST_REQUEST))
    assert (json.dumps(cached["certificates"], sort_keys=True)
            == json.dumps(direct["certificates"], sort_keys=True))

    # And the journal is settled: nothing pending anymore.
    j2 = Journal(journal_path)
    assert j2.replay() == []


@pytest.mark.slow
def test_cli_submit_status_drain_roundtrip(tmp_path):
    """The documented client workflow against a live subprocess."""
    sock = os.path.join(tmp_path, "serve.sock")
    journal_path = os.path.join(tmp_path, "journal.jsonl")
    proc = _spawn_service(sock, journal_path,
                          os.path.join(tmp_path, "cache"))
    try:
        client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        client.settimeout(60.0)
        client.connect(sock)
        buf = b""

        def talk(message):
            nonlocal buf
            client.sendall(encode_line(message))
            while b"\n" not in buf:
                chunk = client.recv(65536)
                if not chunk:
                    raise ConnectionError("server hung up")
                buf += chunk
            line, _, rest = buf.partition(b"\n")
            buf = rest
            return decode_line(line + b"\n")

        sub = talk({"op": "submit", "request": dict(FAST_REQUEST)})
        assert sub["status"] == "certified"
        status = talk({"op": "status"})
        assert status["metrics"]["certified"] == 1
        drain = talk({"op": "drain", "timeout_s": 30.0})
        assert drain["drained"] is True
        stop = talk({"op": "stop"})
        assert stop["stopping"] is True
        client.close()
        proc.wait(timeout=30.0)
        assert proc.returncode == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30.0)
