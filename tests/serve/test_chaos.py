"""The chaos gate: 200+ seeded mixed requests under injected failures.

The service's contract is *zero lost requests*: every accepted request
ends in a certificate, a counterexample or a structured SRV error --
through worker crashes (injected via ``test_crash`` AND external
SIGKILLs of busy workers), deadline overruns and queue overflow.  The
journal must agree: after the storm, no accepted record is left
without a terminal ``done``.
"""

import asyncio
import os
import random
import signal

import pytest

from repro.serve import Journal
from repro.serve.queue import RequeuePolicy
from repro.serve.service import CACHEABLE_STATUSES, TERMINAL_STATUSES

TOTAL_REQUESTS = 208


def _mixed_requests(seed=1234):
    """A seeded storm: fast deltas, refutations, exclusions, degradable
    differentials, deadline busters and poison requests."""
    rng = random.Random(seed)
    requests = []
    for i in range(TOTAL_REQUESTS):
        slot = i % 16
        if slot < 8:        # fast contention-free deltas (distinct seeds)
            requests.append({"topo": "n16-pgft", "kind": "delta",
                             "order": "rotate", "order_seed": i + 1})
        elif slot < 11:     # refuted random placements
            requests.append({"topo": "n16-pgft", "order": "random",
                             "order_seed": i})
        elif slot < 13:     # job-aware exclusion certs
            requests.append({"topo": "n16-pgft", "exclude": 1 + (i % 4),
                             "exclude_seed": i})
        elif slot < 14:     # differential requests (may degrade: SRV004)
            requests.append({"topo": "n16-pgft", "engine": "both",
                             "order": "rotate", "order_seed": i})
        elif slot < 15:     # deadline busters (SRV003)
            requests.append({"topo": "n16-pgft", "test_delay_s": 0.5,
                             "deadline_s": 0.05, "order": "rotate",
                             "order_seed": i})
        else:               # poison requests (crash -> retry -> SRV001)
            requests.append({"topo": "n16-pgft", "test_crash": True,
                             "order_seed": i})
    rng.shuffle(requests)
    return requests


async def _kill_busy_workers(svc, stop_event, kills=6, interval=0.12):
    """External chaos: SIGKILL a busy worker every ``interval``."""
    killed = 0
    while killed < kills and not stop_event.is_set():
        await asyncio.sleep(interval)
        busy = [h for h in svc.pool.handles if h.busy and h.alive()]
        if not busy:
            continue
        victim = busy[killed % len(busy)]
        try:
            os.kill(victim.proc.pid, signal.SIGKILL)
            killed += 1
        except (ProcessLookupError, TypeError):
            continue
    return killed


@pytest.mark.slow
def test_chaos_gate_zero_lost_requests(make_service, tmp_path):
    requests = _mixed_requests()
    assert len(requests) >= 200

    async def main():
        svc = make_service(
            workers=4, queue_capacity=24, high_water=12,
            poison_threshold=3,
            requeue=RequeuePolicy(max_retries=3, base_delay=0.01,
                                  jitter=0.25, seed=7),
            default_deadline_s=15.0)
        await svc.start()
        stop = asyncio.Event()
        killer = asyncio.ensure_future(_kill_busy_workers(svc, stop))
        try:
            # Submit in oversized waves so the bounded queue overflows.
            responses = []
            for start in range(0, len(requests), 40):
                wave = requests[start:start + 40]
                responses.extend(await asyncio.gather(
                    *[svc.submit(dict(r)) for r in wave]))
            stop.set()
            kills = await killer
            # Storm over: nothing may still be queued or in flight.
            while svc.queue.depth or svc.dispatched:
                await asyncio.sleep(0.01)
            return responses, kills, svc.metrics, svc.status()
        finally:
            stop.set()
            await svc.stop()

    responses, kills, metrics, status = asyncio.run(main())

    # Every submission was answered with a structured response.
    assert len(responses) == len(requests)
    by_status = {}
    for resp in responses:
        by_status.setdefault(resp["status"], []).append(resp)
        assert resp["status"] in (*TERMINAL_STATUSES, "shed")
        if resp["status"] == "error":
            codes = [d["code"] for d in resp["srv"]]
            assert codes and all(c.startswith("SRV") for c in codes)
        if resp["status"] == "shed":
            assert resp["retry_after_s"] > 0

    # The storm really stormed: work completed through crashes,
    # deadline kills and overflow, and nothing was lost.
    assert len(by_status.get("certified", [])) > 50
    assert len(by_status.get("refuted", [])) > 10
    assert metrics.accepted == metrics.completed, "lost requests!"
    assert metrics.pool.crashes > 0
    assert metrics.deadline_kills > 0
    assert metrics.sheds == len(by_status.get("shed", []))
    assert metrics.quarantined > 0
    assert kills > 0

    # The journal agrees: every accepted record reached a terminal done.
    journal = Journal(os.path.join(tmp_path, "journal.jsonl"))
    assert journal.replay() == []
    assert journal.stats.finished == metrics.accepted

    # Cached chaos survivors replay identically after a restart.
    async def restart():
        svc = make_service(workers=2)
        await svc.start()
        try:
            again = await svc.submit(
                {"topo": "n16-pgft", "kind": "delta", "order": "rotate",
                 "order_seed": 1})
            return svc.metrics.replayed, again
        finally:
            await svc.stop()

    replayed, again = asyncio.run(restart())
    assert replayed == 0  # the journal was fully settled
    if again["status"] in CACHEABLE_STATUSES:
        assert again["cached"] is True
