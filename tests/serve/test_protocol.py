"""Request protocol: validation, digests, wire round-trips."""

import json

import pytest

from repro.serve import CertRequest, ProtocolError, request_digest
from repro.serve.protocol import (
    MAX_ENDPORTS,
    decode_line,
    encode_line,
    parse_spec_text,
)


class TestValidation:
    def test_minimal_cert_request(self):
        req = CertRequest.from_json({"topo": "n324"})
        assert req.kind == "cert" and req.engine == "symbolic"

    def test_spec_request(self):
        req = CertRequest.from_json({"spec": "2; 4,4; 1,2; 1,2"})
        assert req.resolve_spec().num_endports == 16

    @pytest.mark.parametrize("payload,fragment", [
        ({}, "exactly one of topo / spec"),
        ({"topo": "n324", "spec": "2; 4,4; 1,2; 1,2"}, "exactly one"),
        ({"topo": "nope"}, "unknown topology"),
        ({"topo": "n324", "kind": "recert"}, "unknown kind"),
        ({"topo": "n324", "engine": "oracle"}, "unknown engine"),
        ({"topo": "n324", "order": "sideways"}, "unknown order"),
        ({"topo": "n324", "cps": "gossip"}, "unknown CPS"),
        ({"topo": "n324", "kind": "delta", "engine": "enumerate"},
         "incrementally"),
        ({"topo": "n324", "exclude": 324}, "at least one active"),
        ({"topo": "n324", "max_stages": 0}, "max_stages"),
        ({"topo": "n324", "deadline_s": 0}, "deadline_s"),
        ({"topo": "n324", "test_delay_s": -1}, "test_delay_s"),
        ({"topo": "n324", "frobnicate": 1}, "unknown request field"),
        ({"topo": "n324", "order_seed": "many"}, "bad value"),
        ("just a string", "JSON object"),
    ])
    def test_rejections(self, payload, fragment):
        with pytest.raises(ProtocolError, match=fragment):
            CertRequest.from_json(payload)

    def test_oversized_spec_refused(self):
        # 2 * 500**2 end-ports is far beyond the service ceiling.
        with pytest.raises(ProtocolError, match=str(MAX_ENDPORTS)):
            CertRequest.from_json({"spec": "2; 500,500; 1,500; 1,2"})

    def test_parse_spec_text_errors(self):
        with pytest.raises(ProtocolError, match="must be"):
            parse_spec_text("2; 4,4; 1,2")
        with pytest.raises(ProtocolError, match="bad PGFT tuple"):
            parse_spec_text("2; 4,x; 1,2; 1,2")


class TestDigest:
    def test_deadline_and_cache_knobs_excluded(self):
        base = CertRequest.from_json({"topo": "n324"})
        tuned = CertRequest.from_json(
            {"topo": "n324", "deadline_s": 1.5, "no_cache": True})
        assert request_digest(base) == request_digest(tuned)

    def test_semantic_fields_included(self):
        base = request_digest(CertRequest.from_json({"topo": "n324"}))
        for change in ({"order": "reversed"}, {"order_seed": 1},
                       {"engine": "both"}, {"cps": "ring"},
                       {"exclude": 3}, {"max_stages": 32},
                       {"kind": "delta"}, {"test_crash": True},
                       {"test_delay_s": 0.5}):
            other = CertRequest.from_json({"topo": "n324", **change})
            assert request_digest(other) != base, change

    def test_round_trip_preserves_digest(self):
        req = CertRequest.from_json(
            {"topo": "n324", "kind": "delta", "order": "rotate",
             "order_seed": 9, "engine": "both", "exclude": 5})
        again = CertRequest.from_json(req.to_json())
        assert again == req
        assert again.digest() == req.digest()

    def test_to_json_omits_defaults(self):
        assert CertRequest.from_json({"topo": "n324"}).to_json() == {
            "topo": "n324"}


class TestWire:
    def test_encode_decode(self):
        line = encode_line({"op": "status", "n": 3})
        assert line.endswith(b"\n")
        assert decode_line(line) == {"n": 3, "op": "status"}

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            decode_line(b"{nope\n")
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_line(json.dumps([1, 2]).encode())
