"""Service semantics: admission, dedup, shedding, degradation, deadlines,
quarantine, journal replay and the Unix-socket front-end."""

import asyncio
import json
import os

import pytest

from repro.serve.queue import RequeuePolicy
from repro.serve.service import ServiceConfig


def run(coro):
    return asyncio.run(coro)


async def _finished(svc):
    while svc.queue.depth or svc.dispatched:
        await asyncio.sleep(0.01)


class TestSubmit:
    def test_certify_and_cache(self, make_service):
        async def main():
            svc = make_service()
            await svc.start()
            try:
                first = await svc.submit({"topo": "n16-pgft"})
                again = await svc.submit({"topo": "n16-pgft"})
                return first, again
            finally:
                await svc.stop()

        first, again = run(main())
        assert first["status"] == "certified" and not first["cached"]
        assert first["certificates"][0]["verdict"] == "contention-free"
        assert again["cached"] is True
        assert (json.dumps(again["certificates"], sort_keys=True)
                == json.dumps(first["certificates"], sort_keys=True))

    def test_no_cache_forces_recompute(self, make_service):
        async def main():
            svc = make_service()
            await svc.start()
            try:
                await svc.submit({"topo": "n16-pgft"})
                fresh = await svc.submit({"topo": "n16-pgft",
                                          "no_cache": True})
                return fresh, svc.metrics.cache_hits
            finally:
                await svc.stop()

        fresh, cache_hits = run(main())
        assert fresh["cached"] is False
        assert cache_hits == 0

    def test_invalid_request_rejected_srv005(self, make_service):
        async def main():
            svc = make_service()
            await svc.start()
            try:
                out = await svc.submit({"topo": "n16-pgft",
                                        "engine": "oracle"})
                return out, svc.metrics.rejected, svc.metrics.accepted
            finally:
                await svc.stop()

        out, rejected, accepted = run(main())
        assert out["status"] == "error"
        assert out["srv"][0]["code"] == "SRV005"
        assert rejected == 1 and accepted == 0

    def test_test_hooks_gated(self, make_service):
        async def main():
            svc = make_service(allow_test_hooks=False)
            await svc.start()
            try:
                return await svc.submit({"topo": "n16-pgft",
                                         "test_crash": True})
            finally:
                await svc.stop()

        out = run(main())
        assert out["status"] == "error"
        assert out["srv"][0]["code"] == "SRV005"
        assert "test hooks" in out["error"]

    def test_identical_inflight_requests_deduplicate(self, make_service):
        async def main():
            svc = make_service(workers=1)
            await svc.start()
            try:
                payload = {"topo": "n16-pgft", "test_delay_s": 0.3}
                outs = await asyncio.gather(*[
                    svc.submit(dict(payload)) for _ in range(5)])
                return outs, svc.metrics
            finally:
                await svc.stop()

        outs, metrics = run(main())
        assert all(o["status"] == "certified" for o in outs)
        assert metrics.accepted == 1
        assert metrics.dedup_hits == 4


class TestBackpressure:
    def test_overflow_sheds_with_retry_after(self, make_service):
        async def main():
            svc = make_service(workers=1, queue_capacity=2, high_water=1)
            await svc.start()
            try:
                blocker = asyncio.ensure_future(svc.submit(
                    {"topo": "n16-pgft", "test_delay_s": 0.5}))
                await asyncio.sleep(0.1)  # blocker now occupies the worker
                fillers = [asyncio.ensure_future(svc.submit(
                    {"topo": "n16-pgft", "order": "random",
                     "order_seed": seed})) for seed in range(2)]
                await asyncio.sleep(0.05)  # fillers now occupy the queue
                shed = await svc.submit({"topo": "n16-pgft",
                                         "order": "random",
                                         "order_seed": 99})
                rest = await asyncio.gather(blocker, *fillers)
                return shed, rest, svc.metrics.sheds
            finally:
                await svc.stop()

        shed, rest, sheds = run(main())
        assert shed["status"] == "shed"
        assert shed["srv"][0]["code"] == "SRV002"
        assert shed["retry_after_s"] > 0
        assert sheds == 1
        assert all(r["status"] in ("certified", "refuted") for r in rest)

    def test_pressure_degrades_both_to_symbolic(self, make_service):
        async def main():
            svc = make_service(workers=1, queue_capacity=8, high_water=1)
            await svc.start()
            try:
                blocker = asyncio.ensure_future(svc.submit(
                    {"topo": "n16-pgft", "test_delay_s": 0.4}))
                await asyncio.sleep(0.1)
                queued = [asyncio.ensure_future(svc.submit(
                    {"topo": "n16-pgft", "engine": "both",
                     "order": "random", "order_seed": seed}))
                    for seed in range(2)]
                outs = await asyncio.gather(blocker, *queued)
                cached = [p.name for p in svc.cache.root.iterdir()] \
                    if svc.cache.root.exists() else []
                return outs, svc.metrics.degraded, cached
            finally:
                await svc.stop()

        outs, degraded, cached = run(main())
        degraded_outs = [o for o in outs if o["degraded"]]
        assert degraded == len(degraded_outs) >= 1
        for out in degraded_outs:
            assert out["engine"] == "symbolic"
            assert any(d["code"] == "SRV004" for d in out["srv"])
            # degraded verdicts are never cached
            assert not any(out["request_digest"][:32] in name
                           for name in cached)


class TestFailureHandling:
    def test_crash_retry_then_quarantine(self, make_service):
        async def main():
            svc = make_service(poison_threshold=2)
            await svc.start()
            try:
                poisoned = await svc.submit({"topo": "n16-pgft",
                                             "test_crash": True})
                hit = await svc.submit({"topo": "n16-pgft",
                                        "test_crash": True})
                healthy = await svc.submit({"topo": "n16-pgft"})
                return poisoned, hit, healthy, svc.metrics
            finally:
                await svc.stop()

        poisoned, hit, healthy, metrics = run(main())
        assert poisoned["status"] == "error"
        assert poisoned["srv"][0]["code"] == "SRV001"
        assert poisoned["attempts"] == 2  # initial + one requeue
        assert hit["srv"][0]["code"] == "SRV001"  # admission-time refusal
        assert healthy["status"] == "certified"
        assert metrics.quarantined == 1
        assert metrics.quarantine_hits == 1
        assert metrics.pool.crashes == 2

    def test_retry_budget_exhausted_srv008(self, make_service):
        async def main():
            svc = make_service(
                poison_threshold=10,
                requeue=RequeuePolicy(max_retries=1, base_delay=0.01,
                                      jitter=0.0))
            await svc.start()
            try:
                out = await svc.submit({"topo": "n16-pgft",
                                        "test_crash": True})
                return out, svc.metrics.pool.retries
            finally:
                await svc.stop()

        out, retries = run(main())
        assert out["status"] == "error"
        assert out["srv"][0]["code"] == "SRV008"
        assert out["attempts"] == 2
        assert retries == 1

    def test_deadline_kills_worker_srv003(self, make_service):
        async def main():
            svc = make_service(workers=1)
            await svc.start()
            try:
                slow = await svc.submit({"topo": "n16-pgft",
                                         "test_delay_s": 10.0,
                                         "deadline_s": 0.2})
                after = await svc.submit({"topo": "n16-pgft"})
                return slow, after, svc.metrics.deadline_kills
            finally:
                await svc.stop()

        slow, after, kills = run(main())
        assert slow["status"] == "error"
        assert slow["srv"][0]["code"] == "SRV003"
        assert slow["elapsed_s"] < 5.0
        assert after["status"] == "certified"
        assert kills == 1


class TestLifecycle:
    def test_stop_answers_waiters_and_replays(self, make_service, tmp_path):
        async def main():
            svc = make_service(workers=1)
            await svc.start()
            tasks = [asyncio.ensure_future(svc.submit(
                {"topo": "n16-pgft", "test_delay_s": 1.5})),
                asyncio.ensure_future(svc.submit(
                    {"topo": "n16-pgft", "order": "rotate",
                     "order_seed": 4}))]
            await asyncio.sleep(0.15)
            await svc.stop()
            outs = await asyncio.gather(*tasks)

            svc2 = make_service(workers=2)
            await svc2.start()
            try:
                await _finished(svc2)
                return outs, svc2.metrics
            finally:
                await svc2.stop()

        outs, metrics = run(main())
        for out in outs:
            assert out["status"] == "error"
            assert out["srv"][0]["code"] == "SRV007"
        assert metrics.replayed == 2
        assert metrics.completed == 2
        assert metrics.certified == 2

    def test_drain_completes_backlog(self, make_service):
        async def main():
            svc = make_service()
            await svc.start()
            tasks = [asyncio.ensure_future(svc.submit(
                {"topo": "n16-pgft", "order": "rotate",
                 "order_seed": seed})) for seed in range(6)]
            await asyncio.sleep(0.05)
            report = await svc.drain(timeout_s=60.0)
            refused = await svc.submit({"topo": "n16-pgft",
                                        "order": "reversed"})
            outs = await asyncio.gather(*tasks)
            await svc.stop()
            return report, refused, outs

        report, refused, outs = run(main())
        assert report["drained"] is True and report["remaining"] == 0
        assert refused["srv"][0]["code"] == "SRV007"
        assert all(o["status"] in ("certified", "refuted") for o in outs)

    def test_status_shape(self, make_service):
        async def main():
            svc = make_service()
            await svc.start()
            try:
                await svc.submit({"topo": "n16-pgft"})
                return svc.status()
            finally:
                await svc.stop()

        st = run(main())
        assert st["status"] == "ok"
        assert st["queue"]["capacity"] == 256
        assert st["workers"]["size"] == 2
        assert len(st["workers"]["pids"]) == 2
        assert st["metrics"]["completed"] == 1
        assert st["metrics"]["pool"]["submitted"] == 1
        assert st["metrics"]["latency_p50_s"] > 0
        assert st["srv"][0]["code"] == "SRV090"
        assert st["cache"]["total_bytes"] > 0


class TestUnixSocket:
    def test_submit_status_over_socket(self, make_service, tmp_path):
        from repro.serve.protocol import decode_line, encode_line
        from repro.serve.service import serve_unix

        sock_path = os.path.join(tmp_path, "serve.sock")

        async def talk(reader, writer, message):
            writer.write(encode_line(message))
            await writer.drain()
            return decode_line(await reader.readline())

        async def main():
            svc = make_service()
            await svc.start()
            server = await serve_unix(svc, sock_path)
            try:
                reader, writer = await asyncio.open_unix_connection(
                    sock_path)
                ping = await talk(reader, writer, {"op": "ping"})
                sub = await talk(reader, writer, {
                    "op": "submit", "request": {"topo": "n16-pgft"}})
                status = await talk(reader, writer, {"op": "status"})
                bad = await talk(reader, writer, {"op": "warp"})
                stop = await talk(reader, writer, {"op": "stop"})
                writer.close()
                await writer.wait_closed()
                return ping, sub, status, bad, stop, svc.shutdown.is_set()
            finally:
                server.close()
                await server.wait_closed()
                await svc.stop()

        ping, sub, status, bad, stop, shut = run(main())
        assert ping["status"] == "ok"
        assert sub["status"] == "certified"
        assert status["metrics"]["completed"] == 1
        assert bad["status"] == "error" and "unknown op" in bad["error"]
        assert stop["stopping"] is True
        assert shut is True
