"""Crash-safe journal: durability, torn tails, compaction, round-trips."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import Journal, JournalRecord


def _accepted(seq, digest="d" * 8, request=None):
    return JournalRecord(op="accepted", seq=seq, digest=digest,
                         request=request or {"topo": "n324"})


class TestRecord:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown journal op"):
            JournalRecord(op="begin", seq=0, digest="d")
        with pytest.raises(ValueError, match="carry the request"):
            JournalRecord(op="accepted", seq=0, digest="d")
        with pytest.raises(ValueError, match="carry a status"):
            JournalRecord(op="done", seq=0, digest="d")
        with pytest.raises(ValueError, match="seq"):
            _accepted(-1)

    def test_from_json_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown journal field"):
            JournalRecord.from_json({"op": "done", "seq": 1, "digest": "d",
                                     "status": "ok", "extra": 1})


class TestReplay:
    def test_pending_survive_finished_do_not(self, tmp_path):
        j = Journal(tmp_path / "j.jsonl")
        j.accepted(0, "dig0", {"topo": "n324"})
        j.accepted(1, "dig1", {"topo": "n324", "order": "reversed"})
        j.done(0, "dig0", "certified")
        j.close()

        j2 = Journal(tmp_path / "j.jsonl")
        pending = j2.replay()
        assert [r.seq for r in pending] == [1]
        assert pending[0].request == {"topo": "n324", "order": "reversed"}
        assert j2.stats.finished == 1
        assert j2.stats.pending == 1
        assert j2.next_seq == 2

    def test_missing_file_is_empty(self, tmp_path):
        j = Journal(tmp_path / "absent.jsonl")
        assert j.replay() == []
        assert j.next_seq == 0

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = Journal(path)
        j.accepted(0, "dig0", {"topo": "n324"})
        j.accepted(1, "dig1", {"topo": "n324", "order": "reversed"})
        j.close()
        # Simulate a crash mid-append: truncate into the last record.
        raw = path.read_bytes()
        path.write_bytes(raw[:-10])

        pending = Journal(path).replay()
        assert [r.seq for r in pending] == [0]

    def test_corrupt_middle_line_counted_and_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = Journal(path)
        j.accepted(0, "dig0", {"topo": "n324"})
        j.close()
        with open(path, "ab") as fh:
            fh.write(b"!! not json !!\n")
        j.accepted(1, "dig1", {"topo": "n324", "order": "reversed"})
        j.close()

        j2 = Journal(path)
        pending = j2.replay()
        assert [r.seq for r in pending] == [0, 1]
        assert j2.stats.corrupt_lines == 1

    def test_append_after_replay_continues_sequence(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = Journal(path)
        j.accepted(0, "dig0", {"topo": "n324"})
        j.close()
        j2 = Journal(path)
        j2.replay()
        j2.accepted(j2.next_seq, "dig1", {"topo": "n324", "exclude": 1})
        j2.close()
        assert len(Journal(path).replay()) == 2


class TestCompaction:
    def test_compact_keeps_only_pending(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = Journal(path)
        for seq in range(6):
            j.accepted(seq, f"dig{seq}", {"topo": "n324",
                                          "order_seed": seq,
                                          "order": "random"})
            if seq % 2 == 0:
                j.done(seq, f"dig{seq}", "certified")
        pending = j.replay()
        j.compact(pending)
        assert j.stats.compactions == 1
        lines = [json.loads(x) for x in
                 path.read_text().strip().splitlines()]
        assert [x["seq"] for x in lines] == [1, 3, 5]
        assert all(x["op"] == "accepted" for x in lines)

    def test_compact_empty_truncates(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = Journal(path)
        j.accepted(0, "dig0", {"topo": "n324"})
        j.done(0, "dig0", "refuted")
        j.compact([])
        assert path.read_bytes() == b""
        assert Journal(path).replay() == []

    def test_no_temp_file_left(self, tmp_path):
        j = Journal(tmp_path / "j.jsonl")
        j.accepted(0, "dig0", {"topo": "n324"})
        j.compact(j.replay())
        assert [p.name for p in tmp_path.iterdir()] == ["j.jsonl"]


# -- property: journal records survive the disk round-trip ---------------
_request_values = st.one_of(st.integers(-1000, 1000), st.booleans(),
                            st.text(max_size=20), st.none())
_requests = st.dictionaries(st.text(min_size=1, max_size=12),
                            _request_values, max_size=6)
_records = st.one_of(
    st.builds(JournalRecord, op=st.just("accepted"),
              seq=st.integers(0, 10**9), digest=st.text(max_size=64),
              request=_requests),
    st.builds(JournalRecord, op=st.just("done"),
              seq=st.integers(0, 10**9), digest=st.text(max_size=64),
              status=st.sampled_from(("certified", "refuted", "vacuous",
                                      "error"))),
)


@settings(max_examples=60, deadline=None)
@given(records=st.lists(_records, max_size=12))
def test_journal_round_trip_property(tmp_path_factory, records):
    """Any record sequence replays to exactly the unmatched accepts."""
    path = tmp_path_factory.mktemp("journal") / "j.jsonl"
    j = Journal(path)
    for rec in records:
        j.append(rec)
    j.close()

    expected = {}
    for rec in records:
        if rec.op == "accepted":
            expected[rec.seq] = rec
        else:
            expected.pop(rec.seq, None)

    j2 = Journal(path)
    pending = j2.replay()
    assert j2.stats.corrupt_lines == 0
    assert [r.seq for r in pending] == sorted(expected)
    for rec in pending:
        assert rec == expected[rec.seq]
