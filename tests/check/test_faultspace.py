"""Fault-space static analyzer (RQL0xx): enumeration completeness,
incremental-vs-cold engine equivalence, quality scoring, the pipeline
pass and the SARIF emitter.

The load-bearing claims: (1) the enumerator covers *every* single
cable and switch of a fabric, (2) the incremental delta engine and
cold re-certification produce bit-identical records, and (3) adding
the fault-space machinery left the text/JSON CLI outputs of ordinary
runs untouched.
"""

import json

import numpy as np
import pytest

from repro.check import (
    CheckContext,
    ScheduleCase,
    enumerate_fault_units,
    flow_valleys,
    prepare_fault_cases,
    run_check,
    sample_fault_combos,
    sweep_fault_space,
    up_port_spread,
)
from repro.check.cli import main as check_main
from repro.check.diagnostics import CODES
from repro.check.faultspace import (
    FAULT_UNIT_KINDS,
    SWEEP_ENGINES,
    certify_prepared,
)
from repro.check.sarif import (
    FAMILY_ANCHORS,
    SARIF_VERSION,
    build_line_map,
    dumps_sarif,
    to_sarif,
)
from repro.collectives import shift
from repro.fabric import build_fabric
from repro.ordering import topology_order
from repro.routing import route_dmodk
from repro.topology import paper_topologies, pgft

SMALL_SPEC = "2; 4,4; 1,4; 1,1"    # 16 end-ports, 4 leaves + 4 spines


@pytest.fixture(scope="module")
def small():
    fab = build_fabric(pgft(2, [4, 4], [1, 4], [1, 1]))
    tables = route_dmodk(fab)
    return fab, tables, shift(fab.num_endports), \
        topology_order(fab.num_endports)


class TestEnumeration:
    def test_small_fabric_counts(self, small):
        fab, _, _, _ = small
        cables = enumerate_fault_units(fab, units="cable")
        switches = enumerate_fault_units(fab, units="switch")
        both = enumerate_fault_units(fab, units="both")
        # 16 host uplinks + 4 leaves x 4 spines = 32 cables; 8 switches.
        assert len(cables) == 32
        assert len(switches) == 8
        assert len(both) == 40

    def test_labels_unique_and_kinds(self, small):
        fab, _, _, _ = small
        units = enumerate_fault_units(fab)
        assert len({u.label for u in units}) == len(units)
        assert {u.kind for u in units} <= set(FAULT_UNIT_KINDS)
        for u in units:
            if u.kind == "cable":
                assert len(u.gports) == 2
                assert fab.port_peer[u.gports[0]] == u.gports[1]
            else:
                assert u.node >= fab.num_endports
                assert len(u.gports) >= 2

    def test_exclude_host_cables(self, small):
        fab, _, _, _ = small
        N = fab.num_endports
        sw = enumerate_fault_units(fab, units="cable",
                                   include_host_cables=False)
        assert len(sw) == 16
        for u in sw:
            assert all(int(fab.port_owner[g]) >= N for g in u.gports)

    def test_n324_single_fault_space_complete(self):
        """The paper fabric's whole single-fault space: every one of the
        648 cables and 27 switches is enumerated exactly once."""
        fab = build_fabric(paper_topologies()["n324"])
        cables = enumerate_fault_units(fab, units="cable")
        switches = enumerate_fault_units(fab, units="switch")
        assert len(cables) == 648
        assert len(switches) == 27
        assert len(enumerate_fault_units(fab)) == 675
        # Every live cable is covered: the units' gport pairs partition
        # the set of connected ports.
        covered = sorted(g for u in cables for g in u.gports)
        assert covered == sorted(np.flatnonzero(fab.port_peer >= 0).tolist())

    def test_bad_units_rejected(self, small):
        fab, _, _, _ = small
        with pytest.raises(ValueError, match="cable"):
            enumerate_fault_units(fab, units="nodes")


class TestSampling:
    def test_k1_is_exhaustive(self, small):
        fab, _, _, _ = small
        units = enumerate_fault_units(fab, units="cable")
        combos = sample_fault_combos(units, max_faults=1, samples=99)
        assert combos == tuple((u,) for u in units)

    def test_deterministic_and_distinct(self, small):
        fab, _, _, _ = small
        units = enumerate_fault_units(fab, units="cable")
        a = sample_fault_combos(units, max_faults=3, samples=8, seed=7)
        b = sample_fault_combos(units, max_faults=3, samples=8, seed=7)
        assert a == b
        keys = [tuple(u.label for u in c) for c in a]
        assert len(set(keys)) == len(keys)
        # exhaustive k=1 layer + 8 samples each at k=2 and k=3
        assert len(a) == len(units) + 16
        assert all(len(c) <= 3 for c in a)

    def test_seed_changes_samples(self, small):
        fab, _, _, _ = small
        units = enumerate_fault_units(fab, units="cable")
        a = sample_fault_combos(units, max_faults=2, samples=8, seed=0)
        b = sample_fault_combos(units, max_faults=2, samples=8, seed=1)
        assert a != b


class TestStaticQuality:
    def test_healthy_dmodk_meets_spread_bound(self, small):
        _, tables, _, _ = small
        for _node, _live, mx, bound in up_port_spread(tables):
            assert mx <= bound

    def test_healthy_routes_have_no_valleys(self, small):
        fab, tables, _, _ = small
        n = fab.num_endports
        src, dst = np.divmod(np.arange(n * n), n)
        assert len(flow_valleys(tables, src, dst)) == 0

    def test_swsw_fault_keeps_reachability_and_scores(self, small):
        fab, tables, _, _ = small
        unit = enumerate_fault_units(fab, units="cable",
                                     include_host_cables=False)[0]
        p, = prepare_fault_cases(tables, [(unit,)], strategy="balanced")
        assert p.repair.ok
        # 4 destination groups over 3 surviving up ports: pigeonhole
        # forces a doubled link somewhere.
        assert p.worst_multiplicity >= 2
        assert p.label == unit.label

    def test_host_cable_fault_loses_exactly_that_host(self, small):
        fab, tables, _, _ = small
        host_units = [u for u in enumerate_fault_units(fab, units="cable")
                      if any(int(fab.port_owner[g]) < fab.num_endports
                             for g in u.gports)]
        assert len(host_units) == 16
        p, = prepare_fault_cases(tables, [(host_units[3],)])
        assert len(p.repair.unreachable) == 1


class TestEngines:
    def test_incremental_matches_cold_bit_for_bit(self, small):
        fab, tables, cps, order = small
        units = enumerate_fault_units(fab, units="cable")
        prepared = prepare_fault_cases(tables, [(u,) for u in units],
                                       strategy="balanced")
        inc = certify_prepared(tables, prepared, cps, order,
                               engine="incremental")
        cold = certify_prepared(tables, prepared, cps, order, engine="cold")
        assert len(inc.records) == len(cold.records) == 32
        for a, b in zip(inc.records, cold.records):
            assert a.verdict == b.verdict, a.label
            assert a.stage_maxima == b.stage_maxima, a.label
            assert a.violation == b.violation, a.label
        assert inc.stages_touched > 0 and inc.flows_recomputed > 0

    def test_refuted_record_carries_counterexample(self, small):
        fab, tables, cps, order = small
        unit = enumerate_fault_units(fab, units="cable",
                                     include_host_cables=False)[0]
        prepared = prepare_fault_cases(tables, [(unit,)])
        res = certify_prepared(tables, prepared, cps, order)
        r, = res.records
        assert r.verdict == "refuted"
        v = r.violation
        assert v is not None and v["link_load"] >= 2
        assert v["stage"] == r.stage_maxima.index(max(r.stage_maxima))
        assert v["colliding_pairs"], "counterexample must name pairs"
        assert v["total_pairs"] >= len(v["colliding_pairs"])

    def test_leaf_switch_fault_is_disconnected_not_crash(self, small):
        """Killing a leaf switch (all of its hosts' only uplink) must
        yield a 'disconnected' record, never an exception."""
        fab, tables, cps, order = small
        N = fab.num_endports
        leaf = next(u for u in enumerate_fault_units(fab, units="switch")
                    if int(fab.node_level[u.node]) == 1)
        prepared = prepare_fault_cases(tables, [(leaf,)])
        res = certify_prepared(tables, prepared, cps, order)
        r, = res.records
        assert r.verdict == "disconnected"
        assert len(r.unreachable) == 4     # the leaf's whole host group
        assert all(h < N for h in r.unreachable)

    def test_unknown_engine_rejected(self, small):
        fab, tables, cps, order = small
        with pytest.raises(ValueError, match="engine"):
            certify_prepared(tables, [], cps, order, engine="warm")
        assert set(SWEEP_ENGINES) == {"incremental", "cold"}

    def test_sweep_driver_end_to_end(self, small):
        _, tables, cps, order = small
        res = sweep_fault_space(tables, cps, order, units="cable",
                                strategy="balanced")
        assert len(res.records) == 32
        counts = res.verdict_counts()
        assert counts == {"disconnected": 16, "refuted": 16}
        assert res.to_json()["num_faults"] == 32


class TestFaultSpacePass:
    def _run(self, small, **fs):
        fab, tables, cps, order = small
        ctx = CheckContext.for_tables(
            tables, routing_name="dmodk",
            schedule=[ScheduleCase(cps, order, label="shift/topology")])
        return run_check(ctx, fault_space=fs)

    def test_off_by_default(self, small):
        fab, tables, cps, order = small
        ctx = CheckContext.for_tables(
            tables, routing_name="dmodk",
            schedule=[ScheduleCase(cps, order, label="shift/topology")])
        result = run_check(ctx)
        assert "faultspace" not in result.artifacts
        assert not any(c.startswith("RQL") for c in result.report.counts)

    def test_emits_rql_codes_and_artifact(self, small):
        result = self._run(small, units="cable")
        sweep = result.artifacts["faultspace"]["shift/topology"]
        assert sweep["num_faults"] == 32
        codes = set(result.report.counts)
        # host cables disconnect (RQL002), sw-sw cables break the
        # certificate (RQL020) and the spread bound (RQL010), and the
        # sweep always summarises (RQL090).
        assert {"RQL002", "RQL010", "RQL020", "RQL090"} <= codes
        assert result.report.exit_code() == 1   # warnings, no errors

    def test_records_match_direct_sweep(self, small):
        fab, tables, cps, order = small
        result = self._run(small, units="cable")
        direct = sweep_fault_space(tables, cps, order, units="cable")
        assert result.artifacts["faultspace"]["shift/topology"] == \
            direct.to_json()


class TestCli:
    def _json_run(self, capsys, *extra):
        rc = check_main(["--spec", SMALL_SPEC, "--cps", "shift",
                         "--order", "topology", *extra])
        return rc, capsys.readouterr().out

    def test_json_output_unchanged_without_fault_space(self, capsys):
        """The legacy JSON surface is bit-stable: no fault-space key
        appears unless the sweep was requested."""
        rc, out = self._json_run(capsys, "--format", "json")
        assert rc == 0
        payload = json.loads(out)
        assert sorted(payload) == ["certificates", "diagnostics",
                                   "passes", "summary", "tool", "version"]

    def test_json_alias_agrees_with_format(self, capsys):
        _, via_flag = self._json_run(capsys, "--json")
        _, via_format = self._json_run(capsys, "--format", "json")
        assert via_flag == via_format

    def test_fault_space_json_payload(self, capsys):
        rc, out = self._json_run(capsys, "--format", "json",
                                 "--fault-space", "--fault-units", "cable")
        assert rc == 1      # RQL warnings
        sweep = json.loads(out)["faultspace"]["shift/topology"]
        assert sweep["num_faults"] == 32
        assert all(r["verdict"] in ("contention-free", "refuted",
                                    "disconnected")
                   for r in sweep["records"])

    def test_sarif_output_parses(self, capsys):
        rc, out = self._json_run(capsys, "--format", "sarif",
                                 "--fault-space", "--fault-units", "cable")
        assert rc == 1
        doc = json.loads(out)
        assert doc["version"] == SARIF_VERSION
        run, = doc["runs"]
        rules = {r["id"] for r in
                 run["tool"]["driver"]["rules"]}
        assert rules <= set(CODES)
        assert any(r.startswith("RQL") for r in rules)
        assert len(run["results"]) > 0


class TestSarifEmitter:
    def test_shape_and_rule_indexing(self, small):
        fab, tables, cps, order = small
        ctx = CheckContext.for_tables(
            tables, routing_name="dmodk",
            schedule=[ScheduleCase(cps, order, label="shift/topology")])
        result = run_check(ctx, fault_space={"units": "cable"})
        doc = to_sarif(result, artifact_uri="small.topo")
        run, = doc["runs"]
        rules = run["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == sorted({r["id"] for r in rules})
        assert len(run["results"]) == len(result.report.diagnostics)
        for res in run["results"]:
            rule = rules[res["ruleIndex"]]
            assert rule["id"] == res["ruleId"]
            assert res["level"] in ("error", "warning", "note")
            phys = res["locations"][0]["physicalLocation"]
            assert phys["artifactLocation"]["uri"] == "small.topo"
            region = phys["region"]
            assert region["startLine"] >= 1 and region["startColumn"] == 1

    def test_rules_link_checks_md(self, small):
        fab, tables, cps, order = small
        ctx = CheckContext.for_tables(
            tables, routing_name="dmodk",
            schedule=[ScheduleCase(cps, order, label="shift/topology")])
        result = run_check(ctx, fault_space={"units": "cable"})
        run, = to_sarif(result)["runs"]
        for rule in run["tool"]["driver"]["rules"]:
            assert rule["helpUri"].endswith(
                f"docs/CHECKS.md#{FAMILY_ANCHORS[rule['id'][:3]]}")

    def test_every_code_family_has_anchor(self):
        assert {c[:3] for c in CODES} == set(FAMILY_ANCHORS)

    def test_line_map_resolves_switch_regions(self, small):
        from repro.fabric.topofile import dumps as dump_topo
        fab, tables, cps, order = small
        text = dump_topo(fab)
        lines = build_line_map(text)
        assert lines  # every hca/switch declaration mapped
        name, lineno = next(iter(sorted(lines.items())))
        assert text.splitlines()[lineno - 1].split()[1] == name
        ctx = CheckContext.for_tables(
            tables, routing_name="dmodk",
            schedule=[ScheduleCase(cps, order, label="shift/topology")])
        result = run_check(ctx, fault_space={"units": "cable"})
        run, = to_sarif(result, line_map=lines)["runs"]
        located = [res for res in run["results"]
                   if res["locations"][0]["physicalLocation"]
                   ["region"]["startLine"] > 1]
        assert located, "no finding resolved to a declaration line"

    def test_dumps_round_trips(self, small):
        fab, tables, cps, order = small
        ctx = CheckContext.for_tables(tables, routing_name="dmodk")
        result = run_check(ctx)
        doc = json.loads(dumps_sarif(result))
        assert doc["version"] == SARIF_VERSION
        assert doc["runs"][0]["properties"]["summary"]["exit_code"] == 0
