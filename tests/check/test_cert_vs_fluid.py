"""Cross-validate certificates against the fluid simulator's router.

The certifier's per-stage link-load count must agree with what the
fluid simulator observes when it routes the same flows: both walk the
same forwarding tables, but through independent code paths (vectorised
segment walker vs. the simulator's cached scalar ``_route``).  The
acceptance bar from the issue: on >= 3 topologies, the certificate
verdict equals "fluid max link load == 1" for certified *and* refuted
configurations.
"""

import numpy as np
import pytest

from repro.check import CheckContext, ScheduleCase, run_check
from repro.collectives.cps import dissemination, shift
from repro.collectives.schedule import stage_flows
from repro.fabric import build_fabric
from repro.ordering import random_order, topology_order
from repro.routing import route_dmodk, route_random
from repro.sim.fluid import FluidSimulator
from repro.topology import pgft

TOPOLOGIES = {
    "rlft2": pgft(2, [4, 4], [1, 4], [1, 1]),
    "fig1": pgft(2, [4, 4], [1, 2], [1, 2]),
    "deep": pgft(3, [2, 2, 2], [1, 2, 2], [1, 1, 1]),
}


def fluid_stage_max(tables, cps, placement):
    """Max flows-per-link per stage, routed by the fluid simulator."""
    sim = FluidSimulator(tables)
    maxima = []
    for st in cps:
        src, dst = stage_flows(st, placement)
        loads = np.zeros(tables.fabric.num_ports, dtype=np.int64)
        for s, d in zip(src.tolist(), dst.tolist()):
            np.add.at(loads, sim._route(s, d), 1)
        maxima.append(int(loads.max()) if len(src) else 0)
    return maxima


def certifier_stage_max(tables, cps, placement, routing_name):
    case = ScheduleCase(cps, placement, "probe")
    ctx = CheckContext.for_tables(tables, routing_name=routing_name,
                                  schedule=[case])
    result = run_check(ctx)
    return result, result.artifacts["certifier_stage_max"]["probe"]


@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
def test_certified_configs_agree_with_fluid(name):
    tables = route_dmodk(build_fabric(TOPOLOGIES[name]))
    n = tables.fabric.num_endports
    order = topology_order(n)
    for cps in (shift(n), dissemination(n)):
        result, static = certifier_stage_max(tables, cps, order, "dmodk")
        fluid = fluid_stage_max(tables, cps, order)
        assert static == fluid
        assert max(fluid) == 1
        assert any(c["cps"] == cps.name for c in result.certificates)


@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
def test_refuted_random_order_agrees_with_fluid(name):
    tables = route_dmodk(build_fabric(TOPOLOGIES[name]))
    n = tables.fabric.num_endports
    order = random_order(n, seed=11)
    cps = shift(n)
    result, static = certifier_stage_max(tables, cps, order, "dmodk")
    fluid = fluid_stage_max(tables, cps, order)
    assert static == fluid
    assert max(fluid) > 1                      # genuinely contended
    assert result.certificates == []
    assert "CFC001" in result.report.codes()


def test_refuted_random_routing_agrees_with_fluid():
    fab = build_fabric(TOPOLOGIES["rlft2"])
    tables = route_random(fab, seed=9)
    n = fab.num_endports
    order = topology_order(n)
    cps = dissemination(n)
    result, static = certifier_stage_max(tables, cps, order, "random")
    fluid = fluid_stage_max(tables, cps, order)
    assert static == fluid
    assert max(fluid) > 1
    assert result.certificates == []
