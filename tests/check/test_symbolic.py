"""Symbolic certification engine (SYM0xx): closed form vs enumeration.

The load-bearing claim is bit-for-bit equivalence with the enumerating
certifier -- same per-stage maxima, same offending global port ids, same
argmax tie-breaks -- across topology shapes, placements, CPS families
and partial populations.  Everything else (incremental modes, the
differential pass, CLI plumbing) builds on that equivalence.
"""

import numpy as np
import pytest

from repro.analysis.hsd import walk_flow_links
from repro.check import (
    CheckContext,
    ScheduleCase,
    SymbolicCertifier,
    canonical_peer,
    run_check,
    symbolic_flow_links,
    symbolic_stage_max,
)
from repro.check.symbolic import EngineAgreementPass, decode_link
from repro.collectives.cps import (
    binomial,
    dissemination,
    recursive_doubling,
    ring,
    shift,
)
from repro.collectives.schedule import stage_flows
from repro.fabric import build_fabric
from repro.fabric.lft import ForwardingTables
from repro.ordering import random_order, topology_order, topology_subset
from repro.ordering.adversarial import adversarial_ring_order
from repro.routing import route_dmodk
from repro.routing.dmodk import dense_ranks
from repro.routing.repair import repair_tables
from repro.topology import pgft

TOPOLOGIES = {
    "rlft2": pgft(2, [4, 4], [1, 4], [1, 1]),
    "fig1": pgft(2, [4, 4], [1, 2], [1, 2]),
    "deep": pgft(3, [2, 2, 2], [1, 2, 2], [1, 1, 1]),
    "oblong": pgft(3, [3, 2, 4], [1, 3, 2], [1, 1, 1]),   # non-pow2 N=24
    "multirail": pgft(2, [4, 3], [2, 4], [2, 3]),          # p_1 = 2 hosts
}

CPS_FACTORIES = {
    "shift": shift,
    "ring": ring,
    "dissemination": dissemination,
    "recursive-doubling": recursive_doubling,
    "binomial": binomial,
}


def link_multisets(flow_idx, gports, num_flows):
    """Per-flow sorted link lists -- order-insensitive path comparison."""
    out = [[] for _ in range(num_flows)]
    for f, g in zip(flow_idx.tolist(), gports.tolist()):
        out[f].append(g)
    return [sorted(links) for links in out]


def enumerated_maxima(tables, cps, placement):
    """The enumerating certifier's per-stage maxima, dense-counted."""
    maxima = []
    for st in cps:
        src, dst = stage_flows(st, placement)
        if len(src) == 0:
            maxima.append(0)
            continue
        _, gports = walk_flow_links(tables, src, dst)
        loads = np.zeros(tables.fabric.num_ports, dtype=np.int64)
        np.add.at(loads, gports, 1)
        maxima.append(int(loads.max()))
    return maxima


# ----------------------------------------------------------------------
# Closed form == table walk, link for link
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
def test_flow_links_match_table_walk(name):
    spec = TOPOLOGIES[name]
    tables = route_dmodk(build_fabric(spec))
    n = spec.num_endports
    src, dst = np.divmod(np.arange(n * n, dtype=np.int64), n)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    fi_w, gp_w = walk_flow_links(tables, src, dst)
    fi_s, gp_s = symbolic_flow_links(spec, src, dst)
    assert link_multisets(fi_s, gp_s, len(src)) == \
        link_multisets(fi_w, gp_w, len(src))


@pytest.mark.parametrize("name", ["rlft2", "deep", "multirail"])
def test_flow_links_match_under_partial_population(name):
    spec = TOPOLOGIES[name]
    n = spec.num_endports
    active = topology_subset(n, n // 4, seed=7)
    tables = route_dmodk(build_fabric(spec), active=active)
    ridx = dense_ranks(n, active)
    rng = np.random.default_rng(1)
    src = rng.choice(active, size=60)
    dst = rng.choice(active, size=60)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    fi_w, gp_w = walk_flow_links(tables, src, dst)
    fi_s, gp_s = symbolic_flow_links(spec, src, dst, ridx)
    assert link_multisets(fi_s, gp_s, len(src)) == \
        link_multisets(fi_w, gp_w, len(src))


@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
def test_canonical_peer_matches_fabric(name):
    spec = TOPOLOGIES[name]
    fab = build_fabric(spec)
    for gp in range(fab.num_ports):
        assert canonical_peer(spec, gp) == int(fab.port_peer[gp]), gp


@pytest.mark.parametrize("name", ["rlft2", "deep"])
def test_decode_link_names_match_fabric(name):
    spec = TOPOLOGIES[name]
    fab = build_fabric(spec)
    for gp in range(fab.num_ports):
        d = decode_link(spec, gp)
        owner = int(fab.port_owner[gp])
        assert d["owner"] == fab.node_names[owner]
        assert d["port"] == gp - int(fab.port_start[owner])


def test_decode_link_rejects_out_of_range():
    spec = TOPOLOGIES["rlft2"]
    with pytest.raises(ValueError, match="outside"):
        decode_link(spec, build_fabric(spec).num_ports)


# ----------------------------------------------------------------------
# Cross-validation matrix: every (order, CPS) verdict and counterexample
# ----------------------------------------------------------------------
def _order(kind, spec, n):
    if kind == "topology":
        return topology_order(n)
    if kind == "reversed":
        return topology_order(n)[::-1].copy()
    if kind == "random":
        return random_order(n, seed=5)
    try:
        return adversarial_ring_order(spec)
    except ValueError:
        pytest.skip("no adversarial order for this shape")


@pytest.mark.parametrize("topo", sorted(TOPOLOGIES))
@pytest.mark.parametrize("order_kind",
                         ["topology", "reversed", "random", "adversarial"])
@pytest.mark.parametrize("cps_name", sorted(CPS_FACTORIES))
def test_engines_agree(topo, order_kind, cps_name):
    """The whole matrix: both engines, same maxima, same counterexample
    links, SYM090 silent.  Covers pow2 and non-pow2 rank counts,
    contention-free and refuted cases alike."""
    spec = TOPOLOGIES[topo]
    tables = route_dmodk(build_fabric(spec))
    n = spec.num_endports
    order = _order(order_kind, spec, n)
    cps = CPS_FACTORIES[cps_name](n)
    case = ScheduleCase(cps, order, f"{cps_name}/{order_kind}")
    ctx = CheckContext.for_tables(tables, routing_name="dmodk",
                                  schedule=[case])
    result = run_check(ctx, only={"certify", "symbolic-certify",
                                  "differential"}, engine="both")
    assert "SYM090" not in result.report.codes(), result.report.render_text()
    enum = result.artifacts["certifier_stage_max"][case.name()]
    sym = result.artifacts["symbolic_stage_max"][case.name()]
    assert enum == sym
    assert result.artifacts["differential_cases"] == 1
    e_cfc = {d.data["stage"]: d.data for d in result.report.by_code("CFC001")}
    s_sym = {d.data["stage"]: d.data for d in result.report.by_code("SYM001")}
    assert set(e_cfc) == set(s_sym)
    for stage, e in e_cfc.items():
        s = s_sym[stage]
        assert e["gport"] == s["gport"]
        assert e["link_load"] == s["link_load"]
        assert e["colliding_pairs"] == s["colliding_pairs"]
        assert e["total_pairs"] == s["total_pairs"]
    if max(enum, default=0) <= 1 and sum(enum):
        kinds = {c["certificate_kind"] for c in result.certificates}
        assert kinds == {"enumerated", "symbolic"}


@pytest.mark.parametrize("topo", ["rlft2", "deep", "oblong"])
@pytest.mark.parametrize("excl", [1, 3])
def test_engines_agree_contx_partial_population(topo, excl):
    """Cont.-X: job-aware D-Mod-K on a partially populated tree; both
    engines must still coincide (dense active ranks drive eq. (1))."""
    spec = TOPOLOGIES[topo]
    n = spec.num_endports
    active = topology_subset(n, excl, seed=excl)
    tables = route_dmodk(build_fabric(spec), active=active)
    order = np.sort(np.asarray(active, dtype=np.int64))
    cases = [ScheduleCase(shift(len(order)), order, "shift/contx"),
             ScheduleCase(dissemination(len(order)), order, "diss/contx")]
    ctx = CheckContext.for_tables(tables, routing_name="dmodk",
                                  schedule=cases)
    result = run_check(ctx, only={"certify", "symbolic-certify",
                                  "differential"}, engine="both",
                       symbolic_active=active)
    assert "SYM090" not in result.report.codes(), result.report.render_text()
    assert result.artifacts["certifier_stage_max"] == \
        result.artifacts["symbolic_stage_max"]
    e_cfc = {(d.data["case"], d.data["stage"]): d.data["gport"]
             for d in result.report.by_code("CFC001")}
    s_sym = {(d.data["case"], d.data["stage"]): d.data["gport"]
             for d in result.report.by_code("SYM001")}
    assert e_cfc == s_sym
    # Either verdict is fine (a wrapped displacement mod n_active can
    # legitimately collide); what matters is that certificates come in
    # matched enumerated/symbolic pairs when the case is clean.
    by_kind = {"enumerated": set(), "symbolic": set()}
    for c in result.certificates:
        by_kind[c["certificate_kind"]].add(c["case"])
    assert by_kind["enumerated"] == by_kind["symbolic"]


def test_symbolic_stage_max_helper():
    spec = TOPOLOGIES["rlft2"]
    n = spec.num_endports
    i = np.arange(n, dtype=np.int64)
    assert symbolic_stage_max(spec, i, (i + 1) % n) == 1
    assert symbolic_stage_max(spec, i, i) == 0   # all dropped


# ----------------------------------------------------------------------
# Symbolic-only pipeline (no tables at all)
# ----------------------------------------------------------------------
def test_symbolic_engine_runs_without_tables():
    spec = TOPOLOGIES["rlft2"]
    fab = build_fabric(spec)
    n = spec.num_endports
    ctx = CheckContext(fabric=fab, tables=None, routing_name="dmodk",
                       schedule=[ScheduleCase(shift(n), topology_order(n),
                                              "shift/topology")])
    result = run_check(ctx, engine="symbolic")
    assert result.exit_code() == 0, result.report.render_text()
    assert "certify" not in result.passes_run      # needs tables, skipped
    assert "symbolic-certify" in result.passes_run
    (cert,) = result.certificates
    assert cert["certificate_kind"] == "symbolic"
    assert cert["version"] == 2
    assert cert["verdict"] == "contention-free"
    for key in ("spec_digest", "cps_digest", "placement_digest",
                "active_digest"):
        assert key in cert
    assert "tables_digest" not in cert


def test_symbolic_counterexample_loc_names_real_switch():
    spec = TOPOLOGIES["rlft2"]
    fab = build_fabric(spec)
    n = spec.num_endports
    order = random_order(n, seed=4)
    ctx = CheckContext(fabric=fab, tables=None, routing_name="dmodk",
                       schedule=[ScheduleCase(shift(n), order, "shift/rand")])
    result = run_check(ctx, engine="symbolic")
    assert result.exit_code() == 2
    diags = result.report.by_code("SYM001")
    assert diags
    d = diags[0]
    gp = d.data["gport"]
    assert d.loc.switch == fab.node_names[int(fab.port_owner[gp])]
    assert d.loc.stage == d.data["stage"]
    assert d.data["total_pairs"] == d.data["link_load"]
    assert d.data["pairs_truncated"] == (d.data["total_pairs"] > 8)
    assert len(d.data["colliding_pairs"]) == min(d.data["total_pairs"], 8)


def test_sym002_vacuous_schedule():
    spec = TOPOLOGIES["rlft2"]
    n = spec.num_endports
    ctx = CheckContext(fabric=build_fabric(spec), routing_name="dmodk",
                       schedule=[ScheduleCase(
                           shift(n), np.full(n, -1, dtype=np.int64),
                           "shift/empty")])
    result = run_check(ctx, engine="symbolic")
    assert "SYM002" in result.report.codes()
    assert result.exit_code() == 0
    assert result.certificates == []


def test_sym010_wrong_routing_or_missing_spec():
    from repro.routing import route_random
    spec = TOPOLOGIES["rlft2"]
    fab = build_fabric(spec)
    n = spec.num_endports
    sched = [ScheduleCase(ring(n), topology_order(n), "ring")]
    tables = route_random(fab, seed=0)
    ctx = CheckContext.for_tables(tables, routing_name="random",
                                  schedule=sched)
    result = run_check(ctx, only={"symbolic-certify"}, engine="symbolic")
    assert "SYM010" in result.report.codes()
    assert result.certificates == []

    bare = build_fabric(spec)
    bare.spec = None
    ctx = CheckContext(fabric=bare, routing_name="dmodk", schedule=sched)
    result = run_check(ctx, only={"symbolic-certify"}, engine="symbolic")
    assert "SYM010" in result.report.codes()


def test_sym090_fires_on_forged_disagreement():
    """The differential pass itself: feed it artifacts that disagree."""
    spec = TOPOLOGIES["rlft2"]
    ctx = CheckContext(fabric=build_fabric(spec))
    ctx.artifacts["certifier_stage_max"] = {"c": [1, 2]}
    ctx.artifacts["symbolic_stage_max"] = {"c": [1, 1]}
    from repro.check.diagnostics import DiagnosticReport
    report = DiagnosticReport()
    EngineAgreementPass().run(ctx, report)
    assert "SYM090" in report.codes()
    assert ctx.artifacts["differential_cases"] == 1


def test_differential_pass_silent_when_one_engine_missing():
    spec = TOPOLOGIES["rlft2"]
    ctx = CheckContext(fabric=build_fabric(spec))
    ctx.artifacts["symbolic_stage_max"] = {"c": [1]}
    from repro.check.diagnostics import DiagnosticReport
    report = DiagnosticReport()
    EngineAgreementPass().run(ctx, report)
    assert len(report) == 0


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="unknown engine"):
        run_check(CheckContext(fabric=build_fabric(TOPOLOGIES["rlft2"])),
                  engine="quantum")


# ----------------------------------------------------------------------
# Incremental re-certification
# ----------------------------------------------------------------------
class TestIncremental:
    def test_placement_delta_matches_full_recompute(self):
        spec = TOPOLOGIES["rlft2"]
        n = spec.num_endports
        cert = SymbolicCertifier(spec)
        order = topology_order(n)
        _, state = cert.certify(shift(n), order)
        swapped = order.copy()
        swapped[[2, 9]] = swapped[[9, 2]]
        res, new_state, stats = cert.recertify(state, placement=swapped)
        full, _ = cert.certify(shift(n), swapped)
        assert res.maxima == full.maxima
        assert res.verdict == full.verdict
        assert stats.flows_recomputed < stats.flows_total
        assert stats.stages_touched <= stats.stages_total
        # the returned state must itself be a valid baseline
        res2, _, stats2 = cert.recertify(new_state, placement=order)
        base, _ = cert.certify(shift(n), order)
        assert res2.maxima == base.maxima

    def test_noop_delta_touches_nothing(self):
        spec = TOPOLOGIES["deep"]
        n = spec.num_endports
        cert = SymbolicCertifier(spec)
        _, state = cert.certify(dissemination(n), topology_order(n))
        res, _, stats = cert.recertify(state)
        assert stats.stages_touched == 0
        assert stats.flows_recomputed == 0
        full, _ = cert.certify(dissemination(n), topology_order(n))
        assert res.maxima == full.maxima

    def test_active_set_delta_matches_fresh_certifier(self):
        spec = TOPOLOGIES["rlft2"]
        n = spec.num_endports
        active = np.arange(n - 2, dtype=np.int64)
        cert = SymbolicCertifier(spec, active)
        order = np.r_[active, [-1, -1]]
        cps = dissemination(n)
        _, state = cert.certify(cps, order)
        shrunk = active[:-1]
        order2 = np.r_[shrunk, [-1, -1, -1]]
        res, _, stats = cert.recertify(state, placement=order2, active=shrunk)
        fresh = SymbolicCertifier(spec, shrunk)
        full, _ = fresh.certify(cps, order2)
        assert res.maxima == full.maxima
        assert stats.flows_recomputed < stats.flows_total

    @pytest.mark.parametrize("name", ["rlft2", "deep"])
    def test_link_failure_matches_repaired_walk(self, name):
        spec = TOPOLOGIES[name]
        fab = build_fabric(spec)
        n = spec.num_endports
        tables = route_dmodk(fab)
        cert = SymbolicCertifier(spec)
        cps = shift(n)
        _, state = cert.certify(cps, topology_order(n))
        # kill one level-1 up cable (redundant spine; repairable)
        dead = [int(fab.port_start[n] + spec.down_ports_at(1) + 1)]
        fab_d = fab.with_failed_cables(dead)
        stale = ForwardingTables(
            fabric=fab_d, switch_out=tables.switch_out.copy(),
            host_up=None if tables.host_up is None
            else tables.host_up.copy())
        rep = repair_tables(stale, fab_d)
        assert rep.ok
        res, stats = cert.recertify_link_failure(state, rep.tables, dead)
        ref = enumerated_maxima(rep.tables, cps, topology_order(n))
        assert res.maxima == ref
        assert stats.flows_recomputed < stats.flows_total
        # rerouted flows now share links: the degradation is visible
        assert res.max_link_load >= 2
        assert res.violations

    def test_link_failure_dead_peer_names_same_cable(self):
        """Naming either end of the cable selects the same flows."""
        spec = TOPOLOGIES["rlft2"]
        fab = build_fabric(spec)
        n = spec.num_endports
        tables = route_dmodk(fab)
        cert = SymbolicCertifier(spec)
        _, state = cert.certify(shift(n), topology_order(n))
        up_end = int(fab.port_start[n] + spec.down_ports_at(1) + 1)
        down_end = canonical_peer(spec, up_end)
        fab_d = fab.with_failed_cables([up_end])
        stale = ForwardingTables(
            fabric=fab_d, switch_out=tables.switch_out.copy(),
            host_up=None if tables.host_up is None
            else tables.host_up.copy())
        rep = repair_tables(stale, fab_d)
        res_a, _ = cert.recertify_link_failure(state, rep.tables, [up_end])
        res_b, _ = cert.recertify_link_failure(state, rep.tables, [down_end])
        assert res_a.maxima == res_b.maxima


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
class TestCli:
    def test_engine_symbolic_certifies_table_free(self, tmp_path, capsys):
        import json

        from repro.check.cli import main
        cert_out = str(tmp_path / "certs.json")
        rc = main(["--spec", "2; 4,4; 1,4; 1,1", "--engine", "symbolic",
                   "--cps", "shift,ring", "--order", "topology",
                   "--cert-out", cert_out])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[symbolic]" in out
        certs = json.loads(open(cert_out).read())
        assert {c["certificate_kind"] for c in certs} == {"symbolic"}
        assert len(certs) == 2

    def test_engine_both_agrees_and_refutes_random(self, capsys):
        from repro.check.cli import main
        rc = main(["--spec", "2; 4,4; 1,4; 1,1", "--engine", "both",
                   "--cps", "shift", "--order", "random"])
        assert rc == 2
        out = capsys.readouterr().out
        assert "CFC001" in out and "SYM001" in out
        assert "SYM090" not in out

    def test_exclude_contx(self, capsys):
        from repro.check.cli import main
        rc = main(["--spec", "2; 4,4; 1,4; 1,1", "--engine", "both",
                   "--cps", "ring", "--exclude", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[enumerated]" in out and "[symbolic]" in out

    def test_symbolic_rejects_foreign_routing(self):
        from repro.check.cli import main
        with pytest.raises(SystemExit, match="symbolic"):
            main(["--spec", "2; 4,4; 1,4; 1,1", "--engine", "symbolic",
                  "--routing", "random", "--cps", "ring"])
        with pytest.raises(SystemExit, match="both"):
            main(["--spec", "2; 4,4; 1,4; 1,1", "--engine", "both",
                  "--routing", "minhop", "--cps", "ring"])

    def test_exclude_must_leave_an_active_port(self):
        from repro.check.cli import main
        with pytest.raises(SystemExit, match="exclude"):
            main(["--spec", "2; 4,4; 1,4; 1,1", "--cps", "ring",
                  "--exclude", "16"])
