"""Wiring lint (FAB0xx) over corrupted fabric models."""

import numpy as np
import pytest

from repro.check import (
    CheckContext,
    DiagnosticReport,
    Severity,
    SpecConformancePass,
    WiringLintPass,
    run_check,
)
from repro.fabric import build_fabric
from repro.fabric.model import Fabric
from repro.topology import pgft


def rewired(fab, peer, spec="keep"):
    """Copy ``fab`` with a different port_peer array."""
    return Fabric(
        num_endports=fab.num_endports,
        node_level=fab.node_level.copy(),
        port_start=fab.port_start,
        port_peer=peer,
        spec=fab.spec if spec == "keep" else spec,
        node_names=list(fab.node_names),
    )


def lint(fab, passes=None):
    ctx = CheckContext(fabric=fab)
    report = DiagnosticReport()
    for p in passes or [WiringLintPass(), SpecConformancePass()]:
        if p.applicable(ctx):
            p.run(ctx, report)
    return report


@pytest.fixture
def fab():
    return build_fabric(pgft(2, [4, 4], [1, 2], [1, 2]))


class TestCleanFabric:
    def test_no_findings(self, fab):
        assert len(lint(fab)) == 0

    def test_every_paper_shape_clean(self, any_spec):
        assert len(lint(build_fabric(any_spec))) == 0


class TestFab001Asymmetry:
    def test_one_sided_edit_flagged(self, fab):
        peer = fab.port_peer.copy()
        up = int(np.flatnonzero(peer >= 0)[0])
        peer[up] = int(np.flatnonzero(peer >= 0)[-1])  # point elsewhere
        report = lint(rewired(fab, peer), passes=[WiringLintPass()])
        assert "FAB001" in report.codes()


class TestFab002Duplicates:
    def test_duplicate_name_flagged(self, fab):
        names = list(fab.node_names)
        names[-1] = names[-2]
        dup = Fabric(num_endports=fab.num_endports,
                     node_level=fab.node_level.copy(),
                     port_start=fab.port_start,
                     port_peer=fab.port_peer.copy(),
                     spec=fab.spec, node_names=names)
        report = lint(dup, passes=[WiringLintPass()])
        assert "FAB002" in report.codes()


class TestFab004Dangling:
    def test_degraded_with_spec_is_error(self, fab):
        ups = np.flatnonzero(fab.port_goes_up()
                             & (fab.port_owner >= fab.num_endports))
        deg = fab.with_failed_cables(ups[[0]])
        report = lint(deg, passes=[WiringLintPass()])
        diags = report.by_code("FAB004")
        assert len(diags) == 2  # both cable ends
        assert all(d.severity == Severity.ERROR for d in diags)

    def test_degraded_without_spec_is_warning(self, fab):
        ups = np.flatnonzero(fab.port_goes_up()
                             & (fab.port_owner >= fab.num_endports))
        deg = rewired(fab.with_failed_cables(ups[[0]]),
                      fab.with_failed_cables(ups[[0]]).port_peer, spec=None)
        diags = lint(deg, passes=[WiringLintPass()]).by_code("FAB004")
        assert diags and all(d.severity == Severity.WARNING for d in diags)


class TestFab006DeadHost:
    def test_unhosted_endport_flagged(self, fab):
        host_port = int(fab.ports_of(0)[0])
        deg = fab.with_failed_cables([host_port])
        report = lint(deg, passes=[WiringLintPass()])
        assert "FAB006" in report.codes()
        assert report.by_code("FAB006")[0].loc.lid == 0


class TestFab005SpecConformance:
    def test_crossed_cables_across_spines(self, fab):
        n = fab.num_endports
        ups = np.flatnonzero(fab.port_goes_up() & (fab.port_owner >= n))
        owners = fab.port_owner[ups]
        spines = fab.port_owner[fab.port_peer[ups]]
        a = int(ups[0])
        sel = np.flatnonzero((owners != owners[0]) & (spines != spines[0]))
        b = int(ups[sel[0]])
        peer = fab.port_peer.copy()
        pa, pb = int(peer[a]), int(peer[b])
        peer[a], peer[pb] = pb, a
        peer[b], peer[pa] = pa, b
        report = lint(rewired(fab, peer))
        assert "FAB005" in report.codes()

    def test_declared_spec_mismatch(self, fab):
        lying = rewired(fab, fab.port_peer.copy(),
                        spec=pgft(2, [4, 4], [1, 4], [1, 1]))
        report = lint(lying, passes=[SpecConformancePass()])
        assert "FAB005" in report.codes()
        assert "declares" in report.by_code("FAB005")[0].message


class TestPipelineOnBareFabric:
    def test_table_passes_skipped(self, fab):
        result = run_check(CheckContext(fabric=fab))
        assert result.passes_run == ["wiring", "spec-conformance"]
        assert result.exit_code() == 0
        assert result.certificates == []
