"""FLT0xx fault-schedule lint: every code fires; clean schedules pass."""

import numpy as np
import pytest

from repro.check import CheckContext, FaultSchedulePass, run_check
from repro.faults import FaultEvent, FaultSchedule
from repro.faults.schedule import FLAKY, LINK_DOWN, LINK_UP, SWITCH_DOWN


def _sw_up_gport(fab):
    up = np.flatnonzero(fab.port_goes_up()
                        & (fab.port_owner >= fab.num_endports)
                        & (fab.port_peer >= 0))
    return int(up[0])


def _lint(tables, faults):
    ctx = CheckContext.for_tables(tables, faults=faults)
    return run_check(ctx, only={"faults"}, certify=False)


class TestEachCode:
    def test_flt001_gport_out_of_range(self, fig1_tables):
        faults = FaultSchedule(events=(
            FaultEvent(time=1.0, kind=LINK_DOWN, gport=10**6),))
        res = _lint(fig1_tables, faults)
        assert res.report.codes() == ["FLT001"]

    def test_flt002_unwired_port(self, fig1_tables):
        # Kill a cable first so the fabric has a wire-less port, then
        # lint a schedule naming it against the degraded fabric.
        fab = fig1_tables.fabric
        gp = _sw_up_gport(fab)
        degraded = fab.with_failed_cables([gp])
        from repro.routing.repair import repair_tables

        rep = repair_tables(fig1_tables, degraded)
        faults = FaultSchedule(events=(
            FaultEvent(time=1.0, kind=LINK_DOWN, gport=gp),))
        res = _lint(rep.tables, faults)
        assert res.report.codes() == ["FLT002"]

    def test_flt003_node_out_of_range(self, fig1_tables):
        faults = FaultSchedule(events=(
            FaultEvent(time=1.0, kind=SWITCH_DOWN, node=10**6),))
        res = _lint(fig1_tables, faults)
        assert res.report.codes() == ["FLT003"]

    def test_flt004_switch_down_on_host(self, fig1_tables):
        faults = FaultSchedule(events=(
            FaultEvent(time=1.0, kind=SWITCH_DOWN, node=0),))
        res = _lint(fig1_tables, faults)
        assert res.report.codes() == ["FLT004"]

    def test_flt005_link_up_noop(self, fig1_tables):
        gp = _sw_up_gport(fig1_tables.fabric)
        faults = FaultSchedule(events=(
            FaultEvent(time=1.0, kind=LINK_UP, gport=gp),))
        res = _lint(fig1_tables, faults)
        assert res.report.codes() == ["FLT005"]

    def test_flt006_redundant_down(self, fig1_tables):
        gp = _sw_up_gport(fig1_tables.fabric)
        faults = FaultSchedule(events=(
            FaultEvent(time=1.0, kind=LINK_DOWN, gport=gp),
            FaultEvent(time=2.0, kind=LINK_DOWN, gport=gp),))
        res = _lint(fig1_tables, faults)
        assert res.report.codes() == ["FLT006"]

    def test_flt006_dead_switch_cable(self, fig1_tables):
        fab = fig1_tables.fabric
        node = fab.num_endports
        gp = next(int(g) for g in fab.ports_of(node)
                  if fab.port_peer[g] >= 0)
        faults = FaultSchedule(events=(
            FaultEvent(time=1.0, kind=SWITCH_DOWN, node=node),
            FaultEvent(time=2.0, kind=LINK_UP, gport=gp),))
        res = _lint(fig1_tables, faults)
        assert res.report.codes() == ["FLT006"]

    def test_flt007_shadowed_flaky(self, fig1_tables):
        gp = _sw_up_gport(fig1_tables.fabric)
        faults = FaultSchedule(events=(
            FaultEvent(time=1.0, kind=LINK_DOWN, gport=gp),
            FaultEvent(time=5.0, kind=FLAKY, gport=gp, until=8.0, loss=0.5),))
        res = _lint(fig1_tables, faults)
        assert res.report.codes() == ["FLT007"]

    def test_flaky_before_death_not_shadowed(self, fig1_tables):
        gp = _sw_up_gport(fig1_tables.fabric)
        faults = FaultSchedule(events=(
            FaultEvent(time=1.0, kind=FLAKY, gport=gp, until=8.0, loss=0.5),
            FaultEvent(time=5.0, kind=LINK_DOWN, gport=gp),
            FaultEvent(time=20.0, kind=LINK_UP, gport=gp),))
        res = _lint(fig1_tables, faults)
        assert res.report.codes() == []


class TestPipelineWiring:
    def test_clean_schedule_no_findings(self, fig1_tables):
        fab = fig1_tables.fabric
        faults = FaultSchedule.random(fab, seed=2, horizon=200.0, mtbf=40.0)
        res = _lint(fig1_tables, faults)
        assert len(res.report) == 0
        assert "faults" in res.passes_run

    def test_skipped_without_schedule(self, fig1_tables):
        ctx = CheckContext.for_tables(fig1_tables)
        res = run_check(ctx, only={"faults"}, certify=False)
        assert "faults" not in res.passes_run

    def test_needs_faults_flag(self):
        assert FaultSchedulePass.needs_faults is True

    def test_random_schedules_lint_clean(self, fig1_tables):
        """The generator only draws faults that exist on the fabric, so
        FLT001/002/003 never fire on its output (warnings like FLT006
        redundancy can legitimately occur)."""
        fab = fig1_tables.fabric
        for seed in range(10):
            faults = FaultSchedule.random(fab, seed=seed, horizon=300.0,
                                          mtbf=20.0)
            res = _lint(fig1_tables, faults)
            assert not res.report.has_errors
