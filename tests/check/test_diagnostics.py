"""Diagnostic framework: codes, severities, emitters, exit codes."""

import json
import re
from pathlib import Path

import pytest

from repro.check import CODES, Diagnostic, DiagnosticReport, Loc, Severity
from repro.check.diagnostics import describe_code

DOCS = Path(__file__).resolve().parents[2] / "docs"

CODE_RE = re.compile(r"\b(?:FAB|RTE|SCH|CFC|FLT|SYM|RQL|ISO|SRV)\d{3}\b")


class TestCatalogue:
    def test_all_codes_have_severity_and_description(self):
        for code, (sev, desc) in CODES.items():
            assert isinstance(sev, Severity)
            assert len(desc) > 20, f"{code} description too thin"

    def test_code_namespaces(self):
        for code in CODES:
            assert CODE_RE.fullmatch(code), code

    def test_describe_code(self):
        assert "cable" in describe_code("FAB001").lower()

    def test_docs_checks_md_in_sync(self):
        """docs/CHECKS.md documents exactly the registered codes."""
        text = (DOCS / "CHECKS.md").read_text()
        documented = set(CODE_RE.findall(text))
        assert documented == set(CODES), (
            f"missing from docs: {sorted(set(CODES) - documented)}; "
            f"stale in docs: {sorted(documented - set(CODES))}")


class TestDiagnostic:
    def test_unregistered_code_rejected(self):
        with pytest.raises(ValueError, match="unregistered"):
            Diagnostic(code="XYZ999", message="nope")

    def test_default_severity_from_catalogue(self):
        d = Diagnostic(code="FAB001", message="m")
        assert d.severity == Severity.ERROR
        d = Diagnostic(code="RTE040", message="m")
        assert d.severity == Severity.WARNING

    def test_severity_override(self):
        d = Diagnostic(code="FAB004", message="m", severity=Severity.ERROR)
        assert d.severity == Severity.ERROR

    def test_render_includes_loc(self):
        d = Diagnostic(code="CFC001", message="boom",
                       loc=Loc(switch="SW1-0000", port=3, stage=7))
        line = d.render()
        assert "CFC001" in line and "error" in line
        assert "switch=SW1-0000" in line and "stage=7" in line

    def test_to_json_drops_unset_loc(self):
        d = Diagnostic(code="RTE001", message="m")
        assert "loc" not in d.to_json()
        d = Diagnostic(code="RTE001", message="m", loc=Loc(lid=5))
        assert d.to_json()["loc"] == {"lid": 5}


class TestReport:
    def _mk(self, *codes, cap=25):
        rep = DiagnosticReport(max_diags_per_code=cap)
        for c in codes:
            rep.add(Diagnostic(code=c, message="m"))
        return rep

    def test_exit_code_clean(self):
        assert self._mk().exit_code() == 0

    def test_exit_code_info(self):
        assert self._mk("CFC002").exit_code() == 0

    def test_exit_code_warning(self):
        assert self._mk("RTE040", "CFC002").exit_code() == 1

    def test_exit_code_error_dominates(self):
        assert self._mk("RTE040", "FAB001").exit_code() == 2

    def test_storage_cap_keeps_exact_counts(self):
        rep = self._mk(*["RTE040"] * 40, cap=5)
        assert len(rep.diagnostics) == 5
        assert len(rep) == 40
        assert rep.counts["RTE040"] == 40
        assert "35 further finding(s) suppressed" in rep.render_text()

    def test_render_text_empty(self):
        assert self._mk().render_text() == "no findings"

    def test_summary_and_dumps(self):
        rep = self._mk("FAB001", "RTE040", "RTE040")
        s = rep.summary()
        assert s["errors"] == 1 and s["warnings"] == 2
        assert s["codes"] == {"FAB001": 1, "RTE040": 2}
        parsed = json.loads(rep.dumps())
        assert parsed["summary"]["exit_code"] == 2
        assert len(parsed["diagnostics"]) == 3

    def test_by_code_and_codes(self):
        rep = self._mk("FAB001", "RTE040")
        assert rep.codes() == ["FAB001", "RTE040"]
        assert len(rep.by_code("FAB001")) == 1
