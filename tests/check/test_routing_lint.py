"""Forwarding-table lint (RTE0xx) over corrupted tables."""

import numpy as np
import pytest

from repro.check import (
    CdgCyclePass,
    CheckContext,
    DiagnosticReport,
    DmodkConformancePass,
    DownPortBalancePass,
    MinimalityPass,
    ReachabilityPass,
    UpDownPass,
    UpPortBalancePass,
    run_check,
)
from repro.fabric import ForwardingTables, build_fabric
from repro.routing import route_dmodk, route_minhop, route_random
from repro.topology import pgft


def lint(tables, passes, routing_name=""):
    ctx = CheckContext.for_tables(tables, routing_name=routing_name)
    report = DiagnosticReport()
    for p in passes:
        if p.applicable(ctx):
            p.run(ctx, report)
    return ctx, report


def copy_tables(tables):
    return ForwardingTables(fabric=tables.fabric,
                            switch_out=tables.switch_out.copy(),
                            host_up=tables.host_up)


@pytest.fixture
def fabric():
    return build_fabric(pgft(2, [4, 4], [1, 4], [1, 1]))


@pytest.fixture
def tables(fabric):
    return route_dmodk(fabric)


class TestCleanTables:
    def test_dmodk_clean_everywhere(self, any_spec):
        tables = route_dmodk(build_fabric(any_spec))
        result = run_check(
            CheckContext.for_tables(tables, routing_name="dmodk"))
        assert result.exit_code() == 0, result.report.render_text()

    def test_hops_artifact_published(self, tables):
        ctx, _ = lint(tables, [ReachabilityPass()])
        hops = ctx.artifacts["hops"]
        n = tables.fabric.num_endports
        assert hops.shape == (n, n)
        assert (np.diagonal(hops) == 0).all()


class TestReachability:
    def test_dead_end_is_rte001(self, tables):
        broken = copy_tables(tables)
        broken.switch_out[0, 15] = -1
        _, report = lint(broken, [ReachabilityPass()])
        assert "RTE001" in report.codes()
        assert "dead-end" in report.by_code("RTE001")[0].message

    def test_loop_is_rte002(self, fabric, tables):
        broken = copy_tables(tables)
        spine_row = fabric.num_switches - 1
        broken.switch_out[spine_row, 15] = broken.switch_out[spine_row, 0]
        _, report = lint(broken, [ReachabilityPass()])
        assert "RTE002" in report.codes()
        assert "loop" in report.by_code("RTE002")[0].message


class TestUpDown:
    def test_clean(self, tables):
        _, report = lint(tables, [UpDownPass(sample=None)])
        assert len(report) == 0

    def test_sampled_subset_clean(self, tables):
        _, report = lint(tables, [UpDownPass(sample=16, seed=3)])
        assert len(report) == 0

    def test_valley_is_rte010(self, fabric, tables):
        # Build a terminating valley: spine0 sends dest 0 down into
        # leaf1 (wrong leaf), and leaf1's up entry for dest 0 is moved
        # to spine1, which still routes correctly.  Routes from leaf2/3
        # now go up-down-up-down: a valley that reaches its target.
        broken = copy_tables(tables)
        n = fabric.num_endports
        spine0_row = int(
            fabric.peer_node[tables.switch_out[2, 0]]) - n
        # spine0's down port toward leaf1 is its entry for host 4
        broken.switch_out[spine0_row, 0] = broken.switch_out[spine0_row, 4]
        leaf1 = n + 1
        ports = fabric.ports_of(leaf1)
        ups = ports[fabric.port_goes_up()[ports]]
        cur = int(broken.switch_out[1, 0])
        other = [int(p) for p in ups if int(p) != cur]
        broken.switch_out[1, 0] = other[0]
        _, report = lint(broken, [UpDownPass(sample=None)])
        assert "RTE010" in report.codes(), report.render_text()

    def test_strict_raises_on_broken_walk(self, tables):
        broken = copy_tables(tables)
        broken.switch_out[0, 15] = -1
        with pytest.raises(ValueError):
            lint(broken, [UpDownPass(sample=None, strict=True)])


class TestCdg:
    def test_clean_fabric_acyclic(self, tables):
        ctx, report = lint(tables, [CdgCyclePass()])
        assert len(report) == 0
        assert ctx.artifacts["cdg_dependencies"] > 0

    def test_valley_tables_have_cycle(self):
        deep = build_fabric(pgft(3, [2, 2, 2], [1, 2, 2], [1, 1, 1]))
        tables = route_dmodk(deep)
        broken = copy_tables(tables)
        n = deep.num_endports
        lvl = deep.node_level
        top_rows = [int(v) - n for v in range(n, len(lvl))
                    if lvl[v] == lvl.max()]
        for row in top_rows:
            node = n + row
            ports = deep.ports_of(node)
            down = ports[~deep.port_goes_up()[ports]]
            cur = int(broken.switch_out[row, 0])
            other = [int(p) for p in down if int(p) != cur]
            broken.switch_out[row, 0] = other[0]
        _, report = lint(broken, [CdgCyclePass()])
        # valleys on every top switch induce up-down-up dependencies
        if "RTE020" in report.codes():
            diag = report.by_code("RTE020")[0]
            assert diag.data["cycle_gports"]


class TestDmodkConformance:
    def test_skipped_for_other_engines(self, tables):
        ctx = CheckContext.for_tables(tables, routing_name="minhop")
        assert not DmodkConformancePass().applicable(ctx)

    def test_always_flag_forces_run(self, tables):
        ctx = CheckContext.for_tables(tables, routing_name="minhop")
        assert DmodkConformancePass(always=True).applicable(ctx)

    def test_clean_dmodk_conforms(self, tables):
        ctx, report = lint(tables, [DmodkConformancePass()],
                           routing_name="dmodk")
        assert len(report) == 0
        assert ctx.artifacts["dmodk_mismatches"] == 0

    def test_swapped_entry_is_rte030(self, tables):
        broken = copy_tables(tables)
        row = 0
        a, b = 8, 9  # two dests reached via different up ports from leaf 0
        broken.switch_out[row, a], broken.switch_out[row, b] = (
            broken.switch_out[row, b], broken.switch_out[row, a])
        _, report = lint(broken, [DmodkConformancePass()],
                         routing_name="dmodk")
        assert report.counts.get("RTE030", 0) == 2

    def test_minhop_differs_from_closed_form(self, fabric):
        tables = route_minhop(fabric, "first")
        _, report = lint(tables, [DmodkConformancePass(always=True)])
        assert "RTE030" in report.codes()


class TestBalance:
    def test_dmodk_balanced(self, tables):
        ctx, report = lint(tables, [DownPortBalancePass(),
                                    UpPortBalancePass()])
        assert len(report) == 0
        assert ctx.artifacts["theorem2_violations"] == 0
        assert ctx.artifacts["up_balance_worst"] == 0.0

    def test_random_router_flagged(self, fabric):
        tables = route_random(fabric, seed=1)
        ctx, report = lint(tables, [DownPortBalancePass(),
                                    UpPortBalancePass()])
        assert "RTE040" in report.codes()
        assert ctx.artifacts["theorem2_violations"] > 0

    def test_minhop_first_skew_is_rte041(self, fabric):
        tables = route_minhop(fabric, "first")
        _, report = lint(tables, [UpPortBalancePass()])
        assert "RTE041" in report.codes()


class TestMinimality:
    def test_dmodk_minimal(self, tables):
        ctx, report = lint(tables, [MinimalityPass()])
        assert len(report) == 0
        assert ctx.artifacts["non_minimal_entries"] == 0
        assert ctx.artifacts["unreachable_entries"] == 0

    def test_unreachable_entry_counted(self, tables):
        broken = copy_tables(tables)
        broken.switch_out[0, 15] = -1
        ctx, _ = lint(broken, [MinimalityPass()])
        assert ctx.artifacts["unreachable_entries"] == 1

    def test_detour_is_rte050(self, fabric, tables):
        broken = copy_tables(tables)
        # Send dest 0 from one spine down into the wrong leaf: the next
        # hop no longer reduces the BFS distance.
        spine_row = fabric.num_switches - 1
        broken.switch_out[spine_row, 0] = broken.switch_out[spine_row, 15]
        _, report = lint(broken, [MinimalityPass()])
        assert "RTE050" in report.codes()
