"""Traffic-class isolation analyzer (ISO0xx): per-class certificates,
cross-class interference bounds, engine agreement and the CLI.

The acceptance claims: the analyzer statically certifies per-class
contention-freedom for typed n324 under type-aware routing, reports a
cross-class interference bound the dynamics never exceed (see
``tests/experiments``), and flags a *real* ISO violation -- not a
crash -- when the same fabric is routed with type-blind D-Mod-K.
"""

import json

import numpy as np
import pytest

from repro.analysis.hsd import stage_class_link_loads
from repro.check import (
    CheckContext,
    IsolationPass,
    build_class_schedules,
    routing_ranks,
    run_check,
    symbolic_class_loads,
)
from repro.check.cli import main as check_main
from repro.check.isolation import ISOLATION_ENGINES
from repro.collectives.schedule import stage_flows
from repro.fabric import NodeTypeMap, build_fabric
from repro.fabric.topofile import save as save_topo
from repro.routing import route_dmodk, route_typeaware, typed_ranks
from repro.topology import pgft

RLFT16 = pgft(2, [4, 4], [1, 4], [1, 1])
N324 = pgft(2, [18, 18], [1, 9], [1, 2])


def _typed_fabric(spec, counts):
    fab = build_fabric(spec)
    fab.node_types = NodeTypeMap.staggered(spec, counts)
    return fab


def _iso(ctx, **kw):
    return run_check(ctx, only={"isolation"}, isolation=kw)


def codes_of(result):
    return {d.code for d in result.report}


class TestCertification:
    def test_typeaware_n324_certifies_both_classes(self):
        fab = _typed_fabric(N324, {"storage": 2})
        ctx = CheckContext(fabric=fab, tables=None,
                           routing_name="typeaware")
        result = _iso(ctx, engine="symbolic", max_stages=16)
        assert result.exit_code() == 0
        assert codes_of(result) == {"ISO090"}
        certs = result.certificates
        assert {c["case"] for c in certs} == {
            "isolation/shift/compute", "isolation/shift/storage"}
        for c in certs:
            assert c["certificate_kind"] == "symbolic"
            assert c["verdict"] == "contention-free"
            assert c["max_link_load"] == 1
            assert c["cross_class_interference"] <= 1
            assert c["types_digest"]
        iso = result.artifacts["isolation"]
        assert iso["per_class_worst"] == {"compute": 1, "storage": 1}
        assert iso["cross_class_bound"] == 1

    def test_dmodk_same_fabric_flags_real_violation(self):
        fab = _typed_fabric(N324, {"storage": 2})
        ctx = CheckContext(fabric=fab, tables=None, routing_name="dmodk")
        result = _iso(ctx, engine="symbolic")
        assert result.exit_code() == 2
        assert "ISO001" in codes_of(result)     # a counterexample, not a crash
        assert "ISO011" in codes_of(result)     # non-consecutive class ranks
        d = next(d for d in result.report if d.code == "ISO001")
        assert d.loc.switch is not None and d.loc.stage is not None
        assert d.data["colliding_pairs"]        # colliding flows listed

    def test_small_fixture_reproduces_refutation(self):
        fab = _typed_fabric(RLFT16, {"storage": 1})
        ctx = CheckContext(fabric=fab, tables=route_dmodk(fab),
                           routing_name="dmodk")
        result = _iso(ctx)
        assert result.exit_code() == 2
        assert "ISO001" in codes_of(result)

    def test_iso090_summary_always_present(self):
        for routing in ("typeaware", "dmodk"):
            fab = _typed_fabric(RLFT16, {"storage": 1})
            tables = (route_typeaware(fab) if routing == "typeaware"
                      else route_dmodk(fab))
            ctx = CheckContext(fabric=fab, tables=tables,
                               routing_name=routing)
            assert "ISO090" in codes_of(_iso(ctx))


class TestEngineAgreement:
    @pytest.mark.parametrize("spec,counts", [
        (RLFT16, {"storage": 1}),
        (N324, {"storage": 2}),
    ])
    @pytest.mark.parametrize("routing", ["typeaware", "dmodk"])
    def test_symbolic_matches_enumerate(self, spec, counts, routing):
        fab = _typed_fabric(spec, counts)
        tables = (route_typeaware(fab) if routing == "typeaware"
                  else route_dmodk(fab))
        ctx_sym = CheckContext(fabric=fab, tables=None,
                               routing_name=routing)
        ctx_enum = CheckContext(fabric=fab, tables=tables,
                                routing_name=routing)
        sym = _iso(ctx_sym, engine="symbolic", max_stages=8)
        enum = _iso(ctx_enum, engine="enumerate", max_stages=8)
        s, e = sym.artifacts["isolation"], enum.artifacts["isolation"]
        assert s["per_class_worst"] == e["per_class_worst"]
        assert s["cross_class_bound"] == e["cross_class_bound"]
        assert s["max_combined_load"] == e["max_combined_load"]
        assert sym.exit_code() == enum.exit_code()

    def test_symbolic_class_loads_match_dense_walk(self):
        fab = _typed_fabric(RLFT16, {"storage": 1})
        types = fab.node_types
        tables = route_typeaware(fab)
        ridx, known = routing_ranks("typeaware", RLFT16.num_endports, types)
        assert known
        cs = build_class_schedules(types)[0]
        src, dst = stage_flows(cs.cps.stages[0], cs.ports)
        fc = types.type_of[src]
        C = len(types.type_names)
        links, loads = symbolic_class_loads(RLFT16, src, dst, fc,
                                            num_classes=C, ridx=ridx)
        dense = stage_class_link_loads(tables, src, dst, fc, num_classes=C)
        assert np.array_equal(loads.sum(axis=1), dense.sum(axis=1))
        assert np.array_equal(loads, dense[:, links])

    def test_auto_prefers_symbolic_then_enumerate(self):
        fab = _typed_fabric(RLFT16, {"storage": 1})
        # spec + dmodk-family routing -> symbolic
        ctx = CheckContext(fabric=fab, tables=None, routing_name="typeaware")
        assert _iso(ctx).artifacts["isolation"]["engine"] == "symbolic"
        # non-closed-form routing but materialised tables -> enumerate
        tables = route_typeaware(fab)
        ctx = CheckContext(fabric=fab, tables=tables, routing_name="minhop")
        r = _iso(ctx, check_conformance=False)
        assert r.artifacts["isolation"]["engine"] == "enumerate"


class TestDiagnostics:
    def test_iso010_untyped_fabric_falls_back_uniform(self):
        fab = build_fabric(RLFT16)
        ctx = CheckContext(fabric=fab, tables=None, routing_name="dmodk")
        result = _iso(ctx)
        assert "ISO010" in codes_of(result)
        assert result.exit_code() == 1

    def test_iso002_vacuous_class(self):
        fab = build_fabric(RLFT16)
        fab.node_types = NodeTypeMap.from_ports(
            RLFT16.num_endports, {"storage": np.array([5])})
        ctx = CheckContext(fabric=fab, tables=None, routing_name="typeaware")
        result = _iso(ctx)
        assert "ISO002" in codes_of(result)
        # the singleton class is skipped entirely: no schedule, no
        # certificate, no load accounting (the 15-member compute class
        # is genuinely contended -- partial population voids theorem 1
        # -- which the analyzer reports separately as ISO001)
        iso = result.artifacts["isolation"]
        assert "storage" not in iso["per_class_worst"]
        assert not any("storage" in c["case"] for c in result.certificates)
        assert "ISO001" in codes_of(result)

    def test_iso012_declared_bound_exceeded(self):
        fab = _typed_fabric(N324, {"storage": 2})
        ctx = CheckContext(fabric=fab, tables=None, routing_name="typeaware")
        result = _iso(ctx, engine="symbolic", max_stages=8, bound=0)
        assert "ISO012" in codes_of(result)
        # bound satisfied -> silent
        ok = _iso(CheckContext(fabric=fab, tables=None,
                               routing_name="typeaware"),
                  engine="symbolic", max_stages=8, bound=1)
        assert "ISO012" not in codes_of(ok)

    def test_iso020_tables_contradict_claimed_routing(self):
        fab = _typed_fabric(RLFT16, {"storage": 1})
        ctx = CheckContext(fabric=fab, tables=route_dmodk(fab),
                           routing_name="typeaware")
        result = _iso(ctx, engine="enumerate")
        assert "ISO020" in codes_of(result)

    def test_iso030_degraded_regression(self):
        fab = _typed_fabric(RLFT16, {"storage": 1})
        ctx = CheckContext(fabric=fab, tables=route_typeaware(fab),
                           routing_name="typeaware")
        result = _iso(ctx, engine="enumerate", fault_units="cable",
                      fault_samples=3)
        iso = result.artifacts["isolation"]
        assert len(iso["degraded"]) == 3
        verdicts = {r["verdict"] for r in iso["degraded"]}
        assert verdicts <= {"isolated", "regressed", "disconnected"}
        if "regressed" in verdicts:
            assert "ISO030" in codes_of(result)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown isolation engine"):
            IsolationPass(engine="quantum")
        assert set(ISOLATION_ENGINES) == {"auto", "symbolic", "enumerate"}


class TestRoutingRanks:
    def test_typeaware_uses_typed_ranks(self):
        types = NodeTypeMap.staggered(RLFT16, {"storage": 1})
        ridx, known = routing_ranks("typeaware", 16, types)
        assert known
        assert np.array_equal(ridx, typed_ranks(16, types))

    def test_dmodk_identity(self):
        types = NodeTypeMap.uniform(16)
        ridx, known = routing_ranks("dmodk", 16, types)
        assert known and ridx is None

    def test_unknown_routing_not_known(self):
        _, known = routing_ranks("minhop", 16, NodeTypeMap.uniform(16))
        assert not known


class TestCli:
    def _run(self, capsys, *argv):
        rc = check_main(list(argv))
        return rc, capsys.readouterr().out

    def test_typeaware_symbolic_certifies(self, capsys):
        rc, out = self._run(
            capsys, "--topo", "n324", "--types", "staggered:storage=2",
            "--routing", "typeaware", "--engine", "symbolic",
            "--isolation", "--max-shift-stages", "16")
        assert rc == 0
        assert "CERTIFIED" in out
        assert "isolation/shift/compute" in out
        assert "isolation/shift/storage" in out
        assert "SYM010" not in out      # general certifier stays quiet

    def test_dmodk_symbolic_refutes(self, capsys):
        rc, out = self._run(
            capsys, "--topo", "n324", "--types", "staggered:storage=2",
            "--routing", "dmodk", "--engine", "symbolic",
            "--isolation", "--max-shift-stages", "16")
        assert rc == 2
        assert "ISO001" in out

    def test_json_payload_carries_isolation(self, capsys):
        rc, out = self._run(
            capsys, "--spec", "2; 4,4; 1,4; 1,1",
            "--types", "staggered:storage=1",
            "--routing", "typeaware", "--engine", "symbolic",
            "--isolation", "--iso-bound", "1", "--json")
        assert rc == 0
        iso = json.loads(out)["isolation"]
        assert iso["cross_class_bound"] <= 1
        assert set(iso["per_class_worst"]) == {"compute", "storage"}

    def test_sarif_iso_rules_have_helpuri_and_regions(self, capsys,
                                                      tmp_path):
        topofile = tmp_path / "rlft16.topo"
        save_topo(build_fabric(RLFT16), topofile)
        rc, out = self._run(
            capsys, "--topofile", str(topofile),
            "--types", "staggered:storage=1",
            "--routing", "dmodk", "--isolation", "--format", "sarif")
        assert rc == 2
        run, = json.loads(out)["runs"]
        rules = {r["id"]: r for r in run["tool"]["driver"]["rules"]}
        assert "ISO001" in rules
        assert rules["ISO001"]["helpUri"].endswith(
            "docs/CHECKS.md#iso0xx--traffic-class-isolation")
        iso001 = [r for r in run["results"] if r["ruleId"] == "ISO001"]
        assert iso001
        region = iso001[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] > 1   # resolved to the switch line

    def test_bad_types_layout_rejected(self, capsys):
        with pytest.raises(SystemExit, match="--types"):
            check_main(["--topo", "n324", "--types", "staggered:storage=99",
                        "--isolation"])

    def test_symbolic_gate_still_rejects_other_routings(self, capsys):
        with pytest.raises(SystemExit, match="symbolic"):
            check_main(["--topo", "n324", "--routing", "minhop",
                        "--engine", "symbolic", "--isolation"])
