"""Collective-schedule lint (SCH0xx)."""

import numpy as np
import pytest

from repro.check import (
    CheckContext,
    DiagnosticReport,
    PlacementLintPass,
    ScheduleCase,
    StageLintPass,
)
from repro.collectives.cps import CPS, Stage, dissemination, ring, shift
from repro.fabric import build_fabric
from repro.ordering import random_order, topology_order
from repro.routing import route_dmodk
from repro.topology import pgft


@pytest.fixture
def tables():
    return route_dmodk(build_fabric(pgft(2, [4, 4], [1, 4], [1, 1])))


def lint(tables, cases, passes=None):
    ctx = CheckContext.for_tables(tables, schedule=cases)
    report = DiagnosticReport()
    for p in passes or [PlacementLintPass(), StageLintPass()]:
        if p.applicable(ctx):
            p.run(ctx, report)
    return ctx, report


class TestPlacement:
    def test_clean_orders(self, tables):
        n = tables.fabric.num_endports
        cases = [ScheduleCase(shift(n), topology_order(n), "shift/topo"),
                 ScheduleCase(shift(n), random_order(n, seed=2),
                              "shift/random")]
        _, report = lint(tables, cases, passes=[PlacementLintPass()])
        assert len(report) == 0

    def test_minus_one_slots_allowed(self, tables):
        n = tables.fabric.num_endports
        order = topology_order(n)
        order[3] = -1
        _, report = lint(tables, [ScheduleCase(shift(n), order)],
                         passes=[PlacementLintPass()])
        assert len(report) == 0

    def test_duplicate_port_is_sch001(self, tables):
        n = tables.fabric.num_endports
        order = topology_order(n)
        order[1] = order[0]
        _, report = lint(tables, [ScheduleCase(shift(n), order)],
                         passes=[PlacementLintPass()])
        assert "SCH001" in report.codes()
        assert report.by_code("SCH001")[0].loc.lid == int(order[0])

    def test_out_of_range_is_sch002(self, tables):
        n = tables.fabric.num_endports
        order = topology_order(n)
        order[0] = n + 7
        order[1] = -5
        _, report = lint(tables, [ScheduleCase(shift(n), order)],
                         passes=[PlacementLintPass()])
        assert report.counts.get("SCH002", 0) == 2


class TestStages:
    def test_paper_collectives_clean(self, tables):
        n = tables.fabric.num_endports
        cases = [ScheduleCase(cps, topology_order(n))
                 for cps in (shift(n), ring(n), dissemination(n))]
        ctx, report = lint(tables, cases, passes=[StageLintPass()])
        assert len(report) == 0
        cls = ctx.artifacts["cps_classification"]
        assert cls["shift"] == "unidirectional"

    def test_double_sender_is_sch010(self, tables):
        n = tables.fabric.num_endports
        pairs = np.array([[0, 1], [0, 2]], dtype=np.int64)
        cps = CPS("double-send", n, [Stage(pairs, label="dup")])
        _, report = lint(tables, [ScheduleCase(cps, topology_order(n))],
                         passes=[StageLintPass()])
        assert "SCH010" in report.codes()
        assert report.by_code("SCH010")[0].loc.stage == 0

    def test_random_destinations_are_sch020(self, tables):
        n = tables.fabric.num_endports
        rng = np.random.default_rng(5)
        dst = rng.permutation(n)
        while (dst == np.arange(n)).any():
            dst = rng.permutation(n)
        pairs = np.stack([np.arange(n), dst], axis=1).astype(np.int64)
        cps = CPS("scramble", n, [Stage(pairs, label="rand")])
        _, report = lint(tables, [ScheduleCase(cps, topology_order(n))],
                         passes=[StageLintPass()])
        diags = report.by_code("SCH020")
        assert diags and diags[0].loc.stage == 0
        assert len(diags[0].data["displacements"]) > 1
