"""Fault injection: every corruption maps to its documented code.

Four independent faults -- a swapped LFT entry, crossed cables, a
dropped link with stale tables, and a permuted CPS stage -- each must be
caught by the expected diagnostic code, and none may yield a false
"certified" verdict (zero certificates in every corrupted run).
"""

import numpy as np
import pytest

from repro.check import CheckContext, ScheduleCase, run_check
from repro.collectives.cps import CPS, Stage, dissemination, shift
from repro.fabric import ForwardingTables, build_fabric
from repro.fabric.model import Fabric
from repro.ordering import topology_order
from repro.routing import route_dmodk
from repro.topology import pgft

SPEC = pgft(2, [4, 4], [1, 4], [1, 1])


@pytest.fixture
def fabric():
    return build_fabric(SPEC)


@pytest.fixture
def tables(fabric):
    return route_dmodk(fabric)


def check(tables, cps=None, routing_name="dmodk"):
    n = tables.fabric.num_endports
    cases = []
    if cps is not None:
        cases = [ScheduleCase(cps, topology_order(n), "probe")]
    ctx = CheckContext.for_tables(tables, routing_name=routing_name,
                                  schedule=cases)
    return run_check(ctx)


def test_clean_baseline_certifies(tables):
    n = tables.fabric.num_endports
    result = check(tables, cps=shift(n))
    assert result.exit_code() == 0
    assert len(result.certificates) == 1


def test_swapped_lft_entries_are_rte030(tables):
    broken = ForwardingTables(fabric=tables.fabric,
                              switch_out=tables.switch_out.copy(),
                              host_up=tables.host_up)
    broken.switch_out[2, 0], broken.switch_out[2, 1] = (
        broken.switch_out[2, 1], broken.switch_out[2, 0])
    n = broken.fabric.num_endports
    result = check(broken, cps=shift(n))
    assert "RTE030" in result.report.codes()
    assert "CFC001" in result.report.codes()
    assert result.exit_code() == 2
    assert result.certificates == []


def test_crossed_cables_are_fab005(fabric):
    # Swap two up-cables from *different* leaves to *different* spines:
    # a genuine wiring error (same-leaf or same-spine swaps produce an
    # isomorphic valid fabric that discovery accepts).
    n = fabric.num_endports
    ups = np.flatnonzero(fabric.port_goes_up() & (fabric.port_owner >= n))
    owners = fabric.port_owner[ups]
    spines = fabric.port_owner[fabric.port_peer[ups]]
    sel = np.flatnonzero((owners != owners[0]) & (spines != spines[0]))
    a, b = int(ups[0]), int(ups[sel[0]])
    peer = fabric.port_peer.copy()
    pa, pb = int(peer[a]), int(peer[b])
    peer[a], peer[pb] = pb, a
    peer[b], peer[pa] = pa, b
    crossed = Fabric(num_endports=n, node_level=fabric.node_level.copy(),
                     port_start=fabric.port_start, port_peer=peer,
                     spec=fabric.spec, node_names=list(fabric.node_names))
    tables = route_dmodk(build_fabric(SPEC))
    rewired_tables = ForwardingTables(fabric=crossed,
                                      switch_out=tables.switch_out.copy(),
                                      host_up=tables.host_up)
    result = check(rewired_tables, cps=shift(n))
    assert "FAB005" in result.report.codes()
    assert result.exit_code() == 2
    assert result.certificates == []


def test_dropped_link_stale_tables_are_fab004_rte001(fabric, tables):
    ups = np.flatnonzero(fabric.port_goes_up()
                         & (fabric.port_owner >= fabric.num_endports))
    degraded = fabric.with_failed_cables(ups[[0]])
    stale = ForwardingTables(fabric=degraded,
                             switch_out=tables.switch_out.copy(),
                             host_up=tables.host_up)
    n = degraded.num_endports
    result = check(stale, cps=shift(n))
    codes = result.report.codes()
    assert "FAB004" in codes   # dangling port vs the declared spec
    assert "RTE001" in codes   # routes walk into the dead cable
    assert result.exit_code() == 2
    assert result.certificates == []


def test_permuted_stage_is_sch020_and_refuted(tables):
    n = tables.fabric.num_endports
    cps = dissemination(n)
    rng = np.random.default_rng(0)
    dst = rng.permutation(n)
    while (dst == np.arange(n)).any():
        dst = rng.permutation(n)
    pairs = np.stack([np.arange(n), dst], axis=1).astype(np.int64)
    mutated = CPS(cps.name, n,
                  cps.stages[:3] + (Stage(pairs, label="permuted"),)
                  + cps.stages[4:])
    result = check(tables, cps=mutated)
    codes = result.report.codes()
    assert "SCH020" in codes
    assert "CFC001" in codes
    assert result.certificates == []


def test_faults_map_to_distinct_codes():
    """The four faults are distinguishable by their primary code."""
    primary = {"lft-swap": "RTE030", "crossed-cables": "FAB005",
               "dropped-link": "FAB004", "permuted-stage": "SCH020"}
    assert len(set(primary.values())) == 4
