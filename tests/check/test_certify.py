"""Contention-freedom certification (CFC0xx) and certificate binding."""

import numpy as np
import pytest

from repro.check import (
    CheckContext,
    ScheduleCase,
    placement_digest,
    run_check,
)
from repro.collectives.cps import dissemination, ring, shift
from repro.fabric import build_fabric
from repro.ordering import random_order, topology_order
from repro.routing import route_dmodk, route_random
from repro.runtime.cache import tables_digest
from repro.topology import pgft

TOPOLOGIES = {
    "rlft2": pgft(2, [4, 4], [1, 4], [1, 1]),
    "fig1": pgft(2, [4, 4], [1, 2], [1, 2]),
    "deep": pgft(3, [2, 2, 2], [1, 2, 2], [1, 1, 1]),
}


def certify(tables, cases, routing_name="dmodk"):
    ctx = CheckContext.for_tables(tables, routing_name=routing_name,
                                  schedule=cases)
    return run_check(ctx)


@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
def test_dmodk_topology_order_certifies(name):
    """Paper section VI: D-Mod-K + ordered placement is contention-free
    for every CPS -- on every topology shape."""
    tables = route_dmodk(build_fabric(TOPOLOGIES[name]))
    n = tables.fabric.num_endports
    order = topology_order(n)
    cases = [ScheduleCase(cps, order, f"{cps.name}/topology")
             for cps in (shift(n), ring(n), dissemination(n))]
    result = certify(tables, cases)
    assert result.exit_code() == 0, result.report.render_text()
    certs = result.certificates
    assert len(certs) == len(cases)
    for cert, case in zip(certs, cases):
        assert cert["verdict"] == "contention-free"
        assert cert["max_link_load"] == 1
        assert cert["case"] == case.label
        assert cert["routing"] == "dmodk"
        assert cert["num_endports"] == n
        assert cert["tables_digest"] == tables_digest(tables)
        assert cert["placement_digest"] == placement_digest(order)
        assert cert["num_stages"] == len(case.cps.stages)


def test_reversed_order_still_certifies():
    """Reversing the ranks negates every displacement but keeps it
    constant per stage, so contention freedom survives."""
    tables = route_dmodk(build_fabric(TOPOLOGIES["rlft2"]))
    n = tables.fabric.num_endports
    order = topology_order(n)[::-1].copy()
    result = certify(tables, [ScheduleCase(shift(n), order, "shift/rev")])
    assert result.exit_code() == 0
    assert result.certificates[0]["verdict"] == "contention-free"


def test_random_order_refuted_with_counterexample():
    tables = route_dmodk(build_fabric(TOPOLOGIES["rlft2"]))
    n = tables.fabric.num_endports
    order = random_order(n, seed=4)
    result = certify(tables, [ScheduleCase(shift(n), order, "shift/rand")])
    assert result.exit_code() == 2
    assert result.certificates == []
    diags = result.report.by_code("CFC001")
    assert diags
    d = diags[0].data
    assert d["link_load"] >= 2
    assert len(d["colliding_pairs"]) == min(d["link_load"], 8)
    assert d["total_pairs"] == d["link_load"]
    assert d["pairs_truncated"] == (d["total_pairs"] > 8)
    assert diags[0].loc.stage == d["stage"]
    assert diags[0].loc.switch is not None


def test_counterexample_truncation_is_explicit():
    """A >8-way collision keeps the exact pair count: the payload says
    how many pairs exist and that the listing is truncated (no silent
    cap)."""
    from repro.collectives.cps import CPS, Stage
    tables = route_dmodk(build_fabric(TOPOLOGIES["rlft2"]))
    n = tables.fabric.num_endports
    # ten senders converge on end-port 0: its host down-link carries 10
    pairs = np.stack([np.arange(1, 11), np.zeros(10, dtype=np.int64)], axis=1)
    cps = CPS("incast", n, (Stage(pairs, label="incast"),))
    result = certify(tables, [ScheduleCase(cps, topology_order(n), "incast")])
    (diag,) = result.report.by_code("CFC001")
    d = diag.data
    assert d["link_load"] == 10
    assert d["total_pairs"] == 10
    assert d["pairs_truncated"] is True
    assert len(d["colliding_pairs"]) == 8
    assert "(+2 more)" in diag.message


def test_random_routing_refuted():
    """Random routing breaks shift even under ordered placement."""
    fab = build_fabric(TOPOLOGIES["rlft2"])
    tables = route_random(fab, seed=3)
    n = fab.num_endports
    order = topology_order(n)
    result = certify(tables,
                     [ScheduleCase(shift(n), order, "shift/topology")],
                     routing_name="random")
    assert "CFC001" in result.report.codes()
    assert result.certificates == []


def test_ring_survives_random_routing():
    """Empirical caveat: ring's +1 displacement stays single-path even
    under random up-port choice, so use shift/dissemination to probe
    routing faults."""
    fab = build_fabric(TOPOLOGIES["rlft2"])
    tables = route_random(fab, seed=3)
    n = fab.num_endports
    result = certify(tables,
                     [ScheduleCase(ring(n), topology_order(n), "ring")],
                     routing_name="random")
    assert "CFC001" not in result.report.codes()


def test_empty_schedule_is_vacuous_cfc002():
    tables = route_dmodk(build_fabric(TOPOLOGIES["rlft2"]))
    n = tables.fabric.num_endports
    order = np.full(n, -1, dtype=np.int64)
    result = certify(tables, [ScheduleCase(shift(n), order, "shift/empty")])
    assert "CFC002" in result.report.codes()
    assert result.exit_code() == 0
    assert result.certificates == []


def test_stage_maxima_artifact_published():
    tables = route_dmodk(build_fabric(TOPOLOGIES["rlft2"]))
    n = tables.fabric.num_endports
    result = certify(tables,
                     [ScheduleCase(shift(n), topology_order(n), "shift")])
    maxima = result.artifacts["certifier_stage_max"]["shift"]
    assert len(maxima) == len(shift(n).stages)
    assert max(maxima) == 1


def test_placement_digest_distinguishes_orders():
    n = 16
    a = placement_digest(topology_order(n))
    b = placement_digest(topology_order(n)[::-1].copy())
    assert a != b
    assert a == placement_digest(topology_order(n))
