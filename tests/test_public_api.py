"""Public API surface: everything advertised imports and works."""

import numpy as np
import pytest

import repro


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version():
    assert repro.__version__.count(".") == 2


def test_docstring_example_runs():
    # The example from the package docstring, verbatim in spirit.
    from repro import (
        build_fabric,
        route_dmodk,
        sequence_hsd,
        shift,
        topology_order,
        two_level,
    )

    spec = two_level(18, 18, 9, parallel=2)
    tables = route_dmodk(build_fabric(spec))
    rep = sequence_hsd(tables, shift(324, displacements=range(1, 20)),
                       topology_order(324))
    assert rep.congestion_free


def test_end_to_end_story():
    """The complete pipeline every consumer walks."""
    spec = repro.rlft_max(4, 2)
    fabric = repro.build_fabric(spec)
    tables = repro.route_dmodk(fabric)
    n = spec.num_endports

    # Analysis says congestion-free...
    hsd = repro.sequence_hsd(tables, repro.shift(n),
                             repro.topology_order(n))
    assert hsd.congestion_free

    # ...simulation agrees (full bandwidth)...
    wl = repro.cps_workload(repro.shift(n), repro.topology_order(n),
                            n, 262144.0)
    res = repro.FluidSimulator(tables).run_sequences(wl)
    assert res.normalized_bandwidth > 0.95

    # ...and the bad ordering shows the paper's degradation.
    wl_bad = repro.cps_workload(repro.shift(n),
                                repro.random_order(n, seed=1), n, 262144.0)
    bad = repro.FluidSimulator(tables).run_sequences(wl_bad)
    assert bad.normalized_bandwidth < res.normalized_bandwidth * 0.85
