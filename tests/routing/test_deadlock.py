"""Channel-dependency-graph deadlock analysis."""

import numpy as np
import pytest

from repro.fabric import ForwardingTables, build_fabric
from repro.routing import (
    assert_deadlock_free,
    channel_dependencies,
    find_cycle,
    route_dmodk,
    route_minhop,
    route_random,
)
from repro.topology import pgft


@pytest.fixture(scope="module")
def fabric():
    return build_fabric(pgft(2, [4, 4], [1, 4], [1, 1]))


class TestFindCycle:
    def test_empty(self):
        assert find_cycle(set()) is None

    def test_chain_is_acyclic(self):
        assert find_cycle({(1, 2), (2, 3), (3, 4)}) is None

    def test_self_loop(self):
        cycle = find_cycle({(1, 1)})
        assert cycle is not None

    def test_two_cycle(self):
        cycle = find_cycle({(1, 2), (2, 1), (2, 3)})
        assert cycle is not None
        assert set(cycle) >= {1, 2}

    def test_long_cycle_found_among_dag(self):
        deps = {(i, i + 1) for i in range(10)}
        deps |= {(20, 21), (21, 22), (22, 20)}
        cycle = find_cycle(deps)
        assert cycle is not None
        assert {20, 21, 22} <= set(cycle)


class TestRoutedFabrics:
    @pytest.mark.parametrize("router", [
        route_dmodk,
        lambda f: route_minhop(f, "roundrobin"),
        lambda f: route_minhop(f, "random", seed=1),
        lambda f: route_random(f, seed=2),
    ])
    def test_tree_routings_deadlock_free(self, fabric, router):
        tables = router(fabric)
        ndeps = assert_deadlock_free(tables)
        assert ndeps > 0

    def test_every_test_spec_deadlock_free(self, any_spec):
        if any_spec.num_endports > 128:
            pytest.skip("all-pairs CDG; keep it small")
        tables = route_dmodk(build_fabric(any_spec))
        assert_deadlock_free(tables)

    def test_valley_routing_creates_cycle(self, fabric):
        # Force a down-then-up valley: leaf 1 bounces dest 15 upward
        # even though it is not an ancestor relationship violation by
        # itself, rerouting spine->leaf1->spine->leaf3 makes the CDG
        # cyclic together with the symmetric corruption.
        base = route_dmodk(fabric)
        sw = base.switch_out.copy()
        fab = fabric
        up0 = fab.gport(fab.num_endports + 0, 4)  # leaf0 first up port
        up1 = fab.gport(fab.num_endports + 1, 4)
        # leaf0 sends its OWN host 0's traffic up; leaf1 likewise: both
        # re-enter via spines creating up-down-up paths.
        sw[0, 3] = up0    # dest 3 lives under leaf0 but gets bounced up
        sw[1, 7] = up1    # dest 7 lives under leaf1 but gets bounced up
        broken = ForwardingTables(fabric=fab, switch_out=sw,
                                  host_up=base.host_up)
        deps = None
        try:
            deps = channel_dependencies(broken)
        except ValueError:
            return  # loop detected during walking: equally a failure mode
        assert find_cycle(deps) is not None
