"""Randomised up-port routing baseline."""

import numpy as np
import pytest

from repro.analysis import sequence_hsd
from repro.collectives import shift
from repro.fabric import Fabric, build_fabric
from repro.ordering import topology_order
from repro.routing import (
    RandomRouter,
    check_reachability,
    check_up_down,
    route_random,
)


def test_reachability(any_spec):
    tables = route_random(build_fabric(any_spec), seed=0)
    check_reachability(tables)
    check_up_down(tables, sample=100)


def test_seed_reproducible(fig1_fabric):
    a = route_random(fig1_fabric, seed=42)
    b = route_random(fig1_fabric, seed=42)
    assert np.array_equal(a.switch_out, b.switch_out)


def test_seeds_differ(fig1_fabric):
    a = route_random(fig1_fabric, seed=1)
    b = route_random(fig1_fabric, seed=2)
    assert not np.array_equal(a.switch_out, b.switch_out)


def test_random_routing_congests_shift(fig1_fabric):
    # The whole point of the baseline: even with the topology-aware node
    # order, random routing produces hot spots for Shift traffic.
    N = fig1_fabric.num_endports
    tables = route_random(fig1_fabric, seed=3)
    rep = sequence_hsd(tables, shift(N), topology_order(N))
    assert rep.worst >= 2


def test_requires_spec():
    fab = Fabric.from_links(1, [1, 1], [(0, 0, 1, 0)])
    with pytest.raises(ValueError):
        route_random(fab)


def test_router_object(fig1_fabric):
    router = RandomRouter(seed=7)
    assert router.name == "random"
    t1, t2 = router(fig1_fabric), router(fig1_fabric)
    assert np.array_equal(t1.switch_out, t2.switch_out)
