"""Routing validators catch broken tables."""

import numpy as np
import pytest

from repro.fabric import ForwardingTables, build_fabric
from repro.routing import (
    RoutingError,
    check_reachability,
    check_up_down,
    route_dmodk,
    trace_route,
)
from repro.topology import pgft


@pytest.fixture
def fabric():
    return build_fabric(pgft(2, [4, 4], [1, 4], [1, 1]))


def test_trace_route_endpoints(fig1_tables):
    path = trace_route(fig1_tables, 0, 5)
    fab = fig1_tables.fabric
    assert fab.port_owner[path[0]] == 0
    assert fab.peer_node[path[-1]] == 5
    assert trace_route(fig1_tables, 3, 3) == []


def test_trace_route_detects_loop(fabric):
    tables = route_dmodk(fabric)
    # Corrupt: leaf 0 bounces destination 15 back up forever by pointing
    # at an up port whose spine sends it back down to another leaf that
    # also points up... simplest: make the spine route 15 to the wrong leaf.
    broken = ForwardingTables(
        fabric=fabric,
        switch_out=tables.switch_out.copy(),
        host_up=tables.host_up,
    )
    # Spine row for dest 15 -> point back down to leaf 0 (wrong subtree).
    spine_row = fabric.num_switches - 1
    leaf0_down = broken.switch_out[spine_row, 0]
    broken.switch_out[spine_row, 15] = leaf0_down
    with pytest.raises((RoutingError, ValueError)):
        check_reachability(broken)


def test_check_up_down_flags_valley(fabric):
    tables = route_dmodk(fabric)
    broken = ForwardingTables(
        fabric=fabric,
        switch_out=tables.switch_out.copy(),
        host_up=tables.host_up,
    )
    # Make leaf 0 send dest 7 down to host 1 first? Then host would be
    # wrong owner; instead reroute spine traffic for dest 7 through leaf 1
    # then up again: corrupt leaf 1 (row 1) to forward 7 upward though it
    # is 7's ancestor... leaf 1 hosts 4..7, so sending 7 up is a valley
    # after the spine already descended.
    up_port_g = fabric.gport(fabric.num_endports + 1, 4)  # first up port
    broken.switch_out[1, 7] = up_port_g
    with pytest.raises((RoutingError, ValueError)):
        check_up_down(broken)
        check_reachability(broken)


def test_check_up_down_sample_subset(fig1_tables):
    # Sampling path: must accept valid tables quickly.
    check_up_down(fig1_tables, sample=10, seed=1)


def test_dead_end_detected(fabric):
    tables = route_dmodk(fabric)
    broken = ForwardingTables(
        fabric=fabric,
        switch_out=tables.switch_out.copy(),
        host_up=tables.host_up,
    )
    broken.switch_out[0, 15] = -1
    with pytest.raises(RoutingError, match="dead end"):
        trace_route(broken, 0, 15)
