"""Type-aware routing: typed ranks, dmodk-equivalence with one class,
and per-class theorem-1 where type-blind D-Mod-K provably fails."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import sequence_hsd
from repro.check import build_class_schedules
from repro.collectives import shift
from repro.fabric import NodeTypeMap, build_fabric
from repro.routing import (
    TypeAwareRouter,
    dense_ranks,
    route_dmodk,
    route_typeaware,
    typed_ranks,
)
from repro.topology import pgft

from ..properties.test_topology_properties import cbb_specs

RLFT16 = pgft(2, [4, 4], [1, 4], [1, 1])
N324 = pgft(2, [18, 18], [1, 9], [1, 2])


class TestTypedRanks:
    def test_uniform_types_are_dense_ranks(self):
        types = NodeTypeMap.uniform(12)
        assert np.array_equal(typed_ranks(12, types), dense_ranks(12, None))

    def test_per_class_ranks_are_dense(self):
        types = NodeTypeMap.from_ports(
            8, {"storage": np.array([1, 4, 6])})
        r = typed_ranks(8, types)
        for t in range(len(types.type_names)):
            members = np.flatnonzero(types.type_of == t)
            assert list(r[members]) == list(range(len(members)))

    def test_active_borrow_semantics(self):
        # inactive members borrow the next active member's rank, exactly
        # like dense_ranks does for the untyped job-aware case
        types = NodeTypeMap.uniform(6)
        active = np.array([1, 3, 4])
        assert np.array_equal(typed_ranks(6, types, active),
                              dense_ranks(6, active))

    def test_raw_array_accepted(self):
        r = typed_ranks(4, np.array([0, 1, 0, 1], dtype=np.int64))
        assert list(r) == [0, 0, 1, 1]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            typed_ranks(5, NodeTypeMap.uniform(4))


class TestDmodkEquivalence:
    def test_single_type_tables_bit_identical(self):
        fab = build_fabric(N324)
        fab.node_types = NodeTypeMap.uniform(N324.num_endports)
        ta = route_typeaware(fab)
        dm = route_dmodk(fab)
        assert np.array_equal(ta.switch_out, dm.switch_out)
        assert (ta.host_up is None) == (dm.host_up is None)
        if ta.host_up is not None:
            assert np.array_equal(ta.host_up, dm.host_up)

    @given(cbb_specs())
    @settings(max_examples=20, deadline=None)
    def test_single_type_equivalence_any_cbb(self, spec):
        if not (2 <= spec.num_endports <= 120):
            return
        fab = build_fabric(spec)
        fab.node_types = NodeTypeMap.uniform(spec.num_endports)
        ta = route_typeaware(fab)
        dm = route_dmodk(fab)
        assert np.array_equal(ta.switch_out, dm.switch_out)

    @given(cbb_specs(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_single_type_job_aware_equivalence(self, spec, seed):
        n = spec.num_endports
        if not (4 <= n <= 120):
            return
        rng = np.random.default_rng(seed)
        active = np.sort(rng.choice(n, size=max(2, n // 2), replace=False))
        fab = build_fabric(spec)
        fab.node_types = NodeTypeMap.uniform(n)
        ta = route_typeaware(fab, active=active)
        dm = route_dmodk(fab, active=active)
        assert np.array_equal(ta.switch_out, dm.switch_out)


class TestPerClassContentionFreedom:
    def test_staggered_classes_each_stay_hsd_one(self):
        # the adversarial layout: one storage port per leaf, rotating
        fab = build_fabric(RLFT16)
        types = NodeTypeMap.staggered(RLFT16, {"storage": 1})
        fab.node_types = types
        tables = route_typeaware(fab)
        for cs in build_class_schedules(types):
            rep = sequence_hsd(tables, cs.cps, cs.ports)
            assert rep.congestion_free, cs.name

    def test_dmodk_refuted_on_same_layout(self):
        # type-blind routing sees non-consecutive class ranks: eq. (1)
        # loses theorem 1 for the scattered class
        fab = build_fabric(RLFT16)
        types = NodeTypeMap.staggered(RLFT16, {"storage": 1})
        fab.node_types = types
        tables = route_dmodk(fab)
        worst = 0
        for cs in build_class_schedules(types):
            rep = sequence_hsd(tables, cs.cps, cs.ports)
            worst = max(worst, rep.worst)
        assert worst > 1

    def test_n324_staggered_both_classes_clean(self):
        fab = build_fabric(N324)
        types = NodeTypeMap.staggered(N324, {"storage": 2})
        fab.node_types = types
        tables = route_typeaware(fab)
        for cs in build_class_schedules(types, max_stages=16):
            rep = sequence_hsd(tables, cs.cps, cs.ports)
            assert rep.congestion_free, cs.name


class TestRouterProtocol:
    def test_router_name_and_call(self):
        fab = build_fabric(RLFT16)
        fab.node_types = NodeTypeMap.staggered(RLFT16, {"storage": 1})
        router = TypeAwareRouter()
        assert router.name == "typeaware"
        tables = router(fab)
        assert tables.switch_out.shape == route_typeaware(fab).switch_out.shape

    def test_untyped_fabric_without_spec_types_ok(self):
        # untyped fabric: node_types defaults to uniform -> dmodk tables
        fab = build_fabric(RLFT16)
        assert np.array_equal(route_typeaware(fab).switch_out,
                              route_dmodk(fab).switch_out)
