"""Counting-based ftree engine: coincidence with and divergence from
D-Mod-K."""

import numpy as np
import pytest

from repro.analysis import sequence_hsd
from repro.collectives import shift
from repro.fabric import build_fabric
from repro.ordering import topology_order
from repro.routing import (
    FTreeRouter,
    check_reachability,
    check_up_down,
    route_dmodk,
    route_ftree,
)
from repro.topology import pgft, rlft_max


class TestCorrectness:
    def test_reachability_all_specs(self, any_spec):
        tables = route_ftree(build_fabric(any_spec))
        check_reachability(tables)
        check_up_down(tables, sample=100)

    def test_shuffled_still_correct(self, any_spec):
        tables = route_ftree(build_fabric(any_spec), shuffle=True, seed=3)
        check_reachability(tables)


class TestCoincidenceWithDmodk:
    @pytest.mark.parametrize("spec", [
        rlft_max(4, 2),
        rlft_max(18, 2),
        pgft(2, [4, 4], [1, 4], [1, 1]),
    ], ids=str)
    def test_identical_tables_on_two_level_single_cable(self, spec):
        fab = build_fabric(spec)
        ft = route_ftree(fab)
        dm = route_dmodk(fab)
        assert np.array_equal(ft.switch_out, dm.switch_out)

    def test_congestion_free_on_odd_stride_parallel(self):
        # n324: 2 parallel cables but stride 9 (odd) keeps cables apart.
        spec = pgft(2, [18, 18], [1, 9], [1, 2])
        tables = route_ftree(build_fabric(spec))
        n = spec.num_endports
        cps = shift(n, displacements=range(1, 40))
        assert sequence_hsd(tables, cps, topology_order(n)).congestion_free


class TestDivergence:
    def test_three_level_counters_congest(self):
        # Above the leaves D-Mod-K groups destinations by floor(j/W_l);
        # a per-destination counter breaks that grouping.  The same
        # failure hits min-hop round-robin (see ablation bench).
        spec = rlft_max(3, 3)
        fab = build_fabric(spec)
        n = spec.num_endports
        ft = sequence_hsd(route_ftree(fab), shift(n), topology_order(n))
        dm = sequence_hsd(route_dmodk(fab), shift(n), topology_order(n))
        assert dm.congestion_free
        assert ft.worst >= 3

    def test_even_parallel_stride_breaks_counting(self):
        # The paper's 16-node PGFT: perfectly balanced counters, yet a
        # Shift stage doubles up on a down cable (counts != structure).
        spec = pgft(2, [4, 4], [1, 2], [1, 2])
        fab = build_fabric(spec)
        ft = sequence_hsd(route_ftree(fab), shift(16), topology_order(16))
        dm = sequence_hsd(route_dmodk(fab), shift(16), topology_order(16))
        assert dm.congestion_free
        assert ft.worst == 2

    def test_shuffled_order_congests(self):
        spec = rlft_max(6, 2)
        fab = build_fabric(spec)
        n = spec.num_endports
        cps = shift(n, displacements=range(1, 30))
        ordered = sequence_hsd(route_ftree(fab), cps, topology_order(n))
        shuffled = sequence_hsd(route_ftree(fab, shuffle=True, seed=1),
                                cps, topology_order(n))
        assert ordered.congestion_free
        assert shuffled.worst >= 3

    def test_shuffle_deterministic_per_seed(self):
        fab = build_fabric(rlft_max(3, 2))
        a = route_ftree(fab, shuffle=True, seed=5)
        b = route_ftree(fab, shuffle=True, seed=5)
        c = route_ftree(fab, shuffle=True, seed=6)
        assert np.array_equal(a.switch_out, b.switch_out)
        assert not np.array_equal(a.switch_out, c.switch_out)


def test_router_object_names():
    assert FTreeRouter().name == "ftree"
    assert FTreeRouter(shuffle=True).name == "ftree-shuffled"
