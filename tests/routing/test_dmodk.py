"""D-Mod-K: closed form, theorems 1 & 2, job-aware partial routing."""

import numpy as np
import pytest

from repro.analysis import down_port_destination_counts, sequence_hsd
from repro.collectives import hierarchical_recursive_doubling, shift
from repro.fabric import build_fabric
from repro.ordering import physical_placement, topology_order
from repro.routing import (
    check_reachability,
    check_up_down,
    dense_ranks,
    down_parallel_k,
    q_up,
    route_dmodk,
)
from repro.topology import pgft, rlft_max


class TestClosedForm:
    def test_q_up_level1_is_mod(self):
        spec = pgft(2, [4, 4], [1, 2], [1, 2])
        j = np.arange(16)
        # At hosts/leaves, Q_1(j) = j mod (w_1 p_1) = 0 (single rail).
        assert (q_up(spec, 1, j) == 0).all()
        # At leaves, Q_2(j) = j mod (w_2 p_2) = j mod 4.
        assert np.array_equal(q_up(spec, 2, j), j % 4)

    def test_q_up_three_level(self):
        spec = rlft_max(2, 3)  # PGFT(3; 2,2,4; 1,2,2; 1,1,1)
        j = np.arange(16)
        assert np.array_equal(q_up(spec, 2, j), j % 2)
        assert np.array_equal(q_up(spec, 3, j), (j // 2) % 2)

    def test_down_parallel_spreads_over_cables(self):
        spec = pgft(2, [4, 4], [1, 2], [1, 2])
        j = np.arange(16)
        k = down_parallel_k(spec, 2, j)
        assert set(np.unique(k)) == {0, 1}
        # Q_2 = j mod 4; k = Q_2 // w_2: destinations 0,1 cable 0; 2,3 cable 1.
        assert np.array_equal(k, (j % 4) // 2)

    def test_dense_ranks_identity(self):
        assert np.array_equal(dense_ranks(5, None), np.arange(5))

    def test_dense_ranks_subset(self):
        r = dense_ranks(6, np.array([1, 3, 4]))
        # ports:  0 1 2 3 4 5 -> searchsorted ranks 0 0 1 1 2 3
        assert list(r) == [0, 0, 1, 1, 2, 3]
        # Active ports get consecutive ranks.
        assert list(r[[1, 3, 4]]) == [0, 1, 2]

    def test_dense_ranks_validation(self):
        with pytest.raises(ValueError):
            dense_ranks(4, np.array([], dtype=int))
        with pytest.raises(ValueError):
            dense_ranks(4, np.array([5]))


class TestCorrectness:
    def test_reachability_and_shape(self, any_spec):
        tables = route_dmodk(build_fabric(any_spec))
        check_reachability(tables)
        check_up_down(tables, sample=128)

    def test_needs_spec(self):
        from repro.fabric import Fabric

        fab = Fabric.from_links(1, [1, 1], [(0, 0, 1, 0)])
        with pytest.raises(ValueError, match="PGFT"):
            route_dmodk(fab)


class TestTheorem1:
    """No up-port carries two flows in any Shift stage (complete RLFT)."""

    def test_shift_congestion_free(self, any_spec):
        N = any_spec.num_endports
        tables = route_dmodk(build_fabric(any_spec))
        rep = sequence_hsd(tables, shift(N), topology_order(N))
        assert rep.congestion_free
        assert rep.avg_max == 1.0

    def test_shift_congestion_free_648(self):
        spec = rlft_max(18, 2)
        tables = route_dmodk(build_fabric(spec))
        N = spec.num_endports
        cps = shift(N, displacements=range(1, N, 13))
        assert sequence_hsd(tables, cps, topology_order(N)).congestion_free


class TestTheorem2:
    """Each down-going directed link serves exactly one destination."""

    def test_single_destination_per_down_port(self, any_spec):
        tables = route_dmodk(build_fabric(any_spec))
        counts = down_port_destination_counts(tables)
        assert counts.max() <= 1

    def test_matches_reference_walker(self, fig1_tables):
        from repro.routing import down_port_destinations

        ref = down_port_destinations(fig1_tables)
        vec = down_port_destination_counts(fig1_tables)
        assert np.array_equal(ref, vec)


class TestPartialPopulation:
    def test_physical_skip_semantics_hsd1(self):
        spec = pgft(2, [6, 6], [1, 6], [1, 1])
        N = spec.num_endports
        tables = route_dmodk(build_fabric(spec))
        rng = np.random.default_rng(0)
        active = np.sort(rng.permutation(N)[: N - 7])
        slots = physical_placement(active, N)
        assert sequence_hsd(tables, shift(N), slots).congestion_free
        assert sequence_hsd(
            tables, hierarchical_recursive_doubling(spec), slots
        ).congestion_free

    def test_job_aware_dense_routing_reduces_hsd(self):
        # Dense re-ranked shift on a random subset: job-aware routing must
        # do at least as well as oblivious routing, and all non-wrapping
        # stages must be perfectly clean.
        spec = pgft(2, [6, 6], [1, 6], [1, 1])
        N = spec.num_endports
        fab = build_fabric(spec)
        rng = np.random.default_rng(1)
        active = np.sort(rng.permutation(N)[: N - 7])
        n = len(active)
        aware = route_dmodk(fab, active=active)
        oblivious = route_dmodk(fab)
        cps = shift(n)
        rep_aware = sequence_hsd(aware, cps, active)
        rep_obliv = sequence_hsd(oblivious, cps, active)
        assert rep_aware.avg_max <= rep_obliv.avg_max
        assert rep_aware.worst <= 2  # only wrap stages may collide
