"""Shared PGFT routing scaffolding (build_pgft_tables)."""

import numpy as np
import pytest

from repro.fabric import Fabric, build_fabric
from repro.routing import check_reachability
from repro.routing.base import build_pgft_tables, require_spec
from repro.topology import pgft


@pytest.fixture
def fabric():
    return build_fabric(pgft(2, [3, 4], [1, 3], [1, 1]))


def test_require_spec_rejects_generic():
    fab = Fabric.from_links(1, [1, 1], [(0, 0, 1, 0)])
    with pytest.raises(ValueError, match="PGFT"):
        require_spec(fab)


def test_scalar_callbacks_broadcast(fabric):
    # Callbacks may return scalars; the builder broadcasts them.
    spec = fabric.spec

    def up_choice(level, sw, dest):
        return np.asarray(dest) % spec.up_ports_at(level)

    def down_parallel(level, sw, dest):
        return 0

    tables = build_pgft_tables(fabric, up_choice, down_parallel)
    check_reachability(tables)


def test_host_up_generated_for_multirail():
    spec = pgft(2, [4, 4], [2, 4], [1, 2])  # hosts with 2 rails
    fab = build_fabric(spec)

    def up_choice(level, sw, dest):
        return np.asarray(dest) % spec.up_ports_at(level)

    def down_parallel(level, sw, dest):
        return np.asarray(dest) % spec.p[level - 1]

    def host_choice(dest):
        return dest % spec.up_ports_at(0)

    tables = build_pgft_tables(fab, up_choice, down_parallel, host_choice)
    assert tables.host_up is not None
    assert tables.host_up.shape == (16, 16)


def test_single_rail_host_up_is_none(fabric):
    def up_choice(level, sw, dest):
        return np.asarray(dest) % fabric.spec.up_ports_at(level)

    tables = build_pgft_tables(fabric, up_choice, lambda l, s, d: 0)
    assert tables.host_up is None


def test_tables_reference_owned_ports(fabric):
    def up_choice(level, sw, dest):
        return np.asarray(dest) % fabric.spec.up_ports_at(level)

    tables = build_pgft_tables(fabric, up_choice, lambda l, s, d: 0)
    for row in range(fabric.num_switches):
        node = fabric.num_endports + row
        lo, hi = fabric.port_start[node], fabric.port_start[node + 1]
        gp = tables.switch_out[row]
        assert (gp >= lo).all() and (gp < hi).all()
