"""Min-hop baseline: correctness on PGFT and generic fabrics."""

import numpy as np
import pytest

from repro.fabric import Fabric, build_fabric, loads
from repro.routing import (
    MinHopRouter,
    bfs_distances,
    check_reachability,
    check_up_down,
    route_minhop,
)
from repro.topology import pgft


class TestBFS:
    def test_distances_on_fig1(self, fig1_fabric):
        dist = bfs_distances(fig1_fabric, np.array([0]))
        assert dist[0, 0] == 0
        assert dist[0, 1] == 2      # same-leaf host: up + down
        assert dist[0, 4] == 4      # other-leaf host
        leaf0 = fig1_fabric.num_endports
        assert dist[0, leaf0] == 1

    def test_all_reachable(self, any_spec):
        fab = build_fabric(any_spec)
        dist = bfs_distances(fab, np.arange(min(4, fab.num_endports)))
        assert (dist >= 0).all()


class TestRouteMinhop:
    @pytest.mark.parametrize("balance", ["roundrobin", "random", "first"])
    def test_reachability(self, any_spec, balance):
        tables = route_minhop(build_fabric(any_spec), balance=balance)
        hops = check_reachability(tables)
        assert hops.max() <= 2 * any_spec.h + 1

    def test_up_down_on_trees(self, any_spec):
        tables = route_minhop(build_fabric(any_spec))
        check_up_down(tables, sample=100)

    def test_paths_are_minimal(self, fig1_fabric):
        tables = route_minhop(fig1_fabric)
        hops = tables.paths_matrix()
        dist = bfs_distances(fig1_fabric, np.arange(fig1_fabric.num_endports))
        N = fig1_fabric.num_endports
        assert np.array_equal(hops, dist[:, :N])

    def test_generic_fabric_without_spec(self):
        # A hand-written 4-host dumbbell: minhop must route it, D-Mod-K not.
        fab = loads(
            "hca A ports=1\nhca B ports=1\nhca C ports=1\nhca D ports=1\n"
            "switch S1 ports=3\nswitch S2 ports=3\n"
            "link A[0] S1[0]\nlink B[0] S1[1]\n"
            "link C[0] S2[0]\nlink D[0] S2[1]\n"
            "link S1[2] S2[2]\n"
        )
        tables = route_minhop(fab)
        hops = check_reachability(tables)
        assert hops[0, 1] == 2
        assert hops[0, 2] == 3

    def test_rejects_unknown_balance(self, fig1_fabric):
        with pytest.raises(ValueError, match="balance"):
            route_minhop(fig1_fabric, balance="bogus")

    def test_rejects_disconnected(self):
        fab = Fabric.from_links(
            num_endports=2, port_counts=[1, 1, 2, 2],
            links=[(0, 0, 2, 0), (1, 0, 3, 0)],
        )
        with pytest.raises(ValueError, match="disconnected"):
            route_minhop(fab)

    def test_roundrobin_spreads_destinations(self, fig1_fabric):
        # Leaf up-ports should each serve some destinations.
        tables = route_minhop(fig1_fabric, balance="roundrobin")
        fab = fig1_fabric
        leaf = fab.num_endports
        row = tables.switch_out[0]
        other_leaf_dests = np.arange(4, 16)
        used = np.unique(row[other_leaf_dests])
        assert len(used) == 4  # all four up ports in play

    def test_first_funnels_destinations(self, fig1_fabric):
        tables = route_minhop(fig1_fabric, balance="first")
        row = tables.switch_out[0]
        other_leaf_dests = np.arange(4, 16)
        assert len(np.unique(row[other_leaf_dests])) == 1

    def test_random_seed_reproducible(self, fig1_fabric):
        a = route_minhop(fig1_fabric, balance="random", seed=5)
        b = route_minhop(fig1_fabric, balance="random", seed=5)
        assert np.array_equal(a.switch_out, b.switch_out)

    def test_router_object(self, fig1_fabric):
        router = MinHopRouter(balance="roundrobin")
        assert router.name == "minhop-roundrobin"
        tables = router(fig1_fabric)
        check_reachability(tables)
