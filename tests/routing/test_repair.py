"""Failure injection and forwarding-table repair."""

import numpy as np
import pytest

from repro.analysis import sequence_hsd
from repro.collectives import shift
from repro.fabric import build_fabric
from repro.ordering import topology_order
from repro.routing import (
    assert_deadlock_free,
    check_reachability,
    route_dmodk,
)
from repro.routing.repair import (
    repair_tables,
    repair_tables_balanced,
    score_repair,
    worst_link_multiplicity,
)
from repro.topology import rlft_max


@pytest.fixture(scope="module")
def healthy():
    spec = rlft_max(4, 2)  # 32 end-ports
    fab = build_fabric(spec)
    return spec, fab, route_dmodk(fab)


def _switch_uplinks(fab):
    return np.flatnonzero(fab.port_goes_up()
                          & (fab.port_owner >= fab.num_endports))


class TestFailureInjection:
    def test_both_ends_die(self, healthy):
        _, fab, _ = healthy
        gp = int(_switch_uplinks(fab)[0])
        peer = int(fab.port_peer[gp])
        degraded = fab.with_failed_cables([gp])
        assert degraded.port_peer[gp] == -1
        assert degraded.port_peer[peer] == -1

    def test_original_untouched(self, healthy):
        _, fab, _ = healthy
        gp = int(_switch_uplinks(fab)[0])
        fab.with_failed_cables([gp])
        assert fab.port_peer[gp] >= 0

    def test_idempotent(self, healthy):
        _, fab, _ = healthy
        gp = int(_switch_uplinks(fab)[0])
        d1 = fab.with_failed_cables([gp])
        d2 = d1.with_failed_cables([gp])
        assert np.array_equal(d1.port_peer, d2.port_peer)

    def test_dead_ports_listed(self, healthy):
        _, fab, _ = healthy
        gp = int(_switch_uplinks(fab)[0])
        degraded = fab.with_failed_cables([gp])
        dead = set(degraded.dead_ports())
        assert gp in dead and int(fab.port_peer[gp]) in dead


class TestRepair:
    def test_no_failures_is_noop(self, healthy):
        _, fab, base = healthy
        rep = repair_tables(base, fab)
        assert rep.repaired_entries == 0
        assert rep.ok
        assert np.array_equal(rep.tables.switch_out, base.switch_out)

    @pytest.mark.parametrize("nfail", [1, 2, 4])
    def test_repair_restores_reachability(self, healthy, nfail):
        spec, fab, base = healthy
        rng = np.random.default_rng(nfail)
        dead = rng.choice(_switch_uplinks(fab), size=nfail, replace=False)
        degraded = fab.with_failed_cables(dead)
        rep = repair_tables(base, degraded)
        assert rep.ok
        check_reachability(rep.tables)

    def test_repaired_tables_stay_deadlock_free(self, healthy):
        _, fab, base = healthy
        dead = _switch_uplinks(fab)[[0, 7]]
        degraded = fab.with_failed_cables(dead)
        rep = repair_tables(base, degraded)
        assert_deadlock_free(rep.tables)

    def test_degradation_is_local(self, healthy):
        # One failed cable: HSD worst grows to exactly 2 (the detour
        # shares one live link), not fabric-wide.
        spec, fab, base = healthy
        n = spec.num_endports
        dead = [int(_switch_uplinks(fab)[0])]
        rep = repair_tables(base, fab.with_failed_cables(dead))
        hsd = sequence_hsd(rep.tables, shift(n), topology_order(n))
        assert hsd.worst == 2

    def test_degradation_monotone(self, healthy):
        spec, fab, base = healthy
        n = spec.num_endports
        rng = np.random.default_rng(9)
        ups = _switch_uplinks(fab)
        picked = rng.permutation(ups)
        prev = 1.0
        for nfail in (1, 4, 8):
            rep = repair_tables(base, fab.with_failed_cables(picked[:nfail]))
            assert rep.ok
            hsd = sequence_hsd(rep.tables, shift(n), topology_order(n))
            assert hsd.avg_max >= prev - 1e-9
            prev = hsd.avg_max

    def test_lost_host_reported(self, healthy):
        _, fab, base = healthy
        host_port = int(fab.port_start[3])
        rep = repair_tables(base, fab.with_failed_cables([host_port]))
        assert 3 in rep.unreachable
        assert not rep.ok

    def test_fabric_mismatch_rejected(self, healthy):
        _, fab, base = healthy
        other = build_fabric(rlft_max(3, 2))
        with pytest.raises(ValueError, match="match"):
            repair_tables(base, other)

    def test_unknown_strategy_rejected(self, healthy):
        _, fab, base = healthy
        with pytest.raises(ValueError, match="strategy"):
            repair_tables(base, fab, strategy="optimal")


class TestRepairEdgeCases:
    def _leaf_and_spine(self, fab):
        levels = fab.node_level
        leaf = int(np.flatnonzero(levels == 1)[0])
        spine = int(np.flatnonzero(levels == levels.max())[0])
        return leaf, spine

    def test_failed_top_level_switch_repairable(self, healthy):
        # Losing one whole spine leaves sibling spines on every route:
        # the repair must restore full reachability, deadlock-free.
        _, fab, base = healthy
        _, spine = self._leaf_and_spine(fab)
        rep = repair_tables(base, fab.with_failed_switches([spine]),
                            strategy="balanced")
        assert rep.ok
        assert rep.repaired_entries > 0
        check_reachability(rep.tables)
        assert_deadlock_free(rep.tables)

    def test_all_leaf_uplinks_dead_reports_not_crashes(self, healthy):
        # Severing every up port of one leaf strands its whole host
        # group; the repair must report them unreachable, not raise.
        _, fab, base = healthy
        leaf, _ = self._leaf_and_spine(fab)
        ports = fab.ports_of(leaf)
        ups = ports[fab.port_goes_up()[ports]]
        hosts = {int(fab.port_owner[int(fab.port_peer[g])])
                 for g in ports[~fab.port_goes_up()[ports]]}
        rep = repair_tables(base, fab.with_failed_cables(ups))
        assert not rep.ok
        assert hosts <= set(rep.unreachable)

    def test_repair_idempotent_under_repeated_fault(self, healthy):
        # Applying the same fault to an already-repaired table set must
        # be a fixed point: nothing left to re-point, tables unchanged.
        _, fab, base = healthy
        gp = int(_switch_uplinks(fab)[0])
        degraded = fab.with_failed_cables([gp])
        rep1 = repair_tables(base, degraded, strategy="balanced")
        rep2 = repair_tables(rep1.tables,
                             degraded.with_failed_cables([gp]),
                             strategy="balanced")
        assert rep2.repaired_entries == 0
        assert np.array_equal(rep2.tables.switch_out,
                              rep1.tables.switch_out)


class TestStrategies:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_balanced_never_worse_on_worst_link(self, healthy, seed):
        _, fab, base = healthy
        rng = np.random.default_rng(seed)
        dead = rng.choice(_switch_uplinks(fab), size=3, replace=False)
        degraded = fab.with_failed_cables(dead)
        nav = repair_tables(base, degraded, strategy="naive")
        bal = repair_tables_balanced(base, degraded)
        assert worst_link_multiplicity(bal.tables) <= \
            worst_link_multiplicity(nav.tables)
        assert bal.strategy == "balanced" and nav.strategy == "naive"

    def test_balanced_spread_within_one_of_bound(self, healthy):
        _, fab, base = healthy
        dead = _switch_uplinks(fab)[[0, 5]]
        bal = repair_tables_balanced(base, fab.with_failed_cables(dead))
        assert bal.ok
        check_reachability(bal.tables)

    def test_score_orders_lost_before_load(self, healthy):
        _, fab, base = healthy
        host_port = int(fab.port_start[3])
        lossy = repair_tables(base, fab.with_failed_cables([host_port]))
        clean = repair_tables(base, fab)
        assert score_repair(clean) < score_repair(lossy)
