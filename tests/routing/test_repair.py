"""Failure injection and forwarding-table repair."""

import numpy as np
import pytest

from repro.analysis import sequence_hsd
from repro.collectives import shift
from repro.fabric import build_fabric
from repro.ordering import topology_order
from repro.routing import (
    assert_deadlock_free,
    check_reachability,
    route_dmodk,
)
from repro.routing.repair import repair_tables
from repro.topology import rlft_max


@pytest.fixture(scope="module")
def healthy():
    spec = rlft_max(4, 2)  # 32 end-ports
    fab = build_fabric(spec)
    return spec, fab, route_dmodk(fab)


def _switch_uplinks(fab):
    return np.flatnonzero(fab.port_goes_up()
                          & (fab.port_owner >= fab.num_endports))


class TestFailureInjection:
    def test_both_ends_die(self, healthy):
        _, fab, _ = healthy
        gp = int(_switch_uplinks(fab)[0])
        peer = int(fab.port_peer[gp])
        degraded = fab.with_failed_cables([gp])
        assert degraded.port_peer[gp] == -1
        assert degraded.port_peer[peer] == -1

    def test_original_untouched(self, healthy):
        _, fab, _ = healthy
        gp = int(_switch_uplinks(fab)[0])
        fab.with_failed_cables([gp])
        assert fab.port_peer[gp] >= 0

    def test_idempotent(self, healthy):
        _, fab, _ = healthy
        gp = int(_switch_uplinks(fab)[0])
        d1 = fab.with_failed_cables([gp])
        d2 = d1.with_failed_cables([gp])
        assert np.array_equal(d1.port_peer, d2.port_peer)

    def test_dead_ports_listed(self, healthy):
        _, fab, _ = healthy
        gp = int(_switch_uplinks(fab)[0])
        degraded = fab.with_failed_cables([gp])
        dead = set(degraded.dead_ports())
        assert gp in dead and int(fab.port_peer[gp]) in dead


class TestRepair:
    def test_no_failures_is_noop(self, healthy):
        _, fab, base = healthy
        rep = repair_tables(base, fab)
        assert rep.repaired_entries == 0
        assert rep.ok
        assert np.array_equal(rep.tables.switch_out, base.switch_out)

    @pytest.mark.parametrize("nfail", [1, 2, 4])
    def test_repair_restores_reachability(self, healthy, nfail):
        spec, fab, base = healthy
        rng = np.random.default_rng(nfail)
        dead = rng.choice(_switch_uplinks(fab), size=nfail, replace=False)
        degraded = fab.with_failed_cables(dead)
        rep = repair_tables(base, degraded)
        assert rep.ok
        check_reachability(rep.tables)

    def test_repaired_tables_stay_deadlock_free(self, healthy):
        _, fab, base = healthy
        dead = _switch_uplinks(fab)[[0, 7]]
        degraded = fab.with_failed_cables(dead)
        rep = repair_tables(base, degraded)
        assert_deadlock_free(rep.tables)

    def test_degradation_is_local(self, healthy):
        # One failed cable: HSD worst grows to exactly 2 (the detour
        # shares one live link), not fabric-wide.
        spec, fab, base = healthy
        n = spec.num_endports
        dead = [int(_switch_uplinks(fab)[0])]
        rep = repair_tables(base, fab.with_failed_cables(dead))
        hsd = sequence_hsd(rep.tables, shift(n), topology_order(n))
        assert hsd.worst == 2

    def test_degradation_monotone(self, healthy):
        spec, fab, base = healthy
        n = spec.num_endports
        rng = np.random.default_rng(9)
        ups = _switch_uplinks(fab)
        picked = rng.permutation(ups)
        prev = 1.0
        for nfail in (1, 4, 8):
            rep = repair_tables(base, fab.with_failed_cables(picked[:nfail]))
            assert rep.ok
            hsd = sequence_hsd(rep.tables, shift(n), topology_order(n))
            assert hsd.avg_max >= prev - 1e-9
            prev = hsd.avg_max

    def test_lost_host_reported(self, healthy):
        _, fab, base = healthy
        host_port = int(fab.port_start[3])
        rep = repair_tables(base, fab.with_failed_cables([host_port]))
        assert 3 in rep.unreachable
        assert not rep.ok

    def test_fabric_mismatch_rejected(self, healthy):
        _, fab, base = healthy
        other = build_fabric(rlft_max(3, 2))
        with pytest.raises(ValueError, match="match"):
            repair_tables(base, other)
