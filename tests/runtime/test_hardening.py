"""Crash/hang survival: hardened sweeper shards and crash-safe cache."""

import json
import os
import time

import numpy as np
import pytest

from repro.runtime import ParallelSweeper, ResultCache, ShardFailure


# -- module-level workers (picklable for process pools) -----------------

def _double(x):
    return x * 2


def _crash_on_odd(x):
    if x % 2:
        raise RuntimeError(f"shard {x} exploded")
    return x * 2


def _always_crash(x):
    raise RuntimeError("doomed")


def _flaky_until_marker(x, marker_dir):
    """Fail the first time each argument is seen, succeed after."""
    marker = os.path.join(marker_dir, f"seen-{x}")
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise RuntimeError("transient")
    return x * 2


def _hang_on_zero(x):
    # Far beyond the 1.5 s shard deadline, short enough that the
    # orphaned worker doesn't stall interpreter teardown for long.
    if x == 0:
        time.sleep(6.0)
    return x * 2


def _die_on_zero(x):
    if x == 0:
        os._exit(13)  # kills the worker process, breaking the pool
    return x * 2


class TestInlineFallback:
    def test_jobs1_is_inline_and_exact(self):
        sw = ParallelSweeper(jobs=1)
        assert sw.starmap(_double, [(i,) for i in range(5)]) == [
            0, 2, 4, 6, 8]
        assert sw.last_failures == []

    def test_inline_crash_propagates(self):
        # Inline execution keeps the plain-function contract: no
        # swallowing, the caller sees the exception.
        sw = ParallelSweeper(jobs=1)
        with pytest.raises(RuntimeError, match="exploded"):
            sw.starmap(_crash_on_odd, [(1,)])


@pytest.mark.slow
class TestCrashSurvival:
    def test_crashed_shard_yields_partial_result(self):
        sw = ParallelSweeper(jobs=2, shard_retries=1, retry_backoff=0.01)
        out = sw.starmap(_always_crash, [(i,) for i in range(3)])
        assert out == [None, None, None]
        assert len(sw.last_failures) == 3
        for f in sw.last_failures:
            assert isinstance(f, ShardFailure)
            assert "doomed" in f.reason
            assert f.attempts == 2  # initial + 1 retry

    def test_mixed_crash_keeps_good_results(self):
        sw = ParallelSweeper(jobs=2, shard_retries=0, retry_backoff=0.01)
        out = sw.starmap(_crash_on_odd, [(i,) for i in range(4)])
        assert out == [0, None, 4, None]
        assert sorted(f.index for f in sw.last_failures) == [1, 3]

    def test_transient_crash_retried_to_success(self, tmp_path):
        sw = ParallelSweeper(jobs=2, shard_retries=2, retry_backoff=0.01)
        out = sw.starmap(
            _flaky_until_marker, [(i, str(tmp_path)) for i in range(3)])
        assert out == [0, 2, 4]
        assert sw.last_failures == []

    def test_worker_death_recorded_not_fatal(self):
        """os._exit in a worker breaks the pool; the sweep survives.

        (Two items: a single-item starmap runs inline, where a worker
        suicide would take the interpreter with it.)
        """
        sw = ParallelSweeper(jobs=2, shard_retries=1, retry_backoff=0.01)
        out = sw.starmap(_die_on_zero, [(0,), (1,)])
        assert out[0] is None
        assert out[1] == 2          # rescued on the recreated pool
        assert any(f.index == 0 for f in sw.last_failures)
        # The sweeper recovered a working pool for the next call.
        assert sw.starmap(_double, [(21,), (22,)]) == [42, 44]


@pytest.mark.slow
class TestTimeouts:
    def test_hung_shard_times_out(self):
        sw = ParallelSweeper(jobs=2, shard_timeout=1.5, retry_backoff=0.01)
        t0 = time.monotonic()
        out = sw.starmap(_hang_on_zero, [(0,), (1,)])
        assert time.monotonic() - t0 < 30.0
        assert out[0] is None
        assert out[1] == 2          # the fast shard still lands
        [f] = [f for f in sw.last_failures if f.index == 0]
        assert "timed out" in f.reason
        # Timeouts are terminal: one attempt only.
        assert f.attempts == 1
        # Pool was recreated; the sweeper still works.
        assert sw.starmap(_double, [(3,), (4,)]) == [6, 8]

    def test_no_timeout_by_default(self):
        sw = ParallelSweeper(jobs=2, retry_backoff=0.01)
        out = sw.starmap(_double, [(i,) for i in range(4)])
        assert out == [0, 2, 4, 6]
        assert sw.last_failures == []


class TestCrashSafeCache:
    def _store(self, tmp_path, key="k", meta=None):
        cache = ResultCache(root=tmp_path)
        cache.store_array(key, np.arange(6.0), meta=meta)
        return cache

    def test_corrupt_entry_evicted_and_recomputed(self, tmp_path):
        cache = self._store(tmp_path, meta={"n": 6})
        path = cache.path_for("k")
        # Simulate a crash mid-write under the pre-atomic scheme: the
        # file exists but holds garbage.
        path.write_bytes(b"\x93NUMPY garbage")
        assert cache.load_array("k") is None
        assert not path.exists()
        assert not path.with_suffix(".json").exists()
        # The slot self-heals: store again, load round-trips.
        cache.store_array("k", np.arange(6.0))
        assert np.array_equal(cache.load_array("k"), np.arange(6.0))

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = self._store(tmp_path)
        path = cache.path_for("k")
        path.write_bytes(path.read_bytes()[:16])
        assert cache.load_array("k") is None
        assert cache.stats.misses >= 1

    def test_empty_file_is_a_miss(self, tmp_path):
        cache = self._store(tmp_path)
        cache.path_for("k").write_bytes(b"")
        assert cache.load_array("k") is None

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = self._store(tmp_path, meta={"a": 1})
        leftovers = [p for p in os.listdir(tmp_path) if ".tmp" in p]
        assert leftovers == []
        stored = sorted(p for p in os.listdir(tmp_path))
        assert any(p.endswith(".npy") for p in stored)
        assert any(p.endswith(".json") for p in stored)

    def test_sidecar_written_atomically_and_valid(self, tmp_path):
        cache = self._store(tmp_path, meta={"rows": 3, "tag": "x"})
        sidecar = cache.path_for("k").with_suffix(".json")
        assert json.loads(sidecar.read_text()) == {"rows": 3, "tag": "x"}

    def test_failed_writer_cleans_up_temp(self, tmp_path):
        cache = ResultCache(root=tmp_path)

        class Boom(Exception):
            pass

        def bad_writer(fh):
            raise Boom

        with pytest.raises(Boom):
            cache._atomic_write(cache.path_for("k"), bad_writer, ".npy.tmp")
        assert os.listdir(tmp_path) == []


class TestSweepStats:
    def test_clean_run_counts(self):
        sw = ParallelSweeper(jobs=1)
        sw.starmap(_double, [(i,) for i in range(4)])
        stats = sw.last_stats
        assert stats.submitted == 4 and stats.completed == 4
        assert stats.failed == stats.crashes == stats.retries == 0
        assert stats.to_json()["submitted"] == 4
        assert "submitted=4" in str(stats)

    @pytest.mark.slow
    def test_crash_and_retry_counts(self):
        sw = ParallelSweeper(jobs=2, shard_retries=1, retry_backoff=0.01)
        sw.starmap(_always_crash, [(i,) for i in range(3)])
        stats = sw.last_stats
        assert stats.submitted == 3
        assert stats.completed == 0
        assert stats.failed == 3
        assert stats.crashes == 6        # initial + one retry each
        assert stats.retries == 3

    @pytest.mark.slow
    def test_timeout_and_pool_restart_counts(self):
        sw = ParallelSweeper(jobs=2, shard_timeout=1.5, retry_backoff=0.01)
        sw.starmap(_hang_on_zero, [(0,), (1,)])
        stats = sw.last_stats
        assert stats.timeouts == 1
        assert stats.failed == 1
        assert stats.completed == 1
        assert stats.pool_restarts >= 1

    @pytest.mark.slow
    def test_stats_reset_between_runs(self):
        sw = ParallelSweeper(jobs=2, shard_retries=0, retry_backoff=0.01)
        sw.starmap(_crash_on_odd, [(i,) for i in range(4)])
        assert sw.last_stats.crashes > 0
        sw.starmap(_double, [(1,), (2,)])
        stats = sw.last_stats
        assert stats.submitted == 2 and stats.completed == 2
        assert stats.crashes == 0 and stats.failed == 0
