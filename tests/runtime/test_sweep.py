"""Parallel sweep engine: serial equivalence, sharding, cache wiring."""

import numpy as np
import pytest

from repro.analysis import random_order_sweep
from repro.collectives import recursive_doubling, shift
from repro.fabric import build_fabric
from repro.routing import route_dmodk
from repro.runtime import (
    ParallelSweeper,
    ResultCache,
    chunk_ranges,
    parallel_order_sweep,
    resolve_jobs,
)
from repro.topology import pgft


@pytest.fixture(scope="module")
def tables():
    # 16 end-ports, 2 levels: big enough for interesting sweeps, small
    # enough that process fan-out stays test-friendly.
    return route_dmodk(build_fabric(pgft(2, [4, 4], [1, 4], [1, 1])))


class TestChunking:
    def test_covers_range_exactly(self):
        for n in (1, 2, 7, 25, 100):
            for c in (1, 2, 3, 8, 200):
                spans = chunk_ranges(n, c)
                flat = [i for a, b in spans for i in range(a, b)]
                assert flat == list(range(n))

    def test_empty(self):
        assert chunk_ranges(0, 4) == []

    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(-5) == 1


class TestSerialEquivalence:
    def test_inline_bit_identical(self, tables):
        serial = random_order_sweep(tables, shift, num_orders=8, seed=3)
        par = ParallelSweeper(jobs=1).order_sweep(
            tables, shift, num_orders=8, seed=3
        )
        assert np.array_equal(serial.avg_max, par.avg_max)
        assert serial.cps_name == par.cps_name

    @pytest.mark.slow
    def test_process_pool_bit_identical(self, tables):
        serial = random_order_sweep(tables, shift, num_orders=9, seed=11)
        par = ParallelSweeper(jobs=2).order_sweep(
            tables, shift, num_orders=9, seed=11
        )
        assert np.array_equal(serial.avg_max, par.avg_max)

    def test_partial_job_and_switch_links_only(self, tables):
        serial = random_order_sweep(
            tables, shift, num_orders=6, num_ranks=10, seed=5,
            switch_links_only=True,
        )
        par = ParallelSweeper(jobs=1).order_sweep(
            tables, shift, num_orders=6, num_ranks=10, seed=5,
            switch_links_only=True,
        )
        assert np.array_equal(serial.avg_max, par.avg_max)

    def test_prebuilt_cps_accepted(self, tables):
        cps = recursive_doubling(16)
        serial = random_order_sweep(tables, lambda n: cps, num_orders=4, seed=2)
        par = ParallelSweeper(jobs=1).order_sweep(
            tables, cps, num_orders=4, seed=2
        )
        assert np.array_equal(serial.avg_max, par.avg_max)

    def test_functional_wrapper(self, tables):
        a = parallel_order_sweep(tables, shift, num_orders=3, seed=0)
        b = random_order_sweep(tables, shift, num_orders=3, seed=0)
        assert np.array_equal(a.avg_max, b.avg_max)


class TestCacheIntegration:
    def test_second_call_hits(self, tables, tmp_path):
        cache = ResultCache(root=tmp_path)
        sweeper = ParallelSweeper(jobs=1, cache=cache)
        r1 = sweeper.order_sweep(tables, shift, num_orders=5, seed=1)
        assert cache.stats == type(cache.stats)(hits=0, misses=1, stores=1)
        r2 = sweeper.order_sweep(tables, shift, num_orders=5, seed=1)
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1
        assert np.array_equal(r1.avg_max, r2.avg_max)

    def test_cached_equals_fresh(self, tables, tmp_path):
        cache = ResultCache(root=tmp_path)
        sweeper = ParallelSweeper(jobs=1, cache=cache)
        warm = sweeper.order_sweep(tables, shift, num_orders=5, seed=1)
        cold = ParallelSweeper(jobs=1).order_sweep(
            tables, shift, num_orders=5, seed=1
        )
        assert np.array_equal(warm.avg_max, cold.avg_max)

    def test_param_change_misses(self, tables, tmp_path):
        cache = ResultCache(root=tmp_path)
        sweeper = ParallelSweeper(jobs=1, cache=cache)
        sweeper.order_sweep(tables, shift, num_orders=5, seed=1)
        sweeper.order_sweep(tables, shift, num_orders=5, seed=2)
        sweeper.order_sweep(tables, shift, num_orders=4, seed=1)
        assert cache.stats.hits == 0
        assert cache.stats.misses == 3

    def test_routing_change_invalidates(self, tmp_path):
        from repro.routing import route_minhop

        fab = build_fabric(pgft(2, [4, 4], [1, 4], [1, 1]))
        cache = ResultCache(root=tmp_path)
        sweeper = ParallelSweeper(jobs=1, cache=cache)
        sweeper.order_sweep(route_dmodk(fab), shift, num_orders=3, seed=0)
        sweeper.order_sweep(
            route_minhop(fab, "random", seed=9), shift, num_orders=3, seed=0
        )
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2


class TestStarmap:
    def test_inline_order_preserved(self):
        out = ParallelSweeper(jobs=1).starmap(divmod, [(7, 3), (9, 2), (5, 5)])
        assert out == [divmod(7, 3), divmod(9, 2), divmod(5, 5)]

    @pytest.mark.slow
    def test_pool_order_preserved(self):
        out = ParallelSweeper(jobs=2).starmap(divmod, [(7, 3), (9, 2), (5, 5)])
        assert out == [divmod(7, 3), divmod(9, 2), divmod(5, 5)]
