"""Result cache: digest stability, hit/miss counters, invalidation."""

import numpy as np
import pytest

from repro.collectives import recursive_doubling, shift
from repro.fabric import build_fabric
from repro.routing import route_dmodk, route_minhop
from repro.runtime import (
    ResultCache,
    cps_digest,
    default_cache_dir,
    sweep_digest,
    tables_digest,
)
from repro.topology import pgft


@pytest.fixture
def tables():
    return route_dmodk(build_fabric(pgft(2, [4, 4], [1, 4], [1, 1])))


class TestDigests:
    def test_tables_digest_stable(self, tables):
        assert tables_digest(tables) == tables_digest(tables)

    def test_digest_changes_with_routing_engine(self):
        fab = build_fabric(pgft(2, [4, 4], [1, 4], [1, 1]))
        assert tables_digest(route_dmodk(fab)) != tables_digest(
            route_minhop(fab, "random", seed=7)
        )

    def test_digest_changes_with_topology(self, tables):
        other = route_dmodk(build_fabric(pgft(2, [4, 4], [1, 2], [1, 2])))
        assert tables_digest(tables) != tables_digest(other)

    def test_cps_digest_sees_stage_sampling(self):
        full = shift(16)
        sampled = shift(16, displacements=range(1, 16, 3))
        assert cps_digest(full) != cps_digest(sampled)
        assert cps_digest(full) == cps_digest(shift(16))

    def test_cps_digest_distinguishes_collectives(self):
        assert cps_digest(shift(8)) != cps_digest(recursive_doubling(8))

    def test_sweep_digest_covers_every_param(self, tables):
        cps = shift(16)
        base = dict(num_orders=5, seed=0, num_ranks=16,
                    switch_links_only=False)
        ref = sweep_digest(tables, cps, **base)
        assert sweep_digest(tables, cps, **base) == ref
        for change in (dict(num_orders=6), dict(seed=1),
                       dict(num_ranks=12), dict(switch_links_only=True)):
            assert sweep_digest(tables, cps, **{**base, **change}) != ref


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        arr = np.array([1.0, 2.5, 3.0])
        assert cache.load_array("k1") is None
        cache.store_array("k1", arr, meta={"why": "test"})
        got = cache.load_array("k1")
        assert np.array_equal(got, arr)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert (tmp_path / "k1.json").is_file()

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        for k in ("a", "b"):
            cache.store_array(k, np.zeros(2))
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.load_array("a") is None

    def test_empty_dir_counts_zero(self, tmp_path):
        assert len(ResultCache(root=tmp_path / "nonexistent")) == 0

    def test_default_dir_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro" / "sweeps"


class TestJsonEntries:
    def test_json_miss_then_hit(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        assert cache.load_json("resp") is None
        cache.store_json("resp", {"verdict": "contention-free", "n": 324})
        assert cache.load_json("resp") == {"n": 324,
                                           "verdict": "contention-free"}
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_corrupt_json_is_a_miss_and_evicted(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.store_json("resp", {"ok": True})
        (tmp_path / "resp.json").write_bytes(b"{truncated")
        assert cache.load_json("resp") is None
        assert not (tmp_path / "resp.json").exists()

    def test_json_counts_in_len_and_clear(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.store_json("a", {})
        cache.store_array("b", np.zeros(2))
        assert len(cache) == 2
        assert cache.clear() == 2


class TestEviction:
    def _mk(self, tmp_path, max_bytes):
        return ResultCache(root=tmp_path, max_bytes=max_bytes)

    def test_max_bytes_validated(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            ResultCache(root=tmp_path, max_bytes=0)

    def test_unbounded_by_default(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        for i in range(20):
            cache.store_array(f"k{i}", np.zeros(256))
        assert len(cache) == 20
        assert cache.stats.evictions == 0

    def test_oldest_evicted_when_over_budget(self, tmp_path):
        entry = len(np.zeros(256).tobytes()) + 128  # npy header slack
        cache = self._mk(tmp_path, max_bytes=3 * entry)
        for i in range(6):
            cache.store_array(f"k{i}", np.zeros(256))
        assert cache.stats.evictions > 0
        assert cache.total_bytes() <= 3 * entry
        # Newest entry always survives its own store.
        assert cache.load_array("k5") is not None
        # Oldest entries went first.
        assert cache.load_array("k0") is None

    def test_load_refreshes_lru_order(self, tmp_path):
        import time as _time
        entry = len(np.zeros(256).tobytes()) + 128
        cache = self._mk(tmp_path, max_bytes=3 * entry)
        for i in range(3):
            cache.store_array(f"k{i}", np.zeros(256))
            _time.sleep(0.02)
        assert cache.load_array("k0") is not None  # k0 now most recent
        _time.sleep(0.02)
        cache.store_array("k3", np.zeros(256))
        # k1 (now the stalest) was evicted; refreshed k0 survived.
        assert cache.load_array("k0") is not None
        assert cache.load_array("k1") is None

    def test_newest_entry_never_evicted(self, tmp_path):
        # A single entry larger than the whole budget still lands.
        cache = self._mk(tmp_path, max_bytes=64)
        cache.store_array("big", np.zeros(1024))
        assert cache.load_array("big") is not None

    def test_sidecar_evicted_with_its_array(self, tmp_path):
        import time as _time
        entry = len(np.zeros(256).tobytes()) + 256
        cache = self._mk(tmp_path, max_bytes=2 * entry)
        cache.store_array("k0", np.zeros(256), meta={"i": 0})
        _time.sleep(0.02)
        for i in range(1, 4):
            cache.store_array(f"k{i}", np.zeros(256), meta={"i": i})
            _time.sleep(0.01)
        assert not (tmp_path / "k0.npy").exists()
        assert not (tmp_path / "k0.json").exists()

    def test_evictions_counted_in_stats_str(self, tmp_path):
        cache = self._mk(tmp_path, max_bytes=64)
        cache.store_array("a", np.zeros(128))
        cache.store_array("b", np.zeros(128))
        assert cache.stats.evictions >= 1
        assert "evictions" in str(cache.stats)
