"""Result cache: digest stability, hit/miss counters, invalidation."""

import numpy as np
import pytest

from repro.collectives import recursive_doubling, shift
from repro.fabric import build_fabric
from repro.routing import route_dmodk, route_minhop
from repro.runtime import (
    ResultCache,
    cps_digest,
    default_cache_dir,
    sweep_digest,
    tables_digest,
)
from repro.topology import pgft


@pytest.fixture
def tables():
    return route_dmodk(build_fabric(pgft(2, [4, 4], [1, 4], [1, 1])))


class TestDigests:
    def test_tables_digest_stable(self, tables):
        assert tables_digest(tables) == tables_digest(tables)

    def test_digest_changes_with_routing_engine(self):
        fab = build_fabric(pgft(2, [4, 4], [1, 4], [1, 1]))
        assert tables_digest(route_dmodk(fab)) != tables_digest(
            route_minhop(fab, "random", seed=7)
        )

    def test_digest_changes_with_topology(self, tables):
        other = route_dmodk(build_fabric(pgft(2, [4, 4], [1, 2], [1, 2])))
        assert tables_digest(tables) != tables_digest(other)

    def test_cps_digest_sees_stage_sampling(self):
        full = shift(16)
        sampled = shift(16, displacements=range(1, 16, 3))
        assert cps_digest(full) != cps_digest(sampled)
        assert cps_digest(full) == cps_digest(shift(16))

    def test_cps_digest_distinguishes_collectives(self):
        assert cps_digest(shift(8)) != cps_digest(recursive_doubling(8))

    def test_sweep_digest_covers_every_param(self, tables):
        cps = shift(16)
        base = dict(num_orders=5, seed=0, num_ranks=16,
                    switch_links_only=False)
        ref = sweep_digest(tables, cps, **base)
        assert sweep_digest(tables, cps, **base) == ref
        for change in (dict(num_orders=6), dict(seed=1),
                       dict(num_ranks=12), dict(switch_links_only=True)):
            assert sweep_digest(tables, cps, **{**base, **change}) != ref


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        arr = np.array([1.0, 2.5, 3.0])
        assert cache.load_array("k1") is None
        cache.store_array("k1", arr, meta={"why": "test"})
        got = cache.load_array("k1")
        assert np.array_equal(got, arr)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert (tmp_path / "k1.json").is_file()

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        for k in ("a", "b"):
            cache.store_array(k, np.zeros(2))
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.load_array("a") is None

    def test_empty_dir_counts_zero(self, tmp_path):
        assert len(ResultCache(root=tmp_path / "nonexistent")) == 0

    def test_default_dir_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro" / "sweeps"
