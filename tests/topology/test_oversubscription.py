"""Why the paper's first RLFT restriction (constant CBB) is necessary.

Oversubscribed fat-trees (fewer up-links than down-links per leaf) are
cheaper and common in practice -- and provably cannot be congestion-free
for global collectives: during a Shift stage every host sends, so a
leaf's ``m`` flows must squeeze through ``m / r`` up-links, forcing
HSD >= r.  These tests pin the bound and show D-Mod-K still does the
best possible thing (exactly r, never worse).
"""

import numpy as np
import pytest

from repro.analysis import sequence_hsd
from repro.collectives import shift
from repro.fabric import build_fabric
from repro.ordering import topology_order
from repro.routing import check_reachability, route_dmodk
from repro.topology import pgft


def _oversubscribed(ratio: int):
    # 8 hosts per leaf, 8/ratio up-links (to 8/ratio spines).
    up = 8 // ratio
    return pgft(2, [8, 8], [1, up], [1, 1])


class TestOversubscribedTrees:
    @pytest.mark.parametrize("ratio", [2, 4])
    def test_not_constant_cbb(self, ratio):
        spec = _oversubscribed(ratio)
        assert not spec.has_constant_cbb()

    @pytest.mark.parametrize("ratio", [2, 4])
    def test_dmodk_still_routes(self, ratio):
        tables = route_dmodk(build_fabric(_oversubscribed(ratio)))
        check_reachability(tables)

    @pytest.mark.parametrize("ratio", [2, 4])
    def test_hsd_exactly_the_oversubscription(self, ratio):
        # The floor is r (pigeonhole); D-Mod-K achieves the floor.
        spec = _oversubscribed(ratio)
        n = spec.num_endports
        tables = route_dmodk(build_fabric(spec))
        rep = sequence_hsd(tables, shift(n), topology_order(n))
        assert rep.worst == ratio
        # Cross-leaf stages saturate at exactly r; no stage exceeds it.
        assert rep.avg_max <= ratio

    def test_full_cbb_reference(self):
        spec = pgft(2, [8, 8], [1, 8], [1, 1])
        n = spec.num_endports
        tables = route_dmodk(build_fabric(spec))
        assert sequence_hsd(tables, shift(n),
                            topology_order(n)).congestion_free
