"""PGFTSpec: tuple validation and derived constants."""

import pytest

from repro.topology import PGFTSpec, TopologyError, pgft, rlft_max


class TestValidation:
    def test_rejects_zero_levels(self):
        with pytest.raises(TopologyError):
            pgft(0, [], [], [])

    def test_rejects_length_mismatch(self):
        with pytest.raises(TopologyError):
            pgft(2, [4], [1, 2], [1, 2])

    def test_rejects_nonpositive_entries(self):
        with pytest.raises(TopologyError):
            pgft(2, [4, 0], [1, 2], [1, 2])

    def test_switch_counts_always_integral(self):
        # switches_at(l) = prod(m[l:]) * prod(w[:l]) -- integral for any
        # positive tuple, including "odd" ones.
        spec = pgft(2, [4, 3], [1, 5], [1, 1])
        assert spec.switches_at(1) == 3
        assert spec.switches_at(2) == 5

    def test_frozen(self):
        spec = pgft(2, [4, 4], [1, 2], [1, 2])
        with pytest.raises(AttributeError):
            spec.h = 3


class TestDerived:
    def test_fig4b_counts(self):
        spec = pgft(2, [4, 4], [1, 2], [1, 2])
        assert spec.num_endports == 16
        assert spec.switches_at(1) == 4
        assert spec.switches_at(2) == 2
        assert spec.num_switches == 6
        assert spec.down_ports_at(1) == 4
        assert spec.up_ports_at(1) == 4
        assert spec.down_ports_at(2) == 8  # 4 leaves x 2 parallel
        assert spec.up_ports_at(2) == 0

    def test_maximal_3level_rlft(self):
        spec = rlft_max(18, 3)
        assert str(spec) == "PGFT(3; 18,18,36; 1,18,18; 1,1,1)"
        assert spec.num_endports == 11664  # 2 * 18**3, the paper's example
        assert spec.arity == 18
        assert spec.is_rlft()

    def test_cumulative_products(self):
        spec = pgft(3, [2, 3, 4], [1, 2, 3], [1, 1, 2])
        assert [spec.M(i) for i in range(4)] == [1, 2, 6, 24]
        assert [spec.W(i) for i in range(4)] == [1, 1, 2, 6]

    def test_num_links_counts_cables_once(self):
        spec = pgft(2, [4, 4], [1, 2], [1, 2])
        # 16 host cables + 4 leaves * 4 up cables
        assert spec.num_links == 16 + 16

    def test_level_range_checks(self):
        spec = pgft(2, [4, 4], [1, 2], [1, 2])
        with pytest.raises(TopologyError):
            spec.switches_at(0)
        with pytest.raises(TopologyError):
            spec.switches_at(3)
        with pytest.raises(TopologyError):
            spec.up_ports_at(-1)

    def test_describe_mentions_all_levels(self):
        spec = pgft(2, [4, 4], [1, 2], [1, 2])
        text = spec.describe()
        assert "level 1" in text and "level 2" in text
        assert "16" in text


class TestPredicates:
    def test_constant_cbb_fig4b(self):
        assert pgft(2, [4, 4], [1, 2], [1, 2]).has_constant_cbb()

    def test_non_constant_cbb_detected(self):
        # leaf: 4 down but only 2 up (oversubscribed 2:1)
        assert not pgft(2, [4, 4], [1, 2], [1, 1]).has_constant_cbb()

    def test_single_rail(self):
        assert pgft(2, [4, 4], [1, 2], [1, 2]).is_single_rail()
        assert not pgft(2, [4, 4], [2, 2], [1, 2]).is_single_rail()

    def test_rlft_requires_full_top(self):
        # 324-node tree with 18 of 36 top ports used is not a strict RLFT.
        spec = pgft(2, [18, 18], [1, 18], [1, 1])
        assert spec.has_constant_cbb()
        assert not spec.is_rlft(radix=36)

    def test_rlft_max_is_rlft_all_sizes(self):
        for arity in (2, 3, 18):
            for levels in (2, 3):
                assert rlft_max(arity, levels).is_rlft()

    def test_equality_and_hash(self):
        a = pgft(2, [4, 4], [1, 2], [1, 2])
        b = PGFTSpec(2, (4, 4), (1, 2), (1, 2))
        assert a == b
        assert hash(a) == hash(b)
