"""RLFT factories, paper topologies and design search."""

import math

import pytest

from repro.topology import (
    TopologyError,
    design_pgfts,
    paper_topologies,
    rlft_max,
    three_level,
    two_level,
)


class TestFactories:
    def test_rlft_max_node_count(self):
        for arity, levels in [(2, 2), (4, 2), (18, 2), (18, 3), (4, 4)]:
            spec = rlft_max(arity, levels)
            assert spec.num_endports == 2 * arity**levels

    def test_rlft_max_single_level(self):
        spec = rlft_max(3, 1)
        assert spec.num_endports == 6
        assert spec.num_switches == 1

    def test_rlft_max_rejects_bad_args(self):
        with pytest.raises(TopologyError):
            rlft_max(0, 2)
        with pytest.raises(TopologyError):
            rlft_max(2, 0)

    def test_two_level_cbb_enforced(self):
        with pytest.raises(TopologyError):
            two_level(18, 18, 5, 2)  # 18 != 10

    def test_two_level_paper_324(self):
        spec = two_level(18, 18, 9, 2)
        assert spec.num_endports == 324
        assert spec.has_constant_cbb()
        assert spec.down_ports_at(2) == 36  # spines fully populated

    def test_three_level_cbb_enforced(self):
        with pytest.raises(TopologyError):
            three_level(4, 4, 4, 2, 2)  # m1=4 != w2*p2=2


class TestPaperTopologies:
    def test_sizes_match_paper(self):
        sizes = {name: spec.num_endports
                 for name, spec in paper_topologies().items()}
        assert sizes["n16-pgft"] == 16
        assert sizes["n16-xgft"] == 16
        assert sizes["n128"] == 128
        assert sizes["n324"] == 324
        assert sizes["n1728"] == 1728
        assert sizes["n1944"] == 1944
        assert sizes["rlft2-max36"] == 648
        assert sizes["rlft3-max36"] == 11664

    def test_all_constant_cbb(self):
        for name, spec in paper_topologies().items():
            assert spec.has_constant_cbb(), name

    def test_all_single_rail(self):
        for name, spec in paper_topologies().items():
            assert spec.is_single_rail(), name

    def test_radix_bounds(self):
        # Every topology uses realistic switch radixes (<= 36 ports).
        for name, spec in paper_topologies().items():
            for level in spec.iter_levels():
                assert spec.ports_at(level) <= 36, (name, level)


class TestDesignSearch:
    def test_finds_fig4b(self):
        specs = design_pgfts(16, radix=8, levels=2)
        assert any(str(s) == "PGFT(2; 4,4; 1,2; 1,2)" for s in specs)

    def test_all_results_valid(self):
        for s in design_pgfts(64, radix=16, levels=2):
            assert s.num_endports == 64
            assert s.has_constant_cbb()
            assert all(s.ports_at(l) <= 16 for l in s.iter_levels())

    def test_results_sorted_by_cost(self):
        specs = design_pgfts(36, radix=12, levels=2)
        costs = [s.num_switches for s in specs]
        assert costs == sorted(costs)

    def test_impossible_design_is_empty(self):
        # 128 nodes on 4-port switches in 2 levels cannot keep CBB.
        assert design_pgfts(128, radix=4, levels=2) == []

    def test_max_results_cap(self):
        specs = design_pgfts(144, radix=36, levels=2, max_results=3)
        assert len(specs) <= 3


class TestMath:
    def test_sub_allocation_example(self):
        # Section V: the maximal 3-level RLFT has 36 sub-allocations of 324.
        spec = rlft_max(18, 3)
        W = spec.W(3)
        assert W == 324
        assert spec.num_endports // W == 36

    def test_arity_halves_ports(self):
        spec = rlft_max(18, 3)
        assert spec.arity == 18
        assert spec.ports_at(1) == 36

    def test_switch_count_formula(self):
        spec = rlft_max(18, 3)
        total = sum(spec.switches_at(l) for l in spec.iter_levels())
        assert total == spec.num_switches
        # Leaves host all endports.
        assert spec.switches_at(1) * spec.m[0] == spec.num_endports

    def test_log_relation(self):
        spec = rlft_max(16, 2)
        assert math.log2(spec.num_endports) == math.log2(2 * 16**2)
