"""PGFT discovery: recognition of valid wirings, rejection of miswired."""

import numpy as np
import pytest

from repro.fabric import Fabric, build_fabric, dumps, loads
from repro.topology import DiscoveryError, discover_pgft, paper_topologies, pgft


def _strip_spec(fab):
    """Round-trip through the text format with the spec line removed."""
    text = "\n".join(
        line for line in dumps(fab).splitlines()
        if not line.startswith("pgft")
    )
    out = loads(text)
    assert out.spec is None
    return out


class TestRecognition:
    def test_all_small_paper_topologies(self):
        for name, spec in paper_topologies().items():
            if spec.num_endports > 700:
                continue
            got = discover_pgft(_strip_spec(build_fabric(spec)))
            assert got == spec, name

    def test_three_level(self):
        spec = pgft(3, [2, 3, 4], [1, 2, 3], [1, 1, 1])
        got = discover_pgft(_strip_spec(build_fabric(spec)))
        assert got == spec

    def test_parallel_ports_recovered(self):
        spec = pgft(2, [6, 4], [1, 2], [1, 3])
        got = discover_pgft(_strip_spec(build_fabric(spec)))
        assert got == spec

    def test_works_with_declared_levels_absent(self):
        # Levels inferred by BFS when the file carries none.
        spec = pgft(2, [4, 4], [1, 2], [1, 2])
        fab = _strip_spec(build_fabric(spec))
        fab.node_level = np.full(fab.num_nodes, -1, dtype=np.int32)
        assert discover_pgft(fab) == spec


class TestRejection:
    def test_miswired_cable_detected(self):
        # Swap two leaf-spine cables so two leaves see unequal spines.
        fab = build_fabric(pgft(2, [4, 4], [1, 4], [1, 1]))
        text = dumps(fab)
        lines = [l for l in text.splitlines() if not l.startswith("pgft")]
        swaps = [i for i, l in enumerate(lines) if l.startswith("link SW1-")]
        # Exchange the far ends of two up-cables from different leaves.
        a, b = lines[swaps[0]], lines[swaps[5]]
        a_head, a_tail = a.rsplit(" ", 1)
        b_head, b_tail = b.rsplit(" ", 1)
        if a_tail == b_tail:
            pytest.skip("picked cables to the same spine; adjust indices")
        lines[swaps[0]] = f"{a_head} {b_tail}"
        lines[swaps[5]] = f"{b_head} {a_tail}"
        broken = loads("\n".join(lines))
        with pytest.raises(DiscoveryError):
            discover_pgft(broken)

    def test_host_without_uplink(self):
        fab = Fabric.from_links(
            num_endports=2,
            port_counts=[1, 1, 3],
            links=[(0, 0, 2, 0)],  # host 1 dangling
            node_level=np.array([0, 0, 1]),
        )
        with pytest.raises(DiscoveryError, match="no up-links|level"):
            discover_pgft(fab)

    def test_no_switches(self):
        fab = Fabric.from_links(
            num_endports=2, port_counts=[1, 1],
            links=[(0, 0, 1, 0)], node_level=np.array([0, 0]),
        )
        with pytest.raises(DiscoveryError):
            discover_pgft(fab)

    def test_non_uniform_parents(self):
        # 3 hosts on one switch, 1 host double-railed to it: w differs.
        fab = Fabric.from_links(
            num_endports=2,
            port_counts=[1, 2, 4],
            links=[(0, 0, 2, 0), (1, 0, 2, 1), (1, 1, 2, 2)],
            node_level=np.array([0, 0, 1]),
        )
        with pytest.raises(DiscoveryError, match="parallel-cable|parents"):
            discover_pgft(fab)
