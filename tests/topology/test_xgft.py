"""XGFT / k-ary-n-tree conveniences."""

import pytest

from repro.topology import (
    TopologyError,
    is_k_ary_n_tree,
    is_xgft,
    k_ary_n_tree,
    pgft,
    xgft,
)


def test_xgft_has_no_parallel_ports():
    spec = xgft(2, [4, 4], [1, 4])
    assert all(v == 1 for v in spec.p)
    assert is_xgft(spec)


def test_pgft_with_parallel_is_not_xgft():
    assert not is_xgft(pgft(2, [4, 4], [1, 2], [1, 2]))


def test_k_ary_n_tree_structure():
    spec = k_ary_n_tree(4, 3)
    assert spec.num_endports == 64
    assert spec.h == 3
    assert is_k_ary_n_tree(spec)
    assert is_xgft(spec)


def test_k_ary_n_tree_switch_counts():
    # A k-ary-n-tree has n * k^(n-1) switches.
    spec = k_ary_n_tree(2, 3)
    assert spec.num_switches == 3 * 2**2


def test_is_k_ary_n_tree_rejects_asymmetric():
    assert not is_k_ary_n_tree(xgft(2, [3, 4], [1, 3]))


def test_k_ary_n_tree_validates_args():
    with pytest.raises(TopologyError):
        k_ary_n_tree(0, 2)
    with pytest.raises(TopologyError):
        k_ary_n_tree(2, 0)


def test_fig4a_is_xgft():
    # The paper's Fig. 4(a): 16 nodes via 4 spines, no parallel cables.
    spec = xgft(2, [4, 4], [1, 4])
    assert spec.num_endports == 16
    assert spec.switches_at(2) == 4
    assert spec.has_constant_cbb()
