"""PGFT digit arithmetic, addressing and connection rules."""

import numpy as np
import pytest

from repro.topology import PGFT, endport_digits, endport_index, pgft
from repro.topology.spec import TopologyError


class TestDigits:
    def test_endport_digits_roundtrip(self, any_spec):
        j = np.arange(any_spec.num_endports)
        digits = endport_digits(any_spec, j)
        assert np.array_equal(endport_index(any_spec, digits), j)

    def test_endport_digits_are_mixed_radix(self):
        spec = pgft(2, [3, 4], [1, 3], [1, 1])
        d = endport_digits(spec, 7)  # 7 = 1 + 2*3
        assert list(d) == [1, 2]

    def test_scalar_and_array_shapes(self, any_spec):
        assert endport_digits(any_spec, 0).shape == (any_spec.h,)
        assert endport_digits(any_spec, np.arange(5)).shape == (5, any_spec.h)

    def test_node_digit_roundtrip_every_level(self, any_spec):
        tree = PGFT(any_spec)
        for level in range(any_spec.h + 1):
            n = tree.num_nodes_at(level)
            idx = np.arange(n)
            digits = tree.node_digits(level, idx)
            assert np.array_equal(tree.node_index(level, digits), idx)

    def test_digit_ranges(self, any_spec):
        tree = PGFT(any_spec)
        for level in range(any_spec.h + 1):
            digits = tree.node_digits(level, np.arange(tree.num_nodes_at(level)))
            for pos in range(any_spec.h):
                hi = (any_spec.w[pos] if pos < level else any_spec.m[pos])
                assert digits[:, pos].min() >= 0
                assert digits[:, pos].max() < hi


class TestRelations:
    def test_parent_child_inverse(self, multi_level_spec):
        tree = PGFT(multi_level_spec)
        for level in range(1, multi_level_spec.h):
            nodes = np.arange(tree.num_nodes_at(level))
            parents = tree.parents_of(level, nodes)  # (n, w_{l+1})
            for v in nodes[: min(len(nodes), 8)]:
                for parent in parents[v]:
                    kids = tree.children_of(level + 1, parent)
                    assert v in kids

    def test_ancestor_mask_top_covers_all(self, any_spec):
        tree = PGFT(any_spec)
        h = any_spec.h
        tops = np.arange(tree.num_nodes_at(h))
        eps = np.arange(any_spec.num_endports)
        mask = tree.ancestor_mask(h, tops[:, None], eps[None, :])
        assert mask.all()

    def test_ancestor_mask_leaf_matches_subtree(self, multi_level_spec):
        tree = PGFT(multi_level_spec)
        spec = multi_level_spec
        eps = np.arange(spec.num_endports)
        leaves = tree.leaf_of_endport(eps)
        mask = tree.ancestor_mask(1, leaves, eps)
        assert mask.all()
        # A leaf is ancestor of exactly m_1 end-ports.
        for leaf in range(tree.num_nodes_at(1)):
            cnt = tree.ancestor_mask(1, np.full_like(eps, leaf), eps).sum()
            assert cnt == spec.m[0]

    def test_parents_of_top_raises(self, any_spec):
        tree = PGFT(any_spec)
        with pytest.raises(TopologyError):
            tree.parents_of(any_spec.h, 0)

    def test_children_of_endport_raises(self, any_spec):
        tree = PGFT(any_spec)
        with pytest.raises(TopologyError):
            tree.children_of(0, 0)


class TestCables:
    def test_validate_all_specs(self, any_spec):
        PGFT(any_spec).validate()

    def test_cable_count_matches_spec(self, any_spec):
        tree = PGFT(any_spec)
        for level, lower, up_port, upper, down_port in tree.iter_level_cables():
            expect = (
                tree.num_nodes_at(level)
                * any_spec.m[level - 1]
                * any_spec.p[level - 1]
            )
            assert len(lower) == expect

    def test_parallel_cable_port_arithmetic(self):
        # Fig. 5: k-th cable joins up-port b + k*w with down-port a + k*m.
        spec = pgft(2, [4, 4], [1, 2], [1, 2])
        tree = PGFT(spec)
        lower, up_port, upper, down_port = tree.level_cables(2)
        w2, m2 = spec.w[1], spec.m[1]
        b = tree.node_digits(2, upper)[:, 1]
        a = tree.node_digits(1, lower)[:, 1]
        k_up = up_port // w2
        k_dn = down_port // m2
        assert np.array_equal(k_up, k_dn)
        assert np.array_equal(up_port % w2, b)
        assert np.array_equal(down_port % m2, a)

    def test_connection_only_differs_at_one_digit(self, multi_level_spec):
        tree = PGFT(multi_level_spec)
        for level, lower, _, upper, _ in tree.iter_level_cables():
            ld = tree.node_digits(level - 1, lower)
            ud = tree.node_digits(level, upper)
            same = ld == ud
            same[:, level - 1] = True  # the free position
            assert same.all()

    def test_level_out_of_range(self, any_spec):
        tree = PGFT(any_spec)
        with pytest.raises(TopologyError):
            tree.level_cables(0)
        with pytest.raises(TopologyError):
            tree.level_cables(any_spec.h + 1)
