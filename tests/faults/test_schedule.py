"""FaultSchedule: validation, interval semantics, serialisation, seeding."""

import math

import numpy as np
import pytest

from repro.faults import FaultEvent, FaultSchedule
from repro.faults.schedule import FLAKY, LINK_DOWN, LINK_UP, SWITCH_DOWN


class TestEventValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(time=1.0, kind="meteor", gport=0)

    def test_negative_or_nonfinite_time(self):
        with pytest.raises(ValueError, match="finite"):
            FaultEvent(time=-1.0, kind=LINK_DOWN, gport=0)
        with pytest.raises(ValueError, match="finite"):
            FaultEvent(time=math.inf, kind=LINK_DOWN, gport=0)

    def test_flaky_loss_bounds(self):
        with pytest.raises(ValueError, match="loss"):
            FaultEvent(time=0.0, kind=FLAKY, gport=0, until=1.0, loss=0.0)
        with pytest.raises(ValueError, match="loss"):
            FaultEvent(time=0.0, kind=FLAKY, gport=0, until=1.0, loss=1.5)
        FaultEvent(time=0.0, kind=FLAKY, gport=0, until=1.0, loss=1.0)

    def test_flaky_window_must_be_ordered(self):
        with pytest.raises(ValueError, match="end after"):
            FaultEvent(time=2.0, kind=FLAKY, gport=0, until=2.0, loss=0.5)

    def test_switch_down_needs_node(self):
        with pytest.raises(ValueError, match="node"):
            FaultEvent(time=0.0, kind=SWITCH_DOWN)

    def test_link_events_need_gport(self):
        for kind in (LINK_DOWN, LINK_UP):
            with pytest.raises(ValueError, match="gport"):
                FaultEvent(time=0.0, kind=kind)


class TestScheduleBasics:
    def test_events_sorted_by_time(self):
        s = FaultSchedule(events=(
            FaultEvent(time=5.0, kind=LINK_DOWN, gport=1),
            FaultEvent(time=1.0, kind=LINK_DOWN, gport=2),
            FaultEvent(time=3.0, kind=LINK_UP, gport=2),
        ))
        assert [e.time for e in s] == [1.0, 3.0, 5.0]
        assert len(s) == 3

    def test_empty(self):
        s = FaultSchedule()
        assert s.is_empty() and len(s) == 0 and s.horizon == 0.0

    def test_horizon_covers_flaky_until(self):
        s = FaultSchedule(events=(
            FaultEvent(time=2.0, kind=FLAKY, gport=0, until=9.0, loss=0.5),
            FaultEvent(time=4.0, kind=LINK_DOWN, gport=1),
        ))
        assert s.horizon == 9.0

    def test_horizon_ignores_infinite_until(self):
        s = FaultSchedule(events=(
            FaultEvent(time=2.0, kind=FLAKY, gport=0, loss=0.5),))
        assert s.horizon == 2.0

    def test_topology_events_exclude_flaky(self):
        s = FaultSchedule(events=(
            FaultEvent(time=1.0, kind=FLAKY, gport=0, until=2.0, loss=0.5),
            FaultEvent(time=2.0, kind=LINK_DOWN, gport=1),
            FaultEvent(time=3.0, kind=SWITCH_DOWN, node=4),
        ))
        kinds = [e.kind for e in s.topology_events()]
        assert kinds == [LINK_DOWN, SWITCH_DOWN]


class TestIntervals:
    def _up_gport(self, fab, host=0):
        """A live gport on host ``host``'s uplink."""
        gp = int(fab.port_start[host])
        assert fab.port_peer[gp] >= 0
        return gp

    def test_down_up_pair(self, fig1_fabric):
        gp = self._up_gport(fig1_fabric)
        peer = int(fig1_fabric.port_peer[gp])
        s = FaultSchedule(events=(
            FaultEvent(time=2.0, kind=LINK_DOWN, gport=gp),
            FaultEvent(time=7.0, kind=LINK_UP, gport=peer),  # either end works
        ))
        assert s.down_intervals(fig1_fabric) == [
            (min(gp, peer), max(gp, peer), 2.0, 7.0)]

    def test_unrecovered_cut_is_open_ended(self, fig1_fabric):
        gp = self._up_gport(fig1_fabric)
        s = FaultSchedule(events=(FaultEvent(time=2.0, kind=LINK_DOWN, gport=gp),))
        [(a, b, start, end)] = s.down_intervals(fig1_fabric)
        assert start == 2.0 and math.isinf(end)

    def test_unmatched_link_up_is_noop(self, fig1_fabric):
        gp = self._up_gport(fig1_fabric)
        s = FaultSchedule(events=(FaultEvent(time=2.0, kind=LINK_UP, gport=gp),))
        assert s.down_intervals(fig1_fabric) == []

    def test_redundant_link_down_ignored(self, fig1_fabric):
        gp = self._up_gport(fig1_fabric)
        s = FaultSchedule(events=(
            FaultEvent(time=2.0, kind=LINK_DOWN, gport=gp),
            FaultEvent(time=3.0, kind=LINK_DOWN, gport=gp),
            FaultEvent(time=5.0, kind=LINK_UP, gport=gp),
        ))
        # One window, closed by the single link_up.
        assert len(s.down_intervals(fig1_fabric)) == 1
        assert s.down_intervals(fig1_fabric)[0][2:] == (2.0, 5.0)

    def test_switch_down_kills_every_cable_forever(self, fig1_fabric):
        node = fig1_fabric.num_endports  # first switch (a leaf)
        live = [int(gp) for gp in fig1_fabric.ports_of(node)
                if fig1_fabric.port_peer[gp] >= 0]
        s = FaultSchedule(events=(FaultEvent(time=4.0, kind=SWITCH_DOWN, node=node),))
        wins = s.down_intervals(fig1_fabric)
        assert len(wins) == len(live)
        assert all(start == 4.0 and math.isinf(end) for _, _, start, end in wins)

    def test_dead_gports_at(self, fig1_fabric):
        gp = self._up_gport(fig1_fabric)
        peer = int(fig1_fabric.port_peer[gp])
        s = FaultSchedule(events=(
            FaultEvent(time=2.0, kind=LINK_DOWN, gport=gp),
            FaultEvent(time=7.0, kind=LINK_UP, gport=gp),
        ))
        assert s.dead_gports_at(fig1_fabric, 1.0).size == 0
        assert sorted(s.dead_gports_at(fig1_fabric, 3.0)) == sorted([gp, peer])
        assert s.dead_gports_at(fig1_fabric, 7.0).size == 0  # end-exclusive

    def test_flaky_intervals(self, fig1_fabric):
        gp = self._up_gport(fig1_fabric)
        peer = int(fig1_fabric.port_peer[gp])
        s = FaultSchedule(events=(
            FaultEvent(time=1.0, kind=FLAKY, gport=gp, until=5.0, loss=0.25),))
        assert s.flaky_intervals(fig1_fabric) == [
            (min(gp, peer), max(gp, peer), 1.0, 5.0, 0.25)]

    def test_overlaps_occupancy(self, fig1_fabric):
        gp = self._up_gport(fig1_fabric)
        s = FaultSchedule(events=(
            FaultEvent(time=10.0, kind=LINK_DOWN, gport=gp),
            FaultEvent(time=20.0, kind=LINK_UP, gport=gp),
        ))
        links = np.array([gp, gp + 1], dtype=np.int64)
        # Occupancy ends before the fault window opens: no overlap.
        assert not s.overlaps_occupancy(
            fig1_fabric, links, np.array([0.0, 0.0]), np.array([9.0, 9.0]))
        # Occupancy crosses into the window.
        assert s.overlaps_occupancy(
            fig1_fabric, links, np.array([5.0, 0.0]), np.array([12.0, 9.0]))
        # A different cable entirely.
        other = np.array([gp + 1], dtype=np.int64)
        assert not s.overlaps_occupancy(
            fig1_fabric, other, np.array([5.0]), np.array([12.0]))
        assert not s.overlaps_occupancy(
            fig1_fabric, np.array([], dtype=np.int64),
            np.array([]), np.array([]))


class TestSerialisation:
    def test_round_trip(self):
        s = FaultSchedule(events=(
            FaultEvent(time=1.0, kind=LINK_DOWN, gport=3),
            FaultEvent(time=2.0, kind=SWITCH_DOWN, node=7),
            FaultEvent(time=3.0, kind=FLAKY, gport=5, until=9.0, loss=0.125),
            FaultEvent(time=4.0, kind=FLAKY, gport=5, loss=0.5),  # inf until
        ), seed=42)
        back = FaultSchedule.from_json(s.to_json())
        assert back == s

    def test_json_is_plain_data(self):
        import json

        s = FaultSchedule(events=(
            FaultEvent(time=3.0, kind=FLAKY, gport=5, loss=0.5),), seed=1)
        text = json.dumps(s.to_json())  # must not choke on inf
        assert FaultSchedule.from_json(json.loads(text)) == s


class TestRandom:
    def test_deterministic(self, fig1_fabric):
        a = FaultSchedule.random(fig1_fabric, seed=7, horizon=500.0, mtbf=50.0)
        b = FaultSchedule.random(fig1_fabric, seed=7, horizon=500.0, mtbf=50.0)
        assert a == b
        assert a.seed == 7

    def test_seed_matters(self, fig1_fabric):
        drawn = {FaultSchedule.random(fig1_fabric, seed=s, horizon=500.0,
                                      mtbf=50.0).events
                 for s in range(8)}
        assert len(drawn) > 1

    def test_events_reference_real_hardware(self, fig1_fabric):
        fab = fig1_fabric
        for seed in range(20):
            s = FaultSchedule.random(fab, seed=seed, horizon=300.0, mtbf=30.0)
            for e in s:
                if e.kind == SWITCH_DOWN:
                    assert fab.num_endports <= e.node < fab.num_nodes
                else:
                    assert 0 <= e.gport < fab.num_ports
                    assert fab.port_peer[e.gport] >= 0

    def test_mtbf_scales_event_count(self, fig1_fabric):
        rare = FaultSchedule.random(fig1_fabric, seed=3, horizon=1000.0,
                                    mtbf=1000.0)
        frequent = FaultSchedule.random(fig1_fabric, seed=3, horizon=1000.0,
                                        mtbf=20.0)
        assert len(frequent) > len(rare)
