"""Chaos harness: byte-for-byte reproducibility and no silent data loss.

The 500-scenario sweep below is the acceptance gate of the robustness
milestone: across hundreds of seeded mid-collective failure scripts,
every collective either completes with semantically correct data or
raises :class:`DeliveryError` naming the exact lost messages.  A
scenario that *completes* with *wrong* data is silent data loss and
fails the suite immediately.
"""

import numpy as np
import pytest

from repro.experiments import chaos
from repro.runtime import ParallelSweeper

ARGS = dict(topo="n16-pgft", collective="allreduce", horizon=120.0,
            sweep_delay=25.0, words=16, max_retries=4)


def _scenario(seed, mtbf):
    return chaos.run_scenario(
        ARGS["topo"], seed, ARGS["collective"], mtbf, ARGS["horizon"],
        ARGS["sweep_delay"], ARGS["words"], ARGS["max_retries"])


class TestDeterminism:
    def test_scenarios_byte_for_byte(self):
        """Identical seeds reproduce identical chaos results."""
        for seed in (0, 7, 123, 4096):
            a = _scenario(seed, mtbf=25.0)
            b = _scenario(seed, mtbf=25.0)
            assert a == b  # float-exact tuple equality

    def test_campaign_table_reproducible(self):
        sweeper = ParallelSweeper(jobs=1)
        kw = dict(topo="n16-pgft", campaign=6, seed=3, mtbf=(40.0,),
                  collective="allreduce", horizon=120.0, sweep_delay=25.0,
                  words=16, max_retries=4)
        a = chaos.run(sweeper=sweeper, **kw)
        b = chaos.run(sweeper=sweeper, **kw)
        assert a == b
        assert "Chaos campaign" in a

    def test_unknown_collective_rejected(self):
        with pytest.raises(SystemExit, match="unknown collective"):
            chaos.run(collective="teleport", sweeper=ParallelSweeper(jobs=1))


class TestNoSilentDataLoss:
    """Acceptance: >= 500 seeded chaos scenarios, zero silent loss."""

    SCENARIOS = 500

    def test_500_seeded_scenarios(self):
        outcomes = {"ok": 0, "delivery_error": 0}
        # Harsh regime: MTBF well under the collective's runtime, so a
        # large fraction of scenarios take real mid-collective damage.
        for seed in range(self.SCENARIOS):
            mtbf = (10.0, 25.0, 60.0)[seed % 3]
            (completed, sem_ok, df, retrans, dropped, repairs,
             recovery, time_us, lost) = _scenario(seed, mtbf)
            if completed:
                assert sem_ok == 1.0, (
                    f"SILENT DATA LOSS at seed {seed} (mtbf={mtbf}): "
                    f"collective completed with wrong data")
                assert df == 1.0 and lost == 0.0
                outcomes["ok"] += 1
            else:
                # Loud failure: the exact losses were named.
                assert lost > 0.0 and df < 1.0
                outcomes["delivery_error"] += 1
        assert sum(outcomes.values()) == self.SCENARIOS
        # The regime must actually bite: some scenarios retried or
        # failed loudly, otherwise this test proves nothing.
        assert outcomes["delivery_error"] > 0
        assert outcomes["ok"] > 0
