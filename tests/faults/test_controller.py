"""HealingController: sweep timeline, live-table lookup, repair quality."""

import math

import numpy as np
import pytest

from repro.faults import FaultEvent, FaultSchedule, HealingController
from repro.faults.schedule import FLAKY, LINK_DOWN, LINK_UP, SWITCH_DOWN
from repro.routing.validate import trace_route


def _sw_up_gport(fab):
    """A live switch-to-switch uplink (repairable around)."""
    up = np.flatnonzero(fab.port_goes_up()
                        & (fab.port_owner >= fab.num_endports)
                        & (fab.port_peer >= 0))
    return int(up[0])


class TestTimeline:
    def test_empty_schedule(self, fig1_tables):
        hc = HealingController(fig1_tables, FaultSchedule())
        assert hc.actions == ()
        assert hc.tables_at(0.0) is fig1_tables
        assert hc.tables_at(1e9) is fig1_tables
        assert math.isinf(hc.earliest_swap())
        assert hc.recovery_latency() == 0.0
        assert hc.swaps_after(0.0) == []

    def test_single_cut_sweep(self, fig1_tables):
        fab = fig1_tables.fabric
        gp = _sw_up_gport(fab)
        faults = FaultSchedule(events=(
            FaultEvent(time=10.0, kind=LINK_DOWN, gport=gp),))
        hc = HealingController(fig1_tables, faults, sweep_delay=25.0)
        assert len(hc.actions) == 1
        act = hc.actions[0]
        assert act.fault_time == 10.0
        assert act.sweep_time == 35.0
        assert act.recovery_latency == 25.0
        assert act.dead_cables == 2       # both directed gports
        assert act.repaired_entries > 0
        assert act.unreachable == ()      # sw-sw cut is always repairable
        assert hc.earliest_swap() == 35.0

    def test_tables_at_bisect(self, fig1_tables):
        gp = _sw_up_gport(fig1_tables.fabric)
        faults = FaultSchedule(events=(
            FaultEvent(time=10.0, kind=LINK_DOWN, gport=gp),))
        hc = HealingController(fig1_tables, faults, sweep_delay=25.0)
        assert hc.tables_at(34.999) is fig1_tables
        repaired = hc.tables_at(35.0)     # swap applies at sweep time
        assert repaired is not fig1_tables
        assert hc.tables_at(1e9) is repaired

    def test_sweep_observes_recovered_cable(self, fig1_tables):
        """A cable back up before the sweep needs no repair."""
        gp = _sw_up_gport(fig1_tables.fabric)
        faults = FaultSchedule(events=(
            FaultEvent(time=10.0, kind=LINK_DOWN, gport=gp),
            FaultEvent(time=12.0, kind=LINK_UP, gport=gp),
        ))
        hc = HealingController(fig1_tables, faults, sweep_delay=50.0)
        # Two sweeps (one per event), both see a healthy fabric.
        assert all(a.dead_cables == 0 and a.repaired_entries == 0
                   for a in hc.actions)

    def test_flaky_triggers_no_sweep(self, fig1_tables):
        gp = _sw_up_gport(fig1_tables.fabric)
        faults = FaultSchedule(events=(
            FaultEvent(time=5.0, kind=FLAKY, gport=gp, until=50.0, loss=0.5),))
        hc = HealingController(fig1_tables, faults)
        assert hc.actions == ()

    def test_one_sweep_per_distinct_event_time(self, fig1_tables):
        fab = fig1_tables.fabric
        up = np.flatnonzero(fab.port_goes_up()
                            & (fab.port_owner >= fab.num_endports)
                            & (fab.port_peer >= 0))
        faults = FaultSchedule(events=(
            FaultEvent(time=10.0, kind=LINK_DOWN, gport=int(up[0])),
            FaultEvent(time=10.0, kind=LINK_DOWN, gport=int(up[1])),
            FaultEvent(time=20.0, kind=LINK_DOWN, gport=int(up[2])),
        ))
        hc = HealingController(fig1_tables, faults, sweep_delay=5.0)
        assert [a.sweep_time for a in hc.actions] == [15.0, 25.0]

    def test_swaps_after_is_strict(self, fig1_tables):
        gp = _sw_up_gport(fig1_tables.fabric)
        faults = FaultSchedule(events=(
            FaultEvent(time=10.0, kind=LINK_DOWN, gport=gp),))
        hc = HealingController(fig1_tables, faults, sweep_delay=25.0)
        assert len(hc.swaps_after(0.0)) == 1
        assert hc.swaps_after(35.0) == []   # strictly after

    def test_negative_sweep_delay_rejected(self, fig1_tables):
        with pytest.raises(ValueError, match="sweep_delay"):
            HealingController(fig1_tables, FaultSchedule(), sweep_delay=-1.0)


class TestRepairQuality:
    def test_repaired_tables_avoid_dead_cable(self, fig1_tables):
        fab = fig1_tables.fabric
        gp = _sw_up_gport(fab)
        peer = int(fab.port_peer[gp])
        faults = FaultSchedule(events=(
            FaultEvent(time=10.0, kind=LINK_DOWN, gport=gp),))
        hc = HealingController(fig1_tables, faults, sweep_delay=5.0)
        repaired = hc.tables_at(100.0)
        N = fab.num_endports
        for src in range(N):
            for dst in range(N):
                if src == dst:
                    continue
                path = trace_route(repaired, src, dst)
                assert gp not in path and peer not in path

    def test_leaf_death_loses_exactly_its_hosts(self, fig1_tables):
        fab = fig1_tables.fabric
        leaf = fab.num_endports            # first switch is a leaf
        attached = sorted(
            int(fab.peer_node[gp]) for gp in fab.ports_of(leaf)
            if 0 <= fab.port_peer[gp]
            and fab.peer_node[gp] < fab.num_endports)
        faults = FaultSchedule(events=(
            FaultEvent(time=10.0, kind=SWITCH_DOWN, node=leaf),))
        hc = HealingController(fig1_tables, faults, sweep_delay=5.0)
        [act] = hc.actions
        assert sorted(act.unreachable) == attached

    def test_spine_death_fully_repairable(self, fig1_tables):
        fab = fig1_tables.fabric
        spine = fab.num_nodes - 1          # last node is a top switch
        assert fab.node_level[spine] == fab.node_level.max()
        faults = FaultSchedule(events=(
            FaultEvent(time=10.0, kind=SWITCH_DOWN, node=spine),))
        hc = HealingController(fig1_tables, faults, sweep_delay=5.0)
        [act] = hc.actions
        assert act.unreachable == ()
        assert act.repaired_entries > 0


class TestDeterminism:
    def test_identical_inputs_identical_timeline(self, fig1_tables):
        fab = fig1_tables.fabric
        faults = FaultSchedule.random(fab, seed=11, horizon=200.0, mtbf=40.0)
        a = HealingController(fig1_tables, faults, sweep_delay=20.0)
        b = HealingController(fig1_tables, faults, sweep_delay=20.0)
        assert a.actions == b.actions
        for t in (0.0, 50.0, 150.0, 500.0):
            ta, tb = a.tables_at(t), b.tables_at(t)
            assert np.array_equal(ta.switch_out, tb.switch_out)
