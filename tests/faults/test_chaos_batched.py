"""Batched chaos campaigns: the analytic screen is exact.

``chaos.run(batch=True)`` prices the collective's stage schedule once
through the mega-batch engine, then resolves every scenario whose
fault windows provably cannot touch the plan with pure interval
algebra.  The contract: a screened-fast verdict is the *exact*
:func:`chaos.run_scenario` tuple, and the campaign table is
byte-identical to the unbatched run.
"""

from repro.experiments import chaos
from repro.fabric import build_fabric
from repro.faults import FaultSchedule
from repro.routing import route_dmodk
from repro.runtime import ParallelSweeper
from repro.topology import paper_topologies

ARGS = dict(topo="n16-pgft", horizon=300.0, sweep_delay=50.0,
            words=64, max_retries=4)


class TestScreenExactness:
    def test_screened_tuples_match_run_scenario(self):
        """Every fast verdict equals the per-scenario engine, float-exact."""
        for collective in ("allreduce", "broadcast"):
            plan = chaos._batched_plan(ARGS["topo"], collective,
                                       ARGS["words"])
            assert plan is not None
            fast = 0
            for seed in range(40):
                mtbf = (500.0, 60.0)[seed % 2]
                sched = FaultSchedule.random(plan.fab, seed=seed,
                                             horizon=ARGS["horizon"],
                                             mtbf=mtbf)
                verdict = chaos._screen_scenario(plan, sched,
                                                 ARGS["sweep_delay"])
                if verdict is None:
                    continue
                fast += 1
                ref = chaos.run_scenario(
                    ARGS["topo"], seed, collective, mtbf, ARGS["horizon"],
                    ARGS["sweep_delay"], ARGS["words"],
                    ARGS["max_retries"])
                assert tuple(verdict) == tuple(ref), (collective, seed)
            # the screen must actually resolve something, or the fast
            # path is dead weight
            assert fast > 10, collective

    def test_campaign_table_identical_to_unbatched(self):
        kw = dict(topo="n16-pgft", campaign=10, seed=3,
                  mtbf=(200.0, 40.0), collective="allreduce",
                  horizon=300.0, sweep_delay=50.0, words=64,
                  max_retries=4)
        plain = chaos.run(sweeper=ParallelSweeper(jobs=1), **kw)
        batched = chaos.run(sweeper=ParallelSweeper(jobs=1), batch=True,
                            batch_check=2, **kw)
        strip = lambda s: s.split("\nbatched:")[0].split("runtime |")[0]  # noqa: E731
        assert strip(plain).split("runtime |")[0].rstrip() \
            in batched  # same table body, extra mode line
        assert "resolved analytically" in batched


class TestDegradationBatched:
    def test_worst_hsds_batched_matches_serial(self):
        """The stacked multi-table walk scores every repaired fabric
        exactly like the serial per-table walk."""
        import numpy as np

        from repro.check.faultspace import (
            enumerate_fault_units,
            prepare_fault_cases,
        )
        from repro.collectives.cps import shift
        from repro.experiments.degradation import _worst_hsds

        fab = build_fabric(paper_topologies()["n16-pgft"])
        tables = route_dmodk(fab)
        n = fab.num_endports
        units = enumerate_fault_units(fab, units="cable",
                                      include_host_cables=False)
        prepared = prepare_fault_cases(tables, [[u] for u in units[:9]],
                                       strategy="balanced",
                                       check_valleys=False)
        cases = [tables] + [p.repair.tables for p in prepared]
        cps = shift(n)
        placement = np.arange(n, dtype=np.int64)
        serial = _worst_hsds(cases, cps, placement, False, 0, 0)
        batched = _worst_hsds(cases, cps, placement, True, 4, 3)
        assert batched == serial
        assert serial[0] == 1  # healthy D-Mod-K shift is contention-free
