"""Fault-honoring packet engine: bit-identity, drops, recovery, healing."""

import numpy as np
import pytest

from repro.faults import FaultEvent, FaultSchedule, HealingController, run_faulty
from repro.faults.schedule import FLAKY, LINK_DOWN, LINK_UP, SWITCH_DOWN
from repro.routing.validate import trace_route
from repro.sim import PacketSimulator


def _ring_seqs(n, size=4096.0):
    """Every port sends one message to its right neighbour."""
    return [[((p + 1) % n, size)] for p in range(n)]


def _msg_key(res):
    return sorted((m.src, m.dst, m.size, m.start, m.inject, m.finish)
                  for m in res.messages)


def _cut_gport(tables, src, dst):
    """A switch-to-switch cable on the route src -> dst (repairable)."""
    fab = tables.fabric
    N = fab.num_endports
    for gp in trace_route(tables, src, dst):
        peer = int(fab.port_peer[gp])
        if fab.port_owner[gp] >= N and fab.port_owner[peer] >= N:
            return gp
    raise AssertionError(f"route {src}->{dst} never crosses a sw-sw cable")


class TestEmptyScheduleBitIdentity:
    """Acceptance: empty FaultSchedule leaves results bit-identical."""

    def test_reference_engine(self, fig1_tables):
        n = fig1_tables.fabric.num_endports
        seqs = _ring_seqs(n)
        clean = PacketSimulator(fig1_tables, engine="reference")
        faulty = PacketSimulator(fig1_tables, engine="reference",
                                 faults=FaultSchedule())
        a, b = clean.run_sequences(seqs), faulty.run_sequences(seqs)
        assert a.makespan == b.makespan
        assert _msg_key(a) == _msg_key(b)
        assert np.array_equal(np.sort(a.latencies), np.sort(b.latencies))

    def test_vector_engine_keeps_fast_path(self, fig1_tables):
        n = fig1_tables.fabric.num_endports
        seqs = _ring_seqs(n)
        clean = PacketSimulator(fig1_tables, engine="vector")
        faulty = PacketSimulator(fig1_tables, engine="vector",
                                 faults=FaultSchedule())
        a, b = clean.run_sequences(seqs), faulty.run_sequences(seqs)
        assert b.engine_stats.fast_path == a.engine_stats.fast_path
        assert a.makespan == b.makespan
        assert _msg_key(a) == _msg_key(b)

    def test_run_faulty_empty_matches_reference(self, fig1_tables):
        n = fig1_tables.fabric.num_endports
        seqs = _ring_seqs(n)
        ref = PacketSimulator(fig1_tables, engine="reference").run_sequences(seqs)
        sim = PacketSimulator(fig1_tables, engine="reference")
        res, rep = run_faulty(sim, seqs, FaultSchedule())
        assert res.makespan == ref.makespan
        assert _msg_key(res) == _msg_key(ref)
        assert rep.lost == () and rep.delivered_fraction == 1.0
        assert rep.dropped_packets == 0


class TestVectorFallback:
    def test_overlapping_fault_forces_fallback(self, fig1_tables):
        n = fig1_tables.fabric.num_endports
        seqs = _ring_seqs(n)
        gp = _cut_gport(fig1_tables, 3, 4)
        # A window covering the whole run on a cable the traffic uses.
        faults = FaultSchedule(events=(
            FaultEvent(time=0.0, kind=FLAKY, gport=gp, until=1e6, loss=1.0),))
        sim = PacketSimulator(fig1_tables, engine="vector", faults=faults)
        res = sim.run_sequences(seqs)
        assert res.engine_stats.fallback
        assert res.fault_report is not None
        assert res.fault_report.dropped_packets > 0

    def test_disjoint_fault_keeps_fast_path(self, fig1_tables):
        n = fig1_tables.fabric.num_endports
        seqs = _ring_seqs(n)
        gp = _cut_gport(fig1_tables, 3, 4)
        # The fault fires long after every message has landed.
        faults = FaultSchedule(events=(
            FaultEvent(time=1e6, kind=LINK_DOWN, gport=gp),))
        sim = PacketSimulator(fig1_tables, engine="vector", faults=faults)
        clean = PacketSimulator(fig1_tables, engine="vector")
        a, b = clean.run_sequences(seqs), sim.run_sequences(seqs)
        if a.engine_stats.fast_path:
            assert b.engine_stats.fast_path
        assert a.makespan == b.makespan
        assert _msg_key(a) == _msg_key(b)


class TestDrops:
    def test_permanent_cut_loses_crossing_messages(self, fig1_tables):
        n = fig1_tables.fabric.num_endports
        seqs = _ring_seqs(n)
        gp = _cut_gport(fig1_tables, 3, 4)
        faults = FaultSchedule(events=(
            FaultEvent(time=0.0, kind=LINK_DOWN, gport=gp),))
        sim = PacketSimulator(fig1_tables, engine="reference")
        res, rep = run_faulty(sim, seqs, faults)
        assert rep.lost
        assert any(m.src == 3 and m.dst == 4 for m in rep.lost)
        assert 0.0 < rep.delivered_fraction < 1.0
        # Lost messages are flagged, never silently dropped.
        lost_pairs = {(m.src, m.dst) for m in rep.lost}
        flagged = {(m.src, m.dst) for m in res.messages if m.finish < 0}
        assert flagged == lost_pairs

    def test_accounting_invariant(self, fig1_tables):
        """delivered + lost == attempted, for arbitrary schedules."""
        fab = fig1_tables.fabric
        n = fab.num_endports
        seqs = _ring_seqs(n)
        sim = PacketSimulator(fig1_tables, engine="reference")
        for seed in range(10):
            faults = FaultSchedule.random(fab, seed=seed, horizon=20.0,
                                          mtbf=4.0)
            _, rep = run_faulty(sim, seqs, faults)
            assert rep.delivered_messages + len(rep.lost) == rep.total_messages
            assert rep.dropped_packets >= len(rep.lost)

    def test_recovered_cable_carries_retry(self, fig1_tables):
        """A retry launched after link_up goes through untouched."""
        n = fig1_tables.fabric.num_endports
        seqs = _ring_seqs(n)
        gp = _cut_gport(fig1_tables, 3, 4)
        faults = FaultSchedule(events=(
            FaultEvent(time=0.0, kind=LINK_DOWN, gport=gp),
            FaultEvent(time=100.0, kind=LINK_UP, gport=gp),
        ))
        sim = PacketSimulator(fig1_tables, engine="reference")
        _, first = run_faulty(sim, seqs, faults, t0=0.0, attempt=0)
        assert first.lost
        retry_seqs = [[] for _ in range(n)]
        for m in first.lost:
            retry_seqs[m.src].append((m.dst, m.size))
        _, second = run_faulty(sim, retry_seqs, faults, t0=150.0, attempt=1)
        assert second.lost == ()
        assert second.delivered_fraction == 1.0

    def test_switch_death_purges_and_drops(self, fig1_tables):
        fab = fig1_tables.fabric
        n = fab.num_endports
        seqs = _ring_seqs(n)
        leaf = n  # first switch: every ring message crosses its leaf
        faults = FaultSchedule(events=(
            FaultEvent(time=0.0, kind=SWITCH_DOWN, node=leaf),))
        sim = PacketSimulator(fig1_tables, engine="reference")
        res, rep = run_faulty(sim, seqs, faults)
        assert rep.lost
        # The run terminates (no wedged queue) and accounts for all.
        assert rep.delivered_messages + len(rep.lost) == rep.total_messages

    def test_flaky_certain_loss(self, fig1_tables):
        n = fig1_tables.fabric.num_endports
        seqs = _ring_seqs(n)
        gp = _cut_gport(fig1_tables, 3, 4)
        faults = FaultSchedule(events=(
            FaultEvent(time=0.0, kind=FLAKY, gport=gp, until=1e6, loss=1.0),))
        sim = PacketSimulator(fig1_tables, engine="reference")
        _, rep = run_faulty(sim, seqs, faults)
        assert any(m.src == 3 and m.dst == 4 for m in rep.lost)

    def test_flaky_seeded_determinism(self, fig1_tables):
        n = fig1_tables.fabric.num_endports
        seqs = _ring_seqs(n)
        gp = _cut_gport(fig1_tables, 3, 4)
        faults = FaultSchedule(events=(
            FaultEvent(time=0.0, kind=FLAKY, gport=gp, until=1e6, loss=0.5),),
            seed=99)
        sim = PacketSimulator(fig1_tables, engine="reference")
        res_a, rep_a = run_faulty(sim, seqs, faults, t0=3.0, attempt=2)
        res_b, rep_b = run_faulty(sim, seqs, faults, t0=3.0, attempt=2)
        assert rep_a == rep_b
        assert _msg_key(res_a) == _msg_key(res_b)


class TestHealing:
    def test_repair_rescues_post_sweep_traffic(self, fig1_tables):
        fab = fig1_tables.fabric
        n = fab.num_endports
        gp = _cut_gport(fig1_tables, 3, 4)
        faults = FaultSchedule(events=(
            FaultEvent(time=0.0, kind=LINK_DOWN, gport=gp),))
        hc = HealingController(fig1_tables, faults, sweep_delay=10.0)
        sim = PacketSimulator(fig1_tables, engine="reference")
        seqs = _ring_seqs(n)
        # Before the sweep: the 3 -> 4 message dies on the cut.
        _, before = run_faulty(sim, seqs, faults, controller=hc, t0=0.0)
        assert before.lost
        # After the sweep: repaired tables route around the cut.
        _, after = run_faulty(sim, seqs, faults, controller=hc, t0=50.0)
        assert after.lost == ()
        assert after.delivered_fraction == 1.0

    def test_mid_run_swap_recorded(self, fig1_tables):
        """A sweep landing inside the run's event window is reported."""
        fab = fig1_tables.fabric
        n = fab.num_endports
        gp = _cut_gport(fig1_tables, 3, 4)
        faults = FaultSchedule(events=(
            FaultEvent(time=0.0, kind=LINK_DOWN, gport=gp),))
        hc = HealingController(fig1_tables, faults, sweep_delay=1.0)
        sim = PacketSimulator(fig1_tables, engine="reference")
        # Large messages keep the run alive past the sweep at t=1.
        seqs = _ring_seqs(n, size=65536.0)
        _, rep = run_faulty(sim, seqs, faults, controller=hc, t0=0.0)
        assert rep.repairs
        assert rep.repairs[0].sweep_time == 1.0


class TestValidation:
    def test_sequence_count_checked(self, fig1_tables):
        sim = PacketSimulator(fig1_tables, engine="reference")
        with pytest.raises(ValueError, match="sequences"):
            run_faulty(sim, [[]], FaultSchedule())

    def test_healing_requires_faults(self, fig1_tables):
        hc = HealingController(fig1_tables, FaultSchedule())
        with pytest.raises(ValueError, match="without a fault schedule"):
            PacketSimulator(fig1_tables, healing=hc)
