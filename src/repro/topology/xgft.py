"""XGFT and k-ary-n-tree conveniences.

Extended Generalized Fat-Trees (Ohring et al., and section IV.A of the
paper) are the ``p == 1`` sub-class of PGFTs: at most a single cable
between any two switches.  k-ary-n-trees (Petrini & Vanneschi) are the
further specialisation with uniform ``m`` and ``w``.

Both are provided as factories returning :class:`PGFTSpec` so the whole
library (routing, HSD, simulators) treats them uniformly.
"""

from __future__ import annotations

from .spec import PGFTSpec, TopologyError, pgft

__all__ = ["xgft", "k_ary_n_tree", "is_xgft", "is_k_ary_n_tree"]


def xgft(h: int, m, w) -> PGFTSpec:
    """``XGFT(h; m_1..m_h; w_1..w_h)`` as a PGFT with all ``p_l == 1``."""
    return pgft(h, m, w, [1] * h)


def k_ary_n_tree(k: int, n: int) -> PGFTSpec:
    """The classic k-ary-n-tree: ``XGFT(n; k,..,k; 1,k,..,k)``.

    ``k**n`` end-ports, ``n`` levels of ``2k``-port switches (top level
    uses ``k`` down ports only).
    """
    if k < 1 or n < 1:
        raise TopologyError("k and n must be positive")
    return xgft(n, [k] * n, [1] + [k] * (n - 1))


def is_xgft(spec: PGFTSpec) -> bool:
    """True when no parallel cables are used anywhere."""
    return all(v == 1 for v in spec.p)


def is_k_ary_n_tree(spec: PGFTSpec) -> bool:
    """True when the spec is exactly a k-ary-n-tree."""
    if not is_xgft(spec):
        return False
    k = spec.m[0]
    return (
        all(v == k for v in spec.m)
        and spec.w[0] == 1
        and all(v == k for v in spec.w[1:])
    )
