"""Fat-tree topology models: XGFT, PGFT and Real-Life Fat-Trees.

Public entry points:

* :class:`~repro.topology.spec.PGFTSpec` / :func:`~repro.topology.spec.pgft`
  -- the canonical tuple.
* :class:`~repro.topology.pgft.PGFT` -- digit arithmetic, node addressing
  and cable enumeration.
* :mod:`~repro.topology.rlft` -- RLFT factories (maximal trees, the
  paper's evaluation topologies, design-space search).
* :mod:`~repro.topology.xgft` -- XGFT / k-ary-n-tree conveniences.
"""

from .discover import DiscoveryError, discover_pgft
from .pgft import PGFT, endport_digits, endport_index
from .rlft import design_pgfts, paper_topologies, rlft_max, three_level, two_level
from .xgft import is_k_ary_n_tree, is_xgft, k_ary_n_tree, xgft

# Import last: the ``pgft`` convenience constructor must win over the
# ``repro.topology.pgft`` submodule attribute of the same name.
from .spec import PGFTSpec, TopologyError, pgft

__all__ = [
    "DiscoveryError",
    "PGFT",
    "PGFTSpec",
    "TopologyError",
    "design_pgfts",
    "discover_pgft",
    "endport_digits",
    "endport_index",
    "is_k_ary_n_tree",
    "is_xgft",
    "k_ary_n_tree",
    "paper_topologies",
    "pgft",
    "rlft_max",
    "three_level",
    "two_level",
    "xgft",
]
