"""PGFT node addressing, digit arithmetic and connection rules.

This module turns the canonical ``PGFT(h; m; w; p)`` tuple into concrete
node identities and wire connections (section IV.B of the paper).

Addressing model
----------------
Every node carries a digit vector of length ``h`` (positions ``1..h``,
stored 0-based).  For a node at level ``l``:

* positions ``1..l`` hold *w-digits* ``d_i in [0, w_i)`` -- which of the
  replicated upper switches the node is, counted from the bottom;
* positions ``l+1..h`` hold *m-digits* ``a_i in [0, m_i)`` -- the path of
  sub-tree choices from the root down to the node.

End-ports (level 0) therefore carry only m-digits: the digit vector of
end-port ``j`` is simply ``j`` written in the little-endian mixed radix
``(m_1, ..., m_h)``.  This index order *is* the paper's topology-aware
MPI node order.

Connection rule (paper Fig. 5)
------------------------------
A level-``l-1`` node ``X`` and a level-``l`` node ``Z`` are cabled iff
their digit vectors agree everywhere except position ``l``.  At that
position ``X`` holds an m-digit ``a_l`` (``Z``'s child index for ``X``)
and ``Z`` holds a w-digit ``e_l`` (``X``'s parent index for ``Z``).  The
pair is joined by ``p_l`` parallel cables; cable ``k`` connects

* up-going port   ``q = e_l + k * w_l``  of ``X``  to
* down-going port ``r = a_l + k * m_l``  of ``Z``.

Node indices
------------
Within a level, nodes are numbered by their digit vector in little-endian
mixed radix ``(w_1..w_l, m_{l+1}..m_h)``.  All functions are vectorised
over NumPy integer arrays.
"""

from __future__ import annotations

import numpy as np

from .spec import PGFTSpec, TopologyError

__all__ = [
    "PGFT",
    "endport_digits",
    "endport_index",
]


def endport_digits(spec: PGFTSpec, j: np.ndarray | int) -> np.ndarray:
    """m-digit vector(s) of end-port index ``j``.

    Returns an array of shape ``(..., h)`` with digit ``a_i`` (1-based
    position ``i``) at column ``i-1``.
    """
    j = np.asarray(j)
    out = np.empty(j.shape + (spec.h,), dtype=np.int64)
    rem = j.astype(np.int64, copy=True)
    for i in range(spec.h):
        out[..., i] = rem % spec.m[i]
        rem //= spec.m[i]
    return out


def endport_index(spec: PGFTSpec, digits: np.ndarray) -> np.ndarray:
    """Inverse of :func:`endport_digits` (little-endian mixed radix)."""
    digits = np.asarray(digits)
    idx = np.zeros(digits.shape[:-1], dtype=np.int64)
    scale = 1
    for i in range(spec.h):
        idx = idx + digits[..., i] * scale
        scale *= spec.m[i]
    return idx


class PGFT:
    """Concrete PGFT: digit/index conversions and connection enumeration.

    The class is a thin, stateless-but-cached wrapper around a
    :class:`PGFTSpec`; all structural queries are pure functions of the
    spec.  Fabric construction (actual port objects and cables) lives in
    :mod:`repro.fabric.model` and consumes :meth:`iter_level_cables`.
    """

    def __init__(self, spec: PGFTSpec):
        self.spec = spec
        h = spec.h
        # Radix vector of node indices per level: level l uses
        # (w_1..w_l, m_{l+1}..m_h).
        self._radix = {
            level: tuple(spec.w[:level]) + tuple(spec.m[level:])
            for level in range(0, h + 1)
        }

    # -- basic counts ---------------------------------------------------
    @property
    def num_endports(self) -> int:
        return self.spec.num_endports

    def num_nodes_at(self, level: int) -> int:
        """Number of nodes at ``level`` (level 0 = end-ports)."""
        if level == 0:
            return self.spec.num_endports
        return self.spec.switches_at(level)

    # -- digit/index conversions ---------------------------------------
    def node_digits(self, level: int, index: np.ndarray | int) -> np.ndarray:
        """Digit vector(s) of node ``index`` at ``level``; shape ``(..., h)``."""
        radix = self._radix[level]
        index = np.asarray(index)
        out = np.empty(index.shape + (self.spec.h,), dtype=np.int64)
        rem = index.astype(np.int64, copy=True)
        for i, base in enumerate(radix):
            out[..., i] = rem % base
            rem //= base
        return out

    def node_index(self, level: int, digits: np.ndarray) -> np.ndarray:
        """Node index from digit vector(s) at ``level``."""
        radix = self._radix[level]
        digits = np.asarray(digits)
        idx = np.zeros(digits.shape[:-1], dtype=np.int64)
        scale = 1
        for i, base in enumerate(radix):
            idx = idx + digits[..., i] * scale
            scale *= base
        return idx

    # -- structural relations -------------------------------------------
    def ancestor_mask(self, level: int, switch_index: np.ndarray,
                      endport: np.ndarray) -> np.ndarray:
        """Whether each ``switch_index`` (level ``level``) is an ancestor
        of the corresponding ``endport``.

        A level-``l`` switch is an ancestor of end-port ``j`` iff their
        digits agree at positions ``l+1..h`` (the switch's m-digits).
        Top-level switches are ancestors of every end-port.
        Broadcasting applies between the two index arrays.
        """
        sdig = self.node_digits(level, switch_index)
        jdig = endport_digits(self.spec, endport)
        if level == self.spec.h:
            shape = np.broadcast_shapes(sdig.shape[:-1], jdig.shape[:-1])
            return np.ones(shape, dtype=bool)
        return np.all(sdig[..., level:] == jdig[..., level:], axis=-1)

    def leaf_of_endport(self, j: np.ndarray | int) -> np.ndarray:
        """Index of the (unique in RLFT) level-1 switch above end-port ``j``
        reachable through up-port 0.

        For general PGFTs with ``w_1 > 1`` this returns the parent with
        w-digit ``d_1 = 0``; use :meth:`parents_of` for the full set.
        """
        digits = endport_digits(self.spec, j)
        pdig = digits.copy()
        pdig[..., 0] = 0
        return self.node_index(1, pdig)

    def parents_of(self, level: int, index: np.ndarray | int) -> np.ndarray:
        """Indices of all ``w_{level+1}`` parents of node ``index`` at
        ``level``; shape ``(..., w_{level+1})``, ordered by parent digit."""
        spec = self.spec
        if level >= spec.h:
            raise TopologyError("top-level nodes have no parents")
        w_up = spec.w[level]
        digits = self.node_digits(level, index)
        base = np.repeat(digits[..., None, :], w_up, axis=-2)
        base[..., :, level] = np.arange(w_up)
        return self.node_index(level + 1, base)

    def children_of(self, level: int, index: np.ndarray | int) -> np.ndarray:
        """Indices of all ``m_level`` children (at ``level-1``) of a
        level-``level`` node; shape ``(..., m_level)``, by child digit."""
        spec = self.spec
        if level < 1:
            raise TopologyError("end-ports have no children")
        m_dn = spec.m[level - 1]
        digits = self.node_digits(level, index)
        base = np.repeat(digits[..., None, :], m_dn, axis=-2)
        base[..., :, level - 1] = np.arange(m_dn)
        return self.node_index(level - 1, base)

    # -- cable enumeration ------------------------------------------------
    def level_cables(self, level: int) -> tuple[np.ndarray, ...]:
        """All cables between levels ``level-1`` and ``level``, vectorised.

        Returns four equal-length int64 arrays
        ``(lower_index, lower_up_port, upper_index, upper_down_port)``
        where the port numbers are *logical*: up ports count
        ``0..w_l*p_l-1`` on the lower node, down ports ``0..m_l*p_l-1``
        on the upper node, following the paper's parallel-port rule.
        """
        spec = self.spec
        if not 1 <= level <= spec.h:
            raise TopologyError(f"level {level} out of range 1..{spec.h}")
        m_l, w_l, p_l = spec.m[level - 1], spec.w[level - 1], spec.p[level - 1]
        n_up = self.num_nodes_at(level)

        upper = np.arange(n_up, dtype=np.int64)
        udig = self.node_digits(level, upper)  # (n_up, h)
        # Broadcast over (upper, child a_l, parallel k).
        a = np.arange(m_l, dtype=np.int64)
        k = np.arange(p_l, dtype=np.int64)
        U, A, K = np.meshgrid(upper, a, k, indexing="ij")

        low_dig = np.repeat(udig[:, None, :], m_l, axis=1)  # (n_up, m_l, h)
        low_dig[:, :, level - 1] = a[None, :]
        lower = self.node_index(level - 1, low_dig)  # (n_up, m_l)
        lower = np.repeat(lower[:, :, None], p_l, axis=2)  # (n_up, m_l, p_l)

        e_l = udig[:, level - 1]  # upper node's w-digit at position l
        up_port = e_l[:, None, None] + K * w_l
        down_port = A + K * m_l
        flat = lambda x: np.ascontiguousarray(x.reshape(-1))  # noqa: E731
        return flat(lower), flat(up_port), flat(U), flat(down_port)

    def iter_level_cables(self):
        """Yield ``(level, lower, up_port, upper, down_port)`` per level."""
        for level in self.spec.iter_levels():
            yield (level, *self.level_cables(level))

    # -- sanity -----------------------------------------------------------
    def validate(self) -> None:
        """Cross-check structural invariants; raises TopologyError."""
        spec = self.spec
        for level in spec.iter_levels():
            lower, up_port, upper, down_port = self.level_cables(level)
            n_lower = self.num_nodes_at(level - 1)
            n_upper = self.num_nodes_at(level)
            expect = n_upper * spec.m[level - 1] * spec.p[level - 1]
            if len(lower) != expect:
                raise TopologyError(
                    f"level {level}: {len(lower)} cables, expected {expect}"
                )
            # Each lower up-port and each upper down-port used exactly once.
            up_keys = lower * spec.up_ports_at(level - 1) + up_port
            dn_keys = upper * spec.down_ports_at(level) + down_port
            if len(np.unique(up_keys)) != n_lower * spec.up_ports_at(level - 1):
                raise TopologyError(f"level {level}: up-port usage not a bijection")
            if len(np.unique(dn_keys)) != n_upper * spec.down_ports_at(level):
                raise TopologyError(f"level {level}: down-port usage not a bijection")

    def __repr__(self) -> str:
        return f"PGFT<{self.spec}>"
