"""Real-Life Fat-Tree (RLFT) factories and design helpers.

RLFTs (paper section IV.C) are the PGFT sub-class actually built in HPC
practice: constant cross-bisectional bandwidth, single-rail hosts, and a
uniform switch radix ``2K`` with the top level fully populated
(``m_h * p_h == 2K``).

Besides predicate checks (on :class:`~repro.topology.spec.PGFTSpec`),
this module provides factories for the topologies used throughout the
paper's evaluation, and a small design-space search that finds every
constant-CBB PGFT reaching a requested node count with a given switch
radix -- the task a cluster architect performs when sizing a fabric.
"""

from __future__ import annotations

import math
from typing import Iterator

from .spec import PGFTSpec, TopologyError, pgft

__all__ = [
    "rlft_max",
    "two_level",
    "three_level",
    "design_pgfts",
    "paper_topologies",
]


def rlft_max(arity: int, levels: int) -> PGFTSpec:
    """The maximal RLFT of ``levels`` levels built from ``2*arity``-port
    switches, supporting ``2 * arity**levels`` end-ports.

    Matches the paper's example: ``rlft_max(18, 3)`` is
    ``PGFT(3; 18,18,36; 1,18,18; 1,1,1)`` with 11664 end-ports.
    """
    if arity < 1 or levels < 1:
        raise TopologyError("arity and levels must be positive")
    if levels == 1:
        return pgft(1, [2 * arity], [1], [1])
    m = [arity] * (levels - 1) + [2 * arity]
    w = [1] + [arity] * (levels - 1)
    p = [1] * levels
    return pgft(levels, m, w, p)


def two_level(leaf_down: int, num_leaves: int, num_spines: int,
              parallel: int = 1) -> PGFTSpec:
    """Two-level constant-CBB PGFT.

    ``leaf_down`` hosts per leaf switch, ``num_leaves`` leaf switches,
    ``num_spines`` spine switches each connected to every leaf by
    ``parallel`` cables.  Constant CBB requires
    ``leaf_down == num_spines * parallel``; every spine sees all
    ``num_leaves`` leaves, i.e. the spec is
    ``PGFT(2; leaf_down, num_leaves; 1, num_spines; 1, parallel)``.
    """
    if leaf_down != num_spines * parallel:
        raise TopologyError(
            "constant CBB needs leaf_down == num_spines * parallel "
            f"({leaf_down} != {num_spines}*{parallel})"
        )
    return pgft(2, [leaf_down, num_leaves], [1, num_spines], [1, parallel])


def three_level(k1: int, k2: int, k3: int, w2: int, w3: int,
                p2: int = 1, p3: int = 1) -> PGFTSpec:
    """General three-level constant-CBB PGFT builder with validation."""
    spec = pgft(3, [k1, k2, k3], [1, w2, w3], [1, p2, p3])
    if not spec.has_constant_cbb():
        raise TopologyError(f"{spec} does not have constant CBB")
    return spec


def design_pgfts(num_endports: int, radix: int, levels: int,
                 max_results: int = 64) -> list[PGFTSpec]:
    """Enumerate constant-CBB, single-rail PGFTs with ``num_endports``
    end-ports whose switches use at most ``radix`` ports.

    This is a brute-force walk over divisor chains of ``num_endports``;
    it is intended for design exploration at realistic sizes (radix up
    to a few hundred), not as a general solver.

    Results are sorted by total switch count (cheapest fabric first).
    """
    results: list[PGFTSpec] = []

    def rec(level: int, remaining: int, m: list[int], w: list[int],
            p: list[int]) -> None:
        if len(results) >= max_results:
            return
        if level > levels:
            if remaining == 1:
                try:
                    spec = pgft(levels, m, w, p)
                except TopologyError:
                    return
                if spec.has_constant_cbb() and all(
                    spec.ports_at(l) <= radix for l in spec.iter_levels()
                ):
                    results.append(spec)
            return
        # Choose m_l among divisors of what remains, then (w_l, p_l)
        # satisfying the CBB chain m_{l-1} p_{l-1} == w_l p_l.
        for m_l in _divisors(remaining):
            if m_l == 1 and level < levels:
                continue  # degenerate internal level
            if level == 1:
                rec(level + 1, remaining // m_l, m + [m_l], w + [1], p + [1])
            else:
                need = m[-1] * p[-1]  # w_l * p_l must equal this
                for w_l in _divisors(need):
                    p_l = need // w_l
                    rec(level + 1, remaining // m_l,
                        m + [m_l], w + [w_l], p + [p_l])

    rec(1, num_endports, [], [], [])
    uniq = {str(s): s for s in results}
    return sorted(uniq.values(), key=lambda s: (s.num_switches, str(s)))


def _divisors(n: int) -> Iterator[int]:
    for d in range(1, int(math.isqrt(n)) + 1):
        if n % d == 0:
            yield d
            if d != n // d:
                yield n // d


def paper_topologies() -> dict[str, PGFTSpec]:
    """The evaluation topologies of the paper (Figure 3 and Table 3).

    Sizes 128, 324, 1728 and 1944 as constant-CBB PGFTs, plus the small
    16-node fabric of Figures 1 and 4(b), and the maximal 2- and 3-level
    RLFTs from 36-port switches.  Where the paper does not pin down the
    exact tuple we pick the standard constant-CBB construction (see
    DESIGN.md, substitutions table).
    """
    return {
        # Figure 1 / Figure 4(b): 16 nodes, 8-port switches, 2 spines with
        # parallel ports (PGFT) -- the motivating example.
        "n16-pgft": pgft(2, [4, 4], [1, 2], [1, 2]),
        # Figure 4(a): same 16 nodes as XGFT (4 spines, no parallel ports).
        "n16-xgft": pgft(2, [4, 4], [1, 4], [1, 1]),
        # Figure 3 sizes.
        "n128": pgft(2, [8, 16], [1, 8], [1, 1]),        # 16-port switches
        "n324": pgft(2, [18, 18], [1, 9], [1, 2]),       # 36-port, 9 spines x2
        "n1728": pgft(3, [12, 12, 12], [1, 12, 12], [1, 1, 1]),  # 24-port
        "n1944": pgft(3, [18, 18, 6], [1, 18, 6], [1, 1, 3]),   # 36-port
        # Maximal RLFTs from 36-port switches (section V example).
        "rlft2-max36": rlft_max(18, 2),   # 648 end-ports
        "rlft3-max36": rlft_max(18, 3),   # 11664 end-ports
    }
