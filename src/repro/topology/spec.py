"""Canonical tuple specification of Parallel-Ports Generalized Fat-Trees.

A PGFT (Zahavi 2011, section IV.B) is canonically defined by the tuple

    ``PGFT(h; m_1..m_h; w_1..w_h; p_1..p_h)``

where

* ``h``   -- number of switch levels (end-ports sit at level 0),
* ``m_l`` -- number of *distinct* lower-level nodes a level-``l`` node
  connects down to,
* ``w_l`` -- number of *distinct* level-``l`` nodes a level-``l-1`` node
  connects up to,
* ``p_l`` -- number of parallel links between each such connected pair.

The spec object precomputes the mixed-radix constants used throughout the
library:

* ``M[l] = m_1 * ... * m_l`` (``M[0] == 1``) -- end-ports per level-``l``
  subtree; ``M[h]`` is the total end-port count ``N``.
* ``W[l] = w_1 * ... * w_l`` (``W[0] == 1``) -- the divisors of the
  D-Mod-K routing function, eq. (1) of the paper.
* ``switches_at(l)`` -- number of switches at level ``l``.

Levels are 1-based to match the paper; Python sequences ``m``, ``w``,
``p`` are 0-based, so ``m_l == spec.m[l-1]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np


class TopologyError(ValueError):
    """Raised when a topology tuple is malformed or inconsistent."""


@dataclass(frozen=True)
class PGFTSpec:
    """Immutable PGFT tuple with derived constants and validation.

    Parameters
    ----------
    h:
        Number of switch levels, ``h >= 1``.
    m, w, p:
        Sequences of length ``h`` holding ``m_l``, ``w_l`` and ``p_l``
        for ``l = 1..h`` (stored 0-based).

    Raises
    ------
    TopologyError
        If any entry is non-positive, the lengths disagree with ``h``,
        or the tuple does not describe an integral number of switches
        at every level.
    """

    h: int
    m: tuple[int, ...]
    w: tuple[int, ...]
    p: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.h < 1:
            raise TopologyError(f"PGFT needs at least one level, got h={self.h}")
        for name, seq in (("m", self.m), ("w", self.w), ("p", self.p)):
            if len(seq) != self.h:
                raise TopologyError(
                    f"len({name})={len(seq)} does not match h={self.h}"
                )
            if any((not isinstance(v, int)) or v < 1 for v in seq):
                raise TopologyError(f"{name} entries must be positive ints: {seq}")
        # Note: switch counts are integral for every positive tuple:
        # switches_at(l) = prod(m[l:]) * prod(w[:l]).

    # ------------------------------------------------------------------
    # Derived constants
    # ------------------------------------------------------------------
    @property
    def num_endports(self) -> int:
        """Total number of end-ports, ``N = prod(m)``."""
        return math.prod(self.m)

    def M(self, level: int) -> int:
        """``prod(m_1..m_level)``; end-ports per level-``level`` subtree."""
        self._check_level(level, allow_zero=True)
        return math.prod(self.m[:level])

    def W(self, level: int) -> int:
        """``prod(w_1..w_level)``; the D-Mod-K divisor for level ``level``."""
        self._check_level(level, allow_zero=True)
        return math.prod(self.w[:level])

    def switches_at(self, level: int) -> int:
        """Number of switches at ``level`` (1-based)."""
        self._check_level(level)
        return self.num_endports * self.W(level) // self.M(level)

    @property
    def num_switches(self) -> int:
        """Total switch count over all levels."""
        return sum(self.switches_at(l) for l in range(1, self.h + 1))

    def down_ports_at(self, level: int) -> int:
        """Down-going ports per switch at ``level``: ``m_l * p_l``."""
        self._check_level(level)
        return self.m[level - 1] * self.p[level - 1]

    def up_ports_at(self, level: int) -> int:
        """Up-going ports per node at ``level`` (0-based end-ports allowed).

        A node at level ``l < h`` has ``w_{l+1} * p_{l+1}`` up ports; the
        top level has none.
        """
        if level < 0 or level > self.h:
            raise TopologyError(f"level {level} out of range 0..{self.h}")
        if level == self.h:
            return 0
        return self.w[level] * self.p[level]

    def ports_at(self, level: int) -> int:
        """Total (down + up) ports per switch at ``level``."""
        return self.down_ports_at(level) + self.up_ports_at(level)

    @property
    def leaf_size(self) -> int:
        """End-ports per leaf (level-1) subtree: ``M(1) = m_1``."""
        return self.M(1)

    @property
    def num_leaves(self) -> int:
        """Number of level-1 subtrees: ``N / m_1``."""
        return self.num_endports // self.leaf_size

    def leaf_of(self, port: np.ndarray | int) -> np.ndarray:
        """Leaf (level-1 subtree) index of each end-port; broadcasts."""
        return np.asarray(port, dtype=np.int64) // self.leaf_size

    def M_prefix(self) -> np.ndarray:
        """``[M(0), M(1), .., M(h)]`` as an int64 array (``M(0) == 1``).

        The subtree sizes are the moduli of the closed-form (symbolic)
        route reasoning; having them as one array keeps that code free
        of per-level Python loops over ``M()``.
        """
        return np.cumprod(np.array((1,) + self.m, dtype=np.int64))

    def W_prefix(self) -> np.ndarray:
        """``[W(0), W(1), .., W(h)]`` as an int64 array (``W(0) == 1``)."""
        return np.cumprod(np.array((1,) + self.w, dtype=np.int64))

    def switch_level_base(self, level: int) -> int:
        """Number of switches strictly below ``level`` (1-based).

        Equals the per-level node-id offset of the canonical fabric
        (:func:`repro.fabric.build_fabric` lays out end-ports first,
        then switches grouped by ascending level).
        """
        self._check_level(level)
        return sum(self.switches_at(l) for l in range(1, level))

    def port_level_base(self, level: int) -> int:
        """First global port id of level-``level`` switches in the
        canonical fabric's CSR port layout (end-port ports first, then
        switch ports grouped by ascending level)."""
        self._check_level(level)
        base = self.num_endports * self.up_ports_at(0)
        for l in range(1, level):
            base += self.switches_at(l) * self.ports_at(l)
        return base

    @property
    def num_ports(self) -> int:
        """Total global port count of the canonical fabric."""
        return (self.num_endports * self.up_ports_at(0)
                + sum(self.switches_at(l) * self.ports_at(l)
                      for l in range(1, self.h + 1)))

    @property
    def num_links(self) -> int:
        """Number of physical cables (bidirectional links)."""
        total = self.num_endports * self.up_ports_at(0)
        for level in range(1, self.h):
            total += self.switches_at(level) * self.up_ports_at(level)
        return total

    # ------------------------------------------------------------------
    # Structural predicates
    # ------------------------------------------------------------------
    def has_constant_cbb(self) -> bool:
        """Constant cross-bisectional bandwidth: ``m_l p_l == w_{l+1} p_{l+1}``.

        This is the first RLFT restriction (section IV.C): the aggregate
        down-going and up-going bandwidth of every non-top switch match,
        which is necessary for non-blocking Shift traffic.
        """
        return all(
            self.m[l] * self.p[l] == self.w[l + 1] * self.p[l + 1]
            for l in range(self.h - 1)
        )

    def is_single_rail(self) -> bool:
        """Second RLFT restriction: hosts attach with one cable each."""
        return self.w[0] == 1 and self.p[0] == 1

    def switch_radix(self, level: int) -> int:
        """Port count of switches at ``level`` (for the uniform-radix check)."""
        return self.ports_at(level)

    def is_rlft(self, radix: int | None = None) -> bool:
        """Whether this PGFT satisfies all Real-Life Fat-Tree restrictions.

        * constant CBB on every internal level,
        * hosts connected by a single cable,
        * every switch is (at most) the same ``radix``; the top level may
          leave ports unused only when the tree is a sub-allocation of a
          larger RLFT, so strict RLFTs require ``m_h p_h == radix``.

        When ``radix`` is None, it is inferred from level-1 switches.
        """
        if not (self.has_constant_cbb() and self.is_single_rail()):
            return False
        if radix is None:
            radix = self.ports_at(1)
        if any(self.ports_at(l) > radix for l in range(1, self.h + 1)):
            return False
        return self.down_ports_at(self.h) == radix

    @property
    def arity(self) -> int:
        """Switch arity ``K``: half the ports of a (level-1) switch."""
        return self.ports_at(1) // 2

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        fmt = lambda seq: ",".join(str(v) for v in seq)  # noqa: E731
        return f"PGFT({self.h}; {fmt(self.m)}; {fmt(self.w)}; {fmt(self.p)})"

    def describe(self) -> str:
        """Multi-line human-readable summary of the topology."""
        lines = [
            str(self),
            f"  end-ports : {self.num_endports}",
            f"  levels    : {self.h}",
        ]
        for level in range(1, self.h + 1):
            lines.append(
                f"  level {level}   : {self.switches_at(level)} switches, "
                f"{self.down_ports_at(level)} down / "
                f"{self.up_ports_at(level)} up ports each"
            )
        lines.append(f"  links     : {self.num_links}")
        lines.append(f"  constant CBB: {self.has_constant_cbb()}")
        return "\n".join(lines)

    def _check_level(self, level: int, allow_zero: bool = False) -> None:
        lo = 0 if allow_zero else 1
        if level < lo or level > self.h:
            raise TopologyError(f"level {level} out of range {lo}..{self.h}")

    def iter_levels(self) -> Iterator[int]:
        """Iterate switch levels ``1..h``."""
        return iter(range(1, self.h + 1))


def pgft(h: int, m, w, p) -> PGFTSpec:
    """Convenience constructor accepting any integer sequences."""
    return PGFTSpec(h=h, m=tuple(int(v) for v in m), w=tuple(int(v) for v in w),
                    p=tuple(int(v) for v in p))
