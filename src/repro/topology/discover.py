"""PGFT discovery: recognise the fat-tree structure of a raw wire list.

Subnet managers face this daily: the fabric arrives as an unlabelled
list of cables (e.g. parsed from an ``ibnetdiscover`` dump) and the
routing engine must first establish that the wiring *is* the fat-tree
the operator intended -- miswired cables silently destroy the
congestion-freedom guarantees.

The structural characterisation used here: between consecutive levels
``l-1`` and ``l``, a PGFT's bipartite connection graph is a disjoint
union of complete bipartite blocks ``K_{m_l, w_l}`` with exactly
``p_l`` parallel cables on every edge -- because a lower node's parent
set depends only on its non-``a_l`` digits, all ``m_l`` siblings of a
block share an identical parent set.  Checking this per level verifies
the fabric is isomorphic to ``build_fabric(spec)`` for the inferred
tuple (up to renumbering within blocks).

:func:`discover_pgft` infers ``PGFT(h; m; w; p)`` and raises
:class:`DiscoveryError` pinpointing the first structural violation.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..fabric.model import Fabric
from .spec import PGFTSpec, pgft

__all__ = ["discover_pgft", "DiscoveryError"]


class DiscoveryError(ValueError):
    """The fabric is not a valid PGFT; the message says why."""


def _neighbors_up(fab: Fabric, node: int, level_of: np.ndarray) -> dict[int, int]:
    """Upper-level peers of ``node`` -> number of parallel cables."""
    peers: dict[int, int] = defaultdict(int)
    for gp in fab.ports_of(node):
        peer = int(fab.peer_node[gp])
        if peer >= 0 and level_of[peer] == level_of[node] + 1:
            peers[peer] += 1
    return dict(peers)


def discover_pgft(fabric: Fabric) -> PGFTSpec:
    """Infer and verify the PGFT tuple of a wired fabric."""
    fab = fabric
    level_of = fab.node_level
    if (level_of < 0).any():
        fab.infer_levels()
        level_of = fab.node_level
    h = int(level_of.max())
    if h < 1:
        raise DiscoveryError("fabric has no switches")
    n_hosts = fab.num_endports
    if n_hosts < 1:
        raise DiscoveryError("fabric has no end-ports")

    m: list[int] = []
    w: list[int] = []
    p: list[int] = []

    for level in range(1, h + 1):
        lower = [v for v in range(fab.num_nodes) if level_of[v] == level - 1]
        upper = [v for v in range(fab.num_nodes) if level_of[v] == level]
        if not lower or not upper:
            raise DiscoveryError(f"no nodes at level {level - 1} or {level}")

        # Parent multiset per lower node.
        parent_sets: dict[int, dict[int, int]] = {}
        for v in lower:
            ups = _neighbors_up(fab, v, level_of)
            if not ups:
                raise DiscoveryError(
                    f"node {fab.node_names[v]} (level {level - 1}) has no"
                    f" up-links"
                )
            parent_sets[v] = ups

        # Uniform w_l and p_l.
        w_l = len(next(iter(parent_sets.values())))
        p_counts = {c for ups in parent_sets.values() for c in ups.values()}
        if len(p_counts) != 1:
            raise DiscoveryError(
                f"level {level}: parallel-cable counts differ across pairs"
                f" ({sorted(p_counts)})"
            )
        p_l = p_counts.pop()
        for v, ups in parent_sets.items():
            if len(ups) != w_l:
                raise DiscoveryError(
                    f"level {level}: {fab.node_names[v]} has {len(ups)}"
                    f" parents, expected {w_l}"
                )

        # Complete-bipartite block check: group lower nodes by parent set.
        blocks: dict[frozenset, list[int]] = defaultdict(list)
        for v, ups in parent_sets.items():
            blocks[frozenset(ups)].append(v)
        sizes = {len(members) for members in blocks.values()}
        if len(sizes) != 1:
            raise DiscoveryError(
                f"level {level}: sibling-block sizes differ ({sorted(sizes)});"
                " wiring is not a PGFT"
            )
        m_l = sizes.pop()

        # Every upper node must appear in exactly one block.
        seen: dict[int, int] = {}
        for key in blocks:
            for u in key:
                if u in seen:
                    raise DiscoveryError(
                        f"level {level}: switch {fab.node_names[u]} is shared"
                        " by two sibling blocks; wiring is not a PGFT"
                    )
                seen[u] = 1
        if len(seen) != len(upper):
            missing = set(upper) - set(seen)
            v = missing.pop()
            raise DiscoveryError(
                f"level {level}: switch {fab.node_names[v]} has no down-links"
            )

        m.append(m_l)
        w.append(w_l)
        p.append(p_l)

    spec = pgft(h, m, w, p)
    # Final count cross-checks.
    if spec.num_endports != n_hosts:
        raise DiscoveryError(
            f"inferred {spec} implies {spec.num_endports} end-ports,"
            f" fabric has {n_hosts}"
        )
    for level in spec.iter_levels():
        have = int((level_of == level).sum())
        want = spec.switches_at(level)
        if have != want:
            raise DiscoveryError(
                f"level {level}: {have} switches, {spec} implies {want}"
            )
    return spec
