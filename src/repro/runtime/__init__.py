"""Execution runtime: parallel sweep engine + content-addressed caching.

The paper's headline statistics are Monte-Carlo sweeps over many random
node orders.  This package makes them fast and re-runnable:

* :class:`ParallelSweeper` / :func:`parallel_order_sweep` -- shard a
  sweep's seed range over worker processes, evaluate each shard through
  the batched HSD fast path, and merge deterministically (bit-identical
  to the serial reference);
* :class:`ResultCache` -- a disk cache keyed by SHA-256 content digests
  of *(fabric wiring, forwarding tables, CPS stages, seed range)*, so
  repeated ``repro-experiments`` invocations skip completed cells;
* :func:`sweep_digest` / :func:`tables_digest` / :func:`cps_digest` --
  the stable digest recipe, reusable for other memoised analyses.
"""

from .cache import (
    CACHE_VERSION,
    CacheStats,
    ResultCache,
    cps_digest,
    default_cache_dir,
    sweep_digest,
    tables_digest,
)
from .sweep import (
    ParallelSweeper,
    ShardFailure,
    SweepStats,
    chunk_ranges,
    parallel_order_sweep,
    resolve_jobs,
)

__all__ = [
    "CACHE_VERSION",
    "CacheStats",
    "ParallelSweeper",
    "ResultCache",
    "ShardFailure",
    "SweepStats",
    "chunk_ranges",
    "cps_digest",
    "default_cache_dir",
    "parallel_order_sweep",
    "resolve_jobs",
    "sweep_digest",
    "tables_digest",
]
