"""Content-addressed disk cache for sweep results.

Monte-Carlo sweeps (Figure 3, Table 3, the ablations) are pure
functions of *(topology, routing tables, CPS, placement seed range)*.
This module derives a stable SHA-256 digest of exactly those inputs and
stores the resulting ``avg_max`` arrays on disk keyed by it, so a
re-run of ``repro-experiments fig3`` with unchanged parameters skips
every HSD recomputation.

The digest is *content-addressed*: it hashes the fabric wiring arrays
and the forwarding-table contents themselves (not engine names), so any
change to the topology spec, the routing engine, or its parameters
changes ``switch_out``/``host_up`` bytes and therefore the key -- stale
hits are structurally impossible.  CPS identity likewise hashes the
actual per-stage ``(src, dst)`` pairs, covering knobs like
``max_shift_stages`` sampling.

Layout: one ``<digest>.npy`` per entry under the cache root (default
``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro/sweeps``, else
``~/.cache/repro/sweeps``) plus a human-readable ``<digest>.json``
sidecar recording what produced it.  JSON-only payloads (certificates,
service responses) are stored the same way via
:meth:`ResultCache.store_json`.  Writes are atomic
(temp-file + rename), so concurrent sweeps sharing a cache directory
are safe.

A long-running process (the certification service) can cap the cache
with ``max_bytes``: after every store, least-recently-used entries
(by mtime -- loads touch their entry, so a hit refreshes recency) are
evicted until the directory fits the budget again.  The newest entry
is never evicted, so the store that triggered enforcement always
survives it.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from ..collectives.cps import CPS
from ..fabric.lft import ForwardingTables

__all__ = [
    "CACHE_VERSION",
    "CacheStats",
    "ResultCache",
    "active_digest",
    "cps_digest",
    "default_cache_dir",
    "spec_digest",
    "sweep_digest",
    "tables_digest",
    "types_digest",
]

#: Bump when the stored payload layout or digest recipe changes; part of
#: every key, so old entries are simply never hit again.
CACHE_VERSION = 1


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` > ``$XDG_CACHE_HOME/repro/sweeps`` >
    ``~/.cache/repro/sweeps``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "sweeps"


def _update_array(h, arr: np.ndarray) -> None:
    arr = np.ascontiguousarray(arr)
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())


def tables_digest(tables: ForwardingTables) -> str:
    """SHA-256 of the fabric wiring plus the forwarding-table contents.

    Covers both the topology (wiring arrays) and the routing decision
    (``switch_out``/``host_up``), so it changes whenever either does.
    """
    h = hashlib.sha256(b"repro-tables-v1")
    fab = tables.fabric
    h.update(str(fab.num_endports).encode())
    _update_array(h, fab.node_level)
    _update_array(h, fab.port_start)
    _update_array(h, fab.port_peer)
    _update_array(h, tables.switch_out)
    if tables.host_up is None:
        h.update(b"host_up:none")
    else:
        _update_array(h, tables.host_up)
    return h.hexdigest()


def spec_digest(spec) -> str:
    """SHA-256 of a PGFT tuple.

    The symbolic certifier never materialises tables, so its
    certificates bind to the topology *parameters* (which, for the
    canonical fabric + D-Mod-K, determine the wiring and the tables
    uniquely) instead of ``tables_digest``.
    """
    h = hashlib.sha256(b"repro-spec-v1")
    h.update(f"h={spec.h};m={spec.m};w={spec.w};p={spec.p}".encode())
    return h.hexdigest()


def types_digest(types=None) -> str:
    """SHA-256 of a :class:`~repro.fabric.nodetypes.NodeTypeMap`
    (``None`` = homogeneous population).  Binds per-type routing
    decisions and traffic-class partitions into isolation certificates:
    renaming, re-ordering or re-assigning any end-port's type changes
    the digest."""
    h = hashlib.sha256(b"repro-types-v1")
    if types is None:
        h.update(b"uniform")
    else:
        h.update(";".join(types.type_names).encode())
        _update_array(h, np.asarray(types.type_of, dtype=np.int64))
    return h.hexdigest()


def active_digest(num_endports: int, active=None) -> str:
    """SHA-256 of a job's active end-port set (``None`` = fully
    populated).  Binds job-aware (dense-active-rank) routing decisions
    into symbolic certificates."""
    h = hashlib.sha256(b"repro-active-v1")
    h.update(str(num_endports).encode())
    if active is None:
        h.update(b"full")
    else:
        arr = np.unique(np.asarray(active, dtype=np.int64))
        _update_array(h, arr)
    return h.hexdigest()


def cps_digest(cps: CPS) -> str:
    """SHA-256 of a CPS: name, rank count and every stage's pairs."""
    h = hashlib.sha256(b"repro-cps-v1")
    h.update(cps.name.encode())
    h.update(str(cps.num_ranks).encode())
    for st in cps:
        _update_array(h, st.pairs)
    return h.hexdigest()


def sweep_digest(
    tables: ForwardingTables,
    cps: CPS,
    *,
    num_orders: int,
    seed: int,
    num_ranks: int,
    switch_links_only: bool = False,
) -> str:
    """The cache key of one ``random_order``-sweep cell."""
    h = hashlib.sha256(f"repro-sweep-v{CACHE_VERSION}".encode())
    h.update(tables_digest(tables).encode())
    h.update(cps_digest(cps).encode())
    h.update(
        f"orders={num_orders};seed={seed};ranks={num_ranks};"
        f"switch_only={switch_links_only}".encode()
    )
    return h.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store/eviction counters, surfaced in run summaries."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    def __str__(self) -> str:
        return (f"hits={self.hits} misses={self.misses} "
                f"stores={self.stores} evictions={self.evictions}")


@dataclass
class ResultCache:
    """Disk-backed array/JSON store keyed by content digests.

    ``max_bytes`` (``None`` = unbounded) caps the total on-disk size:
    every store enforces the budget by evicting least-recently-used
    entries (mtime order; loads refresh their entry's mtime).
    """

    root: Path = field(default_factory=default_cache_dir)
    stats: CacheStats = field(default_factory=CacheStats)
    max_bytes: int | None = None

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        if self.max_bytes is not None and self.max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None)")

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.npy"

    def json_path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    @staticmethod
    def _touch(*paths: Path) -> None:
        """Refresh mtimes so eviction order is LRU, not FIFO."""
        for path in paths:
            try:
                os.utime(path)
            except OSError:
                pass  # concurrent eviction; the load already succeeded

    def load_array(self, key: str) -> np.ndarray | None:
        """Return the cached array for ``key`` or None (counts hit/miss).

        A present-but-unreadable entry (truncated/corrupted by a crash
        or disk fault predating the atomic-write scheme) counts as a
        miss and is evicted, so the slot self-heals on the recompute's
        ``store_array``.
        """
        path = self.path_for(key)
        try:
            arr = np.load(path)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, EOFError):
            # Corrupt entry: evict it (and its sidecar) so the key is
            # cleanly recomputed instead of failing forever.
            path.unlink(missing_ok=True)
            path.with_suffix(".json").unlink(missing_ok=True)
            self.stats.misses += 1
            return None
        self._touch(path, path.with_suffix(".json"))
        self.stats.hits += 1
        return arr

    def load_json(self, key: str) -> Any | None:
        """Return the cached JSON payload for ``key`` or None.

        Same corrupt-entry semantics as :meth:`load_array`: an
        unparseable blob is evicted and counted as a miss.
        """
        path = self.json_path_for(key)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError):
            path.unlink(missing_ok=True)
            self.stats.misses += 1
            return None
        self._touch(path)
        self.stats.hits += 1
        return payload

    def _atomic_write(self, path: Path, writer, suffix: str) -> None:
        """Write via temp file + ``os.replace`` so readers (and crashes
        mid-write) never observe a partial file."""
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=suffix)
        try:
            with os.fdopen(fd, "wb") as fh:
                writer(fh)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def store_array(
        self, key: str, arr: np.ndarray, meta: dict | None = None
    ) -> Path:
        """Atomically persist ``arr`` (and an optional JSON sidecar)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        self._atomic_write(
            path, lambda fh: np.save(fh, np.ascontiguousarray(arr)),
            suffix=".npy.tmp")
        if meta is not None:
            payload = json.dumps(meta, indent=2, sort_keys=True).encode()
            self._atomic_write(
                path.with_suffix(".json"), lambda fh: fh.write(payload),
                suffix=".json.tmp")
        self.stats.stores += 1
        self._enforce_budget()
        return path

    def store_json(self, key: str, payload: Any) -> Path:
        """Atomically persist a JSON payload under ``key``."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.json_path_for(key)
        data = json.dumps(payload, indent=2, sort_keys=True).encode()
        self._atomic_write(path, lambda fh: fh.write(data),
                           suffix=".json.tmp")
        self.stats.stores += 1
        self._enforce_budget()
        return path

    # -- size budget -------------------------------------------------------
    def _entries(self) -> list[tuple[float, int, list[Path]]]:
        """Logical cache entries as ``(mtime, bytes, files)`` tuples.

        An entry is a ``.npy`` array together with its ``.json``
        sidecar, or a standalone ``.json`` blob (no array of the same
        stem).  Entries vanishing mid-scan (concurrent eviction) are
        skipped.
        """
        if not self.root.is_dir():
            return []
        grouped: dict[str, list[Path]] = {}
        for path in self.root.iterdir():
            if path.suffix in (".npy", ".json"):
                grouped.setdefault(path.stem, []).append(path)
        entries = []
        for stem in sorted(grouped):
            files = sorted(grouped[stem])
            mtime, size = 0.0, 0
            try:
                for f in files:
                    st = f.stat()
                    mtime = max(mtime, st.st_mtime)
                    size += st.st_size
            except OSError:
                continue
            entries.append((mtime, size, files))
        return entries

    def total_bytes(self) -> int:
        """Current on-disk size of every entry."""
        return sum(size for _, size, _ in self._entries())

    def _enforce_budget(self) -> None:
        """Evict LRU entries until the directory fits ``max_bytes``.

        The most recent entry (the store that triggered enforcement)
        is exempt, so a payload larger than the whole budget still
        lands -- the cap bounds *growth*, it never refuses a store.
        """
        if self.max_bytes is None:
            return
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        if total <= self.max_bytes:
            return
        entries.sort(key=lambda e: e[0])
        for _, size, files in entries[:-1]:   # never the newest
            for f in files:
                f.unlink(missing_ok=True)
            self.stats.evictions += 1
            total -= size
            if total <= self.max_bytes:
                break

    def __len__(self) -> int:
        return len(self._entries())

    def clear(self) -> int:
        """Delete every entry (arrays, sidecars and standalone JSON
        blobs); returns how many entries were removed."""
        removed = 0
        for _, _, files in self._entries():
            for path in files:
                path.unlink(missing_ok=True)
            removed += 1
        return removed
