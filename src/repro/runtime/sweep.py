"""The parallel sweep engine.

:class:`ParallelSweeper` runs ``random_order_sweep``-style Monte-Carlo
workloads as sharded batches:

* the ``num_orders`` seed range is split into contiguous shards;
* each shard evaluates its placements through the **batched** HSD fast
  path (:func:`repro.analysis.batched_sequence_hsd`), which walks all
  of a shard's flows through the forwarding tables in one vectorised
  pass per stage;
* shards run either inline (``jobs=1``) or on a
  ``concurrent.futures.ProcessPoolExecutor``; results are merged back
  by seed offset, so the output is **bit-identical** to the serial
  :func:`repro.analysis.random_order_sweep` regardless of ``jobs`` or
  shard boundaries;
* an optional :class:`repro.runtime.ResultCache` short-circuits whole
  sweep cells whose content digest was computed before.

Shard tasks ship the forwarding tables and the CPS (both plain
NumPy-backed dataclasses) to the workers, so no global state or
factory-callable pickling is involved.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

import numpy as np

from ..analysis.hsd import batched_sequence_hsd
from ..analysis.traffic import OrderSweepResult, sweep_placements
from ..collectives.cps import CPS
from ..fabric.lft import ForwardingTables
from .cache import ResultCache, sweep_digest

__all__ = [
    "ParallelSweeper",
    "ShardFailure",
    "SweepStats",
    "chunk_ranges",
    "parallel_order_sweep",
    "resolve_jobs",
]

#: Shards per worker: a little oversubscription keeps the pool busy when
#: shards finish unevenly, without multiplying pickling overhead.
_SHARDS_PER_JOB = 2


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` means all cores."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    return max(1, int(jobs))


def chunk_ranges(n: int, num_chunks: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into at most ``num_chunks`` contiguous,
    near-equal ``(start, stop)`` spans covering it exactly."""
    if n <= 0:
        return []
    num_chunks = max(1, min(num_chunks, n))
    bounds = np.linspace(0, n, num_chunks + 1).astype(int)
    return [(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:]) if b > a]


def _sweep_shard(
    tables: ForwardingTables,
    cps: CPS,
    num_endports: int,
    num_ranks: int,
    seed: int,
    num_orders: int,
    switch_links_only: bool,
) -> np.ndarray:
    """Evaluate seeds ``seed .. seed + num_orders - 1`` (worker body)."""
    placements = sweep_placements(num_endports, num_ranks, num_orders, seed=seed)
    rep = batched_sequence_hsd(tables, cps, placements, switch_links_only)
    return rep.avg_max


@dataclass
class SweepStats:
    """Structured supervision counters of one hardened map run.

    What used to be visible only as :class:`ShardFailure` log text:
    every crash, retry, timeout and pool recreation the map survived,
    as a machine-readable record.  ``ParallelSweeper`` publishes one
    per run as :attr:`ParallelSweeper.last_stats`; the certification
    service embeds the same record (per worker-pool supervision window)
    in its ``ServiceMetrics``.
    """

    submitted: int = 0       # distinct work items entering the map
    completed: int = 0       # items that produced a result
    failed: int = 0          # items abandoned (ShardFailure recorded)
    crashes: int = 0         # attempts that raised or died with a worker
    retries: int = 0         # resubmissions after a crash
    timeouts: int = 0        # items that outlived the shard deadline
    pool_restarts: int = 0   # worker pools abandoned and recreated

    def to_json(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "crashes": self.crashes,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_restarts": self.pool_restarts,
        }

    def __str__(self) -> str:
        return (f"submitted={self.submitted} completed={self.completed} "
                f"failed={self.failed} crashes={self.crashes} "
                f"retries={self.retries} timeouts={self.timeouts} "
                f"pool_restarts={self.pool_restarts}")


@dataclass(frozen=True)
class ShardFailure:
    """Diagnostic record of one work item the sweep could not finish.

    ``index`` identifies the item: the ``(start, stop)`` seed span for
    ``order_sweep`` shards, the argument-list position for ``starmap``.
    """

    index: tuple[int, int] | int
    reason: str
    attempts: int


@dataclass
class ParallelSweeper:
    """Fan sweep workloads out over worker processes, with caching.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) evaluates inline through
        the batched fast path -- still much faster than the serial
        reference, with zero multiprocessing overhead.  ``0``/``None``
        means one worker per core.
    cache:
        Optional :class:`ResultCache`; when set, each sweep cell is
        looked up by content digest before any computation and stored
        after it.
    shard_timeout:
        Wall-clock seconds each submission round may take (``None`` =
        wait forever).  Work still outstanding at the deadline is
        recorded as failed and its slots are left as partial results
        (NaN / ``None``) -- a hung worker degrades the sweep instead of
        killing it.  The pool is recreated so later rounds get fresh
        workers.
    shard_retries:
        How many times a shard that *crashed* (raised, or died with the
        pool) is resubmitted before being declared failed.  Timeouts
        are terminal: a shard that outlived the deadline once is not
        retried.
    retry_backoff:
        Base seconds slept before resubmission round ``k``
        (``retry_backoff * 2**(k-1)``).

    After every sweep, :attr:`last_failures` holds the
    :class:`ShardFailure` diagnostics of that run (empty on a clean
    sweep) and :attr:`last_stats` the :class:`SweepStats` supervision
    counters.  Partial results are never written to the cache.
    """

    jobs: int | None = 1
    cache: ResultCache | None = None
    shard_timeout: float | None = None
    shard_retries: int = 2
    retry_backoff: float = 0.1
    last_failures: list[ShardFailure] = field(default_factory=list)
    last_stats: SweepStats = field(default_factory=SweepStats)

    # ------------------------------------------------------------------
    def _hardened_map(self, fn, argslist: list[tuple], jobs: int) -> list:
        """Run ``fn(*args)`` for every args tuple on a worker pool,
        surviving crashes, pool breakage and (optionally) hangs.

        Returns results positionally; failed items are ``None`` and are
        appended to :attr:`last_failures`.
        """
        results: list = [None] * len(argslist)
        attempts = [0] * len(argslist)
        queue = list(range(len(argslist)))
        stats = self.last_stats
        stats.submitted += len(argslist)
        round_no = 0
        pool: ProcessPoolExecutor | None = None
        try:
            while queue:
                if round_no > 0:
                    stats.retries += len(queue)
                    time.sleep(self.retry_backoff * 2 ** (round_no - 1))
                if pool is None:
                    pool = ProcessPoolExecutor(
                        max_workers=min(jobs, len(queue)))
                for i in queue:
                    attempts[i] += 1
                futures = {pool.submit(fn, *argslist[i]): i for i in queue}
                queue = []
                pending = set(futures)
                deadline = (None if self.shard_timeout is None
                            else time.monotonic() + self.shard_timeout)
                recreate = False
                while pending:
                    left = (None if deadline is None
                            else max(0.0, deadline - time.monotonic()))
                    done, pending = wait(pending, timeout=left,
                                         return_when=FIRST_COMPLETED)
                    if not done:
                        # Deadline hit: everything still out is a hang.
                        for fut in pending:
                            fut.cancel()
                            i = futures[fut]
                            stats.timeouts += 1
                            self.last_failures.append(ShardFailure(
                                index=i,
                                reason=(f"timed out after "
                                        f"{self.shard_timeout:.1f}s"),
                                attempts=attempts[i],
                            ))
                        pending = set()
                        recreate = True
                        continue
                    for fut in done:
                        i = futures[fut]
                        try:
                            results[i] = fut.result()
                            stats.completed += 1
                        except Exception as exc:  # noqa: BLE001 - diagnosed
                            stats.crashes += 1
                            if isinstance(exc, BrokenProcessPool):
                                recreate = True
                            if attempts[i] <= self.shard_retries:
                                queue.append(i)
                            else:
                                self.last_failures.append(ShardFailure(
                                    index=i,
                                    reason=f"{type(exc).__name__}: {exc}",
                                    attempts=attempts[i],
                                ))
                if recreate and pool is not None:
                    # Hung/dead workers: abandon the pool rather than
                    # joining it; retries get a fresh one.
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = None
                    stats.pool_restarts += 1
                queue.sort()
                round_no += 1
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            stats.failed = len(self.last_failures)
        return results

    def order_sweep(
        self,
        tables: ForwardingTables,
        cps_factory,
        num_orders: int = 25,
        num_ranks: int | None = None,
        seed: int = 0,
        switch_links_only: bool = False,
    ) -> OrderSweepResult:
        """Drop-in, bit-identical replacement for
        :func:`repro.analysis.random_order_sweep`.

        ``cps_factory`` is either a callable ``(num_ranks) -> CPS`` (the
        serial API) or an already-built :class:`CPS`.
        """
        N = tables.fabric.num_endports
        n = num_ranks if num_ranks is not None else N
        cps: CPS = cps_factory(n) if callable(cps_factory) else cps_factory
        self.last_failures = []
        self.last_stats = SweepStats()

        key = None
        if self.cache is not None:
            key = sweep_digest(
                tables, cps, num_orders=num_orders, seed=seed,
                num_ranks=n, switch_links_only=switch_links_only,
            )
            cached = self.cache.load_array(key)
            if cached is not None:
                return OrderSweepResult(
                    cps_name=cps.name, num_orders=num_orders, avg_max=cached
                )

        vals = self._compute(
            tables, cps, N, n, num_orders, seed, switch_links_only
        )
        # A sweep with failed shards is a partial result (NaN holes):
        # report it, but never let it poison the cache.
        if key is not None and not self.last_failures:
            self.cache.store_array(key, vals, meta={
                "cps": cps.name,
                "num_ranks": n,
                "num_orders": num_orders,
                "seed": seed,
                "switch_links_only": switch_links_only,
                "topology": str(tables.fabric.spec) if tables.fabric.spec else None,
            })
        return OrderSweepResult(
            cps_name=cps.name, num_orders=num_orders, avg_max=vals
        )

    def starmap(self, fn, argslist: list[tuple]) -> list:
        """Order-preserving parallel ``[fn(*args) for args in argslist]``.

        ``fn`` must be a module-level (picklable) callable.  With
        ``jobs=1`` or a single item this runs inline.  Items whose
        worker crashed or timed out come back as ``None`` with a
        :class:`ShardFailure` appended to :attr:`last_failures`.
        """
        self.last_failures = []
        self.last_stats = SweepStats()
        jobs = resolve_jobs(self.jobs)
        if jobs <= 1 or len(argslist) <= 1:
            out = [fn(*args) for args in argslist]
            self.last_stats.submitted = len(argslist)
            self.last_stats.completed = len(argslist)
            return out
        return self._hardened_map(fn, argslist, jobs)

    # ------------------------------------------------------------------
    def _compute(
        self, tables, cps, N, n, num_orders, seed, switch_links_only
    ) -> np.ndarray:
        self.last_failures = []
        jobs = resolve_jobs(self.jobs)
        if jobs <= 1 or num_orders <= 1:
            out = _sweep_shard(
                tables, cps, N, n, seed, num_orders, switch_links_only
            )
            self.last_stats.submitted += 1
            self.last_stats.completed += 1
            return out
        shards = chunk_ranges(num_orders, jobs * _SHARDS_PER_JOB)
        argslist = [
            (tables, cps, N, n, seed + start, stop - start, switch_links_only)
            for start, stop in shards
        ]
        parts = self._hardened_map(_sweep_shard, argslist, jobs)
        # Failure diagnostics speak seed spans, not shard positions.
        self.last_failures = [
            ShardFailure(index=shards[f.index], reason=f.reason,
                         attempts=f.attempts)
            if isinstance(f.index, int) else f
            for f in self.last_failures
        ]
        vals = np.full(num_orders, np.nan, dtype=np.float64)
        for (start, stop), part in zip(shards, parts):
            if part is not None:
                vals[start:stop] = part
        return vals


def parallel_order_sweep(
    tables: ForwardingTables,
    cps_factory,
    num_orders: int = 25,
    num_ranks: int | None = None,
    seed: int = 0,
    switch_links_only: bool = False,
    jobs: int | None = 1,
    cache: ResultCache | None = None,
) -> OrderSweepResult:
    """Functional one-shot wrapper around :class:`ParallelSweeper`."""
    sweeper = ParallelSweeper(jobs=jobs, cache=cache)
    return sweeper.order_sweep(
        tables, cps_factory, num_orders=num_orders, num_ranks=num_ranks,
        seed=seed, switch_links_only=switch_links_only,
    )
