"""The parallel sweep engine.

:class:`ParallelSweeper` runs ``random_order_sweep``-style Monte-Carlo
workloads as sharded batches:

* the ``num_orders`` seed range is split into contiguous shards;
* each shard evaluates its placements through the **batched** HSD fast
  path (:func:`repro.analysis.batched_sequence_hsd`), which walks all
  of a shard's flows through the forwarding tables in one vectorised
  pass per stage;
* shards run either inline (``jobs=1``) or on a
  ``concurrent.futures.ProcessPoolExecutor``; results are merged back
  by seed offset, so the output is **bit-identical** to the serial
  :func:`repro.analysis.random_order_sweep` regardless of ``jobs`` or
  shard boundaries;
* an optional :class:`repro.runtime.ResultCache` short-circuits whole
  sweep cells whose content digest was computed before.

Shard tasks ship the forwarding tables and the CPS (both plain
NumPy-backed dataclasses) to the workers, so no global state or
factory-callable pickling is involved.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field

import numpy as np

from ..analysis.hsd import batched_sequence_hsd
from ..analysis.traffic import OrderSweepResult, sweep_placements
from ..collectives.cps import CPS
from ..fabric.lft import ForwardingTables
from .cache import ResultCache, sweep_digest

__all__ = [
    "ParallelSweeper",
    "chunk_ranges",
    "parallel_order_sweep",
    "resolve_jobs",
]

#: Shards per worker: a little oversubscription keeps the pool busy when
#: shards finish unevenly, without multiplying pickling overhead.
_SHARDS_PER_JOB = 2


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` means all cores."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    return max(1, int(jobs))


def chunk_ranges(n: int, num_chunks: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into at most ``num_chunks`` contiguous,
    near-equal ``(start, stop)`` spans covering it exactly."""
    if n <= 0:
        return []
    num_chunks = max(1, min(num_chunks, n))
    bounds = np.linspace(0, n, num_chunks + 1).astype(int)
    return [(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:]) if b > a]


def _sweep_shard(
    tables: ForwardingTables,
    cps: CPS,
    num_endports: int,
    num_ranks: int,
    seed: int,
    num_orders: int,
    switch_links_only: bool,
) -> np.ndarray:
    """Evaluate seeds ``seed .. seed + num_orders - 1`` (worker body)."""
    placements = sweep_placements(num_endports, num_ranks, num_orders, seed=seed)
    rep = batched_sequence_hsd(tables, cps, placements, switch_links_only)
    return rep.avg_max


@dataclass
class ParallelSweeper:
    """Fan sweep workloads out over worker processes, with caching.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) evaluates inline through
        the batched fast path -- still much faster than the serial
        reference, with zero multiprocessing overhead.  ``0``/``None``
        means one worker per core.
    cache:
        Optional :class:`ResultCache`; when set, each sweep cell is
        looked up by content digest before any computation and stored
        after it.
    """

    jobs: int | None = 1
    cache: ResultCache | None = None

    def order_sweep(
        self,
        tables: ForwardingTables,
        cps_factory,
        num_orders: int = 25,
        num_ranks: int | None = None,
        seed: int = 0,
        switch_links_only: bool = False,
    ) -> OrderSweepResult:
        """Drop-in, bit-identical replacement for
        :func:`repro.analysis.random_order_sweep`.

        ``cps_factory`` is either a callable ``(num_ranks) -> CPS`` (the
        serial API) or an already-built :class:`CPS`.
        """
        N = tables.fabric.num_endports
        n = num_ranks if num_ranks is not None else N
        cps: CPS = cps_factory(n) if callable(cps_factory) else cps_factory

        key = None
        if self.cache is not None:
            key = sweep_digest(
                tables, cps, num_orders=num_orders, seed=seed,
                num_ranks=n, switch_links_only=switch_links_only,
            )
            cached = self.cache.load_array(key)
            if cached is not None:
                return OrderSweepResult(
                    cps_name=cps.name, num_orders=num_orders, avg_max=cached
                )

        vals = self._compute(
            tables, cps, N, n, num_orders, seed, switch_links_only
        )
        if key is not None:
            self.cache.store_array(key, vals, meta={
                "cps": cps.name,
                "num_ranks": n,
                "num_orders": num_orders,
                "seed": seed,
                "switch_links_only": switch_links_only,
                "topology": str(tables.fabric.spec) if tables.fabric.spec else None,
            })
        return OrderSweepResult(
            cps_name=cps.name, num_orders=num_orders, avg_max=vals
        )

    def starmap(self, fn, argslist: list[tuple]) -> list:
        """Order-preserving parallel ``[fn(*args) for args in argslist]``.

        ``fn`` must be a module-level (picklable) callable.  With
        ``jobs=1`` or a single item this runs inline.
        """
        jobs = resolve_jobs(self.jobs)
        if jobs <= 1 or len(argslist) <= 1:
            return [fn(*args) for args in argslist]
        with ProcessPoolExecutor(max_workers=min(jobs, len(argslist))) as ex:
            futures = [ex.submit(fn, *args) for args in argslist]
            return [f.result() for f in futures]

    # ------------------------------------------------------------------
    def _compute(
        self, tables, cps, N, n, num_orders, seed, switch_links_only
    ) -> np.ndarray:
        jobs = resolve_jobs(self.jobs)
        if jobs <= 1 or num_orders <= 1:
            return _sweep_shard(
                tables, cps, N, n, seed, num_orders, switch_links_only
            )
        shards = chunk_ranges(num_orders, jobs * _SHARDS_PER_JOB)
        vals = np.empty(num_orders, dtype=np.float64)
        with ProcessPoolExecutor(max_workers=min(jobs, len(shards))) as ex:
            futures = {
                ex.submit(
                    _sweep_shard, tables, cps, N, n,
                    seed + start, stop - start, switch_links_only,
                ): (start, stop)
                for start, stop in shards
            }
            for fut in as_completed(futures):
                start, stop = futures[fut]
                vals[start:stop] = fut.result()
        return vals


def parallel_order_sweep(
    tables: ForwardingTables,
    cps_factory,
    num_orders: int = 25,
    num_ranks: int | None = None,
    seed: int = 0,
    switch_links_only: bool = False,
    jobs: int | None = 1,
    cache: ResultCache | None = None,
) -> OrderSweepResult:
    """Functional one-shot wrapper around :class:`ParallelSweeper`."""
    sweeper = ParallelSweeper(jobs=jobs, cache=cache)
    return sweeper.order_sweep(
        tables, cps_factory, num_orders=num_orders, num_ranks=num_ranks,
        seed=seed, switch_links_only=switch_links_only,
    )
