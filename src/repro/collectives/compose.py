"""Composite collective schedules.

Real MPI libraries assemble large-message collectives from pieces --
Table 1's "scatter + ring allgather" broadcast or Rabenseifner's
reduce-scatter + allgather allreduce.  A composite is simply the
concatenation of its parts' stages; since every part is built from
constant-displacement permutations, the composite inherits the paper's
congestion-freedom under D-Mod-K + topology order.

The factories mirror the Table 1 entries so the planner example and
benchmarks can evaluate whole algorithms, not just their pieces.
"""

from __future__ import annotations

from .cps import CPS, binomial, recursive_doubling, recursive_halving, ring

__all__ = [
    "concatenate",
    "scatter_allgather_bcast",
    "rabenseifner_allreduce",
    "rabenseifner_reduce",
]


def concatenate(name: str, *parts: CPS) -> CPS:
    """Concatenate CPS parts into one schedule (same rank count)."""
    if not parts:
        raise ValueError("need at least one part")
    n = parts[0].num_ranks
    for part in parts:
        if part.num_ranks != n:
            raise ValueError(
                f"rank count mismatch: {part.name} has {part.num_ranks},"
                f" expected {n}"
            )
    stages = tuple(
        st for part in parts for st in part.stages
    )
    return CPS(name, n, stages)


def scatter_allgather_bcast(n: int) -> CPS:
    """Large-message broadcast (van de Geijn): binomial scatter of the
    chunks, then a ring allgather (Table 1's MVAPICH/OpenMPI choice)."""
    return concatenate(
        "bcast-scatter-allgather",
        binomial(n, "scatter"),
        ring(n, repeats=n - 1),
    )


def rabenseifner_allreduce(n: int) -> CPS:
    """Rabenseifner allreduce: reduce-scatter by recursive halving, then
    allgather by recursive doubling (proxy stages for non-pow2)."""
    return concatenate(
        "allreduce-rabenseifner",
        recursive_halving(n, nonpow2="proxy"),
        recursive_doubling(n, nonpow2="proxy"),
    )


def rabenseifner_reduce(n: int) -> CPS:
    """Rabenseifner reduce: recursive-halving reduce-scatter, then a
    binomial gather to the root."""
    return concatenate(
        "reduce-rabenseifner",
        recursive_halving(n, nonpow2="proxy"),
        binomial(n, "gather"),
    )
