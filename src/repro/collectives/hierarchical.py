"""Topology-aware bidirectional sequences (paper section VI).

Plain recursive doubling pairs ranks ``i <-> i XOR 2**s`` regardless of
where they sit in the tree; stages whose XOR distance straddles switch
levels in the "wrong" place can congest.  Theorem 3 gives the fix: as
long as the traffic ascending through any switch during one stage is a
single fixed-displacement exchange ``n_i <-> n_{i +/- D}``, theorem 1
applies and the stage is congestion-free.

The construction groups the stages by tree level.  With ``M_l`` the
end-ports per level-``l`` sub-tree (``M_0 = 1``) and
``L_l = floor(log2 m_l)``, ``E_l = M_{l-1} * 2**L_l``:

* group ``l`` *bulk* stages ``s = 0..L_l-1`` exchange the ``m_l``
  level-``(l-1)`` blocks of each level-``l`` sub-tree pairwise:
  ``u <-> u XOR 2**s`` on the block index ``u``, i.e. rank displacement
  ``+/- 2**s * M_{l-1}`` -- every stage is one hierarchical distance;
* when ``m_l`` is not a power of two, a *pre* stage folds blocks
  ``u >= 2**L_l`` onto proxies ``u - 2**L_l`` (displacement ``-E_l``)
  and a *post* stage unfolds them (paper eqs. 5-6).

The resulting sequence, placed with the topology-aware node order on
top of D-Mod-K, keeps HSD = 1 on every link (verified in the test
suite and Table 3 experiment), which is the paper's bidirectional-CPS
result.
"""

from __future__ import annotations

import math

import numpy as np

from ..topology.spec import PGFTSpec
from .cps import CPS, Stage, _pairs

__all__ = ["hierarchical_recursive_doubling", "group_stage_plan"]


def group_stage_plan(spec: PGFTSpec) -> list[dict]:
    """Per-level constants of the construction: ``m_l``, ``M_{l-1}``,
    ``L_l``, ``E_l`` and whether pre/post stages are needed."""
    plan = []
    for level in spec.iter_levels():
        m_l = spec.m[level - 1]
        M_lo = spec.M(level - 1)
        L_l = int(math.floor(math.log2(m_l)))
        plan.append(
            {
                "level": level,
                "m": m_l,
                "block": M_lo,
                "L": L_l,
                "E": M_lo * (1 << L_l),
                "needs_proxy": (1 << L_l) != m_l,
            }
        )
    return plan


def hierarchical_recursive_doubling(spec: PGFTSpec) -> CPS:
    """The section-VI congestion-free bidirectional sequence for a full
    PGFT population (``n = spec.num_endports`` ranks in topology order)."""
    n = spec.num_endports
    stages: list[Stage] = []
    for g in group_stage_plan(spec):
        block, m_l, L_l = g["block"], g["m"], g["L"]
        i = np.arange(n, dtype=np.int64)
        u = (i // block) % m_l
        p2 = 1 << L_l

        if g["needs_proxy"]:
            # pre: blocks u >= 2**L fold onto u - 2**L (displacement -E_l).
            src_mask = u >= p2
            src = i[src_mask]
            stages.append(
                Stage(_pairs(src, src - p2 * block),
                      label=f"g{g['level']}-pre")
            )

        for s in range(L_l):
            mask = u < p2
            src = i[mask]
            uu = u[mask]
            partner = src + ((uu ^ (1 << s)) - uu) * block
            stages.append(
                Stage(_pairs(src, partner), label=f"g{g['level']}-s{s}")
            )

        if g["needs_proxy"]:
            dst_mask = u >= p2
            dst = i[dst_mask]
            stages.append(
                Stage(_pairs(dst - p2 * block, dst),
                      label=f"g{g['level']}-post")
            )
    return CPS("hierarchical-rd", n, tuple(stages))
