"""CPS algebra: displacement analysis and the paper's classification.

Section III makes three claims about every CPS used by MVAPICH and
OpenMPI; the functions here *decide* those properties for arbitrary
sequences, so the claims become testable instead of assumed:

* :func:`stage_displacements` / :func:`has_constant_displacement` --
  observation 1 (constant displacement per stage);
* :func:`is_bidirectional_stage` / :func:`classify` -- observation 2
  (every CPS is unidirectional or bidirectional);
* :func:`is_shift_subset` -- observation 3 (Shift is a superset of all
  unidirectional CPS).
"""

from __future__ import annotations

import numpy as np

from .cps import CPS, Stage

__all__ = [
    "stage_displacements",
    "has_constant_displacement",
    "is_bidirectional_stage",
    "is_unidirectional",
    "is_bidirectional",
    "classify",
    "is_shift_subset",
]


def stage_displacements(stage: Stage, n: int) -> np.ndarray:
    """Sorted unique values of ``(dst - src) mod n`` over the stage."""
    if len(stage) == 0:
        return np.empty(0, dtype=np.int64)
    d = (stage.destinations - stage.sources) % n
    return np.unique(d)


def has_constant_displacement(stage: Stage, n: int) -> bool:
    """Observation 1: a stage moves data by one constant distance.

    Bidirectional stages are allowed the pair ``{d, n-d}`` (the same
    distance in both directions); empty stages count as constant.
    """
    disp = stage_displacements(stage, n)
    if len(disp) <= 1:
        return True
    if len(disp) == 2:
        return (disp[0] + disp[1]) % n == 0
    return False


def is_bidirectional_stage(stage: Stage) -> bool:
    """Every (src, dst) pair appears with its reverse in the stage."""
    if len(stage) == 0:
        return True
    fwd = {(int(s), int(d)) for s, d in stage.pairs}
    return all((d, s) in fwd for s, d in fwd)


def is_unidirectional(cps: CPS) -> bool:
    """Every stage moves data by a *single* displacement value.

    This is the paper's "displacement is always positive" notion: one
    direction per stage.  Note the half-way Shift stage (``s == n/2``)
    is self-inverse -- its pairs are mutually reversed -- yet it is
    still unidirectional because only one displacement occurs.
    """
    n = cps.num_ranks
    return all(len(stage_displacements(st, n)) <= 1 for st in cps)


def is_bidirectional(cps: CPS) -> bool:
    return all(is_bidirectional_stage(st) for st in cps)


def classify(cps: CPS) -> str:
    """``"unidirectional"``, ``"bidirectional"`` or ``"mixed"``."""
    if is_bidirectional(cps):
        return "bidirectional"
    if is_unidirectional(cps):
        return "unidirectional"
    return "mixed"


def is_shift_subset(cps: CPS) -> bool:
    """Observation 3: every stage's pairs are contained in the Shift
    stage of the same displacement (for the same rank count).

    The Shift stage with displacement ``s`` contains *all* pairs
    ``(i, (i+s) mod n)``, so a stage is contained iff it has constant
    displacement and is unidirectional; this function checks containment
    directly from the definition instead of trusting that shortcut.
    """
    n = cps.num_ranks
    for st in cps:
        if len(st) == 0:
            continue
        disp = stage_displacements(st, n)
        if len(disp) != 1:
            return False
        s = int(disp[0])
        expect = (st.sources + s) % n
        if not np.array_equal(expect, st.destinations % n):
            return False
    return True
