"""Non-power-of-two rank counts: proxy pre/post stages (section VI).

MPI implementations run the XOR-based bidirectional sequences on the
largest power of two ``2**L <= n`` and let the first ``r = n - 2**L``
ranks act as *proxies* for the remainder:

* **pre**  stage (paper eq. 3): ``n_i <- n_{i + 2**L}`` for
  ``0 <= i < n - 2**L`` -- remainder ranks fold their data down;
* core XOR stages over ranks ``0 .. 2**L - 1``;
* **post** stage (paper eq. 4): ``n_i -> n_{i + 2**L}`` -- proxies
  unfold the result back.

Both extra stages are themselves constant-displacement permutations
(displacement ``±2**L``), so theorem 1 keeps them congestion-free under
D-Mod-K with topology-ordered ranks.
"""

from __future__ import annotations

import math

import numpy as np

from .cps import CPS, Stage, _pairs, _xor_stage

__all__ = ["pre_stage", "post_stage", "with_proxy_stages", "pow2_floor"]


def pow2_floor(n: int) -> int:
    """Largest power of two ``<= n``."""
    if n < 1:
        raise ValueError("n must be positive")
    return 1 << (n.bit_length() - 1)


def pre_stage(n: int) -> Stage | None:
    """Fold stage ``n_{i+2**L} -> n_i``; ``None`` when ``n`` is a power
    of two (no remainder)."""
    p = pow2_floor(n)
    if p == n:
        return None
    i = np.arange(n - p, dtype=np.int64)
    return Stage(_pairs(i + p, i), label=f"pre(-{p})")


def post_stage(n: int) -> Stage | None:
    """Unfold stage ``n_i -> n_{i+2**L}``; ``None`` for powers of two."""
    p = pow2_floor(n)
    if p == n:
        return None
    i = np.arange(n - p, dtype=np.int64)
    return Stage(_pairs(i, i + p), label=f"post(+{p})")


def with_proxy_stages(n: int, reverse: bool = False) -> CPS:
    """Recursive doubling (or halving, ``reverse=True``) over ``n`` ranks
    with proxy pre/post stages; the core runs on ``2**L`` ranks."""
    p = pow2_floor(n)
    core_order = range(int(math.log2(p)))
    if reverse:
        core_order = reversed(core_order)
    stages: list[Stage] = []
    pre = pre_stage(n)
    if pre is not None:
        stages.append(pre)
    stages.extend(_xor_stage(p, 1 << s, label=f"s={s}") for s in core_order)
    post = post_stage(n)
    if post is not None:
        stages.append(post)
    name = "recursive-halving" if reverse else "recursive-doubling"
    return CPS(f"{name}-proxy", n, tuple(stages))
