"""Table 1: which CPS each MPI collective algorithm uses.

The paper surveys MVAPICH and OpenMPI and finds 18 collective
algorithms built from only 8 distinct permutation sequences.  The
original table is reproduced here as data (best-effort reconstruction
from the paper text plus the surveyed implementations' documented
algorithm choices; see EXPERIMENTS.md).  Markings follow the paper:
``m``/``M`` = MVAPICH small/large messages, ``o``/``O`` = OpenMPI
small/large messages, and ``pow2_only`` marks usage restricted to
power-of-two rank counts (the paper's '2' suffix).

The module is consumed by the Table 1 experiment, which regenerates the
matrix and cross-checks that every referenced CPS exists in
:mod:`repro.collectives.cps` and that exactly 8 distinct sequences are
used.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AlgorithmUsage", "TABLE1", "distinct_cps", "collectives_covered",
           "render_matrix"]


@dataclass(frozen=True)
class AlgorithmUsage:
    """One algorithm cell of Table 1."""

    collective: str          # MPI collective (AllGather, Barrier, ...)
    algorithm: str           # implementation algorithm name
    library: str             # "mvapich" | "openmpi"
    msg_size: str            # "small" | "large" | "any"
    cps: tuple[str, ...]     # CPS names (repro.collectives.cps.CPS_NAMES keys)
    pow2_only: bool = False

    @property
    def mark(self) -> str:
        """The paper's cell marking (m/M/o/O with optional '2')."""
        base = {"mvapich": "m", "openmpi": "o"}[self.library]
        if self.msg_size == "large":
            base = base.upper()
        return base + ("2" if self.pow2_only else "")


TABLE1: tuple[AlgorithmUsage, ...] = (
    # --- AllGather -------------------------------------------------------
    AlgorithmUsage("AllGather", "recursive doubling", "mvapich", "small",
                   ("recursive-doubling",), pow2_only=True),
    AlgorithmUsage("AllGather", "recursive doubling", "openmpi", "small",
                   ("recursive-doubling",), pow2_only=True),
    AlgorithmUsage("AllGather", "ring", "mvapich", "large", ("ring",)),
    AlgorithmUsage("AllGather", "ring", "openmpi", "large", ("ring",)),
    AlgorithmUsage("AllGather", "bruck", "openmpi", "small",
                   ("dissemination",)),
    # --- AllReduce -------------------------------------------------------
    AlgorithmUsage("AllReduce", "recursive doubling", "mvapich", "small",
                   ("recursive-doubling",)),
    AlgorithmUsage("AllReduce", "recursive doubling", "openmpi", "small",
                   ("recursive-doubling",)),
    AlgorithmUsage("AllReduce", "rabenseifner", "mvapich", "large",
                   ("recursive-halving", "recursive-doubling")),
    AlgorithmUsage("AllReduce", "rabenseifner", "openmpi", "large",
                   ("recursive-halving", "recursive-doubling")),
    # --- AlltoAll --------------------------------------------------------
    AlgorithmUsage("AlltoAll", "bruck / rotate", "mvapich", "small",
                   ("shift",)),
    AlgorithmUsage("AlltoAll", "pairwise exchange", "mvapich", "large",
                   ("pairwise-exchange",), pow2_only=True),
    AlgorithmUsage("AlltoAll", "pairwise exchange", "openmpi", "large",
                   ("pairwise-exchange",), pow2_only=True),
    AlgorithmUsage("AlltoAll", "shift (linear rotate)", "openmpi", "large",
                   ("shift",)),
    # --- Barrier ---------------------------------------------------------
    AlgorithmUsage("Barrier", "dissemination", "mvapich", "any",
                   ("dissemination",)),
    AlgorithmUsage("Barrier", "bruck / dissemination", "openmpi", "any",
                   ("dissemination",)),
    AlgorithmUsage("Barrier", "recursive doubling", "openmpi", "any",
                   ("recursive-doubling",), pow2_only=True),
    # --- Broadcast -------------------------------------------------------
    AlgorithmUsage("Broadcast", "binomial tree", "mvapich", "small",
                   ("binomial",)),
    AlgorithmUsage("Broadcast", "binomial tree", "openmpi", "small",
                   ("binomial",)),
    AlgorithmUsage("Broadcast", "scatter + ring allgather", "mvapich",
                   "large", ("binomial", "ring")),
    AlgorithmUsage("Broadcast", "scatter + ring allgather", "openmpi",
                   "large", ("binomial", "ring")),
    # --- Gather / Scatter --------------------------------------------------
    AlgorithmUsage("Gather", "binomial tree", "mvapich", "any",
                   ("tournament",)),
    AlgorithmUsage("Gather", "binomial tree", "openmpi", "any",
                   ("tournament",)),
    AlgorithmUsage("Scatter", "binomial tree", "mvapich", "any",
                   ("binomial",)),
    AlgorithmUsage("Scatter", "binomial tree", "openmpi", "any",
                   ("binomial",)),
    # --- Reduce ------------------------------------------------------------
    AlgorithmUsage("Reduce", "binomial tree", "mvapich", "small",
                   ("tournament",)),
    AlgorithmUsage("Reduce", "binomial tree", "openmpi", "small",
                   ("tournament",)),
    AlgorithmUsage("Reduce", "rabenseifner", "mvapich", "large",
                   ("recursive-halving", "tournament")),
    AlgorithmUsage("Reduce", "rabenseifner", "openmpi", "large",
                   ("recursive-halving", "tournament")),
    # --- ReduceScatter ------------------------------------------------------
    AlgorithmUsage("ReduceScatter", "recursive halving", "mvapich", "small",
                   ("recursive-halving",), pow2_only=True),
    AlgorithmUsage("ReduceScatter", "recursive halving", "openmpi", "small",
                   ("recursive-halving",), pow2_only=True),
    AlgorithmUsage("ReduceScatter", "pairwise exchange", "mvapich", "large",
                   ("pairwise-exchange",)),
    AlgorithmUsage("ReduceScatter", "pairwise exchange", "openmpi", "large",
                   ("pairwise-exchange",)),
)


def distinct_cps() -> set[str]:
    """All CPS names referenced anywhere in the table."""
    return {name for row in TABLE1 for name in row.cps}


def collectives_covered() -> set[str]:
    return {row.collective for row in TABLE1}


def render_matrix() -> str:
    """The Table 1 view: rows = CPS, columns = (collective, algorithm),
    cells = concatenated library marks."""
    cols = sorted({(r.collective, r.algorithm) for r in TABLE1})
    rows = sorted(distinct_cps())
    grid = {(cps, col): "" for cps in rows for col in cols}
    for r in TABLE1:
        for cps in r.cps:
            key = (cps, (r.collective, r.algorithm))
            grid[key] += r.mark
    width = max(len(c) for c in rows) + 2
    head = " " * width + " | ".join(f"{c}/{a}" for c, a in cols)
    lines = [head, "-" * len(head)]
    for cps in rows:
        cells = []
        for col in cols:
            label = f"{col[0]}/{col[1]}"
            cells.append(grid[(cps, col)].ljust(len(label)))
        lines.append(cps.ljust(width) + " | ".join(cells))
    return "\n".join(lines)
