"""Collective Permutation Sequences (CPS) -- paper section III, Table 2.

A CPS is the *communication-pattern half* of an MPI collective
algorithm: for each stage, the set of (source-rank, destination-rank)
pairs that exchange a message, with the payload abstracted away.  The
paper's key observations, all enforced/verified here and in the test
suite:

1. every stage has **constant displacement**: ``(dst - src) mod N`` is
   the same for all pairs of the stage (bidirectional stages have the
   two opposite displacements);
2. every CPS is either **unidirectional** (displacement always
   "positive", i.e. one direction per stage) or **bidirectional**
   (each pair appears with its reverse in the same stage);
3. the **Shift** CPS -- one stage per displacement ``1..N-1`` -- is a
   superset of every unidirectional CPS.

Stages hold directed sends as an ``(k, 2)`` int64 array of
``(src, dst)`` rank pairs.  All ranks are *logical* (0-based MPI ranks);
mapping ranks onto physical end-ports is the job of
:mod:`repro.ordering` and :mod:`repro.collectives.schedule`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Stage",
    "CPS",
    "shift",
    "ring",
    "binomial",
    "tournament",
    "dissemination",
    "recursive_doubling",
    "recursive_halving",
    "pairwise_exchange",
    "by_name",
    "CPS_NAMES",
]


def _pairs(src, dst) -> np.ndarray:
    src = np.asarray(src, dtype=np.int64).ravel()
    dst = np.asarray(dst, dtype=np.int64).ravel()
    return np.stack([src, dst], axis=1)


@dataclass(frozen=True)
class Stage:
    """One communication stage: directed (src, dst) rank pairs."""

    pairs: np.ndarray
    label: str = ""

    def __post_init__(self) -> None:
        p = np.asarray(self.pairs, dtype=np.int64)
        if p.ndim != 2 or p.shape[1] != 2:
            raise ValueError(f"pairs must be (k, 2), got {p.shape}")
        object.__setattr__(self, "pairs", p)

    @property
    def sources(self) -> np.ndarray:
        return self.pairs[:, 0]

    @property
    def destinations(self) -> np.ndarray:
        return self.pairs[:, 1]

    def __len__(self) -> int:
        return len(self.pairs)

    def is_permutation(self) -> bool:
        """Each rank sends at most once and receives at most once."""
        s, d = self.pairs[:, 0], self.pairs[:, 1]
        return len(np.unique(s)) == len(s) and len(np.unique(d)) == len(d)

    def constant_displacement(self, num_ranks: int) -> int | None:
        """The stage's single displacement ``(dst - src) mod num_ranks``,
        or ``None`` when the stage is empty or mixes displacements.

        Paper observation 1: global-collective stages are constant-
        displacement permutations; the symbolic certifier exploits the
        structure (all of a stage's flows share one residue family) and
        this is the extraction hook for it.
        """
        if len(self.pairs) == 0:
            return None
        d = np.unique((self.pairs[:, 1] - self.pairs[:, 0]) % num_ranks)
        return int(d[0]) if len(d) == 1 else None

    def reversed(self) -> "Stage":
        return Stage(self.pairs[:, ::-1].copy(), label=self.label + "^R")


@dataclass(frozen=True)
class CPS:
    """A named sequence of stages over ``num_ranks`` logical ranks."""

    name: str
    num_ranks: int
    stages: tuple[Stage, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.stages)

    def __iter__(self):
        return iter(self.stages)

    def all_pairs(self) -> np.ndarray:
        """Concatenation of every stage's pairs (with repetition)."""
        if not self.stages:
            return np.empty((0, 2), dtype=np.int64)
        return np.concatenate([st.pairs for st in self.stages], axis=0)

    def total_messages(self) -> int:
        return sum(len(st) for st in self.stages)

    def __repr__(self) -> str:
        return f"CPS({self.name!r}, N={self.num_ranks}, stages={len(self.stages)})"


def _log2_stages(n: int) -> int:
    """Number of power-of-two stages needed to span ``n`` ranks."""
    return max(1, math.ceil(math.log2(n))) if n > 1 else 0


# ---------------------------------------------------------------------------
# Unidirectional CPS
# ---------------------------------------------------------------------------

def shift(n: int, displacements: range | None = None) -> CPS:
    """Shift CPS: stage ``s`` sends ``i -> (i+s) mod n`` for every rank,
    ``s = 1..n-1`` (Table 2).  The superset of all unidirectional CPS."""
    _check_n(n)
    i = np.arange(n, dtype=np.int64)
    disp = displacements if displacements is not None else range(1, n)
    stages = tuple(
        Stage(_pairs(i, (i + s) % n), label=f"s={s}") for s in disp
    )
    return CPS("shift", n, stages)


def ring(n: int, repeats: int = 1) -> CPS:
    """Ring CPS: every stage sends ``i -> (i+1) mod n``.

    ``repeats`` replays the same permutation (a ring all-gather performs
    it ``n-1`` times).
    """
    _check_n(n)
    i = np.arange(n, dtype=np.int64)
    st = Stage(_pairs(i, (i + 1) % n), label="+1")
    return CPS("ring", n, (st,) * repeats)


def binomial(n: int, direction: str = "scatter") -> CPS:
    """Binomial-tree CPS: stage ``s`` sends ``i -> i + 2**s`` for
    ``0 <= i < 2**s`` with ``i + 2**s < n`` (Table 2).

    ``direction="scatter"`` (root fans out, e.g. broadcast) or
    ``"gather"`` (arrows reversed, e.g. reduce/gather).
    """
    _check_n(n)
    if direction not in ("scatter", "gather"):
        raise ValueError(f"direction must be scatter|gather, got {direction!r}")
    stages = []
    for s in range(_log2_stages(n)):
        i = np.arange(min(1 << s, n), dtype=np.int64)
        i = i[i + (1 << s) < n]
        st = Stage(_pairs(i, i + (1 << s)), label=f"s={s}")
        stages.append(st.reversed() if direction == "gather" else st)
    if direction == "gather":
        stages.reverse()
    return CPS(f"binomial-{direction}", n, tuple(stages))


def tournament(n: int) -> CPS:
    """Tournament CPS: stage ``s`` sends ``i + 2**s -> i`` for ranks with
    ``i mod 2**(s+1) == 0`` (Table 2) -- the pairwise elimination
    bracket used by gather/reduce trees."""
    _check_n(n)
    stages = []
    for s in range(_log2_stages(n)):
        i = np.arange(0, n, 1 << (s + 1), dtype=np.int64)
        i = i[i + (1 << s) < n]
        stages.append(Stage(_pairs(i + (1 << s), i), label=f"s={s}"))
    return CPS("tournament", n, tuple(stages))


def dissemination(n: int) -> CPS:
    """Dissemination CPS: stage ``s`` sends ``i -> (i + 2**s) mod n`` for
    every rank (Table 2) -- the barrier/allgather (Bruck) pattern."""
    _check_n(n)
    i = np.arange(n, dtype=np.int64)
    stages = tuple(
        Stage(_pairs(i, (i + (1 << s)) % n), label=f"s={s}")
        for s in range(_log2_stages(n))
    )
    return CPS("dissemination", n, stages)


# ---------------------------------------------------------------------------
# Bidirectional CPS
# ---------------------------------------------------------------------------

def _xor_stage(n: int, mask: int, label: str) -> Stage:
    i = np.arange(n, dtype=np.int64)
    j = i ^ mask
    keep = j < n
    return Stage(_pairs(i[keep], j[keep]), label=label)


def recursive_doubling(n: int, nonpow2: str = "mask") -> CPS:
    """Recursive-Doubling CPS: stage ``s`` exchanges ``i <-> i XOR 2**s``
    (Table 2).  Bidirectional: both directions appear in each stage.

    Non-power-of-two handling (section VI):

    * ``"mask"``  -- Table 2 as written: pairs with a partner ``>= n``
      are simply dropped;
    * ``"proxy"`` -- the MPI practice: a *pre* stage folds ranks above
      the largest power of two onto proxies, the XOR stages run on the
      power-of-two core, and a *post* stage unfolds the result (the
      paper's eqs. 3-4; built in :mod:`repro.collectives.nonpow2`).
    """
    _check_n(n)
    if nonpow2 == "proxy":
        from .nonpow2 import with_proxy_stages

        return with_proxy_stages(n, reverse=False)
    if nonpow2 != "mask":
        raise ValueError(f"nonpow2 must be mask|proxy, got {nonpow2!r}")
    stages = tuple(
        _xor_stage(n, 1 << s, label=f"s={s}") for s in range(_log2_stages(n))
    )
    return CPS("recursive-doubling", n, stages)


def recursive_halving(n: int, nonpow2: str = "mask") -> CPS:
    """Recursive-Halving CPS: the same exchanges as recursive doubling
    played in reverse stage order (reduce-scatter's pattern)."""
    _check_n(n)
    if nonpow2 == "proxy":
        from .nonpow2 import with_proxy_stages

        return with_proxy_stages(n, reverse=True)
    if nonpow2 != "mask":
        raise ValueError(f"nonpow2 must be mask|proxy, got {nonpow2!r}")
    stages = tuple(
        _xor_stage(n, 1 << s, label=f"s={s}")
        for s in reversed(range(_log2_stages(n)))
    )
    return CPS("recursive-halving", n, stages)


def pairwise_exchange(n: int, variant: str = "displacement") -> CPS:
    """Pairwise-Exchange CPS (large-message all-to-all).

    ``variant="displacement"`` (default): stage ``s = 1..n-1`` sends to
    ``(i+s) mod n`` while receiving from ``(i-s) mod n`` -- as a
    directed pattern this coincides with the Shift CPS stages, which is
    why the paper can fold it into the constant-displacement framework.

    ``variant="xor"``: the MVAPICH power-of-two implementation pairing
    ``i <-> i XOR s``.  Note that for masks that are *not* powers of two
    this violates the paper's constant-displacement observation -- kept
    here as the real-world reference and exercised by the ablation
    benchmarks.
    """
    _check_n(n)
    if variant == "xor":
        if n & (n - 1):
            raise ValueError("xor pairwise exchange needs a power-of-two n")
        stages = tuple(_xor_stage(n, s, label=f"s={s}") for s in range(1, n))
        return CPS("pairwise-exchange-xor", n, stages)
    if variant != "displacement":
        raise ValueError(f"variant must be displacement|xor, got {variant!r}")
    return CPS("pairwise-exchange", n, shift(n).stages)


CPS_NAMES = {
    "shift": shift,
    "ring": ring,
    "binomial": binomial,
    "tournament": tournament,
    "dissemination": dissemination,
    "recursive-doubling": recursive_doubling,
    "recursive-halving": recursive_halving,
    "pairwise-exchange": pairwise_exchange,
}


def by_name(name: str, n: int, **kwargs) -> CPS:
    """Instantiate a CPS by table-2 name."""
    try:
        factory = CPS_NAMES[name]
    except KeyError:
        raise ValueError(
            f"unknown CPS {name!r}; known: {sorted(CPS_NAMES)}"
        ) from None
    return factory(n, **kwargs)


def _check_n(n: int) -> None:
    if n < 2:
        raise ValueError(f"a CPS needs at least 2 ranks, got {n}")
