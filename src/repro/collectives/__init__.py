"""MPI collective communication patterns as permutation sequences.

The decomposition of section III: a collective algorithm = a
*Collective Permutation Sequence* (who talks to whom, per stage) plus
message content (ignored here).  This package provides the 8 CPS of
Table 2, the classification algebra behind the paper's observations,
the Table 1 usage survey, non-power-of-two proxy stages, the
topology-aware hierarchical recursive doubling of section VI, and the
rank-to-end-port scheduling glue.
"""

from .compose import (
    concatenate,
    rabenseifner_allreduce,
    rabenseifner_reduce,
    scatter_allgather_bcast,
)
from .semantics import (
    run_dataflow,
    verify_allgather,
    verify_allreduce,
    verify_broadcast,
    verify_gather,
    verify_reduce,
)
from .classify import (
    classify,
    has_constant_displacement,
    is_bidirectional,
    is_bidirectional_stage,
    is_shift_subset,
    is_unidirectional,
    stage_displacements,
)
from .cps import (
    CPS,
    CPS_NAMES,
    Stage,
    binomial,
    by_name,
    dissemination,
    pairwise_exchange,
    recursive_doubling,
    recursive_halving,
    ring,
    shift,
    tournament,
)
from .hierarchical import group_stage_plan, hierarchical_recursive_doubling
from .nonpow2 import post_stage, pow2_floor, pre_stage, with_proxy_stages
from .schedule import port_sequences, stage_flows, validate_placement
from .usage import (
    TABLE1,
    AlgorithmUsage,
    collectives_covered,
    distinct_cps,
    render_matrix,
)

__all__ = [
    "CPS",
    "CPS_NAMES",
    "Stage",
    "TABLE1",
    "AlgorithmUsage",
    "binomial",
    "by_name",
    "classify",
    "collectives_covered",
    "concatenate",
    "dissemination",
    "distinct_cps",
    "group_stage_plan",
    "has_constant_displacement",
    "hierarchical_recursive_doubling",
    "is_bidirectional",
    "is_bidirectional_stage",
    "is_shift_subset",
    "is_unidirectional",
    "pairwise_exchange",
    "port_sequences",
    "post_stage",
    "pow2_floor",
    "pre_stage",
    "rabenseifner_allreduce",
    "rabenseifner_reduce",
    "recursive_doubling",
    "recursive_halving",
    "render_matrix",
    "ring",
    "run_dataflow",
    "scatter_allgather_bcast",
    "shift",
    "stage_displacements",
    "stage_flows",
    "tournament",
    "validate_placement",
    "verify_allgather",
    "verify_allreduce",
    "verify_broadcast",
    "verify_gather",
    "verify_reduce",
    "with_proxy_stages",
]
