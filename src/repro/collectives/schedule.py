"""Turning logical CPS into physical end-port traffic.

A CPS talks about MPI *ranks*; the network sees *end-ports*.  The glue
is a placement vector ``rank_to_port`` (from :mod:`repro.ordering`):
``rank_to_port[r]`` is the end-port index hosting rank ``r``.  Jobs may
occupy a subset of the fabric (partially populated trees, the paper's
"Cont.-X" cases); ranks beyond the job size simply do not exist.

Two consumers:

* the HSD engine takes :func:`stage_flows` -- per stage ``(src_port,
  dst_port)`` arrays;
* the fluid/packet simulators take :func:`port_sequences` -- per
  end-port ordered destination lists, which is exactly how the paper's
  OMNeT++ model drives traffic ("end-ports progress through their
  destinations sequence independently").
"""

from __future__ import annotations

import numpy as np

from .cps import CPS, Stage

__all__ = ["stage_flows", "stage_flows_batch", "stage_flow_keys",
           "port_sequences", "validate_placement"]


def validate_placement(rank_to_port: np.ndarray, num_endports: int,
                       num_ranks: int | None = None) -> np.ndarray:
    """Sanity-check a placement vector and return it as int64."""
    r2p = np.asarray(rank_to_port, dtype=np.int64)
    if r2p.ndim != 1:
        raise ValueError("rank_to_port must be 1-D")
    if num_ranks is not None and len(r2p) != num_ranks:
        raise ValueError(f"placement has {len(r2p)} ranks, expected {num_ranks}")
    if len(np.unique(r2p)) != len(r2p):
        raise ValueError("placement maps two ranks to the same end-port")
    if r2p.min(initial=0) < 0 or (len(r2p) and r2p.max() >= num_endports):
        raise ValueError("placement references end-ports outside the fabric")
    return r2p


def stage_flows(stage: Stage, rank_to_port: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Physical ``(src_ports, dst_ports)`` of one stage under a placement.

    Pairs whose ranks exceed the placement length, or whose slot is
    ``-1`` (physical placements of partially-populated jobs), are
    dropped -- this is how partial runs skip non-existent partners.
    """
    r2p = np.asarray(rank_to_port, dtype=np.int64)
    n = len(r2p)
    pairs = stage.pairs
    keep = (pairs[:, 0] < n) & (pairs[:, 1] < n)
    src = r2p[pairs[keep, 0]]
    dst = r2p[pairs[keep, 1]]
    # Slots marked -1 (physical placements of partial jobs) do not exist.
    drop = (src == dst) | (src < 0) | (dst < 0)
    return src[~drop], dst[~drop]


def stage_flow_keys(src: np.ndarray, dst: np.ndarray,
                    num_endports: int) -> np.ndarray:
    """Pack physical flows into single int64 keys ``src * N + dst``.

    The keys identify a stage's flow *multiset* independently of order,
    which is what incremental re-certification diffs when a placement
    changes (see :class:`repro.check.SymbolicCertifier`).
    """
    return (np.asarray(src, dtype=np.int64) * num_endports
            + np.asarray(dst, dtype=np.int64))


def stage_flows_batch(
    stage: Stage, placements: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """:func:`stage_flows` over a whole ``(num_orders, L)`` placement matrix.

    Returns flattened ``(src_ports, dst_ports, order_idx)`` arrays: the
    flows of every placement row concatenated, with ``order_idx[i]``
    naming the row flow ``i`` came from.  Row ``t``'s flows equal
    ``stage_flows(stage, placements[t])`` exactly (same drop rules, same
    within-row order), which is what lets the batched HSD path reproduce
    the serial results bit for bit.
    """
    placements = np.asarray(placements, dtype=np.int64)
    if placements.ndim != 2:
        raise ValueError("placements must be (num_orders, L)")
    num_orders, L = placements.shape
    pairs = stage.pairs
    keep = (pairs[:, 0] < L) & (pairs[:, 1] < L)
    p = pairs[keep]
    src = placements[:, p[:, 0]]
    dst = placements[:, p[:, 1]]
    order = np.broadcast_to(
        np.arange(num_orders, dtype=np.int64)[:, None], src.shape
    )
    ok = ~((src == dst) | (src < 0) | (dst < 0))
    return src[ok], dst[ok], order[ok]


def port_sequences(cps: CPS, rank_to_port: np.ndarray,
                   num_endports: int) -> list[list[int]]:
    """Per-end-port destination sequences for the whole CPS.

    ``result[p]`` lists, in stage order, the destination end-port of
    every message end-port ``p`` sends.  Ports that do not participate
    in a stage simply have no entry for it (asynchronous progression --
    the simulator lets each port move to its next message when the
    previous one finished).
    """
    seqs: list[list[int]] = [[] for _ in range(num_endports)]
    for st in cps:
        src, dst = stage_flows(st, rank_to_port)
        for s, d in zip(src.tolist(), dst.tolist()):
            seqs[s].append(d)
    return seqs
