"""Data-flow semantics of collective algorithms.

The paper decomposes a collective into its permutation sequence (CPS)
plus *message content*.  This module supplies the content half: it
executes a CPS stage by stage over abstract data sets and checks that
the algorithm actually computes its collective.  That turns "binomial
is a broadcast" from a naming convention into a verified property --
and catches sequencing bugs (e.g. a mis-ordered proxy stage) that the
purely structural HSD analysis cannot see.

The model: every rank owns a set of *chunk ids*.  Sending transfers
(a copy of) the sender's current set; reductions are modelled by set
union, which is exact for verifying coverage/completeness properties
(who ends up holding which contributions).

Verification helpers return ``(ok, message)`` so tests and tools can
report precisely what is missing.
"""

from __future__ import annotations

import numpy as np

from .cps import CPS

__all__ = [
    "run_dataflow",
    "verify_broadcast",
    "verify_allgather",
    "verify_gather",
    "verify_reduce",
    "verify_allreduce",
]


def run_dataflow(cps: CPS, initial: list[set[int]] | None = None,
                 num_ranks: int | None = None) -> list[set[int]]:
    """Execute the CPS over chunk sets.

    ``initial[r]`` is rank ``r``'s starting set; by default every rank
    starts with its own chunk ``{r}``.  Within a stage all sends read
    the *pre-stage* state (MPI exchanges are concurrent), then all
    receives merge.
    """
    n = num_ranks if num_ranks is not None else cps.num_ranks
    state: list[set[int]] = (
        [set(s) for s in initial] if initial is not None
        else [{r} for r in range(n)]
    )
    if len(state) != n:
        raise ValueError(f"initial state has {len(state)} ranks, expected {n}")
    for stage in cps:
        snapshot = [frozenset(s) for s in state]
        for src, dst in stage.pairs:
            if not (0 <= src < n and 0 <= dst < n):
                raise ValueError(
                    f"stage {stage.label!r} references rank outside 0..{n-1}"
                )
            state[int(dst)] |= snapshot[int(src)]
    return state


def verify_broadcast(cps: CPS, root: int = 0) -> tuple[bool, str]:
    """Every rank ends up holding the root's chunk."""
    n = cps.num_ranks
    final = run_dataflow(cps, initial=[{root} if r == root else set()
                                       for r in range(n)])
    missing = [r for r in range(n) if root not in final[r]]
    if missing:
        return False, f"ranks missing the root chunk: {missing[:10]}"
    return True, "broadcast complete"


def verify_allgather(cps: CPS) -> tuple[bool, str]:
    """Every rank ends up holding every rank's chunk."""
    n = cps.num_ranks
    final = run_dataflow(cps)
    want = set(range(n))
    for r, have in enumerate(final):
        if have != want:
            missing = sorted(want - have)[:10]
            return False, (
                f"rank {r} holds {len(have)}/{n} chunks; missing {missing}"
            )
    return True, "allgather complete"


def verify_gather(cps: CPS, root: int = 0) -> tuple[bool, str]:
    """The root ends up holding every rank's chunk."""
    n = cps.num_ranks
    final = run_dataflow(cps)
    missing = sorted(set(range(n)) - final[root])
    if missing:
        return False, f"root {root} missing chunks {missing[:10]}"
    return True, "gather complete"


def verify_reduce(cps: CPS, root: int = 0) -> tuple[bool, str]:
    """Reduction coverage: the root's final set contains every
    contribution exactly (set-union models a commutative reduction)."""
    return verify_gather(cps, root)


def verify_allreduce(cps: CPS) -> tuple[bool, str]:
    """Every rank holds every contribution (allreduce coverage)."""
    return verify_allgather(cps)
