"""Workload builders: CPS + placement + message size -> port sequences.

Bridges the collectives layer to the simulators: the paper's experiments
translate a collective's algorithm "into sequences of destinations
specific for each end-port" (section II); this module performs that
translation, with uniform or per-stage message sizes.
"""

from __future__ import annotations

import numpy as np

from ..collectives.cps import CPS
from ..collectives.schedule import stage_flows

__all__ = [
    "cps_workload",
    "merge_sequences",
    "permutation_workload",
    "shard_workload",
    "uniform_random_workload",
]


def cps_workload(
    cps: CPS,
    rank_to_port: np.ndarray,
    num_endports: int,
    message_size: float | list[float],
) -> list[list[tuple[int, float]]]:
    """Per-port ``(dst, size)`` sequences for a CPS under a placement.

    ``message_size`` is either one size for every stage or a per-stage
    list (e.g. recursive halving sends shrinking messages).
    """
    if isinstance(message_size, (int, float)):
        sizes = [float(message_size)] * len(cps)
    else:
        sizes = [float(s) for s in message_size]
        if len(sizes) != len(cps):
            raise ValueError(
                f"{len(sizes)} sizes for {len(cps)} stages"
            )
    seqs: list[list[tuple[int, float]]] = [[] for _ in range(num_endports)]
    for st, size in zip(cps, sizes):
        src, dst = stage_flows(st, rank_to_port)
        for s, d in zip(src.tolist(), dst.tolist()):
            seqs[s].append((d, size))
    return seqs


def permutation_workload(
    src: np.ndarray,
    dst: np.ndarray,
    num_endports: int,
    message_size: float,
    repeats: int = 1,
) -> list[list[tuple[int, float]]]:
    """A fixed permutation replayed ``repeats`` times (e.g. the ring
    adversary of section II)."""
    seqs: list[list[tuple[int, float]]] = [[] for _ in range(num_endports)]
    for s, d in zip(np.asarray(src).tolist(), np.asarray(dst).tolist()):
        if s == d:
            continue
        seqs[s].extend([(d, float(message_size))] * repeats)
    return seqs


def merge_sequences(*workloads: list[list]) -> list[list]:
    """Combine several per-port workloads into one.

    Each port's sequences are concatenated in argument order -- the
    multi-tenant case (every job keeps its own intra-port message order,
    jobs interleave only through the simulator's asynchronous
    progression) and the inverse of :func:`shard_workload`.
    """
    if not workloads:
        return []
    num_ports = len(workloads[0])
    for wl in workloads[1:]:
        if len(wl) != num_ports:
            raise ValueError(
                f"workloads cover different fabrics: {len(wl)} vs {num_ports} ports"
            )
    return [
        [msg for wl in workloads for msg in wl[p]]
        for p in range(num_ports)
    ]


def shard_workload(seqs: list[list], num_shards: int) -> list[list[list]]:
    """Split a workload into ``num_shards`` prefix-contiguous shards.

    Every port's sequence is cut into ``num_shards`` consecutive spans
    (some possibly empty), so ``merge_sequences(*shards)`` reproduces
    the original workload exactly.  Used to fan long simulator runs out
    over workers while keeping per-port message order.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    shards: list[list[list]] = [[] for _ in range(num_shards)]
    for seq in seqs:
        bounds = np.linspace(0, len(seq), num_shards + 1).astype(int)
        for k in range(num_shards):
            shards[k].append(list(seq[bounds[k]:bounds[k + 1]]))
    return shards


def uniform_random_workload(
    num_endports: int,
    messages_per_port: int,
    message_size: float,
    seed: int | np.random.Generator = 0,
) -> list[list[tuple[int, float]]]:
    """Unstructured traffic: every port sends to uniform random peers.

    Not a collective -- the background-traffic control case.
    """
    rng = np.random.default_rng(seed)
    seqs: list[list[tuple[int, float]]] = []
    for p in range(num_endports):
        dsts = rng.integers(0, num_endports - 1, size=messages_per_port)
        dsts = np.where(dsts >= p, dsts + 1, dsts)  # exclude self
        seqs.append([(int(d), float(message_size)) for d in dsts])
    return seqs
