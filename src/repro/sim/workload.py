"""Workload builders: CPS + placement + message size -> port sequences.

Bridges the collectives layer to the simulators: the paper's experiments
translate a collective's algorithm "into sequences of destinations
specific for each end-port" (section II); this module performs that
translation, with uniform or per-stage message sizes.
"""

from __future__ import annotations

import numpy as np

from ..collectives.cps import CPS
from ..collectives.schedule import stage_flows

__all__ = ["cps_workload", "permutation_workload", "uniform_random_workload"]


def cps_workload(
    cps: CPS,
    rank_to_port: np.ndarray,
    num_endports: int,
    message_size: float | list[float],
) -> list[list[tuple[int, float]]]:
    """Per-port ``(dst, size)`` sequences for a CPS under a placement.

    ``message_size`` is either one size for every stage or a per-stage
    list (e.g. recursive halving sends shrinking messages).
    """
    if isinstance(message_size, (int, float)):
        sizes = [float(message_size)] * len(cps)
    else:
        sizes = [float(s) for s in message_size]
        if len(sizes) != len(cps):
            raise ValueError(
                f"{len(sizes)} sizes for {len(cps)} stages"
            )
    seqs: list[list[tuple[int, float]]] = [[] for _ in range(num_endports)]
    for st, size in zip(cps, sizes):
        src, dst = stage_flows(st, rank_to_port)
        for s, d in zip(src.tolist(), dst.tolist()):
            seqs[s].append((d, size))
    return seqs


def permutation_workload(
    src: np.ndarray,
    dst: np.ndarray,
    num_endports: int,
    message_size: float,
    repeats: int = 1,
) -> list[list[tuple[int, float]]]:
    """A fixed permutation replayed ``repeats`` times (e.g. the ring
    adversary of section II)."""
    seqs: list[list[tuple[int, float]]] = [[] for _ in range(num_endports)]
    for s, d in zip(np.asarray(src).tolist(), np.asarray(dst).tolist()):
        if s == d:
            continue
        seqs[s].extend([(d, float(message_size))] * repeats)
    return seqs


def uniform_random_workload(
    num_endports: int,
    messages_per_port: int,
    message_size: float,
    seed: int | np.random.Generator = 0,
) -> list[list[tuple[int, float]]]:
    """Unstructured traffic: every port sends to uniform random peers.

    Not a collective -- the background-traffic control case.
    """
    rng = np.random.default_rng(seed)
    seqs: list[list[tuple[int, float]]] = []
    for p in range(num_endports):
        dsts = rng.integers(0, num_endports - 1, size=messages_per_port)
        dsts = np.where(dsts >= p, dsts + 1, dsts)  # exclude self
        seqs.append([(int(d), float(message_size)) for d in dsts])
    return seqs
