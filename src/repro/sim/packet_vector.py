"""Struct-of-arrays packet engine: analytic wave calendar + conflict test.

The reference packet engine spends one Python heap event per packet-hop
(``ceil(size/MTU) x hops x ~3`` events per message), which caps it at a
few dozen end-ports.  This engine restructures the same model around
two observations:

1. **An uncontended message is closed-form.**  When no other traffic
   touches a message's links while it is in flight, every timestamp the
   event engine would produce follows a short max-plus recurrence:

   * injection: ``s[j,0] = max(f[j], rel[j-limit,0])`` with
     ``f[j] = s[j-1,0] + d[j-1,0]`` (the host sends back-to-back unless
     credit-blocked),
   * switch hop ``h``: ``s[j,h] = max(a[j,h] + switch_lat,
     s[j-1,h] + d[j-1,h], rel[j-limit,h])`` with arrival
     ``a[j,h] = s[j,h-1] + wire_lat``,
   * credit release: ``rel[j,h] = s[j,h+1] + d[j,h+1]`` (the slot on
     link ``h`` frees when the packet's tail leaves the *next* link),
   * delivery: ``fin = s[last,H-1] + wire_lat + size_last/cap[H-1]``.

   Each ``max`` mirrors one guard in the event engine (output busy,
   FIFO order, credit availability), so the recurrence reproduces the
   reference timestamps *bit for bit* -- same IEEE-754 operations in
   the same order.

2. **Messages in a wave are independent.**  Ports progress through
   their sequences autonomously, so the *k*-th messages of all ports
   (a "wave") can be advanced together: the recurrence above runs as
   NumPy operations over flat (message x hop) arrays -- a bucketed
   calendar over wave epochs instead of a heap over packet events.

Soundness: the isolation assumption is *checked, not assumed*.  While
advancing waves the engine records, per message and link, the interval
[first entry, last slot release] during which the message occupies the
link.  After the last wave it sorts all intervals per link; if any two
messages overlap anywhere (within a safety margin), packets could have
interacted -- queued behind each other, stolen credits, blocked an
output -- and the engine reports a conflict so the caller falls back to
the event-driven reference core.  If no intervals overlap, a
first-divergence induction gives that the event engine would never have
executed a contended guard either, so the analytic timestamps are
exact.  Contention-free runs -- the configurations this paper is about
-- therefore resolve in a handful of vector passes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .events import SimulationError
from .fluid import MessageRecord

if TYPE_CHECKING:  # pragma: no cover
    from .packet import PacketEngineStats, PacketSimulator

__all__ = ["run_vectorized", "CONFLICT_MARGIN"]

#: Two link-occupancy intervals closer than this (microseconds) are
#: treated as interacting.  Generously above the event engine's 1e-12
#: comparison epsilon and any accumulated float noise, and far below
#: real scheduling gaps (which are >= a per-message overhead).
CONFLICT_MARGIN = 1e-6


def _stats(**kw) -> "PacketEngineStats":
    from .packet import PacketEngineStats

    base = dict(engine="vector", fast_path=False, fallback=False,
                conflicts=0, messages=0, packets=0, events_saved=0)
    base.update(kw)
    return PacketEngineStats(**base)


def _route_matrix(sim: "PacketSimulator", src: np.ndarray, dst: np.ndarray):
    """Per-message link rows ``(R, max_links)`` and route lengths.

    Mirrors the reference engine: hosts inject on their rail-0 up port
    and switches forward by the LFT.  Returns ``None`` on any anomaly
    (unrouted destination, dead cable, loop) so the caller falls back
    to the reference engine, which owns the legacy failure behaviour.
    """
    fab = sim.fabric
    R = len(src)
    max_links = 2 * int(fab.node_level.max()) + 2
    links = np.full((R, max_links), -1, dtype=np.int64)
    length = np.ones(R, dtype=np.int64)
    gp0 = fab.port_start[src].astype(np.int64)
    links[:, 0] = gp0
    cur = fab.peer_node[gp0].astype(np.int64)
    if (cur < 0).any():
        return None
    active = np.flatnonzero(cur != dst)
    for h in range(1, max_links):
        if len(active) == 0:
            return links, length
        gp = np.asarray(sim.tables.out_port(cur[active], dst[active]),
                        dtype=np.int64)
        if (gp < 0).any():
            return None
        links[active, h] = gp
        length[active] += 1
        nxt = fab.peer_node[gp].astype(np.int64)
        if (nxt < 0).any():
            return None
        cur[active] = nxt
        active = active[cur[active] != dst[active]]
    if len(active):
        return None  # routing loop; let the reference engine diagnose
    return links, length


def _advance_wave(cal, limit, f0, links, length, caps, pieces, last_size):
    """Advance one wave of isolated messages through the recurrence.

    All arrays are per-message rows (R messages).  Returns
    ``(inject, finish, host_tail, enter, exit)`` where ``enter``/``exit``
    bound each message's occupancy of each of its route links.
    """
    R = links.shape[0]
    H = int(length.max())
    links = links[:, :H]
    caps = caps[:, :H]
    mtu = float(cal.mtu)
    wire = cal.wire_latency
    swl = cal.switch_latency
    pmax = int(pieces.max())

    prev_tail = np.full((R, H), -np.inf)
    enter = np.full((R, H), np.inf)
    f = f0.astype(np.float64, copy=True)
    inject = np.empty(R)
    finish = np.empty(R)
    ring = None
    if limit is not None:
        # rel[j-limit, h] lives in slot (j % limit): it is read for
        # packet j at hop h just before packet j's hop h+1 overwrites it.
        ring = np.full((R, H, limit), -np.inf)

    for j in range(pmax):
        pact = j < pieces
        is_last = j == pieces - 1
        psize = np.where(is_last, last_size, mtu)

        # Hop 0: the host sends when the previous tail left the wire
        # and (finite buffers) the leaf advertised a credit.
        s = f
        if ring is not None:
            s = np.maximum(s, ring[:, 0, j % limit])
        tail = s + psize / caps[:, 0]
        if j == 0:
            inject = s.copy()
            enter[:, 0] = s
        f = np.where(pact, tail, f)
        prev_tail[:, 0] = np.where(pact, tail, prev_tail[:, 0])

        s_prev = s
        for h in range(1, H):
            hact = pact & (h < length)
            a = s_prev + wire
            s = np.maximum(a + swl, prev_tail[:, h])
            if ring is not None:
                # The ejection link never blocks on credits (the host
                # drains unconditionally): mask the final hop out.
                cr = np.where(h < length - 1, ring[:, h, j % limit], -np.inf)
                s = np.maximum(s, cr)
            tail_h = s + psize / caps[:, h]
            if ring is not None:
                ring[:, h - 1, j % limit] = np.where(
                    hact, tail_h, ring[:, h - 1, j % limit])
            prev_tail[:, h] = np.where(hact, tail_h, prev_tail[:, h])
            enter[:, h] = np.where(hact, np.minimum(enter[:, h], a),
                                   enter[:, h])
            fin_mask = hact & is_last & (h == length - 1)
            if fin_mask.any():
                # Cut-through delivery: header reaches the host a wire
                # latency after the ejection transmit starts, the tail
                # one serialisation later.
                deliver = (s + wire) + psize / caps[:, h]
                finish = np.where(fin_mask, deliver, finish)
            s_prev = s

    exit_ = prev_tail.copy()
    if ring is not None:
        # With finite buffers a message still owns a slot on link h
        # until its tail clears link h+1.
        for h in range(H - 1):
            exit_[:, h] = np.maximum(exit_[:, h], prev_tail[:, h + 1])
    return inject, finish, f, enter, exit_


def run_vectorized(sim: "PacketSimulator", sequences):
    """Attempt the analytic fast path for a whole run.

    Returns ``(records, stats)`` with canonically ordered
    :class:`~repro.sim.fluid.MessageRecord` entries on success, or
    ``(None, stats)`` when link-occupancy conflicts (or routing
    anomalies) require the event-driven reference core.
    """
    fab = sim.fabric
    N = fab.num_endports
    cal = sim.cal
    limit = sim.credit_limit
    mtu = float(cal.mtu)

    src_l: list[int] = []
    dst_l: list[int] = []
    size_l: list[float] = []
    wave_l: list[int] = []
    for p, seq in enumerate(sequences):
        for k, (d, s) in enumerate(seq):
            src_l.append(p)
            dst_l.append(int(d))
            size_l.append(float(s))
            wave_l.append(k)
    M = len(src_l)
    if M == 0:
        return [], _stats(fast_path=True)

    src = np.asarray(src_l, dtype=np.int64)
    dst = np.asarray(dst_l, dtype=np.int64)
    size = np.asarray(size_l, dtype=np.float64)
    wave = np.asarray(wave_l, dtype=np.int64)
    real = (src != dst) & (size > 0)

    # Segmentation (identical to the reference engine's segment()).
    full, rest = np.divmod(size, mtu)
    pieces = full.astype(np.int64) + (rest > 1e-12)
    pieces = np.maximum(pieces, 1)
    last_size = np.where(rest > 1e-12, rest, np.where(full >= 1, mtu, size))

    routed = _route_matrix(sim, src[real], dst[real])
    if routed is None:
        return None, _stats(fallback=True, messages=int(real.sum()))
    links, length = routed
    n_real = len(length)
    total_packets = int(pieces[real].sum())
    # The reference engine's _tick() counts one event per packet-link
    # arrival; enforce the same budget before spending any work.
    arrive_events = int((pieces[real] * length).sum())
    if arrive_events > sim.max_events:
        raise SimulationError("packet event budget exhausted")

    caps_full = sim._link_capacities()
    caps = np.where(links >= 0, caps_full[np.where(links >= 0, links, 0)], 1.0)

    # Map flat message id -> row in the real-message arrays.
    real_row = np.cumsum(real) - 1

    start = np.zeros(M)
    inject = np.zeros(M)
    finish = np.zeros(M)
    t_port = np.zeros(N)

    int_link: list[np.ndarray] = []
    int_enter: list[np.ndarray] = []
    int_exit: list[np.ndarray] = []

    # Wave calendar: bucket w holds the w-th message of every port, a
    # batch advanced with one recurrence pass.
    n_waves = int(wave.max()) + 1
    for w in range(n_waves):
        mw = np.flatnonzero(wave == w)
        ps = src[mw]
        st = t_port[ps]
        start[mw] = st
        emp = ~real[mw]
        if emp.any():
            idle = mw[emp]
            t0 = st[emp] + cal.host_overhead
            inject[idle] = t0
            finish[idle] = t0
            t_port[src[idle]] = t0
        live = mw[~emp]
        if not len(live):
            continue
        rows = real_row[live]
        f0 = st[~emp] + cal.host_overhead
        inj, fin, tails, enter, exit_ = _advance_wave(
            cal, limit, f0, links[rows], length[rows], caps[rows],
            pieces[live], last_size[live])
        inject[live] = inj
        finish[live] = fin
        t_port[src[live]] = tails
        hop = np.arange(enter.shape[1])[None, :]
        used = hop < length[rows][:, None]
        int_link.append(links[rows][:, : enter.shape[1]][used])
        int_enter.append(enter[used])
        int_exit.append(exit_[used])

    # Conflict scan: any two messages occupying one link at overlapping
    # times means the event engine would have arbitrated between them.
    conflicts = 0
    if int_link:
        la = np.concatenate(int_link)
        ea = np.concatenate(int_enter)
        xa = np.concatenate(int_exit)
        order = np.lexsort((ea, la))
        ls, es, xs = la[order], ea[order], xa[order]
        overlap = (ls[1:] == ls[:-1]) & (es[1:] < xs[:-1] + CONFLICT_MARGIN)
        conflicts = int(overlap.sum())

    if conflicts:
        return None, _stats(fallback=True, conflicts=conflicts,
                            messages=n_real, packets=total_packets)

    # Fault plane: the analytic calendar is only exact if no fault
    # window could have perturbed the run.  Any intersection between a
    # scheduled fault and a link-occupancy interval -- or a live table
    # repair before the last delivery -- defers to the fault-honoring
    # reference core.  An empty schedule takes the exact pre-fault path.
    faults = getattr(sim, "faults", None)
    if faults is not None and not faults.is_empty() and int_link:
        healing = getattr(sim, "healing", None)
        makespan = float(finish.max()) if M else 0.0
        if (healing is not None
                and healing.earliest_swap() < makespan + CONFLICT_MARGIN):
            return None, _stats(fallback=True, messages=n_real,
                                packets=total_packets)
        if faults.overlaps_occupancy(fab, la, ea, xa,
                                     margin=CONFLICT_MARGIN):
            return None, _stats(fallback=True, messages=n_real,
                                packets=total_packets)

    records = [
        MessageRecord(int(src[m]), int(dst[m]), float(size[m]),
                      float(start[m]), float(inject[m]), float(finish[m]))
        for m in range(M)
    ]
    return records, _stats(fast_path=True, messages=n_real,
                           packets=total_packets,
                           events_saved=arrive_events)
