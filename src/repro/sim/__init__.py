"""Network simulators: event-driven fluid (flow-level) and packet-level
cut-through models calibrated to the paper's InfiniBand QDR setup."""

from .calibration import (
    DDR_PCIE_GEN1,
    EDR_PCIE_GEN3,
    QDR_PCIE_GEN2,
    LinkCalibration,
)
from .batch import (
    INHERIT,
    BatchElement,
    BatchResult,
    BatchSpec,
    BatchStats,
    ScenarioSpec,
    cps_workload_arrays,
    ordering_batch,
    run_batch,
)
from .events import EventQueue, SimulationError
from .fluid import FluidResult, FluidSimulator, MessageRecord
from .metrics import (
    bandwidth_lower_bound,
    delivered_fraction,
    efficiency,
    goodput_timeline,
    ideal_sequence_time,
    link_byte_loads,
    utilization_report,
    zero_load_latencies,
)
from .packet import PacketEngineStats, PacketResult, PacketSimulator
from .workload import (
    cps_workload,
    merge_sequences,
    permutation_workload,
    shard_workload,
    uniform_random_workload,
)

__all__ = [
    "BatchElement",
    "BatchResult",
    "BatchSpec",
    "BatchStats",
    "DDR_PCIE_GEN1",
    "EDR_PCIE_GEN3",
    "EventQueue",
    "INHERIT",
    "ScenarioSpec",
    "FluidResult",
    "FluidSimulator",
    "LinkCalibration",
    "MessageRecord",
    "PacketEngineStats",
    "PacketResult",
    "PacketSimulator",
    "QDR_PCIE_GEN2",
    "SimulationError",
    "bandwidth_lower_bound",
    "cps_workload",
    "cps_workload_arrays",
    "delivered_fraction",
    "efficiency",
    "goodput_timeline",
    "ideal_sequence_time",
    "link_byte_loads",
    "merge_sequences",
    "ordering_batch",
    "permutation_workload",
    "run_batch",
    "shard_workload",
    "utilization_report",
    "uniform_random_workload",
    "zero_load_latencies",
]
