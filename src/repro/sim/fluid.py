"""Event-driven fluid (flow-level) network simulator.

Reproduces the behaviour of the paper's OMNeT++ InfiniBand model at the
granularity that matters for collective bandwidth: every in-flight
message is a *flow* over the directed links of its route, and active
flows share each link by **max-min fairness** (progressive filling).
Events are message-overhead expiries and flow completions; between
events rates are constant, so the simulation is exact for the fluid
model (no time-stepping error).

Traffic model (paper section II): each end-port owns an ordered
destination sequence and "progresses through [it] independently when
the previous message has been sent to the wire" -- i.e. a port starts
its next message as soon as the previous one finished injecting.  A
``barrier`` mode synchronises all ports between stages instead, which
is the worst-case analysis matching the HSD metric.

Per-message fixed overhead (software/DMA setup plus cut-through header
latency) models why small messages are less sensitive to contention:
during overhead windows a port consumes no link bandwidth, so lightly
loaded phases interleave -- the averaging the paper invokes to explain
Figure 2's message-size dependence.

Capacities: host injection is limited by PCIe (3250 B/us), ejection
into a host likewise, switch-to-switch links run at wire speed
(4000 B/us for QDR).

The active-flow state is kept in flat NumPy arrays (struct-of-arrays
with swap-remove) so each event costs a handful of vector operations
rather than Python-level loops over flows.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..fabric.lft import ForwardingTables
from .calibration import LinkCalibration, QDR_PCIE_GEN2
from .events import SimulationError

__all__ = ["FluidSimulator", "FluidResult", "MessageRecord"]

_EPS_BYTES = 1e-6
_EPS_RATE = 1e-12


@dataclass(frozen=True)
class MessageRecord:
    """Timing of one simulated message."""

    src: int
    dst: int
    size: float
    start: float      # overhead begins
    inject: float     # transfer begins (overhead done)
    finish: float     # last byte on the wire

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class FluidResult:
    """Outcome of a fluid run."""

    makespan: float
    total_bytes: float
    num_ports: int
    active_ports: int
    calibration: LinkCalibration
    messages: list[MessageRecord] = field(default_factory=list)
    stage_times: list[float] = field(default_factory=list)

    @property
    def aggregate_bandwidth(self) -> float:
        """Total delivered bytes per microsecond."""
        return self.total_bytes / self.makespan if self.makespan > 0 else 0.0

    @property
    def per_port_bandwidth(self) -> float:
        return self.aggregate_bandwidth / max(self.active_ports, 1)

    @property
    def normalized_bandwidth(self) -> float:
        """The paper's Figure-2 metric: effective bandwidth normalised to
        the full host (PCIe) bandwidth."""
        return self.per_port_bandwidth / self.calibration.host_bandwidth


class _ActiveFlows:
    """Struct-of-arrays active flow set with swap-remove."""

    def __init__(self, max_hops: int):
        self.H = max_hops
        cap = 64
        self.port = np.empty(cap, dtype=np.int64)
        self.dst = np.empty(cap, dtype=np.int64)
        self.size = np.empty(cap)
        self.remaining = np.empty(cap)
        self.rate = np.zeros(cap)
        self.start = np.empty(cap)
        self.inject = np.empty(cap)
        self.links = np.full((cap, max_hops), -1, dtype=np.int64)
        self.n = 0

    def __len__(self) -> int:
        return self.n

    def _grow(self) -> None:
        cap = len(self.port) * 2
        for name in ("port", "dst", "size", "remaining", "rate",
                     "start", "inject"):
            arr = getattr(self, name)
            new = np.empty(cap, dtype=arr.dtype)
            new[: self.n] = arr[: self.n]
            setattr(self, name, new)
        links = np.full((cap, self.H), -1, dtype=np.int64)
        links[: self.n] = self.links[: self.n]
        self.links = links

    def add(self, port: int, dst: int, size: float, route: np.ndarray,
            start: float, inject: float) -> None:
        if self.n == len(self.port):
            self._grow()
        i = self.n
        self.port[i] = port
        self.dst[i] = dst
        self.size[i] = size
        self.remaining[i] = size
        self.rate[i] = 0.0
        self.start[i] = start
        self.inject[i] = inject
        self.links[i, :] = -1
        self.links[i, : len(route)] = route
        self.n += 1

    def pop_finished(self) -> list[tuple[int, int, float, float, float]]:
        """Remove flows with no bytes left; returns (port, dst, size,
        start, inject) tuples (swap-remove keeps arrays compact)."""
        out = []
        i = 0
        while i < self.n:
            if self.remaining[i] <= _EPS_BYTES:
                out.append((int(self.port[i]), int(self.dst[i]),
                            float(self.size[i]), float(self.start[i]),
                            float(self.inject[i])))
                last = self.n - 1
                if i != last:
                    for name in ("port", "dst", "size", "remaining", "rate",
                                 "start", "inject"):
                        getattr(self, name)[i] = getattr(self, name)[last]
                    self.links[i] = self.links[last]
                self.n -= 1
            else:
                i += 1
        return out

    def advance(self, dt: float) -> None:
        if dt > 0 and self.n:
            self.remaining[: self.n] -= self.rate[: self.n] * dt

    def min_completion_dt(self) -> float:
        if not self.n:
            return np.inf
        r = self.rate[: self.n]
        ok = r > _EPS_RATE
        if not ok.any():
            return np.inf
        return float(np.min(self.remaining[: self.n][ok] / r[ok]))


class FluidSimulator:
    """Simulate per-port message sequences over routed fabric links."""

    def __init__(
        self,
        tables: ForwardingTables,
        calibration: LinkCalibration = QDR_PCIE_GEN2,
        record_messages: bool = False,
        max_events: int = 20_000_000,
    ):
        self.tables = tables
        self.fabric = tables.fabric
        self.cal = calibration
        self.record_messages = record_messages
        self.max_events = max_events
        self.capacity = self._link_capacities()
        self.max_hops = 2 * int(self.fabric.node_level.max()) + 2
        self._route_cache: dict[tuple[int, int], np.ndarray] = {}

    # ------------------------------------------------------------------
    def _link_capacities(self) -> np.ndarray:
        fab = self.fabric
        cap = np.full(fab.num_ports, self.cal.link_bandwidth)
        host_owned = fab.port_owner < fab.num_endports
        cap[host_owned] = self.cal.host_bandwidth        # injection
        into_host = (fab.peer_node >= 0) & (fab.peer_node < fab.num_endports)
        cap[into_host] = np.minimum(cap[into_host], self.cal.host_bandwidth)
        return cap

    def _route(self, src: int, dst: int) -> np.ndarray:
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        fab = self.fabric
        links = [int(self.tables.host_out_port(src, dst))]
        cur = int(fab.peer_node[links[0]])
        for _ in range(self.max_hops):
            if cur == dst:
                route = np.asarray(links, dtype=np.int64)
                self._route_cache[key] = route
                return route
            gp = int(self.tables.out_port(cur, dst))
            if gp < 0:
                raise SimulationError(f"no route {src}->{dst}")
            links.append(gp)
            cur = int(fab.peer_node[gp])
        raise SimulationError(f"routing loop {src}->{dst}")

    # ------------------------------------------------------------------
    def run_sequences(
        self,
        sequences: list[list[tuple[int, float]]],
        mode: str = "async",
    ) -> FluidResult:
        """Simulate; ``sequences[p]`` lists ``(dst, size)`` messages of
        end-port ``p`` in order.

        ``mode="async"``: ports progress independently (paper default).
        ``mode="barrier"``: a global barrier between sequence positions
        (stage ``k`` of every port completes before any stage ``k+1``
        starts) -- the synchronous worst case.
        """
        if mode not in ("async", "barrier"):
            raise ValueError(f"mode must be async|barrier, got {mode!r}")
        N = self.fabric.num_endports
        if len(sequences) != N:
            raise ValueError(
                f"need one sequence per end-port ({N}), got {len(sequences)}"
            )
        total_bytes = sum(size for seq in sequences for _, size in seq)
        active_ports = sum(1 for seq in sequences if seq)
        messages: list[MessageRecord] = []

        if mode == "async":
            makespan = self._run_async(sequences, messages)
            stage_times: list[float] = []
        else:
            makespan, stage_times = self._run_barrier(sequences, messages)

        return FluidResult(
            makespan=makespan,
            total_bytes=total_bytes,
            num_ports=N,
            active_ports=active_ports,
            calibration=self.cal,
            messages=messages,
            stage_times=stage_times,
        )

    # ------------------------------------------------------------------
    def _run_async(self, sequences, messages) -> float:
        pending: list[tuple[float, int]] = []   # (transfer-ready time, port)
        pos = [0] * len(sequences)
        for p, seq in enumerate(sequences):
            if seq:
                heapq.heappush(pending, (self.cal.host_overhead, p))
        active = _ActiveFlows(self.max_hops)
        now = 0.0
        events = 0
        makespan = 0.0

        while pending or len(active):
            events += 1
            if events > self.max_events:
                raise SimulationError("event budget exhausted")
            self._assign_rates(active)
            dt_done = active.min_completion_dt()
            t_start = pending[0][0] if pending else np.inf
            if len(active) and not np.isfinite(dt_done) and not pending:
                raise SimulationError("active flows but no progress")
            if t_start <= now + dt_done:
                active.advance(t_start - now)
                now = t_start
                while pending and pending[0][0] <= now + 1e-12:
                    _, p = heapq.heappop(pending)
                    dst, size = sequences[p][pos[p]]
                    start = now - self.cal.host_overhead
                    if size <= _EPS_BYTES or p == dst:
                        if self.record_messages:
                            messages.append(MessageRecord(
                                p, dst, size, start, now, now))
                        makespan = max(makespan, now)
                        self._next_message(p, pos, sequences, pending, now)
                    else:
                        active.add(p, dst, size, self._route(p, dst),
                                   start, now)
            else:
                active.advance(dt_done)
                now += dt_done
                for port, dst, size, start, inject in active.pop_finished():
                    if self.record_messages:
                        messages.append(MessageRecord(
                            port, dst, size, start, inject, now))
                    makespan = max(makespan, now)
                    self._next_message(port, pos, sequences, pending, now)
        return makespan

    def _next_message(self, p, pos, sequences, pending, now) -> None:
        pos[p] += 1
        if pos[p] < len(sequences[p]):
            heapq.heappush(pending, (now + self.cal.host_overhead, p))

    # ------------------------------------------------------------------
    def _run_barrier(self, sequences, messages) -> tuple[float, list[float]]:
        num_stages = max((len(s) for s in sequences), default=0)
        now = 0.0
        stage_times = []
        for k in range(num_stages):
            stage = [(p, seq[k]) for p, seq in enumerate(sequences)
                     if k < len(seq)]
            t0 = now
            now = t0 + self._stage_makespan(stage, t0, messages)
            stage_times.append(now - t0)
        return now, stage_times

    def _stage_makespan(self, stage, t0, messages) -> float:
        active = _ActiveFlows(self.max_hops)
        overhead = self.cal.host_overhead
        any_message = False
        for p, (dst, size) in stage:
            any_message = True
            if size <= _EPS_BYTES or p == dst:
                continue
            active.add(p, dst, size, self._route(p, dst), t0, t0 + overhead)
        if not len(active):
            return overhead if any_message else 0.0
        now = overhead
        events = 0
        while len(active):
            events += 1
            if events > self.max_events:
                raise SimulationError("event budget exhausted")
            self._assign_rates(active)
            dt = active.min_completion_dt()
            if not np.isfinite(dt):
                raise SimulationError("stage stalled")
            active.advance(dt)
            now += dt
            for port, dst, size, start, inject in active.pop_finished():
                if self.record_messages:
                    messages.append(MessageRecord(
                        port, dst, size, start, inject, t0 + now))
        return now

    # ------------------------------------------------------------------
    def _assign_rates(self, active: _ActiveFlows) -> None:
        """Max-min fair rates by progressive filling (vectorised)."""
        F = len(active)
        if not F:
            return
        lm = active.links[:F]                     # (F, H), -1 padded
        valid = lm >= 0
        flat = lm[valid]
        links, link_idx_flat = np.unique(flat, return_inverse=True)
        L = len(links)
        if L == len(flat):
            # Fast path: no link is shared (the contention-free case the
            # paper engineers for) -- every flow runs at the minimum
            # capacity along its own route; no water-filling needed.
            caps = np.where(valid, self.capacity[np.where(valid, lm, 0)],
                            np.inf)
            active.rate[:F] = caps.min(axis=1)
            return
        # Per-entry flow ids aligned with flat/link_idx_flat.
        flow_ids = np.broadcast_to(
            np.arange(F)[:, None], lm.shape)[valid]
        residual = self.capacity[links].astype(np.float64).copy()
        rates = np.zeros(F)
        frozen = np.zeros(F, dtype=bool)

        for _ in range(L + 1):
            live = ~frozen[flow_ids]
            if not live.any():
                break
            counts = np.bincount(link_idx_flat[live], minlength=L)
            used = counts > 0
            delta = np.min(residual[used] / counts[used])
            rates[~frozen] += delta
            residual[used] -= delta * counts[used]
            sat_mask = used & (residual <= 1e-9)
            if sat_mask.any():
                hit = flow_ids[sat_mask[link_idx_flat] & live]
                frozen[hit] = True
        active.rate[:F] = rates
