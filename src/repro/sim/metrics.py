"""Derived simulation metrics: ideal baselines and efficiency ratios.

The paper reports *normalized effective bandwidth*: measured bytes/time
against the full PCIe host bandwidth.  For latency-dominated regimes it
is also useful to compare against the *ideal* (zero-contention) run of
the same workload, which these helpers compute analytically.
"""

from __future__ import annotations

import numpy as np

from .calibration import LinkCalibration

__all__ = [
    "ideal_sequence_time",
    "efficiency",
    "bandwidth_lower_bound",
    "delivered_fraction",
    "goodput_timeline",
    "link_byte_loads",
    "utilization_report",
    "zero_load_latencies",
]


def ideal_sequence_time(
    sequences: list[list[tuple[int, float]]],
    calibration: LinkCalibration,
) -> float:
    """Zero-contention makespan: the slowest port running its sequence
    back-to-back at full host bandwidth with per-message overhead."""
    worst = 0.0
    for seq in sequences:
        t = sum(
            calibration.host_overhead + size / calibration.min_bandwidth
            for _, size in seq
        )
        worst = max(worst, t)
    return worst


def efficiency(makespan: float, sequences, calibration: LinkCalibration) -> float:
    """Measured vs. ideal makespan (1.0 = contention-free)."""
    ideal = ideal_sequence_time(sequences, calibration)
    return ideal / makespan if makespan > 0 else 0.0


def link_byte_loads(tables, sequences) -> np.ndarray:
    """Total bytes each directed link carries for a workload.

    Routing is deterministic, so the per-link byte totals are exact
    regardless of timing -- this is the post-hoc companion of a fluid
    run, giving time-averaged utilisation when divided by
    ``capacity * makespan``.
    """
    from ..analysis.hsd import walk_flow_links

    fab = tables.fabric
    srcs, dsts, sizes = [], [], []
    for p, seq in enumerate(sequences):
        for dst, size in seq:
            if dst != p and size > 0:
                srcs.append(p)
                dsts.append(dst)
                sizes.append(float(size))
    loads = np.zeros(fab.num_ports)
    if not srcs:
        return loads
    src = np.asarray(srcs)
    dst = np.asarray(dsts)
    size = np.asarray(sizes)
    flow_idx, gports = walk_flow_links(tables, src, dst)
    np.add.at(loads, gports, size[flow_idx])
    return loads


def utilization_report(tables, sequences, makespan: float,
                       calibration: LinkCalibration,
                       top: int = 10) -> str:
    """Text report of the hottest links' time-averaged utilisation."""
    from ..fabric.render import render_link_loads

    fab = tables.fabric
    loads = link_byte_loads(tables, sequences)
    cap = np.full(fab.num_ports, calibration.link_bandwidth)
    host_owned = fab.port_owner < fab.num_endports
    cap[host_owned] = calibration.host_bandwidth
    util = loads / (cap * max(makespan, 1e-12))
    order = np.argsort(-util)[:top]
    lines = [f"time-averaged link utilisation over {makespan:.1f} us "
             f"(top {top}):"]
    for gp in order:
        if util[gp] <= 0:
            break
        owner = int(fab.port_owner[gp])
        peer = int(fab.peer_node[gp])
        local = int(gp - fab.port_start[owner])
        lines.append(
            f"  {util[gp]:6.1%}  {fab.node_names[owner]}[{local}]"
            f" -> {fab.node_names[peer]}"
        )
    return "\n".join(lines)


def zero_load_latencies(
    tables, sequences, calibration: LinkCalibration
) -> np.ndarray:
    """Analytic zero-load cut-through latency of every routed message.

    Uses each message's *actual* hop count (same-leaf destinations are
    cheaper than cross-spine ones), so the array is the per-message
    floor a contention-free packet run should sit on -- the paper's
    section-VII criterion made testable: on an ordered D-Mod-K fabric,
    measured latencies match these values to within float pacing noise.

    Ordered like :attr:`PacketResult.latencies` (by source port, then
    sequence position; self and zero-byte messages excluded).
    """
    srcs, dsts, sizes = [], [], []
    for p, seq in enumerate(sequences):
        for d, size in seq:
            if d != p and size > 0:
                srcs.append(p)
                dsts.append(d)
                sizes.append(float(size))
    if not srcs:
        return np.empty(0)
    hops = tables.paths_matrix()[np.asarray(srcs), np.asarray(dsts)]
    if (hops < 0).any():
        raise ValueError("workload contains unroutable destinations")
    size = np.asarray(sizes)
    # hops counts traversed links; switches traversed = links - 1.  The
    # tail crosses the ejection link once more after the header lands
    # (the packet model serialises ejection at the PCIe-limited rate).
    return (
        calibration.host_overhead
        + hops * calibration.wire_latency
        + (hops - 1) * calibration.switch_latency
        + size / calibration.min_bandwidth
    )


def delivered_fraction(records) -> float:
    """Fraction of real messages a run actually delivered.

    ``records`` is a :class:`~repro.sim.fluid.MessageRecord` list as
    emitted by the packet engines; under a fault schedule lost messages
    carry ``finish == -1``.  Self and zero-byte messages are excluded
    (they never cross the fabric).  1.0 when there were no real
    messages.
    """
    real = [m for m in records if m.size > 0 and m.src != m.dst]
    if not real:
        return 1.0
    return sum(1 for m in real if m.finish >= 0) / len(real)


def goodput_timeline(
    records, bin_us: float = 100.0
) -> tuple[np.ndarray, np.ndarray]:
    """Delivered goodput vs. time: ``(bin_edges, bytes_per_us)``.

    Buckets each delivered message's bytes at its finish time into
    ``bin_us``-wide bins -- the degradation curve of a faulty run (the
    dip after a failure and the ramp after the repair are directly
    visible).  Returns empty arrays when nothing was delivered.
    """
    if bin_us <= 0:
        raise ValueError("bin_us must be positive")
    done = [(m.finish, m.size) for m in records
            if m.size > 0 and m.src != m.dst and m.finish >= 0]
    if not done:
        return np.empty(0), np.empty(0)
    t = np.asarray([d[0] for d in done])
    b = np.asarray([d[1] for d in done])
    n_bins = int(np.floor(t.max() / bin_us)) + 1
    edges = np.arange(n_bins + 1) * bin_us
    idx = np.minimum((t / bin_us).astype(np.int64), n_bins - 1)
    per_bin = np.zeros(n_bins)
    np.add.at(per_bin, idx, b)
    return edges, per_bin / bin_us


def bandwidth_lower_bound(
    max_hsd: float, calibration: LinkCalibration
) -> float:
    """Normalized bandwidth implied by a sustained hot-spot degree: a
    link shared by ``max_hsd`` flows caps each at ``1/max_hsd`` of wire
    speed (the section-II ring-adversary arithmetic: 4000/18 = 222 MB/s,
    7.1 % of PCIe blue-sky bandwidth after normalisation)."""
    if max_hsd < 1:
        return 1.0
    per_flow = calibration.link_bandwidth / max_hsd
    return min(1.0, per_flow / calibration.host_bandwidth)
