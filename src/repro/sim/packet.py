"""Packet-level cut-through switch simulator with credit flow control.

A finer-grained cross-check of the fluid model: messages are segmented
into MTU packets, switches are input-queued with FIFO queues per input
port (so **head-of-line blocking** is explicit), and forwarding is
cut-through -- a packet starts leaving on its output port a switch
latency after its header arrived, provided the output is free, the
packet is at the head of its input queue, and (with finite buffers) the
downstream input buffer has a credit.

InfiniBand links are credit-based: a sender may only transmit when the
receiver advertised buffer space.  ``credit_limit`` models that buffer
in packets per input port; when a buffer fills, the upstream output
stalls, and the stall propagates -- the *tree saturation* that makes
sustained hot spots so damaging for large messages.  ``credit_limit=None``
gives infinite buffers (pure queueing delay, no back-pressure).

Two engines produce bit-identical results:

* ``engine="vector"`` (default) -- the struct-of-arrays engine in
  :mod:`repro.sim.packet_vector`: messages are bucketed into wave
  epochs (the *k*-th message of every port) and each epoch is advanced
  with NumPy recurrences over flat per-hop arrays; whenever the
  per-link occupancy intervals of the run are pairwise disjoint (the
  contention-free configurations the paper engineers for) the whole
  run is resolved analytically -- one vector pass instead of
  ``ceil(size/MTU) x hops`` heap events per message.  When intervals
  do overlap the engine transparently falls back to the event-driven
  core, so results are *always* exactly those of the reference engine.
* ``engine="reference"`` -- the original per-packet heap-event engine,
  kept as the semantic ground truth for differential testing.

Remaining simplifications vs. real InfiniBand: a single virtual lane,
FIFO (not VOQ) inputs, FCFS output arbitration.  With the vectorized
engine, paper-scale fabrics (n324 and beyond) run directly; the
reference engine remains practical up to a few dozen end-ports.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..fabric.lft import ForwardingTables
from .calibration import LinkCalibration, QDR_PCIE_GEN2
from .events import EventQueue, SimulationError
from .fluid import MessageRecord

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.controller import HealingController
    from ..faults.packetsim import FaultRunReport
    from ..faults.schedule import FaultSchedule

__all__ = ["PacketSimulator", "PacketResult", "PacketEngineStats"]


def _segment_count(size: float, mtu: int) -> int:
    """Number of MTU pieces ``segment()`` produces for ``size`` bytes."""
    full, rest = divmod(size, mtu)
    return int(full) + (1 if rest > 1e-12 or full == 0 else 0)


@dataclass
class _Packet:
    msg_id: int
    dst: int
    size: float          # bytes, <= MTU
    is_last: bool
    ready: float = 0.0   # earliest forward time at the current switch


@dataclass
class _MsgState:
    src: int
    dst: int
    size: float
    start: float
    seq_idx: int = 0     # position within the source port's sequence
    inject: float = -1.0
    finish: float = -1.0
    packets_left: int = 0


@dataclass(frozen=True)
class PacketEngineStats:
    """How a packet run was executed (for perf tracking and tests)."""

    engine: str              # "vector" | "reference"
    fast_path: bool          # analytic wave calendar resolved the run
    fallback: bool           # vector engine deferred to the event core
    conflicts: int           # overlapping link-interval pairs detected
    messages: int            # real (routed) messages simulated
    packets: int             # MTU segments across all messages
    events_saved: int        # per-packet-hop heap events avoided

    def as_dict(self) -> dict:
        return asdict(self)


@dataclass
class PacketResult:
    """Outcome of a packet-level run."""

    makespan: float
    total_bytes: float
    num_ports: int
    active_ports: int
    calibration: LinkCalibration
    latencies: np.ndarray = field(default_factory=lambda: np.empty(0))
    messages: list[MessageRecord] = field(default_factory=list)
    engine_stats: PacketEngineStats | None = None
    #: set when the run was executed under a fault schedule; lost
    #: messages then appear in ``messages`` with ``finish == -1`` and
    #: are excluded from ``latencies``/``makespan``/``total_bytes``.
    fault_report: "FaultRunReport | None" = None

    @property
    def aggregate_bandwidth(self) -> float:
        return self.total_bytes / self.makespan if self.makespan > 0 else 0.0

    @property
    def per_port_bandwidth(self) -> float:
        return self.aggregate_bandwidth / max(self.active_ports, 1)

    @property
    def normalized_bandwidth(self) -> float:
        return self.per_port_bandwidth / self.calibration.host_bandwidth

    @property
    def mean_latency(self) -> float:
        return float(self.latencies.mean()) if len(self.latencies) else 0.0

    @property
    def max_latency(self) -> float:
        return float(self.latencies.max()) if len(self.latencies) else 0.0


class PacketSimulator:
    """Input-queued cut-through packet simulation over routed tables."""

    ENGINES = ("vector", "reference")

    def __init__(
        self,
        tables: ForwardingTables,
        calibration: LinkCalibration = QDR_PCIE_GEN2,
        credit_limit: int | None = None,
        max_events: int = 5_000_000,
        engine: str = "vector",
        faults: "FaultSchedule | None" = None,
        healing: "HealingController | None" = None,
    ):
        if credit_limit is not None and credit_limit < 1:
            raise ValueError("credit_limit must be >= 1 (or None for infinite)")
        if engine not in self.ENGINES:
            raise ValueError(
                f"engine must be one of {self.ENGINES}, got {engine!r}"
            )
        if healing is not None and faults is None:
            raise ValueError("healing controller given without a fault schedule")
        self.tables = tables
        self.fabric = tables.fabric
        self.cal = calibration
        self.credit_limit = credit_limit
        self.max_events = max_events
        self.engine = engine
        self.faults = faults
        self.healing = healing

    # -- shared helpers ----------------------------------------------------
    def _link_capacities(self) -> np.ndarray:
        """Per-gport serialisation bandwidth (injection/ejection PCIe
        limited, switch-to-switch at wire speed)."""
        fab = self.fabric
        N = fab.num_endports
        cap = np.full(fab.num_ports, self.cal.link_bandwidth)
        host_owned = fab.port_owner < N
        cap[host_owned] = self.cal.host_bandwidth
        into_host = (fab.peer_node >= 0) & (fab.peer_node < N)
        cap[into_host] = np.minimum(cap[into_host], self.cal.host_bandwidth)
        return cap

    def _finalize(
        self,
        records: list[MessageRecord],
        sequences: list[list[tuple[int, float]]],
        stats: PacketEngineStats | None,
    ) -> PacketResult:
        """Build a :class:`PacketResult` from canonically ordered records.

        ``records`` must be sorted by (source port, sequence position) --
        both engines emit this order, so metric arrays compare
        element-wise across engines.
        """
        total = sum(m.size for m in records)
        lat = np.asarray([m.finish - m.start for m in records
                          if m.size > 0 and m.src != m.dst])
        makespan = max((m.finish for m in records), default=0.0)
        return PacketResult(
            makespan=makespan,
            total_bytes=total,
            num_ports=self.fabric.num_endports,
            active_ports=sum(1 for s in sequences if s),
            calibration=self.cal,
            latencies=lat,
            messages=records,
            engine_stats=stats,
        )

    # -- public API -------------------------------------------------------
    def run_sequences(
        self, sequences: list[list[tuple[int, float]]]
    ) -> PacketResult:
        """Simulate per-port ``(dst, size)`` message sequences
        (asynchronous progression, as in the fluid simulator)."""
        N = self.fabric.num_endports
        if len(sequences) != N:
            raise ValueError(f"need {N} sequences, got {len(sequences)}")

        fault_mode = self.faults is not None and not self.faults.is_empty()
        if self.engine == "vector":
            from .packet_vector import run_vectorized

            records, stats = run_vectorized(self, sequences)
            if records is not None:
                # Fast path: with faults present this means no fault
                # window intersected any link occupancy, so the
                # fault-free analytic timestamps are exact.
                return self._finalize(records, sequences, stats)
            # Link occupancy intervals overlap (or intersect a fault
            # window): messages interact, so defer to the event-driven
            # core for exact arbitration.
            result = self._run_faulty(sequences) if fault_mode \
                else self._run_reference(sequences)
            result.engine_stats = PacketEngineStats(
                engine="vector", fast_path=False, fallback=True,
                conflicts=stats.conflicts, messages=stats.messages,
                packets=stats.packets, events_saved=0,
            )
            return result
        if fault_mode:
            return self._run_faulty(sequences)
        return self._run_reference(sequences)

    def _run_faulty(self, sequences) -> PacketResult:
        from ..faults.packetsim import run_faulty

        result, _ = run_faulty(self, sequences, self.faults, self.healing)
        return result

    # -- reference (per-packet heap event) engine --------------------------
    def _run_reference(
        self, sequences: list[list[tuple[int, float]]]
    ) -> PacketResult:
        fab = self.fabric
        N = fab.num_endports

        q = EventQueue()
        cal = self.cal
        limit = self.credit_limit

        # Buffers are keyed by the *sending* global port id (1:1 with the
        # receiving port via port_peer, so this is just a naming choice).
        in_queue: dict[int, deque] = {}      # send-gport -> deque[_Packet]
        occupancy: dict[int, int] = {}       # send-gport -> packets buffered
        out_busy: dict[int, float] = {}      # out-gport -> free time
        out_wait: dict[int, deque] = {}      # out-gport -> deque[sender]
        credit_wait: dict[int, deque] = {}   # send-gport -> deque[sender]
        # A "sender" is ("sw", node, in_gport) or ("host", p).

        host_pkts: dict[int, deque] = {p: deque() for p in range(N)}
        host_free = [0.0] * N
        seq_pos = [0] * N
        messages: list[_MsgState] = []
        self._events = 0

        cap = self._link_capacities()

        def segment(size: float) -> list[float]:
            full, rest = divmod(size, cal.mtu)
            sizes = [float(cal.mtu)] * int(full)
            if rest > 1e-12 or not sizes:
                sizes.append(float(rest) if rest > 1e-12 else float(size))
            return sizes

        def has_credit(send_gp: int) -> bool:
            if limit is None:
                return True
            # Credits only meter buffers in front of *switches*; the
            # destination host drains unconditionally (PCIe-limited,
            # modelled by the ejection link capacity).
            if fab.peer_node[send_gp] < N:
                return True
            return occupancy.get(send_gp, 0) < limit

        # -- host side -----------------------------------------------------
        def host_start_message(p: int) -> None:
            if seq_pos[p] >= len(sequences[p]):
                return
            dst, size = sequences[p][seq_pos[p]]
            msg = _MsgState(src=p, dst=dst, size=size, start=q.now,
                            seq_idx=seq_pos[p])
            seq_pos[p] += 1
            t0 = max(q.now, host_free[p]) + cal.host_overhead
            msg_id = len(messages)
            messages.append(msg)
            if dst == p or size <= 0:
                msg.inject = t0
                msg.finish = t0
                host_free[p] = t0
                q.schedule(t0, host_start_message, p)
                return
            pieces = segment(size)
            msg.packets_left = len(pieces)
            for i, psize in enumerate(pieces):
                host_pkts[p].append(
                    _Packet(msg_id, dst, psize, is_last=(i == len(pieces) - 1))
                )
            host_free[p] = max(q.now, host_free[p]) + cal.host_overhead
            q.schedule(host_free[p], host_try_send, p)

        def host_try_send(p: int) -> None:
            if not host_pkts[p]:
                return
            gp = int(fab.port_start[p])  # single-rail up port
            if q.now < host_free[p] - 1e-12:
                q.schedule(host_free[p], host_try_send, p)
                return
            if not has_credit(gp):
                credit_wait.setdefault(gp, deque()).append(("host", p))
                return
            pkt = host_pkts[p].popleft()
            msg = messages[pkt.msg_id]
            if msg.inject < 0:
                msg.inject = q.now
            duration = pkt.size / cap[gp]
            occupancy[gp] = occupancy.get(gp, 0) + 1
            q.schedule(q.now + cal.wire_latency, arrive, gp, pkt)
            host_free[p] = q.now + duration
            if host_pkts[p]:
                q.schedule(host_free[p], host_try_send, p)
            elif pkt.is_last:
                # Next message once the tail left the wire.
                q.schedule(host_free[p], host_start_message, p)

        # -- switch side -----------------------------------------------------
        def arrive(send_gp: int, pkt: _Packet) -> None:
            """Packet header arrives at the node behind ``send_gp``."""
            self._tick()
            node = int(fab.peer_node[send_gp])
            if node < N:
                tail = q.now + pkt.size / cap[send_gp]
                q.schedule(tail, deliver, pkt)
                return
            pkt.ready = q.now + cal.switch_latency
            queue = in_queue.setdefault(send_gp, deque())
            queue.append(pkt)
            if len(queue) == 1:
                request_output(("sw", node, send_gp))

        def deliver(pkt: _Packet) -> None:
            msg = messages[pkt.msg_id]
            msg.packets_left -= 1
            if msg.packets_left == 0:
                msg.finish = q.now

        def request_output(sender) -> None:
            """Try to move the sender's head packet; park it on the
            appropriate wait list otherwise."""
            if sender[0] == "host":
                host_try_send(sender[1])
                return
            _, node, in_gp = sender
            queue = in_queue.get(in_gp)
            if not queue:
                return
            pkt = queue[0]
            out = int(self.tables.out_port(node, pkt.dst))
            if out < 0:
                raise SimulationError(f"unrouted destination {pkt.dst}")
            if out_busy.get(out, 0.0) > q.now + 1e-12:
                out_wait.setdefault(out, deque()).append(sender)
                return
            if not has_credit(out):
                credit_wait.setdefault(out, deque()).append(sender)
                return
            transmit(node, in_gp, out, pkt)

        def transmit(node: int, in_gp: int, out: int, pkt: _Packet) -> None:
            in_queue[in_gp].popleft()
            start = max(q.now, pkt.ready)
            duration = pkt.size / cap[out]
            out_busy[out] = start + duration
            occupancy[out] = occupancy.get(out, 0) + 1
            q.schedule(start + cal.wire_latency, arrive, out, pkt)
            q.schedule(start + duration, output_free, out)
            # The input buffer slot frees once the tail passed through.
            q.schedule(start + duration, release_credit, in_gp)
            if in_queue[in_gp]:
                q.schedule(start + duration, request_output,
                           ("sw", node, in_gp))

        def output_free(out: int) -> None:
            # Offer the output to waiting senders; credit-blocked ones
            # move over to the credit wait list and the next is tried.
            # (Hosts own a dedicated link and never wait on out_busy.)
            waiting = out_wait.get(out)
            while waiting:
                sender = waiting.popleft()
                _, node, in_gp = sender
                queue = in_queue.get(in_gp)
                if not queue:
                    continue
                pkt = queue[0]
                if has_credit(out):
                    transmit(node, in_gp, out, pkt)
                    return
                credit_wait.setdefault(out, deque()).append(sender)

        def release_credit(send_gp: int) -> None:
            occupancy[send_gp] = occupancy.get(send_gp, 1) - 1
            waiting = credit_wait.get(send_gp)
            if waiting:
                request_output(waiting.popleft())

        for p in range(N):
            if sequences[p]:
                q.schedule(0.0, host_start_message, p)
        q.run(max_events=self.max_events)

        unfinished = [m for m in messages if m.finish < 0]
        if unfinished:
            raise SimulationError(
                f"{len(unfinished)} messages never finished "
                "(deadlock or event budget)"
            )
        messages.sort(key=lambda m: (m.src, m.seq_idx))
        records = [
            MessageRecord(m.src, m.dst, m.size, m.start,
                          float(m.inject), float(m.finish))
            for m in messages
        ]
        real = [m for m in messages if m.size > 0 and m.src != m.dst]
        result = self._finalize(records, sequences, None)
        result.engine_stats = PacketEngineStats(
            engine="reference", fast_path=False, fallback=False,
            conflicts=0, messages=len(real),
            packets=sum(_segment_count(m.size, cal.mtu) for m in real),
            events_saved=0,
        )
        return result

    def _tick(self) -> None:
        self._events += 1
        if self._events > self.max_events:
            raise SimulationError("packet event budget exhausted")
