"""Minimal discrete-event simulation core.

A deterministic event queue shared by the fluid and packet simulators:
events fire in (time, sequence) order, so equal-time events run in
scheduling order and runs are exactly reproducible.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable

__all__ = ["EventQueue", "SimulationError"]


class SimulationError(RuntimeError):
    """The simulation reached an inconsistent state."""


class EventQueue:
    """Priority queue of ``(time, callback, payload)`` events."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable, tuple]] = []
        self._seq = count()
        self.now = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, when: float, callback: Callable, *args: Any) -> None:
        """Schedule ``callback(*args)`` at absolute time ``when``."""
        if when < self.now - 1e-9:
            raise SimulationError(
                f"cannot schedule event in the past ({when} < now {self.now})"
            )
        heapq.heappush(self._heap, (when, next(self._seq), callback, args))

    def schedule_in(self, delay: float, callback: Callable, *args: Any) -> None:
        """Schedule ``callback(*args)`` after ``delay`` time units."""
        self.schedule(self.now + delay, callback, *args)

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        if not self._heap:
            return False
        when, _, callback, args = heapq.heappop(self._heap)
        self.now = when
        callback(*args)
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Drain the queue (optionally bounded); returns events executed."""
        executed = 0
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; runaway simulation?"
                )
            self.step()
            executed += 1
        return executed
