"""Minimal discrete-event simulation core.

A deterministic event queue shared by the fluid and packet simulators:
events fire in (time, sequence) order, so equal-time events run in
scheduling order and runs are exactly reproducible.

Two draining styles are supported:

* :meth:`EventQueue.step` / :meth:`EventQueue.run` -- the classic one
  event at a time loop;
* :meth:`EventQueue.pop_batch` -- calendar-style draining that pops
  *every* event sharing the earliest timestamp in one call, so engines
  that can advance a whole epoch with vector operations (the vectorized
  packet engine's wave calendar) amortise the queue overhead across the
  batch.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable

__all__ = ["EventQueue", "SimulationError"]


class SimulationError(RuntimeError):
    """The simulation reached an inconsistent state."""


class EventQueue:
    """Priority queue of ``(time, callback, payload)`` events."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable, tuple]] = []
        self._seq = count()
        self.now = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    def _past_tolerance(self) -> float:
        # Scheduling "in the past" must allow for float rounding in time
        # arithmetic.  An absolute 1e-9 tolerance breaks once simulated
        # time grows large (at now=1e6 us the spacing between adjacent
        # doubles is ~1.2e-10, but accumulated sums carry relative -- not
        # absolute -- error), so the guard scales with the clock.
        return 1e-9 * max(1.0, abs(self.now))

    def schedule(self, when: float, callback: Callable, *args: Any) -> None:
        """Schedule ``callback(*args)`` at absolute time ``when``."""
        if when < self.now - self._past_tolerance():
            raise SimulationError(
                f"cannot schedule event in the past ({when} < now {self.now})"
            )
        heapq.heappush(self._heap, (when, next(self._seq), callback, args))

    def schedule_in(self, delay: float, callback: Callable, *args: Any) -> None:
        """Schedule ``callback(*args)`` after ``delay`` time units."""
        self.schedule(self.now + delay, callback, *args)

    def peek_time(self) -> float | None:
        """Timestamp of the earliest pending event (None when empty)."""
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        if not self._heap:
            return False
        when, _, callback, args = heapq.heappop(self._heap)
        self.now = when
        callback(*args)
        return True

    def pop_batch(self) -> list[tuple[Callable, tuple]]:
        """Pop every event sharing the earliest timestamp, advance the
        clock to it, and return the ``(callback, args)`` pairs in
        scheduling order *without* executing them.

        Callers that process whole same-time batches with vector
        operations (rather than one Python callback per event) use this
        as the bucketed-calendar primitive; determinism is unchanged
        because within a batch the scheduling order is preserved.
        """
        if not self._heap:
            return []
        when = self._heap[0][0]
        self.now = when
        batch: list[tuple[Callable, tuple]] = []
        while self._heap and self._heap[0][0] == when:
            _, _, callback, args = heapq.heappop(self._heap)
            batch.append((callback, args))
        return batch

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
        stop: Callable[[], bool] | None = None,
    ) -> int:
        """Drain the queue (optionally bounded); returns events executed.

        ``stop`` is an optional predicate evaluated before each event:
        once it returns True the drain ends even though events remain.
        Engines that schedule bookkeeping far beyond the traffic they
        simulate (the fault injector's link-up/flaky-window timers) use
        it to finish as soon as every message is resolved.
        """
        executed = 0
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            if stop is not None and stop():
                break
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; runaway simulation?"
                )
            self.step()
            executed += 1
        return executed
