"""Link and host calibration constants (paper section II).

The paper's OMNeT++ model is "calibrated against InfiniBand QDR links
(4000 MBps unidirectional bandwidth) of Mellanox IS4 switches (36
ports) connected to hosts with PCIe Gen2 8X slots (supporting 3250 MBps
unidirectional bandwidth)".  We use the same numbers.

Units used throughout the simulators:

* time in **microseconds**,
* sizes in **bytes**,
* bandwidth in **bytes per microsecond** -- conveniently, 1 MB/s
  (10^6 B / 10^6 us) is 1 B/us, so QDR's 4000 MB/s is 4000 B/us.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LinkCalibration", "QDR_PCIE_GEN2", "DDR_PCIE_GEN1", "EDR_PCIE_GEN3"]


@dataclass(frozen=True)
class LinkCalibration:
    """Bandwidths and latencies of one fabric generation."""

    name: str
    link_bandwidth: float        # switch-to-switch wire, B/us
    host_bandwidth: float        # host injection/ejection (PCIe), B/us
    switch_latency: float = 0.1  # cut-through port-to-port, us (IS4 ~100ns)
    wire_latency: float = 0.025  # copper cable propagation, us (~5 m)
    host_overhead: float = 1.0   # per-message software/DMA setup, us
    mtu: int = 2048              # bytes per packet (IB MTU)

    def __post_init__(self) -> None:
        if self.link_bandwidth <= 0 or self.host_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.mtu < 1:
            raise ValueError("mtu must be at least one byte")

    @property
    def min_bandwidth(self) -> float:
        """The end-to-end bottleneck of an uncontended flow."""
        return min(self.link_bandwidth, self.host_bandwidth)

    def wire_time(self, nbytes: int | float) -> float:
        """Serialisation time of ``nbytes`` on a switch link."""
        return nbytes / self.link_bandwidth

    def host_time(self, nbytes: int | float) -> float:
        """Serialisation time of ``nbytes`` through the host interface."""
        return nbytes / self.host_bandwidth

    def zero_load_latency(self, nbytes: int, hops: int) -> float:
        """Cut-through latency of one uncontended message over ``hops``
        switch traversals: overhead + per-hop header latency + single
        serialisation at the bottleneck."""
        per_hop = self.switch_latency + self.wire_latency
        return self.host_overhead + hops * per_hop + nbytes / self.min_bandwidth


#: The paper's setup: IB QDR + PCIe Gen2 x8 hosts (section II).
QDR_PCIE_GEN2 = LinkCalibration(
    name="QDR/PCIe-Gen2x8", link_bandwidth=4000.0, host_bandwidth=3250.0
)

#: An older generation, handy for sensitivity studies.
DDR_PCIE_GEN1 = LinkCalibration(
    name="DDR/PCIe-Gen1x8", link_bandwidth=2000.0, host_bandwidth=1600.0
)

#: A newer generation where the host is no longer the bottleneck.
EDR_PCIE_GEN3 = LinkCalibration(
    name="EDR/PCIe-Gen3x16", link_bandwidth=12000.0, host_bandwidth=12800.0
)
