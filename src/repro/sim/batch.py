"""Tensorized mega-batch packet engine: many scenarios, one NumPy program.

The vectorized engine (:mod:`repro.sim.packet_vector`) advances one
scenario's wave calendar over flat ``(message x hop)`` arrays.  Every
recurrence in :func:`~repro.sim.packet_vector._advance_wave` updates a
row using only that row's state -- rows never interact -- so a *batch*
axis folds straight into the row axis: the k-th messages of every port
of every scenario form one mega-wave, and thousands of (fault schedule,
ordering, placement, credit regime) variants advance as a single NumPy
program.  Per-scenario Python overhead -- workload flattening, record
objects, result finalisation, and above all the
:class:`~repro.faults.controller.HealingController` repair
precomputation -- is paid once per batch (or never: repairs are only
computed for elements that actually need the event core).

Soundness is per element, exactly as in the unbatched engine:

* **conflicts** -- a conservative per-``(element, link)`` screen runs
  inside the wave loop (same-wave link sharing, or an interval starting
  before the latest earlier-wave exit on that link); screened-clean
  elements provably have pairwise-disjoint occupancy intervals, and
  flagged elements get the exact per-element scan.  Only elements whose
  exact scan finds an overlap are demoted;
* **faults** -- per element, the unbatched fault-plane checks run
  verbatim: a live repair before the element's last delivery, or a
  fault window intersecting the element's occupancy (a cheap
  min-enter/max-exit envelope prunes schedules that cannot intersect),
  demotes that element only.  When ``sweep_delay`` is given instead of
  a prebuilt controller, the earliest-swap time is computed from
  schedule algebra alone -- the controller (and its repair BFS) is
  built lazily, only for demoted elements;
* **demotion** -- a demoted element reruns through
  ``PacketSimulator(engine="vector")`` unbatched, which itself falls
  back to the event-driven core when needed, so every element's result
  is bit-identical to the one-scenario-at-a-time path, fast or not.

Results are lazy: :class:`BatchElement` holds array slices and computes
``makespan``/``latencies`` vectorized; the full
:class:`~repro.sim.packet.PacketResult` (with per-message record
objects) is materialised only on demand through the same
``_finalize`` code path the unbatched engine uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from ..fabric.lft import ForwardingTables
from .calibration import QDR_PCIE_GEN2, LinkCalibration
from .events import SimulationError
from .fluid import MessageRecord
from .packet import PacketEngineStats, PacketResult, PacketSimulator
from .packet_vector import CONFLICT_MARGIN, _advance_wave

if TYPE_CHECKING:  # pragma: no cover
    from ..collectives.cps import CPS
    from ..faults.controller import HealingController
    from ..faults.schedule import FaultSchedule

__all__ = [
    "INHERIT",
    "BatchElement",
    "BatchResult",
    "BatchSpec",
    "BatchStats",
    "ScenarioSpec",
    "cps_workload_arrays",
    "ordering_batch",
    "run_batch",
]


class _Inherit:
    """Sentinel: a per-element knob deferring to the batch default."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "INHERIT"


INHERIT = _Inherit()


@dataclass
class ScenarioSpec:
    """One batch element: a workload plus its fault/credit environment.

    The workload is either ``sequences`` (the per-port ``(dst, size)``
    lists every simulator consumes) or the struct-of-arrays form
    ``dst``/``size`` of shape ``(N, K)`` with per-port message counts
    ``nmsg`` -- row ``(p, k)`` is port ``p``'s ``k``-th message.  The
    array form skips all per-element Python flattening and is what
    :func:`ordering_batch` builds for whole placement grids at once.

    ``sweep_delay`` requests self-healing semantics without paying for
    the repair timeline up front: the batch engine derives the
    earliest-swap time from the schedule alone and only constructs the
    :class:`~repro.faults.controller.HealingController` (identical to
    ``HealingController(tables, faults, sweep_delay, strategy)``) if
    the element is demoted to the event core.  Pass ``healing`` to
    reuse a prebuilt controller instead.
    """

    sequences: list[list[tuple[int, float]]] | None = None
    dst: np.ndarray | None = None
    size: np.ndarray | None = None
    nmsg: np.ndarray | None = None
    faults: "FaultSchedule | None" = None
    healing: "HealingController | None" = None
    sweep_delay: float | None = None
    repair_strategy: str = "naive"
    credit_limit: int | None | _Inherit = INHERIT
    label: str = ""

    def __post_init__(self) -> None:
        has_arrays = self.dst is not None
        if has_arrays != (self.nmsg is not None) or \
                has_arrays != (self.size is not None):
            raise ValueError(
                "array-form workload needs all of dst/size/nmsg")
        if (self.sequences is None) == (not has_arrays):
            raise ValueError(
                "exactly one of sequences or dst/size/nmsg is required")
        if self.healing is not None and self.sweep_delay is not None:
            raise ValueError("healing and sweep_delay are exclusive")
        if (self.healing is not None or self.sweep_delay is not None) \
                and self.faults is None:
            raise ValueError("healing/sweep_delay given without faults")

    @classmethod
    def from_sequences(cls, sequences, **kw) -> "ScenarioSpec":
        return cls(sequences=sequences, **kw)

    @classmethod
    def from_arrays(cls, dst, size, nmsg, **kw) -> "ScenarioSpec":
        return cls(dst=np.asarray(dst, dtype=np.int64),
                   size=np.asarray(size, dtype=np.float64),
                   nmsg=np.asarray(nmsg, dtype=np.int64), **kw)

    def materialize_sequences(
        self, num_endports: int
    ) -> list[list[tuple[int, float]]]:
        """The list-of-lists workload (built from arrays on demand)."""
        if self.sequences is not None:
            return self.sequences
        seqs: list[list[tuple[int, float]]] = []
        for p in range(num_endports):
            n = int(self.nmsg[p])
            seqs.append([(int(self.dst[p, k]), float(self.size[p, k]))
                         for k in range(n)])
        return seqs


@dataclass
class BatchSpec:
    """A mega-batch: shared tables/calibration, per-element scenarios."""

    tables: ForwardingTables
    elements: list[ScenarioSpec]
    calibration: LinkCalibration = QDR_PCIE_GEN2
    credit_limit: int | None = None
    max_events: int = 5_000_000

    def resolved_credit(self, i: int) -> int | None:
        cl = self.elements[i].credit_limit
        return self.credit_limit if isinstance(cl, _Inherit) else cl


@dataclass
class BatchStats:
    """How a batch run was executed."""

    total: int = 0
    fast_path: int = 0
    fallback_route: int = 0
    fallback_budget: int = 0
    fallback_conflict: int = 0
    fallback_fault: int = 0
    errors: int = 0
    events_saved: int = 0

    @property
    def fallback(self) -> int:
        return (self.fallback_route + self.fallback_budget
                + self.fallback_conflict + self.fallback_fault)


class BatchElement:
    """Lazy per-element result: array metrics now, records on demand."""

    def __init__(self, index: int, spec: BatchSpec):
        self.index = index
        self.label = spec.elements[index].label
        self._spec = spec
        #: "fast" | "fallback" | "error"
        self.status = "fast"
        #: demotion detail: "" | "route" | "budget" | "conflict" | "fault"
        self.reason = ""
        self._result: PacketResult | None = None
        self._error: SimulationError | None = None
        # fast-path payload (overwritten by run_batch for non-empty
        # elements; the defaults are the correct empty-workload answer)
        z = np.zeros(0, dtype=np.int64)
        zf = np.zeros(0, dtype=np.float64)
        self._src = z
        self._dst = z
        self._size = zf
        self._start = zf
        self._inject = zf
        self._finish = zf
        self._occ: tuple[np.ndarray, np.ndarray, np.ndarray] | None = \
            (z, zf, zf)
        self._makespan = 0.0
        self._n_real = 0
        self._packets = 0
        self._events_saved = 0

    # -- vectorized metrics (no record objects) ------------------------
    @property
    def makespan(self) -> float:
        if self._result is not None:
            return self._result.makespan
        if self._error is not None:
            return math.nan
        return self._makespan

    @property
    def latencies(self) -> np.ndarray:
        if self._result is not None:
            return self._result.latencies
        if self._error is not None:
            return np.empty(0)
        real = (self._src != self._dst) & (self._size > 0)
        return (self._finish - self._start)[real]

    def occupancy(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fast-path link-occupancy intervals ``(links, enter, exit)``.

        Only available for fast-path elements (the unbatched engine
        discards them); frontends use these to reason about fault
        windows without re-simulating.
        """
        if self._occ is None:
            raise ValueError(
                f"element {self.index} has no analytic occupancy "
                f"(status={self.status})")
        return self._occ

    # -- full result ----------------------------------------------------
    def packet_result(self) -> PacketResult:
        """The exact :class:`PacketResult` of the unbatched engine.

        Fast-path elements materialise records through the same
        ``_finalize`` the unbatched engine uses; demoted elements
        return their stored fallback result; elements whose unbatched
        run would have raised re-raise the same error here.
        """
        if self._error is not None:
            raise self._error
        if self._result is not None:
            return self._result
        spec = self._spec
        seqs = spec.elements[self.index].materialize_sequences(
            spec.tables.fabric.num_endports)
        records = [
            MessageRecord(int(self._src[m]), int(self._dst[m]),
                          float(self._size[m]), float(self._start[m]),
                          float(self._inject[m]), float(self._finish[m]))
            for m in range(len(self._src))
        ]
        stats = PacketEngineStats(
            engine="vector", fast_path=True, fallback=False, conflicts=0,
            messages=self._n_real, packets=self._packets,
            events_saved=self._events_saved)
        sim = PacketSimulator(spec.tables, spec.calibration,
                              credit_limit=spec.resolved_credit(self.index),
                              max_events=spec.max_events)
        self._result = sim._finalize(records, seqs, stats)
        return self._result


@dataclass
class BatchResult:
    """Outcome of :func:`run_batch`."""

    elements: list[BatchElement]
    stats: BatchStats

    def __len__(self) -> int:
        return len(self.elements)

    def __getitem__(self, i: int) -> BatchElement:
        return self.elements[i]

    def makespans(self) -> np.ndarray:
        return np.asarray([e.makespan for e in self.elements])

    def statuses(self) -> list[str]:
        return [e.status for e in self.elements]

    def packet_result(self, i: int) -> PacketResult:
        return self.elements[i].packet_result()


# ----------------------------------------------------------------------
# route walk with per-row anomaly masks
# ----------------------------------------------------------------------

def _route_matrix_masked(
    tables: ForwardingTables, src: np.ndarray, dst: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Like :func:`packet_vector._route_matrix` but per-row: anomalous
    rows (dead cable, unrouted destination, loop) are flagged in
    ``bad`` instead of failing the whole walk, so only the owning batch
    elements are demoted."""
    fab = tables.fabric
    R = len(src)
    max_links = 2 * int(fab.node_level.max()) + 2
    links = np.full((R, max_links), -1, dtype=np.int64)
    length = np.ones(R, dtype=np.int64)
    bad = np.zeros(R, dtype=bool)
    if R == 0:
        return links, length, bad
    gp0 = fab.port_start[src].astype(np.int64)
    links[:, 0] = gp0
    cur = fab.peer_node[gp0].astype(np.int64)
    bad |= cur < 0
    active = np.flatnonzero(~bad & (cur != dst))
    for h in range(1, max_links):
        if len(active) == 0:
            return links, length, bad
        gp = np.asarray(tables.out_port(cur[active], dst[active]),
                        dtype=np.int64)
        dead = gp < 0
        if dead.any():
            bad[active[dead]] = True
            active = active[~dead]
            gp = gp[~dead]
        links[active, h] = gp
        length[active] += 1
        nxt = fab.peer_node[gp].astype(np.int64)
        dead = nxt < 0
        if dead.any():
            bad[active[dead]] = True
            active = active[~dead]
            nxt = nxt[~dead]
        cur[active] = nxt
        active = active[cur[active] != dst[active]]
    bad[active] = True  # routing loop: let the reference engine diagnose
    return links, length, bad


def _element_has_conflict(la: np.ndarray, ea: np.ndarray,
                          xa: np.ndarray) -> bool:
    """Exact single-element scan: the unbatched engine's lexsorted
    adjacent-overlap test (its ``conflicts > 0`` decision is exactly
    'some pair of same-link intervals overlaps', which adjacency in
    (link, enter) order detects iff it exists)."""
    order = np.lexsort((ea, la))
    ls, es, xs = la[order], ea[order], xa[order]
    overlap = (ls[1:] == ls[:-1]) & (es[1:] < xs[:-1] + CONFLICT_MARGIN)
    return bool(overlap.any())


def _earliest_swap(el: ScenarioSpec) -> float:
    """``HealingController.earliest_swap()`` without the controller.

    The controller keys one sweep per distinct ``event.time +
    sweep_delay`` and reports the minimum -- pure schedule algebra, so
    the lazy path computes the identical float without any repair
    precomputation."""
    if el.healing is not None:
        return el.healing.earliest_swap()
    if el.sweep_delay is None or el.faults is None:
        return math.inf
    events = el.faults.topology_events()
    if not events:
        return math.inf
    return min(e.time + el.sweep_delay for e in events)


def _lazy_healing(tables: ForwardingTables,
                  el: ScenarioSpec) -> "HealingController | None":
    if el.healing is not None:
        return el.healing
    if el.sweep_delay is None or el.faults is None:
        return None
    from ..faults.controller import HealingController

    return HealingController(tables, el.faults,
                             sweep_delay=el.sweep_delay,
                             strategy=el.repair_strategy)


# ----------------------------------------------------------------------
# the batch engine
# ----------------------------------------------------------------------

@dataclass
class _Flat:
    """Flat struct-of-arrays for one credit group, rows contiguous per
    element in original element order."""

    elem: np.ndarray      # group-local element index per message row
    src: np.ndarray
    dst: np.ndarray
    size: np.ndarray
    wave: np.ndarray
    real: np.ndarray
    pieces: np.ndarray
    last_size: np.ndarray
    links: np.ndarray     # per real row
    length: np.ndarray    # per real row

    def compress(self, keep_elem: np.ndarray) -> "_Flat":
        keep = keep_elem[self.elem]
        real_idx = np.flatnonzero(self.real)
        return _Flat(
            elem=self.elem[keep], src=self.src[keep], dst=self.dst[keep],
            size=self.size[keep], wave=self.wave[keep],
            real=self.real[keep], pieces=self.pieces[keep],
            last_size=self.last_size[keep],
            links=self.links[keep[real_idx]],
            length=self.length[keep[real_idx]],
        )


def _flatten_element(el: ScenarioSpec, num_endports: int
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                np.ndarray]:
    """(src, dst, size, wave) rows of one element, in the exact
    row-major (port, seq) order ``run_vectorized`` flattens to."""
    if el.sequences is not None:
        src_l: list[int] = []
        dst_l: list[int] = []
        size_l: list[float] = []
        wave_l: list[int] = []
        for p, seq in enumerate(el.sequences):
            for k, (d, s) in enumerate(seq):
                src_l.append(p)
                dst_l.append(int(d))
                size_l.append(float(s))
                wave_l.append(k)
        return (np.asarray(src_l, dtype=np.int64),
                np.asarray(dst_l, dtype=np.int64),
                np.asarray(size_l, dtype=np.float64),
                np.asarray(wave_l, dtype=np.int64))
    nmsg = el.nmsg
    K = el.dst.shape[1] if el.dst.ndim == 2 else 0
    if K == 0 or not nmsg.any():
        z = np.zeros(0, dtype=np.int64)
        return z, z, np.zeros(0), z
    mask = np.arange(K, dtype=np.int64)[None, :] < nmsg[:, None]
    p, k = np.nonzero(mask)  # row-major: port-major then seq -- matches
    return (p.astype(np.int64), el.dst[p, k].astype(np.int64),
            el.size[p, k].astype(np.float64), k.astype(np.int64))


def run_batch(spec: BatchSpec) -> BatchResult:
    """Advance every element of ``spec`` through the folded wave
    calendar; demote only the elements whose analytic fast path is
    unsound, each to its own unbatched (bit-identical) run."""
    tables = spec.tables
    fab = tables.fabric
    N = fab.num_endports
    B = len(spec.elements)
    stats = BatchStats(total=B)
    out = [BatchElement(i, spec) for i in range(B)]
    if B == 0:
        return BatchResult(elements=out, stats=stats)
    for i, el in enumerate(spec.elements):
        if el.sequences is not None and len(el.sequences) != N:
            raise ValueError(
                f"element {i}: need {N} sequences, got {len(el.sequences)}")
        if el.dst is not None and el.dst.shape[0] != N:
            raise ValueError(
                f"element {i}: dst must have {N} rows, got {el.dst.shape}")

    # Group by credit regime: the ring buffer shape is uniform per
    # _advance_wave call.  Insertion-ordered, deterministic.
    group_keys: list[int | None] = []
    group_members: list[list[int]] = []
    for i in range(B):
        limit = spec.resolved_credit(i)
        if limit is not None and limit < 1:
            raise ValueError("credit_limit must be >= 1 (or None)")
        try:
            g = group_keys.index(limit)
        except ValueError:
            group_keys.append(limit)
            group_members.append([])
            g = len(group_keys) - 1
        group_members[g].append(i)

    caps_full = PacketSimulator(
        tables, spec.calibration, max_events=spec.max_events
    )._link_capacities()

    for limit, members in zip(group_keys, group_members):
        _run_group(spec, limit, members, caps_full, out, stats)

    # Demoted elements: unbatched runs, in original element order.
    for e in out:
        if e.status != "fallback":
            continue
        el = spec.elements[e.index]
        seqs = el.materialize_sequences(N)
        sim = PacketSimulator(
            tables, spec.calibration,
            credit_limit=spec.resolved_credit(e.index),
            max_events=spec.max_events, engine="vector",
            faults=el.faults, healing=_lazy_healing(tables, el))
        try:
            e._result = sim.run_sequences(seqs)
        except SimulationError as err:
            e._error = err
            e.status = "error"
            stats.errors += 1
    stats.fast_path = sum(1 for e in out if e.status == "fast")
    stats.events_saved = sum(e._events_saved for e in out
                             if e.status == "fast")
    return BatchResult(elements=out, stats=stats)


def _demote(e: BatchElement, reason: str, stats: BatchStats) -> None:
    e.status = "fallback"
    e.reason = reason
    e._occ = None  # the event core does not expose analytic intervals
    setattr(stats, f"fallback_{reason}",
            getattr(stats, f"fallback_{reason}") + 1)


#: Elements advanced per folded pass.  Chunking bounds peak memory (the
#: credit ring is O(rows x hops x limit) floats) and keeps the
#: per-(element, link) screen arrays cache-resident, so 100k-element
#: batches scale linearly instead of thrashing.
_CHUNK_ELEMS = 256


def _run_group(spec: BatchSpec, limit: int | None, members: list[int],
               caps_full: np.ndarray, out: list[BatchElement],
               stats: BatchStats) -> None:
    for c0 in range(0, len(members), _CHUNK_ELEMS):
        _run_chunk(spec, limit, members[c0:c0 + _CHUNK_ELEMS],
                   caps_full, out, stats)


def _run_chunk(spec: BatchSpec, limit: int | None, members: list[int],
               caps_full: np.ndarray, out: list[BatchElement],
               stats: BatchStats) -> None:
    tables = spec.tables
    fab = spec.tables.fabric
    N = fab.num_endports
    P = fab.num_ports
    cal = spec.calibration
    mtu = float(cal.mtu)
    Bg = len(members)

    # -- flat build (rows contiguous per element) ----------------------
    specs = [spec.elements[gi] for gi in members]
    uniform_k = (all(el.dst is not None for el in specs)
                 and len({el.dst.shape for el in specs}) == 1)
    if uniform_k and specs[0].dst.shape[1] > 0:
        # Grid case: every element is array-form with one (N, K) shape;
        # flatten the whole chunk in one row-major nonzero (same
        # element-major/port-major/seq row order as the per-element
        # path).
        dst3 = np.stack([el.dst for el in specs])
        size3 = np.stack([el.size for el in specs])
        nmsg2 = np.stack([el.nmsg for el in specs])
        K = dst3.shape[2]
        mask = np.arange(K, dtype=np.int64)[None, None, :] \
            < nmsg2[:, :, None]
        elem, src, wave = (a.astype(np.int64) for a in np.nonzero(mask))
        dst = dst3[elem, src, wave].astype(np.int64)
        size = size3[elem, src, wave].astype(np.float64)
    else:
        parts = [_flatten_element(el, N) for el in specs]
        counts0 = np.asarray([len(p[0]) for p in parts], dtype=np.int64)
        elem = np.repeat(np.arange(Bg, dtype=np.int64), counts0)
        if len(elem) == 0:
            return  # every element empty: all trivially fast
        src = np.concatenate([p[0] for p in parts])
        dst = np.concatenate([p[1] for p in parts])
        size = np.concatenate([p[2] for p in parts])
        wave = np.concatenate([p[3] for p in parts])
    if len(elem) == 0:
        return  # every element empty: all trivially fast
    real = (src != dst) & (size > 0)

    # Segmentation: identical element-wise formulas to run_vectorized.
    full, rest = np.divmod(size, mtu)
    pieces = full.astype(np.int64) + (rest > 1e-12)
    pieces = np.maximum(pieces, 1)
    last_size = np.where(rest > 1e-12, rest, np.where(full >= 1, mtu, size))

    links, length, bad = _route_matrix_masked(tables, src[real], dst[real])
    elem_ok = np.ones(Bg, dtype=bool)
    if bad.any():
        for g in np.unique(elem[real][bad]):
            _demote(out[members[int(g)]], "route", stats)
            elem_ok[int(g)] = False

    # Event budget, per element (mirrors the pre-wave check; elements
    # already demoted for routing never reach it unbatched either).
    ev_rows = (pieces[real] * length).astype(np.float64)
    ev_per_elem = np.bincount(elem[real], weights=ev_rows, minlength=Bg)
    over = elem_ok & (ev_per_elem > spec.max_events)
    if over.any():
        for g in np.flatnonzero(over):
            _demote(out[members[int(g)]], "budget", stats)
            elem_ok[int(g)] = False

    flat = _Flat(elem=elem, src=src, dst=dst, size=size, wave=wave,
                 real=real, pieces=pieces, last_size=last_size,
                 links=links, length=length)
    if not elem_ok.all():
        flat = flat.compress(elem_ok)
    if len(flat.elem) == 0:
        return

    M = len(flat.elem)

    # Wave-major layout: one stable (radix) sort brings every wave's
    # rows into a contiguous slice, so the hot loop advances views
    # instead of paying a fancy-index copy of links/caps per wave.
    # Stability keeps rows element-major inside each wave.
    perm = np.argsort(flat.wave, kind="stable")
    wsrc = flat.src[perm]
    welem = flat.elem[perm]
    wreal = flat.real[perm]
    wpieces = flat.pieces[perm]
    wlast = flat.last_size[perm]
    wwave = flat.wave[perm]
    # Route rows, re-gathered into wave-major real-row order.
    real_row_em = np.cumsum(flat.real) - 1
    row_map = real_row_em[perm[np.flatnonzero(wreal)]]
    wlinks = flat.links[row_map]
    wlength = flat.length[row_map]
    wcaps = np.where(wlinks >= 0,
                     caps_full[np.where(wlinks >= 0, wlinks, 0)], 1.0)
    wreal_row = np.cumsum(wreal) - 1

    n_waves = int(flat.wave.max()) + 1
    wb = np.searchsorted(wwave, np.arange(n_waves + 1, dtype=np.int64))

    wstart = np.zeros(M)
    winject = np.zeros(M)
    wfinish = np.zeros(M)
    t_port = np.zeros(Bg * N)
    wfold = welem * N + wsrc  # folded (element, port) axis

    # Per-(element, link) occupancy summaries for the conflict screen
    # and the fault-window prefilter.
    maxx = np.full(Bg * P, -np.inf)
    minn = np.full(Bg * P, np.inf)
    dup_flag = np.zeros(Bg, dtype=bool)    # same-wave link sharing
    cross_flag = np.zeros(Bg, dtype=bool)  # cross-wave proximity

    int_elem: list[np.ndarray] = []
    int_link: list[np.ndarray] = []
    int_enter: list[np.ndarray] = []
    int_exit: list[np.ndarray] = []

    for w in range(n_waves):
        lo, hi = int(wb[w]), int(wb[w + 1])
        if lo == hi:
            continue
        fw = wfold[lo:hi]
        st = t_port[fw]
        wstart[lo:hi] = st
        emp = ~wreal[lo:hi]
        if emp.any():
            t0 = st[emp] + cal.host_overhead
            vi = winject[lo:hi]
            vf = wfinish[lo:hi]
            vi[emp] = t0
            vf[emp] = t0
            t_port[fw[emp]] = t0
            live = ~emp
            if not live.any():
                continue
            rows = wreal_row[lo:hi][live]
            f0 = st[live] + cal.host_overhead
            lw = wlinks[rows]
            lenw = wlength[rows]
            cw = wcaps[rows]
            pw = wpieces[lo:hi][live]
            lsw = wlast[lo:hi][live]
            el_live = welem[lo:hi][live]
            inj, fin, tails, enter, exit_ = _advance_wave(
                cal, limit, f0, lw, lenw, cw, pw, lsw)
            vi[live] = inj
            vf[live] = fin
            t_port[fw[live]] = tails
        else:
            # Dense wave (the grid case): every slice is a view.
            r0 = int(wreal_row[lo])
            r1 = r0 + (hi - lo)
            lw = wlinks[r0:r1]
            lenw = wlength[r0:r1]
            cw = wcaps[r0:r1]
            el_live = welem[lo:hi]
            f0 = st + cal.host_overhead
            inj, fin, tails, enter, exit_ = _advance_wave(
                cal, limit, f0, lw, lenw, cw,
                wpieces[lo:hi], wlast[lo:hi])
            winject[lo:hi] = inj
            wfinish[lo:hi] = fin
            t_port[fw] = tails

        H = enter.shape[1]
        used = np.arange(H, dtype=np.int64)[None, :] < lenw[:, None]
        ilink = lw[:, :H][used]
        ienter = enter[used]
        iexit = exit_[used]
        ielem = np.repeat(el_live, lenw)
        int_elem.append(ielem)
        int_link.append(ilink)
        int_enter.append(ienter)
        int_exit.append(iexit)

        # Conservative conflict screen.  (a) two same-wave messages on
        # one (element, link); (b) an interval starting before the
        # latest earlier-wave exit on its (element, link).  Clean means
        # provably pairwise-disjoint; flagged gets the exact scan.
        keys = ielem * P + ilink
        kcount = np.bincount(keys, minlength=Bg * P)
        dups = kcount[keys] > 1
        if dups.any():
            dup_flag[ielem[dups]] = True
        prev = maxx[keys]
        near = ienter < prev + CONFLICT_MARGIN
        if near.any():
            cross_flag[ielem[near]] = True
        # Last-write-wins on duplicate keys is fine: only dup-flagged
        # elements can collide, and they bypass these summaries.
        maxx[keys] = np.maximum(prev, iexit)
        minn[keys] = np.minimum(minn[keys], ienter)

    # Back to element-major for per-element result slices.
    start = np.empty(M)
    inject = np.empty(M)
    finish = np.empty(M)
    start[perm] = wstart
    inject[perm] = winject
    finish[perm] = wfinish

    la = np.concatenate(int_link) if int_link else np.zeros(0, np.int64)
    ea = np.concatenate(int_enter) if int_enter else np.zeros(0)
    xa = np.concatenate(int_exit) if int_exit else np.zeros(0)
    ie = np.concatenate(int_elem) if int_elem else np.zeros(0, np.int64)
    # Element-major interval views: stable (radix) sort by element once,
    # then every per-element extraction below is a contiguous slice
    # instead of a full-array mask per element.
    iorder = np.argsort(ie, kind="stable")
    la_s = la[iorder]
    ea_s = ea[iorder]
    xa_s = xa[iorder]
    ibounds = np.searchsorted(ie[iorder], np.arange(Bg + 1))

    # Per-element bookkeeping for results.
    counts = np.bincount(flat.elem, minlength=Bg)
    offsets = np.zeros(Bg + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    makespan = np.zeros(Bg)
    nz = counts > 0
    if nz.any():
        makespan[nz] = np.maximum.reduceat(finish, offsets[:-1][nz])
    n_real = np.bincount(flat.elem[flat.real], minlength=Bg)
    packets = np.bincount(flat.elem[flat.real],
                          weights=flat.pieces[flat.real].astype(np.float64),
                          minlength=Bg)
    has_ivals = np.bincount(ie, minlength=Bg) > 0
    # The reference engine's arrival-event count (pieces x hops) every
    # fast element avoids, on the compressed arrays.
    ev_saved = np.bincount(flat.elem[flat.real],
                           weights=(flat.pieces[flat.real]
                                    * flat.length).astype(np.float64),
                           minlength=Bg)

    # -- exact per-element conflict verdicts for screened elements -----
    flagged = dup_flag | cross_flag
    windows_cache: dict[int, list[tuple[int, int, float, float]]] = {}
    for g in range(Bg):
        e = out[members[g]]
        if e.status != "fast":
            continue
        i0, i1 = int(ibounds[g]), int(ibounds[g + 1])
        if flagged[g]:
            if _element_has_conflict(la_s[i0:i1], ea_s[i0:i1],
                                     xa_s[i0:i1]):
                _demote(e, "conflict", stats)
                continue
        el = spec.elements[members[g]]
        faults = el.faults
        if faults is not None and not faults.is_empty() and has_ivals[g]:
            if _earliest_swap(el) < makespan[g] + CONFLICT_MARGIN:
                _demote(e, "fault", stats)
                continue
            key = id(faults)
            if key not in windows_cache:
                wins = [(a, b, s, t)
                        for a, b, s, t in faults.down_intervals(fab)]
                wins += [(a, b, s, t) for a, b, s, t, _
                         in faults.flaky_intervals(fab)]
                windows_cache[key] = wins
            # Envelope prune: a window that ends before every enter or
            # starts after every exit on both cable ends cannot
            # intersect.  Dup-flagged summaries may be stale -- those
            # elements take the exact check unconditionally.
            may_hit = dup_flag[g]
            if not may_hit:
                base = g * P
                for a, b, s, t in windows_cache[key]:
                    for gp in (a, b):
                        if minn[base + gp] < t + CONFLICT_MARGIN \
                                and maxx[base + gp] > s - CONFLICT_MARGIN:
                            may_hit = True
                            break
                    if may_hit:
                        break
            if may_hit:
                if faults.overlaps_occupancy(fab, la_s[i0:i1],
                                             ea_s[i0:i1], xa_s[i0:i1],
                                             margin=CONFLICT_MARGIN):
                    _demote(e, "fault", stats)
                    continue

        # Fast element: attach the lazy payload.
        lo, hi = int(offsets[g]), int(offsets[g + 1])
        e._src = flat.src[lo:hi]
        e._dst = flat.dst[lo:hi]
        e._size = flat.size[lo:hi]
        e._start = start[lo:hi]
        e._inject = inject[lo:hi]
        e._finish = finish[lo:hi]
        e._makespan = float(makespan[g])
        e._n_real = int(n_real[g])
        e._packets = int(packets[g])
        e._events_saved = int(ev_saved[g])
        e._occ = (la_s[i0:i1], ea_s[i0:i1], xa_s[i0:i1])


# ----------------------------------------------------------------------
# grid builders
# ----------------------------------------------------------------------

def cps_workload_arrays(
    cps: "CPS",
    placements: np.ndarray,
    num_endports: int,
    message_size: float | list[float],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Array-form :func:`~repro.sim.workload.cps_workload` for a whole
    placement grid: ``(dst, size, nmsg)`` of shapes ``(B, N, K)`` /
    ``(B, N, K)`` / ``(B, N)``, row ``(t, p, k)`` equal to
    ``cps_workload(cps, placements[t], N, message_size)[p][k]``.

    Raises :class:`ValueError` for CPS stages where one rank sends more
    than once (none of the paper's collectives do) -- callers fall back
    to per-element ``cps_workload`` there.
    """
    from ..collectives.schedule import stage_flows_batch

    placements = np.asarray(placements, dtype=np.int64)
    if placements.ndim == 1:
        placements = placements[None, :]
    B = placements.shape[0]
    N = num_endports
    if isinstance(message_size, (int, float)):
        sizes = [float(message_size)] * len(cps)
    else:
        sizes = [float(s) for s in message_size]
        if len(sizes) != len(cps):
            raise ValueError(f"{len(sizes)} sizes for {len(cps)} stages")

    count = np.zeros((B, N), dtype=np.int64)
    entries = []
    for s_i, st in enumerate(cps):
        s_src, s_dst, order = stage_flows_batch(st, placements)
        if len(s_src) == 0:
            continue
        keys = order * N + s_src
        if (np.bincount(keys, minlength=B * N) > 1).any():
            raise ValueError(
                f"stage {s_i}: a port sends more than one message; "
                "use per-element sequences")
        k = count[order, s_src]
        entries.append((order, s_src, k, s_dst, sizes[s_i]))
        count[order, s_src] = k + 1
    K = int(count.max()) if entries else 0
    dst3 = np.zeros((B, N, K), dtype=np.int64)
    size3 = np.zeros((B, N, K), dtype=np.float64)
    for order, s_src, k, s_dst, sz in entries:
        dst3[order, s_src, k] = s_dst
        size3[order, s_src, k] = sz
    return dst3, size3, count


def ordering_batch(
    tables: ForwardingTables,
    cps: "CPS",
    placements: np.ndarray,
    message_size: float | list[float],
    *,
    calibration: LinkCalibration = QDR_PCIE_GEN2,
    credit_limit: int | None = None,
    credit_limits: Any = None,
    faults: Any = None,
    sweep_delay: float | None = None,
    max_events: int = 5_000_000,
) -> BatchSpec:
    """A :class:`BatchSpec` for a fig3-style (ordering x fault) grid.

    ``placements`` is ``(B, L)`` (each row a rank-to-port vector);
    ``faults`` is ``None``, one schedule shared by every element, or a
    length-``B`` list; ``credit_limits`` optionally varies the credit
    regime per element (overriding ``credit_limit``).
    """
    placements = np.asarray(placements, dtype=np.int64)
    if placements.ndim == 1:
        placements = placements[None, :]
    B = placements.shape[0]
    N = tables.fabric.num_endports

    def _per_elem(v: Any, i: int) -> Any:
        if v is None:
            return None
        if isinstance(v, (list, tuple)):
            if len(v) != B:
                raise ValueError(f"need {B} per-element values, got {len(v)}")
            return v[i]
        return v

    elements: list[ScenarioSpec] = []
    try:
        dst3, size3, nmsg2 = cps_workload_arrays(
            cps, placements, N, message_size)
        for i in range(B):
            cl = _per_elem(credit_limits, i)
            elements.append(ScenarioSpec(
                dst=dst3[i], size=size3[i], nmsg=nmsg2[i],
                faults=_per_elem(faults, i), sweep_delay=sweep_delay,
                credit_limit=INHERIT if cl is None else cl))
    except ValueError:
        from .workload import cps_workload

        elements = []
        for i in range(B):
            cl = _per_elem(credit_limits, i)
            elements.append(ScenarioSpec(
                sequences=cps_workload(cps, placements[i], N, message_size),
                faults=_per_elem(faults, i), sweep_delay=sweep_delay,
                credit_limit=INHERIT if cl is None else cl))
    return BatchSpec(tables=tables, elements=elements,
                     calibration=calibration, credit_limit=credit_limit,
                     max_events=max_events)
