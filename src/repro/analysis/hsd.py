"""Hot-Spot-Degree (HSD) analysis -- the paper's ibdm-based tool.

Given a topology, forwarding tables and a traffic pattern, compute for
every directed link the number of flows crossing it ("HSD" = flows per
link).  The paper's Figure 3 and Table 3 metrics are built from this:

* per stage: the **maximum** HSD over all links (worst contention when
  all end-ports move through stages synchronously);
* per sequence: the **average** of the per-stage maxima;
* per topology/CPS: statistics of that average over many random
  MPI-node-orders.

``HSD == 1`` for every stage is the paper's congestion-free criterion:
no link ever carries two concurrent flows, so every message runs at
full wire speed and cut-through latency.

Everything is vectorised: a whole stage of flows is walked through the
forwarding tables simultaneously (paths in an ``h``-level tree have at
most ``2h + 1`` hops).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..collectives.cps import CPS
from ..collectives.schedule import stage_flows, stage_flows_batch
from ..fabric.lft import ForwardingTables

__all__ = [
    "walk_flow_links",
    "stage_link_loads",
    "stage_class_link_loads",
    "stage_max_hsd",
    "sequence_hsd",
    "HSDReport",
    "BatchedHSDReport",
    "batched_sequence_hsd",
    "MultiTableHSDReport",
    "multi_table_sequence_hsd",
    "down_port_destination_counts",
]


def _max_hops(tables: ForwardingTables) -> int:
    h = int(tables.fabric.node_level.max())
    return 2 * h + 2


def walk_flow_links(
    tables: ForwardingTables, src: np.ndarray, dst: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Walk every flow ``src[i] -> dst[i]`` through the tables.

    Returns ``(flow_idx, gports)``: parallel arrays listing, for each
    traversed directed link (identified by its source global port id),
    which flow crossed it.  Flows with ``src == dst`` contribute nothing.
    """
    fab = tables.fabric
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise ValueError("src/dst shape mismatch")
    flows_idx: list[np.ndarray] = []
    ports: list[np.ndarray] = []

    active = src != dst
    idx = np.flatnonzero(active)
    if len(idx) == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    gp = tables.host_out_port(src[idx], dst[idx])
    flows_idx.append(idx)
    ports.append(gp)
    cur = fab.peer_node[gp].astype(np.int64)
    tgt = dst[idx]
    if (cur < 0).any():
        bad = idx[cur < 0][0]
        raise ValueError(f"flow {bad} walked into a dead cable")

    for _ in range(_max_hops(tables)):
        moving = cur != tgt
        if not moving.any():
            break
        idx = idx[moving]
        cur = cur[moving]
        tgt = tgt[moving]
        gp = tables.out_port(cur, tgt)
        if (gp < 0).any():
            bad = idx[gp < 0][0]
            raise ValueError(f"flow {bad} hit an unrouted destination")
        flows_idx.append(idx)
        ports.append(gp)
        cur = fab.peer_node[gp].astype(np.int64)
        if (cur < 0).any():
            bad = idx[cur < 0][0]
            raise ValueError(f"flow {bad} walked into a dead cable")
    else:
        if (cur != tgt).any():
            raise ValueError("routing loop: flows did not terminate")

    return np.concatenate(flows_idx), np.concatenate(ports)


def stage_link_loads(
    tables: ForwardingTables, src: np.ndarray, dst: np.ndarray
) -> np.ndarray:
    """Flows per directed link (array over global port ids) for one stage."""
    _, gports = walk_flow_links(tables, src, dst)
    loads = np.zeros(tables.fabric.num_ports, dtype=np.int64)
    np.add.at(loads, gports, 1)
    return loads


def stage_class_link_loads(
    tables: ForwardingTables,
    src: np.ndarray,
    dst: np.ndarray,
    flow_class: np.ndarray,
    num_classes: int | None = None,
) -> np.ndarray:
    """Per-traffic-class flows per directed link for one stage.

    ``flow_class[i]`` is the class index of flow ``i``; the result has
    shape ``(num_classes, num_ports)`` and sums over classes to
    :func:`stage_link_loads`.  One table walk serves every class: loads
    are recovered with a single ``bincount`` over
    ``(class, port)`` keys, the same trick
    :func:`batched_sequence_hsd` uses for placements.  This is the
    dynamic (table-walking) side of the isolation analyzer's per-class
    accounting; the symbolic side never touches tables at all.
    """
    flow_class = np.asarray(flow_class, dtype=np.int64)
    src = np.asarray(src, dtype=np.int64)
    if flow_class.shape != src.shape:
        raise ValueError("flow_class/src shape mismatch")
    C = int(num_classes) if num_classes is not None \
        else int(flow_class.max()) + 1 if len(flow_class) else 1
    if len(flow_class) and (flow_class.min() < 0 or flow_class.max() >= C):
        raise ValueError("flow_class references a class index out of range")
    num_ports = tables.fabric.num_ports
    flow_idx, gports = walk_flow_links(tables, src, dst)
    keys = flow_class[flow_idx] * num_ports + gports
    return np.bincount(keys, minlength=C * num_ports).reshape(C, num_ports)


def stage_max_hsd(
    tables: ForwardingTables,
    src: np.ndarray,
    dst: np.ndarray,
    switch_links_only: bool = False,
) -> int:
    """Maximum HSD over links for one synchronous stage.

    ``switch_links_only`` ignores host injection/ejection links (where a
    rank sending and receiving simultaneously is not network contention).
    By default all links count, matching the worst-case analysis.
    """
    loads = stage_link_loads(tables, src, dst)
    if switch_links_only:
        loads = loads[_switch_link_mask(tables)]
    return int(loads.max()) if len(loads) else 0


@dataclass(frozen=True)
class HSDReport:
    """Per-stage maxima and their summary for one (tables, CPS, placement)."""

    cps_name: str
    stage_max: np.ndarray  # (num_stages,) max HSD per stage

    @property
    def avg_max(self) -> float:
        """Figure-3 metric: average over stages of the per-stage max."""
        return float(self.stage_max.mean()) if len(self.stage_max) else 0.0

    @property
    def worst(self) -> int:
        return int(self.stage_max.max()) if len(self.stage_max) else 0

    @property
    def congestion_free(self) -> bool:
        return self.worst <= 1


def sequence_hsd(
    tables: ForwardingTables,
    cps: CPS,
    rank_to_port: np.ndarray,
    switch_links_only: bool = False,
) -> HSDReport:
    """Per-stage max HSD for a CPS under a placement (the Table 3 row)."""
    maxima = []
    for st in cps:
        src, dst = stage_flows(st, rank_to_port)
        if len(src) == 0:
            continue
        maxima.append(stage_max_hsd(tables, src, dst, switch_links_only))
    return HSDReport(cps_name=cps.name, stage_max=np.asarray(maxima, dtype=np.int64))


def _switch_link_mask(tables: ForwardingTables) -> np.ndarray:
    """Ports whose directed link touches no host (the
    ``switch_links_only`` filter of :func:`stage_max_hsd`)."""
    fab = tables.fabric
    owner_is_host = fab.port_owner < fab.num_endports
    peer_is_host = (fab.peer_node >= 0) & (fab.peer_node < fab.num_endports)
    return ~(owner_is_host | peer_is_host)


@dataclass(frozen=True)
class BatchedHSDReport:
    """Per-stage maxima for *many* placements of one (tables, CPS) pair.

    ``stage_max[t, s]`` is the stage-``s`` max HSD under placement ``t``,
    or ``-1`` when that placement produced no flows in the stage (the
    serial path skips such stages entirely).
    """

    cps_name: str
    stage_max: np.ndarray  # (num_orders, num_stages) int64; -1 = skipped

    @property
    def num_orders(self) -> int:
        return self.stage_max.shape[0]

    @property
    def avg_max(self) -> np.ndarray:
        """Figure-3 metric per placement, identical to running
        :class:`HSDReport` ``.avg_max`` order by order."""
        vals = np.empty(self.num_orders, dtype=np.float64)
        for t in range(self.num_orders):
            row = self.stage_max[t]
            row = row[row >= 0]
            vals[t] = float(row.mean()) if len(row) else 0.0
        return vals

    def report(self, t: int) -> HSDReport:
        """The serial-equivalent :class:`HSDReport` of placement ``t``."""
        row = self.stage_max[t]
        return HSDReport(cps_name=self.cps_name, stage_max=row[row >= 0])


def batched_sequence_hsd(
    tables: ForwardingTables,
    cps: CPS,
    placements: np.ndarray,
    switch_links_only: bool = False,
) -> BatchedHSDReport:
    """Vectorised :func:`sequence_hsd` over a placement matrix.

    ``placements`` is ``(num_orders, L)``: each row a ``rank_to_port``
    vector.  All rows of a stage are walked through the forwarding
    tables in one pass and the per-row link loads recovered with a
    single ``bincount`` over ``(order, port)`` keys, so the cost per
    placement is a small fraction of the one-at-a-time path while the
    resulting per-row reports match :func:`sequence_hsd` exactly.
    """
    placements = np.asarray(placements, dtype=np.int64)
    if placements.ndim == 1:
        placements = placements[None, :]
    num_orders = placements.shape[0]
    num_ports = tables.fabric.num_ports
    keep_ports = _switch_link_mask(tables) if switch_links_only else None

    stage_max = np.full((num_orders, len(cps.stages)), -1, dtype=np.int64)
    for s_i, st in enumerate(cps):
        src, dst, order = stage_flows_batch(st, placements)
        if len(src) == 0:
            continue
        present = np.bincount(order, minlength=num_orders) > 0
        flow_idx, gports = walk_flow_links(tables, src, dst)
        keys = order[flow_idx] * num_ports + gports
        loads = np.bincount(
            keys, minlength=num_orders * num_ports
        ).reshape(num_orders, num_ports)
        if keep_ports is not None:
            loads = loads[:, keep_ports]
        if loads.shape[1]:
            maxima = loads.max(axis=1)
        else:
            maxima = np.zeros(num_orders, dtype=np.int64)
        stage_max[present, s_i] = maxima[present]
    return BatchedHSDReport(cps_name=cps.name, stage_max=stage_max)


@dataclass(frozen=True)
class MultiTableHSDReport:
    """Per-stage maxima for one (CPS, placement) across *many* tables.

    The transpose of :class:`BatchedHSDReport`: there the placement
    varies and the tables are fixed, here the placement is fixed and
    the forwarding state varies (one entry per degraded/repaired
    fabric).  ``stage_max[c, s]`` is the stage-``s`` max HSD under
    tables ``c``, or ``-1`` when the stage produced no flows (the
    serial path skips such stages entirely).
    """

    cps_name: str
    stage_max: np.ndarray  # (num_cases, num_stages) int64; -1 = skipped

    @property
    def num_cases(self) -> int:
        return self.stage_max.shape[0]

    @property
    def worst(self) -> np.ndarray:
        """Per-case worst stage maximum, identical to running
        :class:`HSDReport` ``.worst`` table by table."""
        vals = np.zeros(self.num_cases, dtype=np.int64)
        for c in range(self.num_cases):
            row = self.stage_max[c]
            row = row[row >= 0]
            if len(row):
                vals[c] = int(row.max())
        return vals

    def report(self, c: int) -> HSDReport:
        """The serial-equivalent :class:`HSDReport` of case ``c``."""
        row = self.stage_max[c]
        return HSDReport(cps_name=self.cps_name, stage_max=row[row >= 0])


def multi_table_sequence_hsd(
    tables_list: list[ForwardingTables],
    cps: CPS,
    rank_to_port: np.ndarray,
    switch_links_only: bool = False,
) -> MultiTableHSDReport:
    """Vectorised :func:`sequence_hsd` over many forwarding tables.

    All tables must describe fabrics with identical port geometry
    (same ``num_ports``/``num_endports``/``port_start``) -- the
    degraded-fabric case, where each entry is the same physical tree
    with different cables killed and different repaired routes.  Every
    case's flows walk the stacked ``switch_out`` tensor simultaneously
    and the per-case link loads are recovered with one ``bincount``
    over ``(case, port)`` keys, so the cost per case is a small
    fraction of the one-at-a-time path while the per-case reports
    match :func:`sequence_hsd` exactly.

    Raises ``ValueError`` on the same route anomalies as
    :func:`walk_flow_links` (dead cable, unrouted destination, loop),
    naming the offending case; filter disconnected repairs out first.
    """
    C = len(tables_list)
    num_stages = len(cps.stages)
    if C == 0:
        return MultiTableHSDReport(
            cps_name=cps.name,
            stage_max=np.empty((0, num_stages), dtype=np.int64))
    base = tables_list[0]
    fab0 = base.fabric
    num_ports = fab0.num_ports
    for t in tables_list[1:]:
        if (t.fabric.num_ports != num_ports
                or t.fabric.num_endports != fab0.num_endports
                or not np.array_equal(t.fabric.port_start, fab0.port_start)):
            raise ValueError(
                "multi_table_sequence_hsd needs tables over one port "
                "geometry (same fabric with different failures/routes)")
    switch_out = np.stack([t.switch_out for t in tables_list])
    peer = np.stack([t.fabric.peer_node for t in tables_list]
                    ).astype(np.int64)
    keep_ports = _switch_link_mask(base) if switch_links_only else None
    rank_to_port = np.asarray(rank_to_port, dtype=np.int64)

    stage_max = np.full((C, num_stages), -1, dtype=np.int64)
    for s_i, st in enumerate(cps):
        src, dst = stage_flows(st, rank_to_port)
        if len(src) == 0:
            continue
        loads = _multi_walk_loads(tables_list, switch_out, peer, src, dst)
        if keep_ports is not None:
            loads = loads[:, keep_ports]
        if loads.shape[1]:
            stage_max[:, s_i] = loads.max(axis=1)
        else:
            stage_max[:, s_i] = 0
    return MultiTableHSDReport(cps_name=cps.name, stage_max=stage_max)


def _multi_walk_loads(
    tables_list: list[ForwardingTables],
    switch_out: np.ndarray,
    peer: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
) -> np.ndarray:
    """Link loads ``(num_cases, num_ports)`` of one stage walked through
    every case's tables at once (core of
    :func:`multi_table_sequence_hsd`)."""
    C = len(tables_list)
    num_ports = peer.shape[1]
    num_endports = tables_list[0].fabric.num_endports
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    f = np.flatnonzero(src != dst)
    if len(f) == 0:
        return np.zeros((C, num_ports), dtype=np.int64)
    # Host injection may differ per case (multi-cable hosts re-routed
    # around a dead up-cable), so resolve it table by table.
    gp = np.concatenate(
        [t.host_out_port(src[f], dst[f]) for t in tables_list])
    case = np.repeat(np.arange(C, dtype=np.int64), len(f))
    flow = np.tile(f, C)
    keys_acc = [case * num_ports + gp]
    cur = peer[case, gp]
    tgt = np.tile(dst[f], C)
    if (cur < 0).any():
        b = int(np.flatnonzero(cur < 0)[0])
        raise ValueError(
            f"case {case[b]}: flow {flow[b]} walked into a dead cable")
    for _ in range(_max_hops(tables_list[0])):
        moving = cur != tgt
        if not moving.any():
            break
        case = case[moving]
        flow = flow[moving]
        cur = cur[moving]
        tgt = tgt[moving]
        gp = switch_out[case, cur - num_endports, tgt]
        if (gp < 0).any():
            b = int(np.flatnonzero(gp < 0)[0])
            raise ValueError(
                f"case {case[b]}: flow {flow[b]} hit an unrouted "
                f"destination")
        keys_acc.append(case * num_ports + gp)
        cur = peer[case, gp]
        if (cur < 0).any():
            b = int(np.flatnonzero(cur < 0)[0])
            raise ValueError(
                f"case {case[b]}: flow {flow[b]} walked into a dead cable")
    else:
        if (cur != tgt).any():
            raise ValueError("routing loop: flows did not terminate")
    return np.bincount(
        np.concatenate(keys_acc), minlength=C * num_ports
    ).reshape(C, num_ports)


def down_port_destination_counts(tables: ForwardingTables,
                                 active: np.ndarray | None = None,
                                 ) -> np.ndarray:
    """Distinct destinations per down-going directed link under all-to-all
    traffic (vectorised theorem-2 check; see
    :func:`repro.routing.validate.down_port_destinations` for the
    reference implementation).  ``active`` restricts the all-to-all to a
    job's active end-ports (theorem 2 only binds the traffic a
    partially populated job can generate)."""
    fab = tables.fabric
    ends = np.arange(fab.num_endports, dtype=np.int64) if active is None \
        else np.unique(np.asarray(active, dtype=np.int64))
    N = len(ends)
    src = np.repeat(ends, N)
    dst = np.tile(ends, N)
    flow_idx, gports = walk_flow_links(tables, src, dst)
    flow_dst = dst[flow_idx]
    pairs = np.unique(np.stack([gports, flow_dst], axis=1), axis=0)
    counts = np.zeros(fab.num_ports, dtype=np.int64)
    np.add.at(counts, pairs[:, 0], 1)
    counts[fab.port_goes_up()] = 0
    return counts
