"""Traffic-pattern helpers shared by experiments and examples.

Small utilities that produce ``(src_port, dst_port)`` stage arrays for
non-CPS patterns -- e.g. the fixed permutation of Figure 1
(``dst = (src + k) mod N``) -- and the multi-order sweep used by
Figure 3 and Table 3 (statistics of the average-max HSD over many
random node orders).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..collectives.cps import CPS
from ..fabric.lft import ForwardingTables
from ..ordering.orders import random_order
from .hsd import sequence_hsd

__all__ = [
    "fixed_shift_pattern",
    "OrderSweepResult",
    "random_order_sweep",
    "sweep_placements",
]


def fixed_shift_pattern(n: int, k: int,
                        placement: np.ndarray | None = None
                        ) -> tuple[np.ndarray, np.ndarray]:
    """The Figure-1 pattern ``destination = (source + k) mod n`` expressed
    on physical ports through an optional placement."""
    ranks = np.arange(n, dtype=np.int64)
    dsts = (ranks + k) % n
    if placement is None:
        return ranks, dsts
    placement = np.asarray(placement, dtype=np.int64)
    return placement[ranks], placement[dsts]


@dataclass(frozen=True)
class OrderSweepResult:
    """Average-max HSD statistics over many random placements."""

    cps_name: str
    num_orders: int
    avg_max: np.ndarray  # (num_orders,) figure-3 metric per order

    @property
    def mean(self) -> float:
        return float(self.avg_max.mean())

    @property
    def min(self) -> float:
        return float(self.avg_max.min())

    @property
    def max(self) -> float:
        return float(self.avg_max.max())


def sweep_placements(
    num_endports: int,
    num_ranks: int,
    num_orders: int,
    seed: int = 0,
) -> np.ndarray:
    """The sweep's ``(num_orders, num_ranks)`` placement matrix.

    Row ``t`` is ``random_order(num_endports, num_ranks, seed=seed + t)``
    -- the single source of truth shared by the serial reference path
    below and the parallel engine in :mod:`repro.runtime`, so both
    evaluate the exact same placements for a given seed range.
    """
    return np.stack([
        random_order(num_endports, num_ranks, seed=seed + t)
        for t in range(num_orders)
    ])


def random_order_sweep(
    tables: ForwardingTables,
    cps_factory,
    num_orders: int = 25,
    num_ranks: int | None = None,
    seed: int = 0,
    switch_links_only: bool = False,
) -> OrderSweepResult:
    """Figure-3 statistic: per random order, the average over stages of the
    max HSD; summarised over ``num_orders`` seeds.

    ``cps_factory(num_ranks)`` builds the CPS for the job size (so each
    sweep can size the sequence to the rank count).  This is the serial
    reference implementation; :class:`repro.runtime.ParallelSweeper`
    produces bit-identical results from the batched/parallel path.
    """
    N = tables.fabric.num_endports
    n = num_ranks if num_ranks is not None else N
    cps: CPS = cps_factory(n) if callable(cps_factory) else cps_factory
    placements = sweep_placements(N, n, num_orders, seed=seed)
    vals = np.empty(num_orders, dtype=np.float64)
    for t in range(num_orders):
        rep = sequence_hsd(tables, cps, placements[t], switch_links_only)
        vals[t] = rep.avg_max
    return OrderSweepResult(cps_name=cps.name, num_orders=num_orders, avg_max=vals)
