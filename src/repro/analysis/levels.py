"""Per-level contention breakdown.

``stage_max_hsd`` says *whether* a stage blocks; operators also want to
know *where*: host injection, leaf up-links, spine up-links, or the
down paths.  This module classifies every directed link by
``(from-level, to-level)`` and reports loads per class -- e.g. the
adversarial ring shows up as pure leaf-up-link contention, while random
recursive doubling also loads the upper tiers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..collectives.cps import CPS
from ..collectives.schedule import stage_flows
from ..fabric.lft import ForwardingTables
from .hsd import stage_link_loads

__all__ = ["link_classes", "LevelProfile", "stage_level_profile",
           "sequence_level_profile"]


def link_classes(tables: ForwardingTables) -> dict[str, np.ndarray]:
    """Boolean masks over global port ids, keyed by readable class names
    like ``"up 0->1"`` (host injection) or ``"down 2->1"``."""
    fab = tables.fabric
    lvl = fab.node_level
    src = lvl[fab.port_owner]
    dst = np.where(fab.peer_node >= 0, lvl[fab.peer_node], -1)
    classes: dict[str, np.ndarray] = {}
    for a in np.unique(src):
        for b in np.unique(dst[src == a]):
            if b < 0:
                continue
            direction = "up" if b > a else "down"
            mask = (src == a) & (dst == b)
            classes[f"{direction} {int(a)}->{int(b)}"] = mask
    return classes


@dataclass(frozen=True)
class LevelProfile:
    """Max link load per link class, per stage."""

    classes: tuple[str, ...]
    stage_max: np.ndarray  # (num_stages, num_classes)

    def worst_by_class(self) -> dict[str, int]:
        if not len(self.stage_max):
            return {c: 0 for c in self.classes}
        worst = self.stage_max.max(axis=0)
        return {c: int(v) for c, v in zip(self.classes, worst)}

    def hottest_class(self) -> str:
        by = self.worst_by_class()
        return max(by, key=by.get)


def stage_level_profile(
    tables: ForwardingTables, src: np.ndarray, dst: np.ndarray
) -> dict[str, int]:
    """Max flows per link class for one stage."""
    loads = stage_link_loads(tables, src, dst)
    return {
        name: int(loads[mask].max()) if mask.any() else 0
        for name, mask in link_classes(tables).items()
    }


def sequence_level_profile(
    tables: ForwardingTables, cps: CPS, rank_to_port: np.ndarray
) -> LevelProfile:
    """Per-stage, per-class max loads for a whole sequence."""
    classes = link_classes(tables)
    names = tuple(classes)
    rows = []
    for st in cps:
        s, d = stage_flows(st, rank_to_port)
        if len(s) == 0:
            continue
        loads = stage_link_loads(tables, s, d)
        rows.append([int(loads[classes[c]].max()) if classes[c].any() else 0
                     for c in names])
    return LevelProfile(
        classes=names,
        stage_max=np.asarray(rows, dtype=np.int64).reshape(-1, len(names)),
    )
