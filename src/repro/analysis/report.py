"""Plain-text table rendering for experiment outputs.

The experiment drivers print the same rows/series the paper's tables
and figures report; this module keeps the formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["render_table", "render_series"]


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Fixed-width table with a header rule; floats get 3 decimals."""
    def fmt(v: object) -> str:
        if isinstance(v, float):
            return f"{v:.3f}"
        return str(v)

    srows = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    out = []
    if title:
        out.append(title)
    head = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    out.append(head)
    out.append("-" * len(head))
    for row in srows:
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def render_series(x_label: str, xs: Sequence[object],
                  series: dict[str, Sequence[object]],
                  title: str | None = None) -> str:
    """A figure as a table: one x column plus one column per series."""
    headers = [x_label] + list(series)
    rows = [
        [x] + [series[name][i] for name in series]
        for i, x in enumerate(xs)
    ]
    return render_table(headers, rows, title=title)
