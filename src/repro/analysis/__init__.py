"""Analytical traffic models: hot-spot degree, patterns, reporting."""

from .hsd import (
    BatchedHSDReport,
    HSDReport,
    MultiTableHSDReport,
    batched_sequence_hsd,
    down_port_destination_counts,
    multi_table_sequence_hsd,
    sequence_hsd,
    stage_link_loads,
    stage_max_hsd,
    walk_flow_links,
)
from .levels import (
    LevelProfile,
    link_classes,
    sequence_level_profile,
    stage_level_profile,
)
from .report import render_series, render_table
from .traffic import (
    OrderSweepResult,
    fixed_shift_pattern,
    random_order_sweep,
    sweep_placements,
)

__all__ = [
    "BatchedHSDReport",
    "HSDReport",
    "LevelProfile",
    "MultiTableHSDReport",
    "OrderSweepResult",
    "batched_sequence_hsd",
    "multi_table_sequence_hsd",
    "link_classes",
    "sequence_level_profile",
    "stage_level_profile",
    "down_port_destination_counts",
    "fixed_shift_pattern",
    "random_order_sweep",
    "sweep_placements",
    "render_series",
    "render_table",
    "sequence_hsd",
    "stage_link_loads",
    "stage_max_hsd",
    "walk_flow_links",
]
