"""Analytical traffic models: hot-spot degree, patterns, reporting."""

from .hsd import (
    HSDReport,
    down_port_destination_counts,
    sequence_hsd,
    stage_link_loads,
    stage_max_hsd,
    walk_flow_links,
)
from .levels import (
    LevelProfile,
    link_classes,
    sequence_level_profile,
    stage_level_profile,
)
from .report import render_series, render_table
from .traffic import OrderSweepResult, fixed_shift_pattern, random_order_sweep

__all__ = [
    "HSDReport",
    "LevelProfile",
    "OrderSweepResult",
    "link_classes",
    "sequence_level_profile",
    "stage_level_profile",
    "down_port_destination_counts",
    "fixed_shift_pattern",
    "random_order_sweep",
    "render_series",
    "render_table",
    "sequence_hsd",
    "stage_link_loads",
    "stage_max_hsd",
    "walk_flow_links",
]
