"""Forwarding-table audit ("table lint").

Given any destination-based tables, report the structural health an
operator would want before trusting a fabric with collective traffic:

* **up-port balance** per switch: how evenly the non-descendant
  destinations spread over the up ports (D-Mod-K is perfectly even;
  a skew is the first symptom of an SM gone wrong);
* **theorem-2 violations**: down-going directed links serving more
  than one destination;
* **non-minimal entries**: (switch, dest) pairs whose next hop does
  not strictly reduce the BFS distance (valleys, detours, or repair
  leftovers).

The audit powers ``repro-fabric validate --audit`` and is exercised as
a regression net over every routing engine in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fabric.lft import ForwardingTables
from ..routing.minhop import bfs_distances
from .hsd import down_port_destination_counts

__all__ = ["audit_tables", "TableAudit"]


@dataclass(frozen=True)
class TableAudit:
    """Summary of a forwarding-table audit."""

    num_switches: int
    up_balance_worst: float       # max over switches of (max-min)/mean dests/up-port
    theorem2_violations: int      # down links serving >1 destination
    non_minimal_entries: int      # (switch, dest) detours
    unreachable_entries: int      # -1 entries

    @property
    def clean(self) -> bool:
        return (self.theorem2_violations == 0
                and self.non_minimal_entries == 0
                and self.unreachable_entries == 0)

    def render(self) -> str:
        flag = "CLEAN" if self.clean else "ISSUES FOUND"
        return "\n".join([
            f"table audit: {flag}",
            f"  switches             : {self.num_switches}",
            f"  worst up-port skew   : {self.up_balance_worst:.3f}"
            "  (0 = perfectly even)",
            f"  theorem-2 violations : {self.theorem2_violations}",
            f"  non-minimal entries  : {self.non_minimal_entries}",
            f"  unreachable entries  : {self.unreachable_entries}",
        ])


def audit_tables(tables: ForwardingTables,
                 check_theorem2: bool = True) -> TableAudit:
    """Run the full audit.  ``check_theorem2=False`` skips the O(N^2)
    all-pairs walk on large fabrics."""
    fab = tables.fabric
    N = fab.num_endports
    sw_out = tables.switch_out
    unreachable = int((sw_out < 0).sum())

    # Up-port balance: per switch, count destinations per up-going port.
    goes_up = fab.port_goes_up()
    worst_skew = 0.0
    for row in range(fab.num_switches):
        node = N + row
        ports = fab.ports_of(node)
        up_ports = ports[goes_up[ports]]
        if len(up_ports) == 0:
            continue
        entries = sw_out[row]
        entries = entries[entries >= 0]
        counts = np.array([(entries == gp).sum() for gp in up_ports],
                          dtype=np.float64)
        if counts.sum() == 0:
            continue
        skew = (counts.max() - counts.min()) / max(counts.mean(), 1e-12)
        worst_skew = max(worst_skew, float(skew))

    # Non-minimal entries against BFS distances.
    dists = bfs_distances(fab, np.arange(N))
    nodes = N + np.arange(fab.num_switches)
    valid = sw_out >= 0
    next_node = np.where(valid, fab.peer_node[np.where(valid, sw_out, 0)], -1)
    d_here = dists[np.arange(N)[None, :], nodes[:, None]]
    d_next = np.where(next_node >= 0,
                      dists[np.arange(N)[None, :], next_node], -2)
    non_minimal = int((valid & (d_next != d_here - 1)).sum())

    t2 = 0
    if check_theorem2:
        counts = down_port_destination_counts(tables)
        t2 = int((counts > 1).sum())

    return TableAudit(
        num_switches=fab.num_switches,
        up_balance_worst=worst_skew,
        theorem2_violations=t2,
        non_minimal_entries=non_minimal,
        unreachable_entries=unreachable,
    )
