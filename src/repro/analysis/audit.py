"""Forwarding-table audit ("table lint").

Given any destination-based tables, report the structural health an
operator would want before trusting a fabric with collective traffic:

* **up-port balance** per switch: how evenly the non-descendant
  destinations spread over the up ports (D-Mod-K is perfectly even;
  a skew is the first symptom of an SM gone wrong);
* **theorem-2 violations**: down-going directed links serving more
  than one destination;
* **non-minimal entries**: (switch, dest) pairs whose next hop does
  not strictly reduce the BFS distance (valleys, detours, or repair
  leftovers).

The audit powers ``repro-fabric validate --audit`` and is exercised as
a regression net over every routing engine in the test suite.  Since
the ``repro.check`` analyzer grew passes for each of these properties,
:func:`audit_tables` is a thin wrapper assembling the summary from the
passes' artifacts (``up_balance_worst``, ``theorem2_violations``,
``non_minimal_entries``, ``unreachable_entries``) -- one implementation
per invariant.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fabric.lft import ForwardingTables

__all__ = ["audit_tables", "TableAudit"]


@dataclass(frozen=True)
class TableAudit:
    """Summary of a forwarding-table audit."""

    num_switches: int
    up_balance_worst: float       # max over switches of (max-min)/mean dests/up-port
    theorem2_violations: int      # down links serving >1 destination
    non_minimal_entries: int      # (switch, dest) detours
    unreachable_entries: int      # -1 entries

    @property
    def clean(self) -> bool:
        return (self.theorem2_violations == 0
                and self.non_minimal_entries == 0
                and self.unreachable_entries == 0)

    def render(self) -> str:
        flag = "CLEAN" if self.clean else "ISSUES FOUND"
        return "\n".join([
            f"table audit: {flag}",
            f"  switches             : {self.num_switches}",
            f"  worst up-port skew   : {self.up_balance_worst:.3f}"
            "  (0 = perfectly even)",
            f"  theorem-2 violations : {self.theorem2_violations}",
            f"  non-minimal entries  : {self.non_minimal_entries}",
            f"  unreachable entries  : {self.unreachable_entries}",
        ])


def audit_tables(tables: ForwardingTables,
                 check_theorem2: bool = True) -> TableAudit:
    """Run the full audit.  ``check_theorem2=False`` skips the O(N^2)
    all-pairs walk on large fabrics."""
    # Imported lazily: repro.check pulls in analysis primitives at
    # module level, so the reverse edge must not exist at import time.
    from ..check.diagnostics import DiagnosticReport
    from ..check.passes import CheckContext
    from ..check.routing_lint import (
        DownPortBalancePass,
        MinimalityPass,
        UpPortBalancePass,
    )

    ctx = CheckContext.for_tables(tables)
    report = DiagnosticReport()
    passes = [UpPortBalancePass(), MinimalityPass()]
    if check_theorem2:
        passes.append(DownPortBalancePass())
    for p in passes:
        p.run(ctx, report)

    return TableAudit(
        num_switches=tables.fabric.num_switches,
        up_balance_worst=float(ctx.artifacts["up_balance_worst"]),
        theorem2_violations=int(ctx.artifacts.get("theorem2_violations", 0)),
        non_minimal_entries=int(ctx.artifacts["non_minimal_entries"]),
        unreachable_entries=int(ctx.artifacts["unreachable_entries"]),
    )
