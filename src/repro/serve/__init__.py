"""``repro.serve`` -- the always-on certification service.

Everything before this package ran certification as one-shot batch
CLIs: build a fabric, certify, exit.  This package turns the same
pass pipeline (:mod:`repro.check`) into a *service*: an asyncio
front-end accepts certification requests -- a topology/placement/CPS
spec, or a placement delta recertified incrementally against a cached
symbolic :class:`~repro.check.symbolic.CaseState` -- and dispatches
them to a supervised pool of worker processes.

Robustness is the core deliverable, not an add-on.  Every failure mode
has an explicit, tested behaviour:

* a **worker crash** requeues the request with seeded exponential
  backoff (:class:`RequeuePolicy`); a digest that keeps crashing
  workers is **quarantined** as a poison request (``SRV001``);
* a request that outlives its **deadline** gets its worker killed and
  a terminal ``SRV003`` error;
* a full queue **sheds** new requests at admission with a suggested
  ``retry_after_s`` (``SRV002``) instead of growing without bound;
* under queue pressure, ``both``-engine differential requests
  **degrade** to symbolic-only, tagged ``SRV004``;
* identical in-flight digests are **deduplicated** (one computation,
  every waiter answered) and completed results are served from the
  content-addressed :class:`~repro.runtime.ResultCache`;
* every accepted request is recorded in a **crash-safe journal**
  before it is queued, so a killed service replays
  accepted-but-unfinished work on restart (``SRV006``).

Entry points: :class:`CertificationService` (in-process, asyncio),
:func:`serve_unix` (Unix-socket front-end) and the ``repro-serve``
CLI (``serve`` / ``submit`` / ``status`` / ``drain``).
See ``docs/SERVICE.md`` for the protocol and the failure-mode table.
"""

from .journal import Journal, JournalRecord, JournalStats
from .protocol import (
    PROTOCOL_VERSION,
    CertRequest,
    ProtocolError,
    parse_spec_text,
    request_digest,
)
from .queue import BoundedRequestQueue, PendingRequest, RequeuePolicy
from .service import (
    CertificationService,
    ServiceConfig,
    ServiceMetrics,
    serve_unix,
)
from .workers import WorkerPool, execute_request

__all__ = [
    "BoundedRequestQueue",
    "CertRequest",
    "CertificationService",
    "Journal",
    "JournalRecord",
    "JournalStats",
    "PROTOCOL_VERSION",
    "PendingRequest",
    "ProtocolError",
    "RequeuePolicy",
    "ServiceConfig",
    "ServiceMetrics",
    "WorkerPool",
    "execute_request",
    "parse_spec_text",
    "request_digest",
    "serve_unix",
]
