"""``repro-serve``: run and talk to the certification service.

Subcommands::

    repro-serve serve  --socket /tmp/repro.sock --journal journal.jsonl
    repro-serve submit --socket /tmp/repro.sock --topo n324 --order rotate \\
                       --order-seed 3 --kind delta
    repro-serve status --socket /tmp/repro.sock
    repro-serve drain  --socket /tmp/repro.sock
    repro-serve stop   --socket /tmp/repro.sock

``serve`` runs in the foreground until SIGINT/SIGTERM or a client
``stop``; on the way down it leaves unfinished accepted requests in
the journal so the next ``serve`` replays them.  The client commands
speak the JSON-lines protocol over the Unix socket and print the raw
response; ``submit`` exits 0 for certified/vacuous, 2 for
refuted/error and 3 for shed (retry later).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import socket
import sys
from typing import Any

from .protocol import ORDERS, PROTOCOL_VERSION, decode_line, encode_line
from .queue import RequeuePolicy
from .service import CertificationService, ServiceConfig, serve_unix

__all__ = ["main"]

EXIT_OK = 0
EXIT_FINDINGS = 2
EXIT_SHED = 3


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="always-on contention-freedom certification service")
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the service in the foreground")
    serve.add_argument("--socket", required=True,
                       help="Unix socket path to listen on")
    serve.add_argument("--journal", default="serve-journal.jsonl",
                       help="crash-safe request journal path")
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--capacity", type=int, default=256,
                       help="queue bound; above it requests are shed")
    serve.add_argument("--high-water", type=int, default=None,
                       help="pressure threshold (default 3/4 of capacity)")
    serve.add_argument("--deadline", type=float, default=30.0,
                       help="default per-request deadline in seconds "
                            "(0 disables)")
    serve.add_argument("--poison-threshold", type=int, default=3,
                       help="crashes on one digest before quarantine")
    serve.add_argument("--max-retries", type=int, default=3,
                       help="crash requeues per request before SRV008")
    serve.add_argument("--cache-dir", default=None,
                       help="result cache directory (omit to disable)")
    serve.add_argument("--cache-max-bytes", type=int, default=None)
    serve.add_argument("--tick", type=float, default=0.01,
                       help="supervisor tick in seconds")
    serve.add_argument("--allow-test-hooks", action="store_true",
                       help="honour test_delay_s/test_crash request hooks "
                            "(chaos testing only)")

    for name, text in (("submit", "submit one certification request"),
                       ("status", "print the service status"),
                       ("drain", "stop admissions and run the backlog down"),
                       ("stop", "ask the service to shut down")):
        cmd = sub.add_parser(name, help=text)
        cmd.add_argument("--socket", required=True)
        cmd.add_argument("--timeout", type=float, default=300.0,
                         help="client-side socket timeout in seconds")
        if name == "drain":
            cmd.add_argument("--drain-timeout", type=float, default=120.0)
        if name != "submit":
            continue
        cmd.add_argument("--json", default=None,
                         help="raw JSON request body (overrides the "
                              "flags below)")
        cmd.add_argument("--kind", choices=("cert", "delta"),
                         default="cert")
        cmd.add_argument("--topo", default=None)
        cmd.add_argument("--spec", default=None,
                         help="PGFT tuple 'h; m1,..; w1,..; p1,..'")
        cmd.add_argument("--cps", default="shift")
        cmd.add_argument("--max-shift-stages", type=int, default=64)
        cmd.add_argument("--order", choices=ORDERS, default="topology")
        cmd.add_argument("--order-seed", type=int, default=0)
        cmd.add_argument("--base-order", choices=ORDERS,
                         default="topology")
        cmd.add_argument("--base-order-seed", type=int, default=0)
        cmd.add_argument("--exclude", type=int, default=0)
        cmd.add_argument("--exclude-seed", type=int, default=0)
        cmd.add_argument("--engine",
                         choices=("enumerate", "symbolic", "both"),
                         default="symbolic")
        cmd.add_argument("--deadline", type=float, default=None)
        cmd.add_argument("--no-cache", action="store_true")
    return parser


# ----------------------------------------------------------------------
# server side
# ----------------------------------------------------------------------
def _config_from_args(args: argparse.Namespace) -> ServiceConfig:
    return ServiceConfig(
        workers=args.workers,
        queue_capacity=args.capacity,
        high_water=args.high_water,
        poison_threshold=args.poison_threshold,
        requeue=RequeuePolicy(max_retries=args.max_retries),
        default_deadline_s=args.deadline if args.deadline > 0 else None,
        tick_s=args.tick,
        journal_path=args.journal,
        cache_dir=args.cache_dir,
        cache_max_bytes=args.cache_max_bytes,
        allow_test_hooks=args.allow_test_hooks,
    )


async def _serve(args: argparse.Namespace) -> int:
    service = CertificationService(_config_from_args(args))
    await service.start()
    server = await serve_unix(service, args.socket)
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, service.shutdown.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    print(f"repro-serve v{PROTOCOL_VERSION}: listening on {args.socket} "
          f"({service.pool.size} workers, journal {args.journal})",
          flush=True)
    await service.shutdown.wait()
    server.close()
    await server.wait_closed()
    await service.stop()
    print("repro-serve: stopped (unfinished requests stay journaled)",
          flush=True)
    return EXIT_OK


# ----------------------------------------------------------------------
# client side
# ----------------------------------------------------------------------
def _roundtrip(socket_path: str, message: dict[str, Any],
               timeout: float) -> dict[str, Any]:
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        sock.connect(socket_path)
        sock.sendall(encode_line(message))
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                break
            buf += chunk
    return decode_line(buf)


def _request_from_args(args: argparse.Namespace) -> dict[str, Any]:
    if args.json is not None:
        payload = json.loads(args.json)
        if not isinstance(payload, dict):
            raise SystemExit("--json must be a JSON object")
        return payload
    body: dict[str, Any] = {"kind": args.kind, "cps": args.cps,
                            "engine": args.engine}
    if args.topo is not None:
        body["topo"] = args.topo
    if args.spec is not None:
        body["spec"] = args.spec
    if args.max_shift_stages != 64:
        body["max_stages"] = args.max_shift_stages
    for key in ("order", "order_seed", "base_order", "base_order_seed",
                "exclude", "exclude_seed"):
        value = getattr(args, key)
        if value not in ("topology", 0):
            body[key] = value
    if args.deadline is not None:
        body["deadline_s"] = args.deadline
    if args.no_cache:
        body["no_cache"] = True
    return body


def _submit_exit_code(response: dict[str, Any]) -> int:
    status = response.get("status")
    if status in ("certified", "vacuous", "ok"):
        return EXIT_OK
    if status == "shed":
        return EXIT_SHED
    return EXIT_FINDINGS


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "serve":
        return asyncio.run(_serve(args))
    try:
        if args.command == "submit":
            message: dict[str, Any] = {"op": "submit",
                                       "request": _request_from_args(args)}
        elif args.command == "drain":
            message = {"op": "drain", "timeout_s": args.drain_timeout}
        else:
            message = {"op": args.command}
        response = _roundtrip(args.socket, message, args.timeout)
    except (OSError, ValueError) as exc:
        print(f"repro-serve: {exc}", file=sys.stderr)
        return EXIT_FINDINGS
    print(json.dumps(response, indent=2, sort_keys=True))
    if args.command == "submit":
        return _submit_exit_code(response)
    return EXIT_OK if response.get("status") == "ok" else EXIT_FINDINGS


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
