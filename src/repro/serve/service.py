"""The certification service: supervisor, admission and metrics.

:class:`CertificationService` is a single-threaded asyncio supervisor
over the :class:`~repro.serve.workers.WorkerPool`.  Admission is the
whole robustness story in one method (:meth:`~CertificationService.submit`):
validate (``SRV005``), gate test hooks, refuse quarantined digests
(``SRV001``), serve from the result cache, deduplicate against
in-flight work, shed above the queue's capacity (``SRV002``) -- and
only then journal the request as *accepted*, which is the service's
promise that it will end in a certificate, a counterexample or a
structured error, crashes included.

The supervisor tick polls worker results, converts worker deaths into
seeded-backoff requeues / quarantines (``SRV008``/``SRV001``),
SIGKILLs over-deadline workers (``SRV003``), degrades ``both``-engine
requests to symbolic-only under queue pressure (``SRV004``) and
dispatches ready work to idle workers.  Pool health counters live in a
:class:`~repro.runtime.SweepStats` -- the same record the parallel
sweeper publishes -- embedded in :class:`ServiceMetrics`.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..check import Diagnostic
from ..runtime.cache import ResultCache
from ..runtime.sweep import SweepStats
from .journal import Journal, JournalRecord
from .protocol import (
    PROTOCOL_VERSION,
    CertRequest,
    ProtocolError,
    decode_line,
    encode_line,
)
from .queue import BoundedRequestQueue, PendingRequest, RequeuePolicy

__all__ = ["CertificationService", "ServiceConfig", "ServiceMetrics",
           "serve_unix"]

#: every accepted request ends in exactly one of these
TERMINAL_STATUSES = ("certified", "refuted", "vacuous", "error")

#: verdicts worth remembering across restarts (never errors, never
#: degraded answers -- a degraded ``both`` must re-run at full fidelity)
CACHEABLE_STATUSES = ("certified", "refuted", "vacuous")

_RESULT_KEYS = ("certificates", "counterexample", "maxima", "num_flows",
                "incremental", "engine_agreement", "diagnostics", "summary",
                "error")


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one service instance (all have working defaults)."""

    workers: int = 2
    queue_capacity: int = 256
    high_water: int | None = None
    poison_threshold: int = 3
    requeue: RequeuePolicy = field(default_factory=RequeuePolicy)
    default_deadline_s: float | None = 30.0
    tick_s: float = 0.01
    journal_path: str | Path = "serve-journal.jsonl"
    cache_dir: str | Path | None = None
    cache_max_bytes: int | None = None
    allow_test_hooks: bool = False
    latency_window: int = 512

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.poison_threshold < 1:
            raise ValueError("poison_threshold must be >= 1")
        if self.tick_s <= 0:
            raise ValueError("tick_s must be positive")
        if self.latency_window < 2:
            raise ValueError("latency_window must be >= 2")


@dataclass
class ServiceMetrics:
    """Counters + latency window; ``pool`` reuses the sweeper's
    :class:`~repro.runtime.SweepStats` shape for worker health."""

    pool: SweepStats = field(default_factory=SweepStats)
    accepted: int = 0
    completed: int = 0
    certified: int = 0
    refuted: int = 0
    vacuous: int = 0
    errors: int = 0
    rejected: int = 0
    sheds: int = 0
    dedup_hits: int = 0
    cache_hits: int = 0
    quarantined: int = 0
    quarantine_hits: int = 0
    deadline_kills: int = 0
    degraded: int = 0
    replayed: int = 0
    journal_corrupt: int = 0
    latency_window: int = 512
    latencies: "deque[float]" = field(default_factory=deque)
    completions: "deque[float]" = field(default_factory=deque)

    def observe(self, latency_s: float, now: float) -> None:
        self.latencies.append(latency_s)
        self.completions.append(now)
        while len(self.latencies) > self.latency_window:
            self.latencies.popleft()
        while len(self.completions) > self.latency_window:
            self.completions.popleft()

    def percentile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        values = sorted(self.latencies)
        idx = min(len(values) - 1, int(q * len(values)))
        return values[idx]

    def certs_per_sec(self) -> float:
        if len(self.completions) < 2:
            return 0.0
        span = self.completions[-1] - self.completions[0]
        if span <= 0:
            return 0.0
        return (len(self.completions) - 1) / span

    def to_json(self) -> dict[str, Any]:
        out = {name: getattr(self, name) for name in (
            "accepted", "completed", "certified", "refuted", "vacuous",
            "errors", "rejected", "sheds", "dedup_hits", "cache_hits",
            "quarantined", "quarantine_hits", "deadline_kills", "degraded",
            "replayed", "journal_corrupt")}
        out["latency_p50_s"] = round(self.percentile(0.50), 6)
        out["latency_p99_s"] = round(self.percentile(0.99), 6)
        out["certs_per_sec"] = round(self.certs_per_sec(), 3)
        out["pool"] = self.pool.to_json()
        return out


class CertificationService:
    """Always-on front-end over the :mod:`repro.check` pipeline.

    Lifecycle: :meth:`start` (replays the journal, spawns workers and
    the supervisor task), :meth:`submit` / :meth:`status` /
    :meth:`drain`, :meth:`stop`.  Single event loop, no locks: all
    mutation happens on the loop thread.
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        cfg = self.config
        self.queue = BoundedRequestQueue(capacity=cfg.queue_capacity,
                                         high_water=cfg.high_water)
        self.journal = Journal(cfg.journal_path)
        self.cache: ResultCache | None = None
        if cfg.cache_dir is not None:
            self.cache = ResultCache(root=Path(cfg.cache_dir),
                                     max_bytes=cfg.cache_max_bytes)
        # pool import is deferred so mp start-method selection happens
        # at service start, not module import
        from .workers import WorkerPool
        self.pool = WorkerPool(size=cfg.workers)
        self.metrics = ServiceMetrics(latency_window=cfg.latency_window)
        self.in_flight: dict[str, PendingRequest] = {}
        self.dispatched: dict[int, PendingRequest] = {}
        self.crash_counts: dict[str, int] = {}
        self.quarantine: dict[str, str] = {}
        self.accepting = True
        self.started_at = 0.0
        self.shutdown = asyncio.Event()
        self._rng = cfg.requeue.rng()
        self._supervisor: asyncio.Task[None] | None = None
        self._started = False
        self._clock = time.monotonic

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        if self._started:
            raise RuntimeError("service already started")
        self.started_at = self._clock()
        self._replay_journal()
        self.pool.start()
        self._started = True
        self._supervisor = asyncio.get_running_loop().create_task(
            self._run())

    def _replay_journal(self) -> None:
        pending = self.journal.replay()
        self.metrics.journal_corrupt = self.journal.stats.corrupt_lines
        keep: list[JournalRecord] = []
        for rec in pending:
            try:
                req = CertRequest.from_json(rec.request)
            except ProtocolError:
                # journaled under an older/corrupted schema: terminal
                self.journal.done(rec.seq, rec.digest, "error")
                self.metrics.errors += 1
                continue
            if rec.digest in self.in_flight:  # pragma: no cover - defensive
                self.journal.done(rec.seq, rec.digest, "deduplicated")
                continue
            entry = PendingRequest(seq=rec.seq, request=req,
                                   digest=rec.digest,
                                   accepted_at=self._clock(), replayed=True)
            self.in_flight[rec.digest] = entry
            self.queue.push(entry)
            self.metrics.replayed += 1
            self.metrics.accepted += 1
            keep.append(rec)
        self.journal.compact(keep)

    async def stop(self) -> None:
        """Stop now.  Unfinished accepted requests stay journaled (their
        local waiters get ``SRV007``) and replay on the next start."""
        if self._supervisor is not None:
            self._supervisor.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._supervisor
            self._supervisor = None
        self.pool.stop()
        now = self._clock()
        for digest in sorted(self.in_flight):
            entry = self.in_flight[digest]
            entry.resolve(self._error_response(
                entry, "SRV007", now,
                "service stopped before the request finished; it stays "
                "journaled and will replay on restart"))
        self.journal.close()
        self._started = False

    async def drain(self, timeout_s: float = 120.0) -> dict[str, Any]:
        """Stop accepting, run the backlog down, compact the journal."""
        self.accepting = False
        deadline = self._clock() + timeout_s
        while ((self.queue.depth or self.dispatched)
               and self._clock() < deadline):
            await asyncio.sleep(self.config.tick_s)
        remaining = self.queue.depth + len(self.dispatched)
        keep = [JournalRecord(op="accepted", seq=self.in_flight[d].seq,
                              digest=d,
                              request=self.in_flight[d].request.to_json())
                for d in sorted(self.in_flight)]
        self.journal.compact(keep)
        return {"status": "ok", "drained": remaining == 0,
                "remaining": remaining,
                "journal": str(self.journal.stats)}

    # -- admission ------------------------------------------------------
    async def submit(self, payload: dict[str, Any] | CertRequest,
                     ) -> dict[str, Any]:
        """Admit one request and await its terminal response."""
        now = self._clock()
        try:
            if isinstance(payload, CertRequest):
                req = payload
                req.validate()
            else:
                req = CertRequest.from_json(payload)
        except ProtocolError as exc:
            self.metrics.rejected += 1
            return self._admission_error("SRV005", f"invalid request: {exc}")
        if req.has_test_hooks and not self.config.allow_test_hooks:
            self.metrics.rejected += 1
            return self._admission_error(
                "SRV005", "request carries test hooks but the service "
                          "runs without --allow-test-hooks")
        digest = req.digest()
        reason = self.quarantine.get(digest)
        if reason is not None:
            self.metrics.quarantine_hits += 1
            return self._admission_error(
                "SRV001", f"request digest is quarantined: {reason}",
                digest=digest)
        if not self.accepting:
            return self._admission_error(
                "SRV007", "service is draining and not accepting requests",
                digest=digest)
        if self.cache is not None and not req.no_cache:
            hit = self.cache.load_json(_cache_key(digest))
            if hit is not None:
                self.metrics.cache_hits += 1
                out = dict(hit)
                out["cached"] = True
                return out
        existing = self.in_flight.get(digest)
        if existing is not None:
            self.metrics.dedup_hits += 1
            fut: asyncio.Future[dict[str, Any]] = \
                asyncio.get_running_loop().create_future()
            existing.waiters.append(fut)
            return await fut
        if self.queue.would_shed:
            self.metrics.sheds += 1
            retry_after = self._retry_after()
            out = self._admission_error(
                "SRV002", f"queue full "
                          f"({self.queue.depth}/{self.queue.capacity}); "
                          f"retry after {retry_after}s", digest=digest)
            out["status"] = "shed"
            out["retry_after_s"] = retry_after
            return out
        seq = self.journal.next_seq
        self.journal.accepted(seq, digest, req.to_json())
        entry = PendingRequest(seq=seq, request=req, digest=digest,
                               accepted_at=now)
        fut = asyncio.get_running_loop().create_future()
        entry.waiters.append(fut)
        self.in_flight[digest] = entry
        self.queue.push(entry)
        self.metrics.accepted += 1
        return await fut

    def _retry_after(self) -> float:
        mean = 0.05
        if self.metrics.latencies:
            mean = (sum(self.metrics.latencies)
                    / len(self.metrics.latencies))
        estimate = self.queue.depth * mean / max(1, self.pool.size)
        return round(min(30.0, max(0.1, estimate)), 3)

    # -- supervisor -----------------------------------------------------
    async def _run(self) -> None:
        while True:
            self._step(self._clock())
            await asyncio.sleep(self.config.tick_s)

    def _step(self, now: float) -> None:
        """One supervisor tick (synchronous; also the test surface)."""
        results, deaths = self.pool.poll()
        for _handle, out in results:
            entry = self.dispatched.pop(int(out.get("seq", -1)), None)
            if entry is None:
                continue  # late answer for a deadline-killed request
            self.metrics.pool.completed += 1
            self._finish(entry, out, now)
        for handle in deaths:
            seq = handle.busy_seq
            entry = self.dispatched.pop(seq, None) if seq is not None \
                else None
            self.pool.respawn(handle)
            self.metrics.pool.crashes += 1
            self.metrics.pool.pool_restarts += 1
            if entry is not None:
                self._crashed(entry, now)
        self._enforce_deadlines(now)
        self.pool.reap_idle_deaths()
        for handle in self.pool.idle():
            entry = self.queue.pop_ready(now)
            if entry is None:
                break
            payload = entry.request.to_json()
            if (entry.request.engine == "both" and not entry.degraded
                    and self.queue.under_pressure):
                entry.degraded = True
                payload["engine"] = "symbolic"
                self.metrics.degraded += 1
            entry.attempts += 1
            self.dispatched[entry.seq] = entry
            self.metrics.pool.submitted += 1
            self.pool.dispatch(handle, entry.seq, payload, now)

    def _enforce_deadlines(self, now: float) -> None:
        for handle in list(self.pool.handles):
            if handle.busy_seq is None:
                continue
            entry = self.dispatched.get(handle.busy_seq)
            if entry is None:
                continue
            deadline = entry.request.deadline_s
            if deadline is None:
                deadline = self.config.default_deadline_s
            if deadline is None or now - handle.dispatched_at <= deadline:
                continue
            self.dispatched.pop(entry.seq, None)
            self.pool.kill(handle)
            self.pool.respawn(handle)
            self.metrics.deadline_kills += 1
            self.metrics.pool.timeouts += 1
            self.metrics.pool.pool_restarts += 1
            self._resolve_terminal(entry, self._error_response(
                entry, "SRV003", now,
                f"deadline of {deadline}s exceeded; worker killed"), now)

    def _crashed(self, entry: PendingRequest, now: float) -> None:
        entry.crashes += 1
        total = self.crash_counts.get(entry.digest, 0) + 1
        self.crash_counts[entry.digest] = total
        if total >= self.config.poison_threshold:
            reason = (f"crashed {total} worker(s); poison threshold "
                      f"{self.config.poison_threshold} reached")
            self.quarantine[entry.digest] = reason
            self.metrics.quarantined += 1
            self._resolve_terminal(entry, self._error_response(
                entry, "SRV001", now, f"request quarantined: {reason}"),
                now)
            return
        if entry.crashes > self.config.requeue.max_retries:
            self._resolve_terminal(entry, self._error_response(
                entry, "SRV008", now,
                f"worker crashed {entry.crashes} time(s); retry budget "
                f"({self.config.requeue.max_retries}) exhausted"), now)
            return
        delay = self.config.requeue.delay(entry.crashes - 1, self._rng)
        self.queue.push_delayed(entry, now + delay)
        self.metrics.pool.retries += 1

    # -- completion -----------------------------------------------------
    def _finish(self, entry: PendingRequest, out: dict[str, Any],
                now: float) -> None:
        status = out.get("status", "error")
        if status not in TERMINAL_STATUSES:
            status = "error"
        response = self._base_response(entry, status, now)
        response["compute_s"] = out.get("compute_s")
        for key in _RESULT_KEYS:
            if key in out:
                response[key] = out[key]
        srv: list[dict[str, Any]] = []
        if entry.degraded:
            srv.append(Diagnostic(
                code="SRV004",
                message="queue pressure degraded this 'both'-engine "
                        "request to symbolic-only; resubmit with "
                        "no_cache for a full differential run",
            ).to_json())
        if entry.replayed:
            srv.append(Diagnostic(
                code="SRV006",
                message="request was replayed from the journal after a "
                        "service restart",
            ).to_json())
        if srv:
            response["srv"] = srv
        self._resolve_terminal(entry, response, now)

    def _resolve_terminal(self, entry: PendingRequest,
                          response: dict[str, Any], now: float) -> None:
        self.journal.done(entry.seq, entry.digest, response["status"])
        self.in_flight.pop(entry.digest, None)
        self.metrics.completed += 1
        status = response["status"]
        if status == "certified":
            self.metrics.certified += 1
        elif status == "refuted":
            self.metrics.refuted += 1
        elif status == "vacuous":
            self.metrics.vacuous += 1
        else:
            self.metrics.errors += 1
        self.metrics.observe(now - entry.accepted_at, now)
        if (self.cache is not None and status in CACHEABLE_STATUSES
                and not entry.degraded and not entry.request.no_cache):
            self.cache.store_json(_cache_key(entry.digest), response)
        entry.resolve(response)

    # -- responses ------------------------------------------------------
    def _base_response(self, entry: PendingRequest, status: str,
                       now: float) -> dict[str, Any]:
        return {
            "version": PROTOCOL_VERSION,
            "status": status,
            "request_digest": entry.digest,
            "seq": entry.seq,
            "engine": ("symbolic" if entry.degraded
                       else entry.request.engine),
            "degraded": entry.degraded,
            "replayed": entry.replayed,
            "cached": False,
            "attempts": entry.attempts,
            "elapsed_s": round(now - entry.accepted_at, 6),
        }

    def _error_response(self, entry: PendingRequest, code: str,
                        now: float, message: str) -> dict[str, Any]:
        response = self._base_response(entry, "error", now)
        response["error"] = message
        response["srv"] = [Diagnostic(code=code, message=message).to_json()]
        return response

    def _admission_error(self, code: str, message: str,
                         digest: str | None = None) -> dict[str, Any]:
        diag = Diagnostic(code=code, message=message)
        out: dict[str, Any] = {
            "version": PROTOCOL_VERSION,
            "status": "error",
            "error": message,
            "srv": [diag.to_json()],
            "cached": False,
        }
        if digest is not None:
            out["request_digest"] = digest
        return out

    # -- introspection --------------------------------------------------
    def status(self) -> dict[str, Any]:
        now = self._clock()
        summary = Diagnostic(
            code="SRV090",
            message=f"queue {self.queue.depth}/{self.queue.capacity}, "
                    f"{len(self.dispatched)} in flight, "
                    f"{self.metrics.completed} completed",
        )
        out: dict[str, Any] = {
            "version": PROTOCOL_VERSION,
            "status": "ok",
            "accepting": self.accepting,
            "uptime_s": round(now - self.started_at, 3),
            "queue": {
                "depth": self.queue.depth,
                "capacity": self.queue.capacity,
                "high_water": self.queue.high_water,
                "under_pressure": self.queue.under_pressure,
            },
            "workers": {
                "size": self.pool.size,
                "pids": self.pool.pids(),
                "busy": sum(1 for h in self.pool.handles if h.busy),
                "respawns": self.pool.respawns,
            },
            "in_flight": len(self.dispatched),
            "quarantined": sorted(self.quarantine),
            "journal": str(self.journal.stats),
            "metrics": self.metrics.to_json(),
            "srv": [summary.to_json()],
        }
        if self.cache is not None:
            out["cache"] = {
                "hits": self.cache.stats.hits,
                "misses": self.cache.stats.misses,
                "evictions": self.cache.stats.evictions,
                "total_bytes": self.cache.total_bytes(),
            }
        return out


def _cache_key(digest: str) -> str:
    return f"serve-{digest[:32]}"


# ----------------------------------------------------------------------
# Unix-socket front-end (JSON lines)
# ----------------------------------------------------------------------
async def serve_unix(service: CertificationService,
                     socket_path: str | Path) -> asyncio.AbstractServer:
    """Expose a started service on a Unix socket; returns the server.

    Ops: ``submit`` (body in ``request``), ``status``, ``ping``,
    ``drain`` and ``stop`` (sets ``service.shutdown`` for the CLI's
    serve loop to act on).
    """

    async def handle(reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    msg = decode_line(line)
                    op = str(msg.get("op", "submit"))
                    if op == "submit":
                        resp = await service.submit(msg.get("request", {}))
                    elif op == "status":
                        resp = service.status()
                    elif op == "ping":
                        resp = {"status": "ok",
                                "version": PROTOCOL_VERSION}
                    elif op == "drain":
                        resp = await service.drain(
                            timeout_s=float(msg.get("timeout_s", 120.0)))
                    elif op == "stop":
                        resp = {"status": "ok", "stopping": True}
                        service.shutdown.set()
                    else:
                        raise ProtocolError(f"unknown op {op!r}")
                except ProtocolError as exc:
                    resp = {"status": "error", "error": str(exc),
                            "srv": [Diagnostic(code="SRV005",
                                               message=str(exc)).to_json()]}
                writer.write(encode_line(resp))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Server shut down while this connection idled in
            # readline(); close quietly instead of surfacing the
            # cancellation through the protocol's done-callback.
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    return await asyncio.start_unix_server(handle, path=str(socket_path))
