"""Request/response protocol of the certification service.

A request is a plain JSON object naming a certification problem:
a topology (paper name or PGFT tuple), a collective (Table-2 name),
a placement (order family + seed, optionally a Cont.-X exclusion) and
an engine.  ``kind: "cert"`` certifies from cold through the
:mod:`repro.check` pipeline; ``kind: "delta"`` re-certifies a
placement change incrementally against the worker-cached symbolic
:class:`~repro.check.symbolic.CaseState` of a *base* placement.

Identity is content-addressed: :func:`request_digest` hashes exactly
the fields that determine the verdict (never the deadline or cache
knobs), so identical problems deduplicate in flight, hit the result
cache across restarts, and quarantine together when poisonous.

Validation is strict and happens at admission: any unknown field,
unknown name or inconsistent combination raises :class:`ProtocolError`
(surfaced as an ``SRV005`` diagnostic) *before* the request is
journaled -- a malformed request can never occupy the queue, crash a
worker or replay forever.

The wire format (Unix socket) is JSON lines: one request object per
line in, one response object per line out.  See ``docs/SERVICE.md``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Any

from ..check import ENGINES
from ..collectives import CPS_NAMES
from ..topology import paper_topologies, pgft
from ..topology.spec import PGFTSpec

__all__ = [
    "PROTOCOL_VERSION",
    "ORDERS",
    "REQUEST_KINDS",
    "CertRequest",
    "ProtocolError",
    "parse_spec_text",
    "request_digest",
    "encode_line",
    "decode_line",
]

#: bump on any incompatible change to the request/response schema
PROTOCOL_VERSION = 1

#: placement families a request may name.  ``rotate`` rolls the
#: topology order by ``order_seed`` slots -- the canonical cheap,
#: certificate-preserving placement delta.
ORDERS = ("topology", "reversed", "random", "rotate")

REQUEST_KINDS = ("cert", "delta")

#: certification problems larger than this are refused at admission --
#: the service is sized for interactive certification, not for
#: one-request denial of service.
MAX_ENDPORTS = 200_000


class ProtocolError(ValueError):
    """A request failed validation (``SRV005``); it was never accepted."""


def parse_spec_text(text: str) -> PGFTSpec:
    """Parse an ``'h; m1,..; w1,..; p1,..'`` PGFT tuple string."""
    parts = [seg.strip() for seg in str(text).split(";")]
    if len(parts) != 4:
        raise ProtocolError(
            f"spec must be 'h; m1,..; w1,..; p1,..', got {text!r}")
    try:
        h = int(parts[0])
        vecs = [[int(x) for x in seg.split(",")] for seg in parts[1:]]
        return pgft(h, *vecs)
    except (ValueError, TypeError) as exc:
        raise ProtocolError(f"bad PGFT tuple {text!r}: {exc}") from exc


@dataclass(frozen=True)
class CertRequest:
    """One certification problem, as accepted by the service.

    Exactly one of ``topo`` (paper topology name) / ``spec`` (PGFT
    tuple string) names the fabric.  ``deadline_s`` and ``no_cache``
    are *service* knobs: they never enter the request digest.
    ``test_delay_s``/``test_crash`` are chaos-test hooks, honoured
    only when the service runs with ``allow_test_hooks`` -- they DO
    enter the digest, so a poison test request quarantines its own
    digest, never a real one.
    """

    kind: str = "cert"
    topo: str | None = None
    spec: str | None = None
    cps: str = "shift"
    max_stages: int = 64
    order: str = "topology"
    order_seed: int = 0
    exclude: int = 0
    exclude_seed: int = 0
    engine: str = "symbolic"
    base_order: str = "topology"
    base_order_seed: int = 0
    deadline_s: float | None = None
    no_cache: bool = False
    test_delay_s: float = 0.0
    test_crash: bool = False

    # -- validation -----------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`ProtocolError` on the first inconsistency."""
        if self.kind not in REQUEST_KINDS:
            raise ProtocolError(f"unknown kind {self.kind!r}; "
                                f"known: {list(REQUEST_KINDS)}")
        if (self.topo is None) == (self.spec is None):
            raise ProtocolError("give exactly one of topo / spec")
        if self.engine not in ENGINES:
            raise ProtocolError(f"unknown engine {self.engine!r}; "
                                f"known: {list(ENGINES)}")
        if self.order not in ORDERS or self.base_order not in ORDERS:
            raise ProtocolError(f"unknown order; known: {list(ORDERS)}")
        if self.cps not in CPS_NAMES:
            raise ProtocolError(f"unknown CPS {self.cps!r}; "
                                f"known: {sorted(CPS_NAMES)}")
        if self.kind == "delta" and self.engine == "enumerate":
            raise ProtocolError("delta requests re-certify incrementally "
                                "through the symbolic engine; use engine "
                                "'symbolic' (or 'both' for a differential "
                                "cross-check)")
        spec = self.resolve_spec()
        if spec.num_endports > MAX_ENDPORTS:
            raise ProtocolError(f"{spec.num_endports} end-ports exceeds the "
                                f"service ceiling of {MAX_ENDPORTS}")
        if not 0 <= self.exclude < spec.num_endports:
            raise ProtocolError("exclude must leave at least one active "
                                "end-port")
        if self.max_stages < 1:
            raise ProtocolError("max_stages must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ProtocolError("deadline_s must be positive")
        if self.test_delay_s < 0:
            raise ProtocolError("test_delay_s must be >= 0")

    def resolve_spec(self) -> PGFTSpec:
        """The PGFT spec this request certifies (raises ProtocolError)."""
        if self.spec is not None:
            return parse_spec_text(self.spec)
        topos = paper_topologies()
        if self.topo not in topos:
            raise ProtocolError(f"unknown topology {self.topo!r}; "
                                f"available: {', '.join(sorted(topos))}")
        return topos[self.topo]

    @property
    def has_test_hooks(self) -> bool:
        return self.test_crash or self.test_delay_s > 0

    # -- serialisation --------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        out = asdict(self)
        # canonical: omit fields still at their defaults
        for key in sorted(out):
            if out[key] == _DEFAULTS[key]:
                del out[key]
        return out

    @classmethod
    def from_json(cls, payload: Any) -> "CertRequest":
        if not isinstance(payload, dict):
            raise ProtocolError(f"request must be a JSON object, "
                                f"got {type(payload).__name__}")
        unknown = sorted(set(payload) - set(_DEFAULTS))
        if unknown:
            raise ProtocolError(f"unknown request field(s): {unknown}")
        coerced: dict[str, Any] = {}
        for key in sorted(payload):
            value = payload[key]
            want = _FIELD_TYPES[key]
            if value is None and key in _OPTIONAL_FIELDS:
                coerced[key] = None
                continue
            try:
                coerced[key] = want(value)
            except (TypeError, ValueError) as exc:
                raise ProtocolError(f"bad value for {key!r}: {exc}") from exc
        req = cls(**coerced)
        req.validate()
        return req

    def digest(self) -> str:
        return request_digest(self)


_DEFAULTS: dict[str, Any] = asdict(CertRequest())

_FIELD_TYPES: dict[str, Any] = {
    "kind": str, "topo": str, "spec": str, "cps": str, "max_stages": int,
    "order": str, "order_seed": int, "exclude": int, "exclude_seed": int,
    "engine": str, "base_order": str, "base_order_seed": int,
    "deadline_s": float, "no_cache": bool, "test_delay_s": float,
    "test_crash": bool,
}

_OPTIONAL_FIELDS = frozenset({"topo", "spec", "deadline_s"})

#: service knobs that never affect the verdict -- excluded from the digest
_NON_SEMANTIC_FIELDS = frozenset({"deadline_s", "no_cache"})


def request_digest(req: CertRequest) -> str:
    """SHA-256 identity of the certification problem.

    Hashes every verdict-determining field (canonical JSON, sorted
    keys) and none of the service knobs, so two submissions with
    different deadlines are one problem, but any change to topology,
    schedule, placement, engine or test hooks is a new digest.
    """
    payload = asdict(req)
    for key in sorted(_NON_SEMANTIC_FIELDS):
        del payload[key]
    blob = json.dumps(payload, sort_keys=True).encode()
    h = hashlib.sha256(b"repro-serve-request-v1")
    h.update(blob)
    return h.hexdigest()


# -- wire helpers (JSON lines) ------------------------------------------
def encode_line(obj: dict[str, Any]) -> bytes:
    """One wire message: compact JSON + newline."""
    return json.dumps(obj, sort_keys=True).encode() + b"\n"


def decode_line(line: bytes) -> dict[str, Any]:
    try:
        obj = json.loads(line.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable wire message: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("wire message must be a JSON object")
    return obj
