"""Worker processes of the certification service.

Certification runs out-of-process: a crash (segfault, OOM-kill,
injected ``test_crash``) takes down one worker, never the service.
Each worker is a plain ``multiprocessing.Process`` with its own
``Pipe`` -- deliberately *not* a shared pool executor, so the
supervisor can ``SIGKILL`` exactly the worker holding an over-deadline
request without disturbing the others.

Workers are stateful where it pays: each keeps a small LRU of symbolic
:class:`~repro.check.symbolic.CaseState` objects keyed by the *base*
request digest, so a stream of ``kind: "delta"`` requests against the
same baseline re-certifies incrementally (the paper's placement-change
workflow) instead of from cold.  The cache is soft state -- a fresh
worker rebuilds a missing base on demand -- which is what keeps delta
requests safe to replay after any crash.

:func:`execute_request` is the pure request -> result-dict function
(also the unit-test surface); :class:`WorkerPool` owns the processes.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..check import CheckContext, ScheduleCase, SymbolicCertifier, run_check
from ..check.certify import placement_digest
from ..check.symbolic import CERTIFICATE_VERSION, CaseState
from ..collectives import by_name, shift
from ..collectives.cps import CPS
from ..fabric import build_fabric
from ..ordering import random_order, topology_order, topology_subset
from ..routing import route_dmodk
from ..runtime.cache import active_digest, cps_digest, spec_digest
from ..topology.spec import PGFTSpec
from .protocol import CertRequest, ProtocolError

__all__ = ["WorkerPool", "WorkerHandle", "execute_request"]

#: symbolic base states cached per worker (soft state, LRU by insertion)
STATE_CACHE_SIZE = 8

#: exit code of an injected ``test_crash`` (distinguishable from -SIGKILL)
TEST_CRASH_EXIT = 17


# ----------------------------------------------------------------------
# Request execution (runs inside the worker process)
# ----------------------------------------------------------------------
def _sampled_shift(n: int, max_stages: int) -> CPS:
    """The CLI's shift sampling: every displacement up to ``max_stages``
    stages, then a uniform stride -- same schedule, same digest."""
    if n - 1 <= max_stages:
        return shift(n)
    step = (n - 1) // max_stages
    return shift(n, displacements=range(1, n, step))


def _make_cps(req: CertRequest, num_ranks: int) -> CPS:
    if req.cps == "shift":
        return _sampled_shift(num_ranks, req.max_stages)
    return by_name(req.cps, num_ranks)


def _make_active(req: CertRequest, spec: PGFTSpec) -> np.ndarray | None:
    if not req.exclude:
        return None
    return topology_subset(spec.num_endports, req.exclude,
                           seed=req.exclude_seed)


def _make_order(order: str, seed: int, spec: PGFTSpec,
                active: np.ndarray | None) -> np.ndarray:
    """Placement vector for an order family.

    ``rotate`` rolls the topology order by ``seed`` slots: every rank
    moves, yet D-Mod-K's shift-invariance keeps the verdict -- the
    cheap contention-free delta the service's SLO is stated over.
    """
    if active is not None:
        ports = np.sort(np.asarray(active, dtype=np.int64))
    else:
        ports = topology_order(spec.num_endports)
    if order == "topology":
        return ports
    if order == "reversed":
        return ports[::-1].copy()
    if order == "rotate":
        return np.roll(ports, seed)
    if order == "random":
        rng = np.random.default_rng(seed)
        return rng.permutation(ports).astype(np.int64)
    raise ProtocolError(f"unknown order {order!r}")


def _base_request(req: CertRequest) -> CertRequest:
    """The cold symbolic certification a delta re-certifies against."""
    return CertRequest(kind="cert", topo=req.topo, spec=req.spec,
                       cps=req.cps, max_stages=req.max_stages,
                       order=req.base_order, order_seed=req.base_order_seed,
                       exclude=req.exclude, exclude_seed=req.exclude_seed,
                       engine="symbolic")


def _certificate(spec: PGFTSpec, cps: CPS, placement: np.ndarray,
                 active: np.ndarray | None, num_flows: int,
                 max_link_load: int) -> dict[str, Any]:
    """Same schema as the ``symbolic-certify`` pass emits -- a service
    certificate and a CLI certificate for one problem are identical."""
    return {
        "kind": "contention-freedom-certificate",
        "version": CERTIFICATE_VERSION,
        "certificate_kind": "symbolic",
        "case": cps.name,
        "topology": str(spec),
        "num_endports": int(spec.num_endports),
        "routing": "dmodk",
        "spec_digest": spec_digest(spec),
        "cps": cps.name,
        "cps_digest": cps_digest(cps),
        "num_stages": len(cps.stages),
        "num_flows": int(num_flows),
        "placement_digest": placement_digest(placement),
        "active_digest": active_digest(spec.num_endports, active),
        "max_link_load": int(max_link_load),
        "verdict": "contention-free",
    }


def _symbolic_response(spec: PGFTSpec, cps: CPS, placement: np.ndarray,
                       active: np.ndarray | None, result: Any,
                       ) -> dict[str, Any]:
    if result.refuted:
        return {"status": "refuted", "maxima": list(result.maxima),
                "num_flows": int(result.total_flows),
                "counterexample": result.violations[0]}
    if result.total_flows == 0:
        return {"status": "vacuous", "maxima": list(result.maxima),
                "num_flows": 0}
    return {"status": "certified", "maxima": list(result.maxima),
            "num_flows": int(result.total_flows),
            "certificates": [_certificate(spec, cps, placement, active,
                                          result.total_flows,
                                          result.max_link_load)]}


def _run_check_response(req: CertRequest, spec: PGFTSpec, cps: CPS,
                        placement: np.ndarray, active: np.ndarray | None,
                        ) -> dict[str, Any]:
    """Cold certification through the full pass pipeline (``enumerate``
    and ``both`` engines need materialised tables)."""
    fabric = build_fabric(spec)
    tables = route_dmodk(fabric, active=active)
    ctx = CheckContext.for_tables(tables, routing_name="dmodk",
                                  schedule=[ScheduleCase(cps, placement)],
                                  active=active)
    only = ({"certify", "symbolic-certify", "differential"}
            if req.engine == "both" else {"certify"})
    res = run_check(ctx, only=only, engine=req.engine)
    summary = res.report.summary()
    refutations = [d.to_json() for d in res.report.diagnostics
                   if d.code in ("CFC001", "SYM001")]
    vacuous = any(d.code in ("CFC002", "SYM002")
                  for d in res.report.diagnostics)
    if refutations:
        return {"status": "refuted", "counterexample": refutations[0],
                "diagnostics": refutations[:5], "summary": summary}
    if res.certificates:
        return {"status": "certified", "certificates": res.certificates,
                "summary": summary}
    if vacuous:
        return {"status": "vacuous", "summary": summary}
    return {"status": "error", "summary": summary,
            "error": "certification produced neither a certificate nor a "
                     "counterexample",
            "diagnostics": [d.to_json() for d in res.report.diagnostics][:5]}


def _remember(states: dict[str, CaseState], key: str,
              state: CaseState) -> None:
    states.pop(key, None)
    states[key] = state
    while len(states) > STATE_CACHE_SIZE:
        oldest = next(iter(states))
        del states[oldest]


def execute_request(payload: dict[str, Any],
                    states: dict[str, CaseState] | None = None,
                    ) -> dict[str, Any]:
    """Run one certification request to a result dict.

    Never raises for request-level problems -- malformed payloads and
    engine failures become ``status: "error"`` results; only genuine
    crashes (or the ``test_crash`` hook) escape, by killing the
    process.  ``states`` is the worker's base-state cache.
    """
    if states is None:
        states = {}
    try:
        req = CertRequest.from_json(payload)
    except ProtocolError as exc:
        return {"status": "error", "error": f"protocol: {exc}"}
    if req.test_delay_s > 0:
        time.sleep(req.test_delay_s)
    if req.test_crash:
        os._exit(TEST_CRASH_EXIT)
    try:
        spec = req.resolve_spec()
        active = _make_active(req, spec)
        num_ranks = len(active) if active is not None else spec.num_endports
        cps = _make_cps(req, num_ranks)
        placement = _make_order(req.order, req.order_seed, spec, active)
        if req.kind == "cert" and req.engine != "symbolic":
            return _run_check_response(req, spec, cps, placement, active)
        certifier = SymbolicCertifier(spec, active)
        if req.kind == "cert":
            result, state = certifier.certify(cps, placement)
            _remember(states, req.digest(), state)
            return _symbolic_response(spec, cps, placement, active, result)
        # kind == "delta": incremental against the cached base state
        base = _base_request(req)
        base_key = base.digest()
        state = states.get(base_key)
        incremental = state is not None
        if state is None:
            base_placement = _make_order(base.order, base.order_seed,
                                         spec, active)
            _, state = certifier.certify(cps, base_placement)
        result, new_state, inc = certifier.recertify(state,
                                                     placement=placement)
        _remember(states, base_key, state)
        out = _symbolic_response(spec, cps, placement, active, result)
        out["incremental"] = {
            "base_cached": incremental,
            "stages_touched": inc.stages_touched,
            "stages_total": inc.stages_total,
            "flows_recomputed": inc.flows_recomputed,
            "flows_total": inc.flows_total,
        }
        if req.engine == "both":
            cross = _run_check_response(req, spec, cps, placement, active)
            agree = cross.get("status") == out["status"]
            out["engine_agreement"] = agree
            if not agree:
                return {"status": "error",
                        "error": f"engine disagreement (SYM090): "
                                 f"incremental symbolic says "
                                 f"{out['status']!r}, cold "
                                 f"differential says "
                                 f"{cross.get('status')!r}",
                        "incremental": out["incremental"]}
        return out
    except (ValueError, ProtocolError) as exc:
        return {"status": "error", "error": f"{type(exc).__name__}: {exc}"}


# ----------------------------------------------------------------------
# The worker process main loop
# ----------------------------------------------------------------------
def _worker_main(conn: Any) -> None:
    """Receive ``{"seq", "request"}`` dicts, reply with result dicts.

    Unexpected exceptions are converted to ``status: "error"`` replies;
    the loop ends on EOF or a ``None`` sentinel.
    """
    states: dict[str, CaseState] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None:
            break
        started = time.perf_counter()
        try:
            out = execute_request(msg["request"], states)
        except Exception as exc:  # noqa: BLE001 - worker must not die here
            out = {"status": "error",
                   "error": f"{type(exc).__name__}: {exc}"}
        out["seq"] = msg.get("seq")
        out["compute_s"] = round(time.perf_counter() - started, 6)
        try:
            conn.send(out)
        except (BrokenPipeError, OSError):
            break
    conn.close()


# ----------------------------------------------------------------------
# The supervised pool (runs in the service process)
# ----------------------------------------------------------------------
@dataclass
class WorkerHandle:
    """One worker process and what it is doing."""

    index: int
    proc: mp.process.BaseProcess
    conn: Any
    busy_seq: int | None = None
    dispatched_at: float = 0.0
    dispatches: int = 0

    @property
    def busy(self) -> bool:
        return self.busy_seq is not None

    def alive(self) -> bool:
        return self.proc.is_alive()


@dataclass
class WorkerPool:
    """Fixed-size pool of pipe-connected certification workers.

    The pool never raises on worker death -- :meth:`poll` reports it
    and :meth:`respawn` replaces the process.  ``fork`` start method
    when available (cheap, inherits the imported closed form), else
    ``spawn``.
    """

    size: int = 2
    handles: list[WorkerHandle] = field(default_factory=list)
    respawns: int = 0

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("pool size must be >= 1")
        methods = mp.get_all_start_methods()
        self._ctx = mp.get_context("fork" if "fork" in methods else "spawn")

    def _spawn(self, index: int) -> WorkerHandle:
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(target=_worker_main, args=(child,),
                                 daemon=True, name=f"repro-serve-w{index}")
        proc.start()
        child.close()
        return WorkerHandle(index=index, proc=proc, conn=parent)

    def start(self) -> None:
        if self.handles:
            raise RuntimeError("pool already started")
        self.handles = [self._spawn(i) for i in range(self.size)]

    def idle(self) -> list[WorkerHandle]:
        return [h for h in self.handles if not h.busy and h.alive()]

    def dispatch(self, handle: WorkerHandle, seq: int,
                 request: dict[str, Any], now: float) -> None:
        handle.conn.send({"seq": seq, "request": request})
        handle.busy_seq = seq
        handle.dispatched_at = now
        handle.dispatches += 1

    def poll(self) -> tuple[list[tuple[WorkerHandle, dict[str, Any]]],
                            list[WorkerHandle]]:
        """Collect finished results and detect dead busy workers.

        Results are drained before liveness is checked, so a worker
        that answered and *then* died still delivers its answer.
        """
        results: list[tuple[WorkerHandle, dict[str, Any]]] = []
        deaths: list[WorkerHandle] = []
        for handle in self.handles:
            try:
                while handle.conn.poll():
                    out = handle.conn.recv()
                    if handle.busy and out.get("seq") == handle.busy_seq:
                        handle.busy_seq = None
                        results.append((handle, out))
            except (EOFError, OSError):
                pass  # broken pipe: the liveness check below decides
            if handle.busy and not handle.alive():
                deaths.append(handle)
        return results, deaths

    def kill(self, handle: WorkerHandle) -> None:
        """SIGKILL the worker (deadline enforcement); caller respawns."""
        handle.busy_seq = None
        if handle.alive():
            handle.proc.kill()
        handle.proc.join(timeout=5.0)

    def respawn(self, handle: WorkerHandle) -> WorkerHandle:
        """Replace a dead (or killed) worker in place."""
        try:
            handle.conn.close()
        except OSError:
            pass
        if handle.alive():  # pragma: no cover - defensive
            handle.proc.kill()
        handle.proc.join(timeout=5.0)
        fresh = self._spawn(handle.index)
        self.handles[self.handles.index(handle)] = fresh
        self.respawns += 1
        return fresh

    def reap_idle_deaths(self) -> int:
        """Respawn workers that died while idle (counted, not fatal)."""
        reaped = 0
        for handle in list(self.handles):
            if not handle.busy and not handle.alive():
                self.respawn(handle)
                reaped += 1
        return reaped

    def pids(self) -> list[int]:
        return [h.proc.pid or -1 for h in self.handles]

    def stop(self) -> None:
        for handle in self.handles:
            try:
                handle.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for handle in self.handles:
            handle.proc.join(timeout=2.0)
            if handle.alive():
                handle.proc.kill()
                handle.proc.join(timeout=5.0)
            try:
                handle.conn.close()
            except OSError:
                pass
        self.handles = []
