"""Bounded request queue with backpressure and delayed requeue.

The queue is the service's only buffer, and it is *bounded*: above
``capacity`` the service sheds new requests at admission (``SRV002``)
rather than queueing unboundedly; above ``high_water`` it advertises
pressure so ``both``-engine requests degrade to symbolic-only
(``SRV004``).  Crashed-worker requests re-enter through the *delayed*
heap with a seeded exponential-backoff ``not_before`` stamp
(:class:`RequeuePolicy`, mirroring the MPI layer's retry policy), so a
flapping worker cannot busy-spin the supervisor.

Ordering is deterministic: ready requests pop FIFO by admission
sequence, delayed requests by ``(not_before, seq)``.
"""

from __future__ import annotations

import asyncio
import heapq
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from .protocol import CertRequest

__all__ = ["BoundedRequestQueue", "PendingRequest", "RequeuePolicy"]


@dataclass(frozen=True)
class RequeuePolicy:
    """Seeded exponential backoff for crashed-worker requeues.

    ``delay(attempt)`` grows ``base_delay * backoff**attempt`` up to
    ``max_delay``, plus-or-minus uniform ``jitter`` drawn from the
    policy's own seeded RNG -- runs are reproducible and retries of
    many requests de-synchronise instead of thundering back at once.
    ``max_retries`` bounds crash-requeues per request *beyond* the
    first attempt; past it the request fails terminally (``SRV008``).
    """

    max_retries: int = 3
    base_delay: float = 0.05
    backoff: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay <= 0 or self.backoff < 1.0:
            raise ValueError("base_delay must be > 0 and backoff >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def rng(self) -> random.Random:
        return random.Random(self.seed)

    def delay(self, attempt: int, rng: random.Random) -> float:
        base = min(self.base_delay * self.backoff ** attempt, self.max_delay)
        if self.jitter == 0.0:
            return base
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


@dataclass
class PendingRequest:
    """One accepted request's life in the service.

    Carries everything the supervisor needs: the request, its digest,
    the journal sequence number, crash/attempt counters, the earliest
    dispatch time after a backoff, and the asyncio futures of every
    submitter waiting on this digest (in-flight dedup attaches extra
    waiters to the same pending entry).
    """

    seq: int
    request: CertRequest
    digest: str
    accepted_at: float = 0.0
    attempts: int = 0
    crashes: int = 0
    not_before: float = 0.0
    replayed: bool = False
    degraded: bool = False
    waiters: list["asyncio.Future[dict[str, Any]]"] = field(
        default_factory=list)

    def resolve(self, response: dict[str, Any]) -> None:
        """Deliver ``response`` to every still-listening waiter."""
        for fut in self.waiters:
            if not fut.done():
                fut.set_result(response)
        self.waiters.clear()


class BoundedRequestQueue:
    """FIFO of ready requests plus a min-heap of backoff-delayed ones.

    ``depth`` counts both; admission (``would_shed``) and pressure
    (``under_pressure``) look at the same number, so a queue full of
    backed-off retries still sheds new work.
    """

    def __init__(self, capacity: int = 256, high_water: int | None = None,
                 ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.high_water = (high_water if high_water is not None
                           else max(1, (capacity * 3) // 4))
        if not 1 <= self.high_water <= capacity:
            raise ValueError("high_water must be in [1, capacity]")
        self._ready: deque[PendingRequest] = deque()
        self._delayed: list[tuple[float, int, PendingRequest]] = []

    @property
    def depth(self) -> int:
        return len(self._ready) + len(self._delayed)

    @property
    def would_shed(self) -> bool:
        return self.depth >= self.capacity

    @property
    def under_pressure(self) -> bool:
        return self.depth >= self.high_water

    def push(self, pending: PendingRequest) -> None:
        self._ready.append(pending)

    def push_delayed(self, pending: PendingRequest, not_before: float,
                     ) -> None:
        pending.not_before = not_before
        heapq.heappush(self._delayed, (not_before, pending.seq, pending))

    def pop_ready(self, now: float) -> PendingRequest | None:
        """Next dispatchable request: matured backoffs first, then FIFO."""
        while self._delayed and self._delayed[0][0] <= now:
            _, _, pending = heapq.heappop(self._delayed)
            self._ready.append(pending)
        if self._ready:
            return self._ready.popleft()
        return None

    def next_delay(self, now: float) -> float | None:
        """Seconds until the earliest delayed request matures, if any."""
        if not self._delayed:
            return None
        return max(0.0, self._delayed[0][0] - now)

    def drain_all(self) -> list[PendingRequest]:
        """Remove and return everything, ready-first then by maturity."""
        out = list(self._ready)
        self._ready.clear()
        while self._delayed:
            out.append(heapq.heappop(self._delayed)[2])
        return out
