"""Crash-safe request journal for the certification service.

The journal is the service's write-ahead log: every request is
recorded (*accepted*) before it enters the queue and marked *done*
when a terminal response has been produced.  On restart,
:meth:`Journal.replay` returns the accepted-but-unfinished records so
the service can re-enqueue them -- an accepted request is never lost
to a crash, which is the core guarantee behind the chaos gate.

Format: one JSON object per line, append-only.  Each append is
flushed and ``fsync``-ed before the caller proceeds, so a record the
service acted on is on disk.  A torn final line (the service died
mid-write) is tolerated and counted, never fatal: replay stops
trusting the file at the first undecodable line and reports it in
:class:`JournalStats`.  Compaction rewrites the journal to just the
still-pending records via a temp file and atomic ``os.replace`` --
the journal is always either the old complete file or the new one.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any

__all__ = ["Journal", "JournalRecord", "JournalStats"]

_OPS = ("accepted", "done")


@dataclass(frozen=True)
class JournalRecord:
    """One journal line.

    ``accepted`` records carry the full request payload (the canonical
    ``CertRequest.to_json()`` dict) so replay needs nothing but the
    journal; ``done`` records carry the terminal status string instead.
    ``seq`` is the service-wide admission sequence number and pairs the
    two records of one request.
    """

    op: str
    seq: int
    digest: str
    request: dict[str, Any] | None = None
    status: str | None = None

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown journal op {self.op!r}")
        if self.op == "accepted" and self.request is None:
            raise ValueError("accepted records must carry the request")
        if self.op == "done" and self.status is None:
            raise ValueError("done records must carry a status")
        if self.seq < 0:
            raise ValueError("seq must be >= 0")

    def to_json(self) -> dict[str, Any]:
        out: dict[str, Any] = {"op": self.op, "seq": self.seq,
                               "digest": self.digest}
        if self.request is not None:
            out["request"] = self.request
        if self.status is not None:
            out["status"] = self.status
        return out

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "JournalRecord":
        if not isinstance(payload, dict):
            raise ValueError("journal record must be a JSON object")
        unknown = sorted(set(payload) - {"op", "seq", "digest",
                                         "request", "status"})
        if unknown:
            raise ValueError(f"unknown journal field(s): {unknown}")
        return cls(op=str(payload.get("op", "")),
                   seq=int(payload.get("seq", -1)),
                   digest=str(payload.get("digest", "")),
                   request=payload.get("request"),
                   status=payload.get("status"))


@dataclass
class JournalStats:
    """What replay found, for ``SRV006`` reporting and metrics."""

    records: int = 0
    pending: int = 0
    finished: int = 0
    corrupt_lines: int = 0
    compactions: int = 0

    def __str__(self) -> str:
        return (f"records={self.records} pending={self.pending} "
                f"finished={self.finished} corrupt={self.corrupt_lines} "
                f"compactions={self.compactions}")


class Journal:
    """Append-only, fsync-per-record write-ahead log.

    Not thread-safe by design: the service appends from the single
    asyncio event-loop thread.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.stats = JournalStats()
        self._fh: IO[bytes] | None = None
        self.next_seq = 0

    # -- writing --------------------------------------------------------
    def _handle(self) -> IO[bytes]:
        if self._fh is None or self._fh.closed:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "ab")
        return self._fh

    def append(self, record: JournalRecord) -> None:
        """Durably append one record (flush + fsync before returning)."""
        fh = self._handle()
        fh.write(json.dumps(record.to_json(), sort_keys=True).encode())
        fh.write(b"\n")
        fh.flush()
        os.fsync(fh.fileno())
        self.stats.records += 1
        if record.seq >= self.next_seq:
            self.next_seq = record.seq + 1

    def accepted(self, seq: int, digest: str,
                 request: dict[str, Any]) -> None:
        self.append(JournalRecord(op="accepted", seq=seq, digest=digest,
                                  request=request))

    def done(self, seq: int, digest: str, status: str) -> None:
        self.append(JournalRecord(op="done", seq=seq, digest=digest,
                                  status=status))

    # -- recovery -------------------------------------------------------
    def replay(self) -> list[JournalRecord]:
        """Read the journal; return pending accepted records in seq order.

        Tolerates a torn tail: undecodable lines are counted in
        ``stats.corrupt_lines`` and skipped.  Also positions
        ``next_seq`` past every sequence number ever journaled, so a
        restarted service never reuses one.
        """
        self.close()
        stats = self.stats = JournalStats()
        pending: dict[int, JournalRecord] = {}
        if not self.path.exists():
            return []
        with open(self.path, "rb") as fh:
            for raw in fh:
                line = raw.strip()
                if not line:
                    continue
                try:
                    rec = JournalRecord.from_json(json.loads(line.decode()))
                except (ValueError, TypeError):
                    stats.corrupt_lines += 1
                    continue
                stats.records += 1
                if rec.seq >= self.next_seq:
                    self.next_seq = rec.seq + 1
                if rec.op == "accepted":
                    pending[rec.seq] = rec
                elif pending.pop(rec.seq, None) is not None:
                    stats.finished += 1
        stats.pending = len(pending)
        return [pending[seq] for seq in sorted(pending)]

    def compact(self, pending: list[JournalRecord]) -> None:
        """Atomically rewrite the journal to just ``pending`` records."""
        self.close()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp, "wb") as fh:
            for rec in pending:
                fh.write(json.dumps(rec.to_json(), sort_keys=True).encode())
                fh.write(b"\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self.stats.compactions += 1

    def close(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._fh.close()
        self._fh = None
