"""``python -m repro.serve`` == the ``repro-serve`` CLI."""

import sys

from .cli import main

sys.exit(main())
