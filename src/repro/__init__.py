"""repro -- contention-free fat-tree routing and MPI node ordering.

A production-grade reproduction of Zahavi, *"Fat-Trees Routing and Node
Ordering Providing Contention Free Traffic for MPI Global Collectives"*
(2011).  The library covers the full stack the paper builds on:

* :mod:`repro.topology` -- XGFT/PGFT/RLFT fat-tree models (section IV);
* :mod:`repro.fabric` -- the wired-fabric data model, forwarding tables
  and a topology file format (the "ibdm" substrate);
* :mod:`repro.routing` -- D-Mod-K (eq. 1) plus min-hop/random baselines
  and validators for the paper's theorems;
* :mod:`repro.collectives` -- the 8 collective permutation sequences of
  Table 2, their classification algebra, Table 1's usage survey, and
  the topology-aware bidirectional sequences of section VI;
* :mod:`repro.ordering` -- MPI rank placements: topology-aware, random,
  adversarial;
* :mod:`repro.analysis` -- the hot-spot-degree engine behind Figure 3
  and Table 3;
* :mod:`repro.sim` -- fluid and packet-level network simulators
  calibrated to InfiniBand QDR (section II / VII);
* :mod:`repro.experiments` -- drivers regenerating every table and
  figure (``repro-experiments`` CLI).

Quick taste::

    from repro import (build_fabric, route_dmodk, shift, topology_order,
                       sequence_hsd, two_level)

    spec = two_level(18, 18, 9, parallel=2)        # 324 nodes
    tables = route_dmodk(build_fabric(spec))
    rep = sequence_hsd(tables, shift(324), topology_order(324))
    assert rep.congestion_free                      # the paper's result
"""

from .analysis import (
    BatchedHSDReport,
    HSDReport,
    batched_sequence_hsd,
    random_order_sweep,
    sequence_hsd,
    stage_link_loads,
    stage_max_hsd,
    walk_flow_links,
)
from .collectives import (
    CPS,
    Stage,
    binomial,
    dissemination,
    hierarchical_recursive_doubling,
    pairwise_exchange,
    recursive_doubling,
    recursive_halving,
    ring,
    shift,
    tournament,
)
from .fabric import (
    Fabric,
    ForwardingTables,
    NodeTypeMap,
    build_fabric,
    parse_types,
)
from .faults import (
    FaultEvent,
    FaultRunReport,
    FaultSchedule,
    HealingController,
    RepairAction,
    run_faulty,
)
from .mpi import (
    CollectiveResult,
    Communicator,
    DeliveryError,
    FaultMetrics,
    RetryPolicy,
)
from .ordering import (
    adversarial_ring_order,
    physical_placement,
    random_order,
    topology_order,
)
from .routing import (
    route_dmodk,
    route_minhop,
    route_random,
    route_typeaware,
    typed_ranks,
)
from .runtime import ParallelSweeper, ResultCache, parallel_order_sweep
from .sim import (
    FluidSimulator,
    PacketSimulator,
    QDR_PCIE_GEN2,
    cps_workload,
    merge_sequences,
)
from .topology import (
    PGFT,
    PGFTSpec,
    k_ary_n_tree,
    paper_topologies,
    pgft,
    rlft_max,
    two_level,
    xgft,
)

__version__ = "1.0.0"

__all__ = [
    "CPS",
    "BatchedHSDReport",
    "CollectiveResult",
    "Communicator",
    "DeliveryError",
    "Fabric",
    "FaultEvent",
    "FaultMetrics",
    "FaultRunReport",
    "FaultSchedule",
    "FluidSimulator",
    "ForwardingTables",
    "HSDReport",
    "HealingController",
    "NodeTypeMap",
    "PGFT",
    "PGFTSpec",
    "PacketSimulator",
    "ParallelSweeper",
    "QDR_PCIE_GEN2",
    "RepairAction",
    "ResultCache",
    "RetryPolicy",
    "Stage",
    "adversarial_ring_order",
    "batched_sequence_hsd",
    "binomial",
    "build_fabric",
    "cps_workload",
    "dissemination",
    "hierarchical_recursive_doubling",
    "k_ary_n_tree",
    "merge_sequences",
    "pairwise_exchange",
    "paper_topologies",
    "parallel_order_sweep",
    "parse_types",
    "pgft",
    "physical_placement",
    "random_order",
    "random_order_sweep",
    "recursive_doubling",
    "recursive_halving",
    "ring",
    "rlft_max",
    "route_dmodk",
    "route_minhop",
    "route_random",
    "route_typeaware",
    "run_faulty",
    "sequence_hsd",
    "shift",
    "stage_link_loads",
    "stage_max_hsd",
    "topology_order",
    "tournament",
    "typed_ranks",
    "two_level",
    "walk_flow_links",
    "xgft",
]
