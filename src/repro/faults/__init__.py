"""Dynamic fault injection and self-healing.

The robustness layer of the library: declarative seeded fault schedules
(:mod:`~repro.faults.schedule`), an SM-style sweep-delayed repair
controller (:mod:`~repro.faults.controller`) and the fault-honoring
event-driven packet engine (:mod:`~repro.faults.packetsim`).  The MPI
communicator builds at-least-once delivery on top
(:class:`repro.mpi.DeliveryError`), and
``repro.experiments.chaos`` grinds seeded campaigns of randomized
schedules through the parallel sweep engine.

Everything here is deterministic: identical (schedule, seed, topology)
inputs reproduce identical packet drops, repair timelines and chaos
outcomes byte for byte.
"""

from .controller import HealingController, RepairAction
from .packetsim import FaultRunReport, LostMessage, run_faulty
from .schedule import (
    FLAKY,
    KINDS,
    LINK_DOWN,
    LINK_UP,
    SWITCH_DOWN,
    FaultEvent,
    FaultSchedule,
)

__all__ = [
    "FLAKY",
    "FaultEvent",
    "FaultRunReport",
    "FaultSchedule",
    "HealingController",
    "KINDS",
    "LINK_DOWN",
    "LINK_UP",
    "LostMessage",
    "RepairAction",
    "SWITCH_DOWN",
    "run_faulty",
]
