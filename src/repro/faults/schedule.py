"""Declarative, seeded fault schedules.

A :class:`FaultSchedule` is an immutable list of timed
:class:`FaultEvent` entries -- the *script* of everything that goes
wrong during a simulated run:

* ``link_down`` / ``link_up`` -- a cable (named by either of its global
  port ids) dies at time ``t`` and optionally comes back later;
* ``switch_down`` -- a switch dies, taking every attached cable with it
  (switches do not come back: a rebooted switch re-enters via topology
  change, which is outside this model);
* ``flaky`` -- a cable drops each packet crossing it during
  ``[time, until)`` with probability ``loss`` (seeded, deterministic).

Schedules are *data*, not behaviour: the packet engines interpret them
(:mod:`repro.faults.packetsim`), the healing controller derives repair
timelines from them (:mod:`repro.faults.controller`), the vectorized
engine intersects them with its link-occupancy intervals to decide
whether the analytic fast path is still exact, and ``repro.check``
lints them against a fabric.  Times are absolute simulated microseconds
on the same clock the simulators use.

:meth:`FaultSchedule.random` draws an MTBF-parameterised schedule from
a seeded generator -- the unit the chaos harness grinds by the
thousand.  Identical ``(fabric, seed, parameters)`` always produce an
identical schedule, byte for byte.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..fabric.model import Fabric

__all__ = [
    "FLAKY",
    "KINDS",
    "LINK_DOWN",
    "LINK_UP",
    "SWITCH_DOWN",
    "FaultEvent",
    "FaultSchedule",
]

LINK_DOWN = "link_down"
LINK_UP = "link_up"
SWITCH_DOWN = "switch_down"
FLAKY = "flaky"

#: the fault-event kinds a schedule may contain
KINDS = (LINK_DOWN, LINK_UP, SWITCH_DOWN, FLAKY)


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault.

    ``gport`` names a cable by either of its global port ids (link and
    flaky events); ``node`` names a switch (switch events).  ``until``
    and ``loss`` apply to ``flaky`` windows only.
    """

    time: float
    kind: str
    gport: int = -1
    node: int = -1
    until: float = math.inf
    loss: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {KINDS}")
        if not (math.isfinite(self.time) and self.time >= 0.0):
            raise ValueError(f"fault time must be finite and >= 0, got {self.time}")
        if self.kind == FLAKY:
            if not 0.0 < self.loss <= 1.0:
                raise ValueError(f"flaky loss must be in (0, 1], got {self.loss}")
            if not self.until > self.time:
                raise ValueError("flaky window must end after it starts")
        if self.kind == SWITCH_DOWN and self.node < 0:
            raise ValueError("switch_down needs a node id")
        if self.kind in (LINK_DOWN, LINK_UP, FLAKY) and self.gport < 0:
            raise ValueError(f"{self.kind} needs a gport")

    def to_json(self) -> dict:
        out: dict = {"time": self.time, "kind": self.kind}
        if self.gport >= 0:
            out["gport"] = self.gport
        if self.node >= 0:
            out["node"] = self.node
        if self.kind == FLAKY:
            out["until"] = self.until if math.isfinite(self.until) else None
            out["loss"] = self.loss
        return out

    @classmethod
    def from_json(cls, obj: dict) -> FaultEvent:
        until = obj.get("until", math.inf)
        return cls(
            time=float(obj["time"]), kind=str(obj["kind"]),
            gport=int(obj.get("gport", -1)), node=int(obj.get("node", -1)),
            until=math.inf if until is None else float(until),
            loss=float(obj.get("loss", 0.0)),
        )


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, seeded script of faults.

    ``seed`` feeds the per-packet loss draws of ``flaky`` windows (and
    records the campaign seed of :meth:`random` schedules), so a run
    against a schedule is exactly reproducible.
    """

    events: tuple[FaultEvent, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: e.time))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def is_empty(self) -> bool:
        return not self.events

    @property
    def horizon(self) -> float:
        """Last finite timestamp the schedule mentions (0.0 if empty)."""
        t = 0.0
        for e in self.events:
            t = max(t, e.time)
            if e.kind == FLAKY and math.isfinite(e.until):
                t = max(t, e.until)
        return t

    def topology_events(self) -> tuple[FaultEvent, ...]:
        """The events that change which cables exist (everything but
        ``flaky``) -- the ones a subnet-manager sweep reacts to."""
        return tuple(e for e in self.events if e.kind != FLAKY)

    # -- fabric-resolved views --------------------------------------------
    def _cable(self, fabric: Fabric, gport: int) -> tuple[int, int]:
        """Both directed gports of the cable ``gport`` sits on."""
        peer = int(fabric.port_peer[gport])
        return (gport, peer if peer >= 0 else gport)

    def down_intervals(self, fabric: Fabric) -> list[tuple[int, int, float, float]]:
        """Dead windows per cable: ``(gport_a, gport_b, start, end)``.

        ``end`` is ``inf`` for cables that never come back.  Switch
        death expands to one never-closing window per attached cable.
        A ``link_up`` closes the most recent open window of its cable;
        without a preceding ``link_down`` it is a no-op (the schedule
        lint flags it).
        """
        open_win: dict[tuple[int, int], float] = {}
        killed: set[tuple[int, int]] = set()
        out: list[tuple[int, int, float, float]] = []
        for e in self.events:
            if e.kind == LINK_DOWN:
                key = self._canon(fabric, e.gport)
                if key not in open_win and key not in killed:
                    open_win[key] = e.time
            elif e.kind == LINK_UP:
                key = self._canon(fabric, e.gport)
                start = open_win.pop(key, None)
                if start is not None:
                    out.append((key[0], key[1], start, e.time))
            elif e.kind == SWITCH_DOWN:
                for gp in fabric.ports_of(e.node):
                    if fabric.port_peer[gp] < 0:
                        continue
                    key = self._canon(fabric, int(gp))
                    if key in killed:
                        continue
                    start = open_win.pop(key, e.time)
                    killed.add(key)
                    out.append((key[0], key[1], min(start, e.time), math.inf))
        for key in sorted(open_win):  # leftovers never recovered
            out.append((key[0], key[1], open_win[key], math.inf))
        out.sort(key=lambda w: (w[2], w[0]))
        return out

    def _canon(self, fabric: Fabric, gport: int) -> tuple[int, int]:
        a, b = self._cable(fabric, gport)
        return (min(a, b), max(a, b))

    def flaky_intervals(
        self, fabric: Fabric
    ) -> list[tuple[int, int, float, float, float]]:
        """Flaky windows per cable: ``(gport_a, gport_b, start, end, loss)``."""
        out = []
        for e in self.events:
            if e.kind == FLAKY:
                a, b = self._canon(fabric, e.gport)
                out.append((a, b, e.time, e.until, e.loss))
        return out

    def dead_gports_at(self, fabric: Fabric, t: float) -> np.ndarray:
        """Sorted directed gports that are down at time ``t`` (cables in
        an open dead window, both directions)."""
        dead: set[int] = set()
        for a, b, start, end in self.down_intervals(fabric):
            if start <= t < end:
                dead.add(a)
                dead.add(b)
        return np.asarray(sorted(dead), dtype=np.int64)

    def overlaps_occupancy(
        self,
        fabric: Fabric,
        links: np.ndarray,
        enter: np.ndarray,
        exit_: np.ndarray,
        margin: float = 0.0,
    ) -> bool:
        """Does any fault window intersect any link-occupancy interval?

        ``links``/``enter``/``exit_`` are the flat per-(message, hop)
        occupancy arrays the vectorized engine collects.  Used to decide
        whether an analytically resolved run could have been perturbed
        by this schedule: no intersection means no packet ever crossed a
        faulty link while the fault was active, so the fault-free
        timestamps are exact.
        """
        if not len(links):
            return False
        windows = [(a, b, s, e) for a, b, s, e in self.down_intervals(fabric)]
        windows += [(a, b, s, e) for a, b, s, e, _ in self.flaky_intervals(fabric)]
        for a, b, start, end in windows:
            mask = (links == a) | (links == b)
            if not mask.any():
                continue
            hit = (enter[mask] < end + margin) & (exit_[mask] > start - margin)
            if hit.any():
                return True
        return False

    # -- serialisation ------------------------------------------------------
    def to_json(self) -> dict:
        return {"seed": self.seed, "events": [e.to_json() for e in self.events]}

    @classmethod
    def from_json(cls, obj: dict) -> FaultSchedule:
        return cls(
            events=tuple(FaultEvent.from_json(e) for e in obj.get("events", ())),
            seed=int(obj.get("seed", 0)),
        )

    # -- seeded campaign generator ------------------------------------------
    @classmethod
    def random(
        cls,
        fabric: Fabric,
        seed: int,
        horizon: float = 20_000.0,
        mtbf: float = 5_000.0,
        p_switch: float = 0.08,
        p_host: float = 0.08,
        p_flaky: float = 0.25,
        p_recover: float = 0.6,
        mean_repair: float | None = None,
        loss_range: tuple[float, float] = (0.05, 0.3),
    ) -> FaultSchedule:
        """Draw an MTBF-parameterised schedule (chaos-campaign unit).

        The topology-fault count is Poisson with mean ``horizon/mtbf``;
        each fault is a switch death (probability ``p_switch``), a flaky
        window (``p_flaky``) or a cable cut -- hitting a host uplink
        with probability ``p_host``, a switch-to-switch cable otherwise.
        Cut cables recover after an exponential delay with probability
        ``p_recover``.  All draws come from one seeded generator in a
        fixed order, so the schedule is a pure function of the inputs.
        """
        rng = np.random.default_rng(seed)
        N = fabric.num_endports
        if mean_repair is None:
            mean_repair = horizon / 4.0
        live = fabric.port_peer >= 0
        host_up = np.flatnonzero(live & (fabric.port_owner < N))
        sw_up = np.flatnonzero(
            fabric.port_goes_up() & (fabric.port_owner >= N))
        switches = np.arange(N, fabric.num_nodes)
        events: list[FaultEvent] = []
        for _ in range(int(rng.poisson(max(horizon, 0.0) / max(mtbf, 1e-9)))):
            t = float(rng.uniform(0.0, horizon))
            u = float(rng.random())
            if u < p_switch and len(switches):
                node = int(rng.choice(switches))
                events.append(FaultEvent(time=t, kind=SWITCH_DOWN, node=node))
                continue
            if u < p_switch + p_flaky and len(sw_up):
                gp = int(rng.choice(sw_up))
                dur = float(rng.exponential(mean_repair))
                loss = float(rng.uniform(*loss_range))
                events.append(FaultEvent(
                    time=t, kind=FLAKY, gport=gp,
                    until=t + max(dur, 1.0), loss=loss))
                continue
            pool = host_up if (rng.random() < p_host and len(host_up)) else sw_up
            if not len(pool):
                continue
            gp = int(rng.choice(pool))
            events.append(FaultEvent(time=t, kind=LINK_DOWN, gport=gp))
            if rng.random() < p_recover:
                dt = float(rng.exponential(mean_repair))
                events.append(FaultEvent(
                    time=t + max(dt, 1.0), kind=LINK_UP, gport=gp))
        return cls(events=tuple(events), seed=seed)
