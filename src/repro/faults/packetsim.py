"""Fault-honoring packet engine: the reference core plus a fault plane.

This is the event-driven engine of :mod:`repro.sim.packet` extended
with a dynamic fault plane.  The traffic model is unchanged -- MTU
segmentation, cut-through forwarding, input-queued FIFOs, credit flow
control -- and on an empty schedule the run is event-for-event the
reference run.  Faults add four behaviours:

* **drop at transmit** -- a packet whose next link is down (or whose
  LFT entry is ``-1`` after a repair left the destination unreachable)
  is discarded where it stands; the head-of-line advances and the input
  buffer credit is released immediately, so drops never wedge a queue;
* **drop in flight** -- a packet on the wire when its link dies is
  lost; the downstream buffer slot it had reserved is released;
* **flaky loss** -- packets crossing a flaky cable are dropped at
  arrival with the window's probability, drawn from a generator seeded
  by ``(schedule seed, attempt, t0)`` in deterministic event order;
* **switch death** -- every queue inside the dead switch is purged
  (packets gone), all its cables go down, and parked senders re-resolve
  (and drop) instead of waiting forever.

A :class:`HealingController` swaps repaired tables in *live*: packets
already queued re-resolve their next hop, parked senders are woken, and
packets injected later follow the repaired routes.

A message with any dropped packet can never complete; the receiver
discards partial payloads (messages are all-or-nothing, as MPI-level
retransmission resends whole messages).  The run reports those losses
in a :class:`FaultRunReport` instead of raising -- silent data loss is
impossible by construction, loud diagnosis is the caller's job
(:class:`repro.mpi.DeliveryError`).  ``t0`` offsets the engine onto the
global fault clock so a retry started at ``t0`` experiences exactly the
faults scheduled for ``[t0, ...)``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..sim.events import EventQueue, SimulationError
from ..sim.fluid import MessageRecord
from ..sim.packet import PacketEngineStats, PacketResult, _segment_count
from .controller import HealingController, RepairAction
from .schedule import FaultSchedule

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.packet import PacketSimulator

__all__ = ["FaultRunReport", "LostMessage", "run_faulty"]


@dataclass(frozen=True)
class LostMessage:
    """One message the fabric failed to deliver."""

    src: int
    dst: int
    seq: int        # position within the source port's sequence
    size: float
    dropped_packets: int
    reason: str


@dataclass(frozen=True)
class FaultRunReport:
    """Fault-plane outcome of one engine run (attached to the
    :class:`~repro.sim.packet.PacketResult` as ``fault_report``)."""

    t0: float                       # global time the run started at
    end: float                      # global time the last delivery landed
    total_messages: int             # real (routed) messages attempted
    delivered_messages: int
    delivered_bytes: float
    dropped_packets: int
    lost: tuple[LostMessage, ...]
    repairs: tuple[RepairAction, ...]  # table swaps applied mid-run

    @property
    def delivered_fraction(self) -> float:
        if self.total_messages == 0:
            return 1.0
        return self.delivered_messages / self.total_messages


@dataclass
class _FMsg:
    src: int
    dst: int
    size: float
    start: float
    seq_idx: int = 0
    inject: float = -1.0
    finish: float = -1.0
    packets_left: int = 0
    dropped: int = 0
    reason: str = ""


@dataclass
class _FPacket:
    msg_id: int
    dst: int
    size: float
    is_last: bool
    ready: float = 0.0


@dataclass
class _Counters:
    events: int = 0
    dropped: int = 0
    unresolved: int = 0   # real messages not yet delivered or doomed
    pending_ports: int = 0  # ports still working through their sequence


def run_faulty(
    sim: "PacketSimulator",
    sequences: list[list[tuple[int, float]]],
    faults: FaultSchedule,
    controller: HealingController | None = None,
    t0: float = 0.0,
    attempt: int = 0,
) -> tuple[PacketResult, FaultRunReport]:
    """Run ``sequences`` under ``faults`` starting at global time ``t0``.

    Returns the :class:`PacketResult` (lost messages appear in
    ``messages`` with ``finish == -1``; latencies/makespan cover
    deliveries only) and the :class:`FaultRunReport`.  Engine-local
    time 0 corresponds to global time ``t0``.
    """
    fab = sim.fabric
    N = fab.num_endports
    if len(sequences) != N:
        raise ValueError(f"need {N} sequences, got {len(sequences)}")
    q = EventQueue()
    cal = sim.cal
    limit = sim.credit_limit
    tables_ref = [controller.tables_at(t0) if controller is not None
                  else sim.tables]

    down = np.zeros(fab.num_ports, dtype=bool)
    flaky: dict[int, float] = {}   # directed gport -> active loss prob
    rng = np.random.default_rng(np.random.SeedSequence(
        [faults.seed & 0xFFFFFFFF, int(attempt),
         abs(int(round(t0 * 1e3))) & 0xFFFFFFFFFFFF]))

    in_queue: dict[int, deque] = {}
    occupancy: dict[int, int] = {}
    out_busy: dict[int, float] = {}
    out_wait: dict[int, deque] = {}
    credit_wait: dict[int, deque] = {}

    host_pkts: dict[int, deque] = {p: deque() for p in range(N)}
    host_free = [0.0] * N
    seq_pos = [0] * N
    messages: list[_FMsg] = []
    applied: list[RepairAction] = []
    ctr = _Counters()

    cap = sim._link_capacities()

    def segment(size: float) -> list[float]:
        full, rest = divmod(size, cal.mtu)
        sizes = [float(cal.mtu)] * int(full)
        if rest > 1e-12 or not sizes:
            sizes.append(float(rest) if rest > 1e-12 else float(size))
        return sizes

    def tick() -> None:
        ctr.events += 1
        if ctr.events > sim.max_events:
            raise SimulationError("packet event budget exhausted")

    def has_credit(send_gp: int) -> bool:
        if limit is None:
            return True
        if fab.peer_node[send_gp] < N:
            return True
        return occupancy.get(send_gp, 0) < limit

    def drop_packet(pkt: _FPacket, reason: str) -> None:
        ctr.dropped += 1
        msg = messages[pkt.msg_id]
        if msg.dropped == 0:
            msg.reason = reason
            if msg.finish < 0:
                ctr.unresolved -= 1   # doomed: can never complete
        msg.dropped += 1

    # -- fault plane ------------------------------------------------------
    def wake_parked(gp: int) -> None:
        """Re-dispatch every sender parked on link ``gp`` (output-busy
        or credit wait): the link state or tables changed under them."""
        for dq in (out_wait.pop(gp, None), credit_wait.pop(gp, None)):
            if dq:
                for sender in dq:
                    q.schedule(q.now, request_output, sender)

    def set_link_down(gpa: int, gpb: int) -> None:
        down[gpa] = True
        down[gpb] = True
        wake_parked(gpa)
        wake_parked(gpb)

    def set_link_up(gpa: int, gpb: int) -> None:
        down[gpa] = False
        down[gpb] = False

    def kill_switch(node: int) -> None:
        # Purge the dead switch's input buffers: queues live behind the
        # *sending* gport of each cable into the node.
        for gp_out in fab.ports_of(node):
            in_gp = int(fab.port_peer[gp_out])
            if in_gp < 0:
                continue
            queue = in_queue.get(in_gp)
            if queue:
                while queue:
                    drop_packet(queue.popleft(), "switch died")
                occupancy[in_gp] = 0
            wake_parked(in_gp)
            wake_parked(int(gp_out))

    def flaky_on(gpa: int, gpb: int, loss: float) -> None:
        flaky[gpa] = loss
        flaky[gpb] = loss

    def flaky_off(gpa: int, gpb: int) -> None:
        flaky.pop(gpa, None)
        flaky.pop(gpb, None)

    def apply_repair(tbls, action: RepairAction) -> None:
        tables_ref[0] = tbls
        applied.append(action)
        # Every parked sender may have a different next hop now.
        for gp in sorted(set(out_wait) | set(credit_wait)):
            wake_parked(gp)

    # -- host side --------------------------------------------------------
    def host_start_message(p: int) -> None:
        if seq_pos[p] >= len(sequences[p]):
            ctr.pending_ports -= 1
            return
        dst, size = sequences[p][seq_pos[p]]
        msg = _FMsg(src=p, dst=dst, size=size, start=q.now,
                    seq_idx=seq_pos[p])
        seq_pos[p] += 1
        t_start = max(q.now, host_free[p]) + cal.host_overhead
        msg_id = len(messages)
        messages.append(msg)
        if dst == p or size <= 0:
            msg.inject = t_start
            msg.finish = t_start
            host_free[p] = t_start
            q.schedule(t_start, host_start_message, p)
            return
        ctr.unresolved += 1
        pieces = segment(size)
        msg.packets_left = len(pieces)
        for i, psize in enumerate(pieces):
            host_pkts[p].append(
                _FPacket(msg_id, dst, psize, is_last=(i == len(pieces) - 1)))
        host_free[p] = max(q.now, host_free[p]) + cal.host_overhead
        q.schedule(host_free[p], host_try_send, p)

    def host_try_send(p: int) -> None:
        if not host_pkts[p]:
            return
        gp = int(fab.port_start[p])  # single-rail up port
        if q.now < host_free[p] - 1e-12:
            q.schedule(host_free[p], host_try_send, p)
            return
        if down[gp]:
            # The NIC sees its link dead and discards instantly; the
            # send chain advances so later (possibly post-repair...
            # the uplink itself never repairs) messages are attempted.
            pkt = host_pkts[p].popleft()
            msg = messages[pkt.msg_id]
            if msg.inject < 0:
                msg.inject = q.now
            drop_packet(pkt, "host uplink down")
            if host_pkts[p]:
                q.schedule(q.now, host_try_send, p)
            elif pkt.is_last:
                q.schedule(q.now, host_start_message, p)
            return
        if not has_credit(gp):
            credit_wait.setdefault(gp, deque()).append(("host", p))
            return
        pkt = host_pkts[p].popleft()
        msg = messages[pkt.msg_id]
        if msg.inject < 0:
            msg.inject = q.now
        duration = pkt.size / cap[gp]
        occupancy[gp] = occupancy.get(gp, 0) + 1
        q.schedule(q.now + cal.wire_latency, arrive, gp, pkt)
        host_free[p] = q.now + duration
        if host_pkts[p]:
            q.schedule(host_free[p], host_try_send, p)
        elif pkt.is_last:
            q.schedule(host_free[p], host_start_message, p)

    # -- switch side ------------------------------------------------------
    def arrive(send_gp: int, pkt: _FPacket) -> None:
        tick()
        if down[send_gp]:
            drop_packet(pkt, "link cut in flight")
            release_credit(send_gp)
            return
        loss = flaky.get(send_gp)
        if loss is not None and rng.random() < loss:
            drop_packet(pkt, "flaky loss")
            release_credit(send_gp)
            return
        node = int(fab.peer_node[send_gp])
        if node < N:
            tail = q.now + pkt.size / cap[send_gp]
            q.schedule(tail, deliver, pkt)
            return
        pkt.ready = q.now + cal.switch_latency
        queue = in_queue.setdefault(send_gp, deque())
        queue.append(pkt)
        if len(queue) == 1:
            request_output(("sw", node, send_gp))

    def deliver(pkt: _FPacket) -> None:
        msg = messages[pkt.msg_id]
        msg.packets_left -= 1
        if msg.packets_left == 0 and msg.dropped == 0:
            msg.finish = q.now
            ctr.unresolved -= 1

    def request_output(sender) -> None:
        if sender[0] == "host":
            host_try_send(sender[1])
            return
        _, node, in_gp = sender
        queue = in_queue.get(in_gp)
        if not queue:
            return
        pkt = queue[0]
        out = int(tables_ref[0].out_port(node, pkt.dst))
        if out < 0 or down[out]:
            # NACK: unroutable (repair declared the destination lost)
            # or next link dead.  Discard, free the buffer slot now,
            # keep the queue moving.
            queue.popleft()
            drop_packet(pkt, "no route" if out < 0 else "link down")
            release_credit(in_gp)
            if queue:
                q.schedule(q.now, request_output, sender)
            return
        if out_busy.get(out, 0.0) > q.now + 1e-12:
            out_wait.setdefault(out, deque()).append(sender)
            return
        if not has_credit(out):
            credit_wait.setdefault(out, deque()).append(sender)
            return
        transmit(node, in_gp, out, pkt)

    def transmit(node: int, in_gp: int, out: int, pkt: _FPacket) -> None:
        in_queue[in_gp].popleft()
        start = max(q.now, pkt.ready)
        duration = pkt.size / cap[out]
        out_busy[out] = start + duration
        occupancy[out] = occupancy.get(out, 0) + 1
        q.schedule(start + cal.wire_latency, arrive, out, pkt)
        q.schedule(start + duration, output_free, out)
        q.schedule(start + duration, release_credit, in_gp)
        if in_queue[in_gp]:
            q.schedule(start + duration, request_output, ("sw", node, in_gp))

    def output_free(out: int) -> None:
        waiting = out_wait.get(out)
        while waiting:
            sender = waiting.popleft()
            _, node, in_gp = sender
            queue = in_queue.get(in_gp)
            if not queue:
                continue
            pkt = queue[0]
            o = int(tables_ref[0].out_port(node, pkt.dst))
            if o != out or o < 0 or down[out]:
                # Tables swapped or the link died while parked:
                # re-resolve from scratch (may drop or re-route).
                q.schedule(q.now, request_output, sender)
                continue
            if has_credit(out):
                transmit(node, in_gp, out, pkt)
                return
            credit_wait.setdefault(out, deque()).append(sender)

    def release_credit(send_gp: int) -> None:
        occupancy[send_gp] = occupancy.get(send_gp, 1) - 1
        waiting = credit_wait.get(send_gp)
        if waiting:
            request_output(waiting.popleft())

    # -- schedule the fault plane (engine-local time = global - t0) -------
    for a, b, start, end in faults.down_intervals(fab):
        if end <= t0:
            continue
        if start <= t0:
            down[a] = True
            down[b] = True
        else:
            q.schedule(start - t0, set_link_down, a, b)
        if np.isfinite(end):
            q.schedule(end - t0, set_link_up, a, b)
    for e in faults.topology_events():
        if e.kind == "switch_down" and e.time > t0:
            q.schedule(e.time - t0, kill_switch, e.node)
    for a, b, start, end, loss in faults.flaky_intervals(fab):
        if end <= t0:
            continue
        if start <= t0:
            flaky[a] = loss
            flaky[b] = loss
        else:
            q.schedule(start - t0, flaky_on, a, b, loss)
        if np.isfinite(end):
            q.schedule(end - t0, flaky_off, a, b)
    if controller is not None:
        for sweep_time, tbls, action in controller.swaps_after(t0):
            q.schedule(sweep_time - t0, apply_repair, tbls, action)

    for p in range(N):
        if sequences[p]:
            ctr.pending_ports += 1
            q.schedule(0.0, host_start_message, p)

    # Stop as soon as all traffic is resolved; pending fault/repair
    # bookkeeping beyond that point cannot change the outcome.  In-flight
    # remnants of doomed messages only matter while an undecided message
    # could still queue behind them -- and then unresolved > 0.
    q.run(max_events=None,
          stop=lambda: ctr.unresolved == 0 and ctr.pending_ports == 0)

    stuck = [m for m in messages if m.finish < 0 and m.dropped == 0
             and not (m.dst == m.src or m.size <= 0)]
    if stuck:
        raise SimulationError(
            f"{len(stuck)} messages neither delivered nor dropped "
            "(deadlock in the fault engine)")

    messages.sort(key=lambda m: (m.src, m.seq_idx))
    records = [
        MessageRecord(m.src, m.dst, m.size, m.start,
                      float(m.inject), float(m.finish))
        for m in messages
    ]
    real = [m for m in messages if m.size > 0 and m.src != m.dst]
    delivered = [m for m in real if m.finish >= 0]
    lost = tuple(
        LostMessage(src=m.src, dst=m.dst, seq=m.seq_idx, size=m.size,
                    dropped_packets=m.dropped, reason=m.reason)
        for m in real if m.finish < 0
    )
    makespan = max((m.finish for m in messages if m.finish >= 0),
                   default=0.0)
    lat = np.asarray([m.finish - m.start for m in delivered])
    stats = PacketEngineStats(
        engine="reference", fast_path=False, fallback=False,
        conflicts=0, messages=len(real),
        packets=sum(_segment_count(m.size, cal.mtu) for m in real),
        events_saved=0,
    )
    report = FaultRunReport(
        t0=t0, end=t0 + makespan,
        total_messages=len(real),
        delivered_messages=len(delivered),
        delivered_bytes=sum(m.size for m in delivered),
        dropped_packets=ctr.dropped,
        lost=lost,
        repairs=tuple(applied),
    )
    result = PacketResult(
        makespan=makespan,
        total_bytes=sum(m.size for m in delivered),
        num_ports=N,
        active_ports=sum(1 for s in sequences if s),
        calibration=cal,
        latencies=lat,
        messages=records,
        engine_stats=stats,
        fault_report=report,
    )
    return result, report
