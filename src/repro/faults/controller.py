"""SM-style self-healing: sweep-delayed live table repair.

A real InfiniBand subnet manager does not react to a failure instantly:
it notices on its next sweep, recomputes routes around the damage and
pushes updated LFTs to the switches.  :class:`HealingController` models
exactly that loop on top of :func:`repro.routing.repair.repair_tables`:

* every topology-changing fault event triggers a sweep ``sweep_delay``
  microseconds later;
* the sweep observes the cable state *at sweep time* (a cable that
  already recovered is healthy again) and repairs the **base** tables
  against that degraded fabric;
* the resulting timeline of ``(sweep_time, tables)`` swaps is applied
  *live* by the faulty packet engine -- packets launched after a swap
  follow the repaired routes, packets already queued re-resolve their
  next hop against the new tables.

The ``strategy`` argument picks *which* repair each sweep pushes:
``"naive"`` round-robin, ``"balanced"`` least-loaded (quality-aware),
or ``"auto"`` -- compute both and keep the one with the better static
score (:func:`repro.routing.repair.score_repair`: fewest lost
destinations, then lowest worst-link destination multiplicity).  That
is the live-path counterpart of the ``repro.check.faultspace`` static
sweep: the same scoring that certifies degraded fabrics offline
chooses the repair pushed to the switches.

Because the dead-cable evolution is a pure function of the schedule,
the whole timeline is precomputed at construction: lookups during a run
are O(log n) bisects, and two runs against the same controller see
identical tables at identical times.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass

from ..fabric.lft import ForwardingTables
from ..routing.repair import (
    REPAIR_STRATEGIES,
    RepairReport,
    repair_tables,
    score_repair,
)
from .schedule import FaultSchedule

__all__ = ["HealingController", "RepairAction"]


@dataclass(frozen=True)
class RepairAction:
    """One subnet-manager sweep that pushed repaired tables."""

    fault_time: float            # the event that triggered the sweep
    sweep_time: float            # when the repaired tables went live
    dead_cables: int             # directed gports down at sweep time
    repaired_entries: int        # (switch, dest) entries re-pointed
    unreachable: tuple[int, ...]  # destinations no repair can restore
    strategy: str = "naive"      # which repair the sweep pushed
    worst_multiplicity: int = 0  # static worst-link load of the push

    @property
    def recovery_latency(self) -> float:
        return self.sweep_time - self.fault_time


class HealingController:
    """Precomputed repair timeline for one ``(tables, schedule)`` pair."""

    def __init__(
        self,
        tables: ForwardingTables,
        faults: FaultSchedule,
        sweep_delay: float = 50.0,
        strategy: str = "naive",
    ):
        if sweep_delay < 0:
            raise ValueError("sweep_delay must be >= 0")
        if strategy not in REPAIR_STRATEGIES + ("auto",):
            raise ValueError(f"unknown repair strategy {strategy!r}; "
                             f"known: {REPAIR_STRATEGIES + ('auto',)}")
        self.base_tables = tables
        self.faults = faults
        self.sweep_delay = float(sweep_delay)
        self.strategy = strategy
        fabric = tables.fabric
        # One sweep per distinct topology-event time; a later event
        # inside the same sweep window simply triggers its own sweep.
        sweeps: dict[float, float] = {}
        for e in faults.topology_events():
            sweeps.setdefault(e.time + self.sweep_delay, e.time)
        self._times: list[float] = []
        self._tables: list[ForwardingTables] = []
        self._actions: list[RepairAction] = []
        for sweep_time in sorted(sweeps):
            dead = faults.dead_gports_at(fabric, sweep_time)
            degraded = fabric.with_failed_cables(dead)
            rep = self._pick_repair(tables, degraded)
            self._times.append(sweep_time)
            self._tables.append(rep.tables)
            score = score_repair(rep)
            self._actions.append(RepairAction(
                fault_time=sweeps[sweep_time],
                sweep_time=sweep_time,
                dead_cables=len(dead),
                repaired_entries=rep.repaired_entries,
                unreachable=rep.unreachable,
                strategy=rep.strategy,
                worst_multiplicity=score[1],
            ))

    def _pick_repair(self, tables: ForwardingTables,
                     degraded) -> RepairReport:
        if self.strategy != "auto":
            return repair_tables(tables, degraded, strategy=self.strategy)
        # min() keeps the first candidate on ties -- prefer the
        # quality-aware repair when the static scores are equal, the
        # same tie-break sweep_fault_space(strategy="auto") applies.
        candidates = [repair_tables(tables, degraded, strategy=s)
                      for s in ("balanced", "naive")]
        return min(candidates, key=score_repair)

    @property
    def actions(self) -> tuple[RepairAction, ...]:
        return tuple(self._actions)

    def tables_at(self, t: float) -> ForwardingTables:
        """The tables a packet injected at time ``t`` is routed by."""
        i = bisect.bisect_right(self._times, t)
        return self.base_tables if i == 0 else self._tables[i - 1]

    def swaps_after(
        self, t0: float
    ) -> list[tuple[float, ForwardingTables, RepairAction]]:
        """Repair pushes strictly after ``t0``, in order."""
        i = bisect.bisect_right(self._times, t0)
        return [
            (self._times[j], self._tables[j], self._actions[j])
            for j in range(i, len(self._times))
        ]

    def earliest_swap(self) -> float:
        """Time of the first repair push (``inf`` when there is none)."""
        return self._times[0] if self._times else math.inf

    def recovery_latency(self) -> float:
        """Worst fault-to-repair latency over the timeline (0 if none)."""
        if not self._actions:
            return 0.0
        return max(a.recovery_latency for a in self._actions)
