"""SM-style self-healing: sweep-delayed live table repair.

A real InfiniBand subnet manager does not react to a failure instantly:
it notices on its next sweep, recomputes routes around the damage and
pushes updated LFTs to the switches.  :class:`HealingController` models
exactly that loop on top of :func:`repro.routing.repair.repair_tables`:

* every topology-changing fault event triggers a sweep ``sweep_delay``
  microseconds later;
* the sweep observes the cable state *at sweep time* (a cable that
  already recovered is healthy again) and repairs the **base** tables
  against that degraded fabric;
* the resulting timeline of ``(sweep_time, tables)`` swaps is applied
  *live* by the faulty packet engine -- packets launched after a swap
  follow the repaired routes, packets already queued re-resolve their
  next hop against the new tables.

Because the dead-cable evolution is a pure function of the schedule,
the whole timeline is precomputed at construction: lookups during a run
are O(log n) bisects, and two runs against the same controller see
identical tables at identical times.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass

from ..fabric.lft import ForwardingTables
from ..routing.repair import repair_tables
from .schedule import FaultSchedule

__all__ = ["HealingController", "RepairAction"]


@dataclass(frozen=True)
class RepairAction:
    """One subnet-manager sweep that pushed repaired tables."""

    fault_time: float            # the event that triggered the sweep
    sweep_time: float            # when the repaired tables went live
    dead_cables: int             # directed gports down at sweep time
    repaired_entries: int        # (switch, dest) entries re-pointed
    unreachable: tuple[int, ...]  # destinations no repair can restore

    @property
    def recovery_latency(self) -> float:
        return self.sweep_time - self.fault_time


class HealingController:
    """Precomputed repair timeline for one ``(tables, schedule)`` pair."""

    def __init__(
        self,
        tables: ForwardingTables,
        faults: FaultSchedule,
        sweep_delay: float = 50.0,
    ):
        if sweep_delay < 0:
            raise ValueError("sweep_delay must be >= 0")
        self.base_tables = tables
        self.faults = faults
        self.sweep_delay = float(sweep_delay)
        fabric = tables.fabric
        # One sweep per distinct topology-event time; a later event
        # inside the same sweep window simply triggers its own sweep.
        sweeps: dict[float, float] = {}
        for e in faults.topology_events():
            sweeps.setdefault(e.time + self.sweep_delay, e.time)
        self._times: list[float] = []
        self._tables: list[ForwardingTables] = []
        self._actions: list[RepairAction] = []
        for sweep_time in sorted(sweeps):
            dead = faults.dead_gports_at(fabric, sweep_time)
            degraded = fabric.with_failed_cables(dead)
            rep = repair_tables(tables, degraded)
            self._times.append(sweep_time)
            self._tables.append(rep.tables)
            self._actions.append(RepairAction(
                fault_time=sweeps[sweep_time],
                sweep_time=sweep_time,
                dead_cables=len(dead),
                repaired_entries=rep.repaired_entries,
                unreachable=rep.unreachable,
            ))

    @property
    def actions(self) -> tuple[RepairAction, ...]:
        return tuple(self._actions)

    def tables_at(self, t: float) -> ForwardingTables:
        """The tables a packet injected at time ``t`` is routed by."""
        i = bisect.bisect_right(self._times, t)
        return self.base_tables if i == 0 else self._tables[i - 1]

    def swaps_after(
        self, t0: float
    ) -> list[tuple[float, ForwardingTables, RepairAction]]:
        """Repair pushes strictly after ``t0``, in order."""
        i = bisect.bisect_right(self._times, t0)
        return [
            (self._times[j], self._tables[j], self._actions[j])
            for j in range(i, len(self._times))
        ]

    def earliest_swap(self) -> float:
        """Time of the first repair push (``inf`` when there is none)."""
        return self._times[0] if self._times else math.inf

    def recovery_latency(self) -> float:
        """Worst fault-to-repair latency over the timeline (0 if none)."""
        if not self._actions:
            return 0.0
        return max(a.recovery_latency for a in self._actions)
