"""Fault-space static analysis (``RQL0xx``): certify degraded-fabric
routing *quality*, not just survival.

PR 5's healing restores reachability after a failure; this module asks
the stronger question statically, for **every** fault the spec admits:
after the repair under test, how good is the degraded routing?  For
each fault unit (any single cable, any single switch; sampled
k-bounded combinations) the sweep

(a) applies the repair under test (:func:`repro.routing.repair`,
    ``naive`` or ``balanced``),
(b) scores the result statically -- surviving-up-port load spread,
    per-link flow multiplicity via the same accounting as
    :mod:`repro.analysis.hsd`, up/down valley freedom on the detoured
    routes -- and
(c) obtains a contention certificate or a minimal counterexample for
    the schedule under test through the symbolic certifier's
    incremental mode, so an n324 sweep costs per-fault *deltas*, not
    cold certifications.

The incremental engine is exact: it reuses the healthy case's cached
closed-form link traversal (``certify(..., keep_links=True)``) through
a CSR-style index, re-walks only the flows whose healthy path crossed
a dead cable, and reconstructs counterexamples from cache + delta.
``engine="cold"`` re-certifies each degraded fabric from scratch by
enumeration; the two produce bit-identical records (the test suite
diffs them), and ``BENCH_faultspace.json`` tracks the speedup.

Findings surface as stable ``RQL0xx`` diagnostics through
:class:`FaultSpacePass` (``python -m repro.check --fault-space``); the
full machine-readable sweep lands in the ``faultspace`` artifact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

from ..analysis.hsd import walk_flow_links
from ..collectives.cps import CPS
from ..collectives.schedule import stage_flows
from ..fabric.lft import ForwardingTables
from ..fabric.model import Fabric
from ..routing.repair import (
    REPAIR_STRATEGIES,
    RepairReport,
    destination_multiplicity,
    repair_tables,
    score_repair,
)
from .common import colliding_pairs_payload, link_loc
from .diagnostics import Diagnostic, DiagnosticReport, Loc
from .passes import CheckContext, CheckPass
from .symbolic import CaseState, SymbolicCertifier, _sparse_loads

__all__ = [
    "FAULT_UNIT_KINDS",
    "SWEEP_ENGINES",
    "FaultUnit",
    "PreparedFault",
    "FaultRecord",
    "FaultSpaceResult",
    "enumerate_fault_units",
    "sample_fault_combos",
    "prepare_fault_cases",
    "certify_prepared",
    "sweep_fault_space",
    "up_port_spread",
    "flow_valleys",
    "FaultSpacePass",
]

#: fault-unit kinds the enumerator produces
FAULT_UNIT_KINDS = ("cable", "switch")

#: degraded-case certification engines: ``incremental`` reuses the
#: healthy symbolic state, ``cold`` re-enumerates every degraded case
SWEEP_ENGINES = ("incremental", "cold")


# ----------------------------------------------------------------------
# Fault-space enumeration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultUnit:
    """One atomic fault: a cable cut or a switch death.

    ``gports`` lists *both* directed global port ids of every cable the
    unit kills (a cable unit has two, a switch unit two per attached
    cable), sorted -- the exact set handed to
    :meth:`Fabric.with_failed_cables` and the incremental certifier.
    """

    kind: str
    label: str
    gports: tuple[int, ...]
    node: int = -1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_UNIT_KINDS:
            raise ValueError(f"unknown fault-unit kind {self.kind!r}; "
                             f"known: {FAULT_UNIT_KINDS}")


def enumerate_fault_units(fabric: Fabric, units: str = "both",
                          include_host_cables: bool = True,
                          ) -> tuple[FaultUnit, ...]:
    """Every single-fault unit of a fabric, in deterministic order.

    ``units`` selects ``"cable"``, ``"switch"`` or ``"both"``; cables
    come first (by lower global port id), then switches (by node id).
    ``include_host_cables=False`` drops host uplinks -- their loss is a
    disconnection, not a routing problem, so sweeps focused on repair
    quality may exclude them.
    """
    if units not in ("cable", "switch", "both"):
        raise ValueError(f"units must be 'cable', 'switch' or 'both', "
                         f"got {units!r}")
    N = fabric.num_endports
    out: list[FaultUnit] = []
    if units in ("cable", "both"):
        peers = fabric.port_peer
        for gp in range(fabric.num_ports):
            peer = int(peers[gp])
            if peer < gp:        # dead port or canonical side already seen
                continue
            owner = int(fabric.port_owner[gp])
            peer_owner = int(fabric.port_owner[peer])
            if not include_host_cables and (owner < N or peer_owner < N):
                continue
            out.append(FaultUnit(
                kind="cable",
                label=f"cable {fabric.node_names[owner]}/"
                      f"{int(fabric.local_port(gp))}--"
                      f"{fabric.node_names[peer_owner]}/"
                      f"{int(fabric.local_port(peer))}",
                gports=(gp, peer)))
    if units in ("switch", "both"):
        for node in range(N, fabric.num_nodes):
            dead: set[int] = set()
            for gp in fabric.ports_of(node):
                peer = int(fabric.port_peer[gp])
                if peer >= 0:
                    dead.add(int(gp))
                    dead.add(peer)
            if not dead:
                continue
            out.append(FaultUnit(
                kind="switch",
                label=f"switch {fabric.node_names[node]}",
                gports=tuple(sorted(dead)),
                node=node))
    return tuple(out)


def sample_fault_combos(units: Sequence[FaultUnit], max_faults: int,
                        samples: int, seed: int = 0,
                        ) -> tuple[tuple[FaultUnit, ...], ...]:
    """k-bounded multi-fault combinations, deterministically sampled.

    Every single-unit combo is always included (the exhaustive k=1
    layer); for each ``k`` in ``2..max_faults``, ``samples`` distinct
    k-subsets are drawn from a seeded generator.  Combos are tuples in
    enumeration order, with no duplicates.
    """
    combos: list[tuple[FaultUnit, ...]] = [(u,) for u in units]
    if max_faults <= 1 or len(units) < 2:
        return tuple(combos)
    rng = np.random.default_rng(seed)
    seen: set[tuple[int, ...]] = set()
    for k in range(2, max_faults + 1):
        if k > len(units):
            break
        total = math.comb(len(units), k)
        want = min(samples, total)
        guard = 0
        while len([c for c in seen if len(c) == k]) < want:
            pick = tuple(sorted(rng.choice(len(units), size=k,
                                           replace=False).tolist()))
            guard += 1
            if pick in seen:
                if guard > 50 * want:
                    break  # pathological tiny spaces; keep what we have
                continue
            seen.add(pick)
            combos.append(tuple(units[i] for i in pick))
    return tuple(combos)


# ----------------------------------------------------------------------
# Per-fault preparation (repair + static quality)
# ----------------------------------------------------------------------
def up_port_spread(tables: ForwardingTables,
                   active: np.ndarray | None = None,
                   ) -> list[tuple[int, int, int, int]]:
    """Destination spread over each switch's *live* up ports.

    Returns ``(node, live_up_ports, max_load, ceil_bound)`` per switch
    that has at least one live up port, where ``ceil_bound`` is the best
    achievable max (``ceil(total / live)``).  A ``max_load`` above the
    bound means the repair spread detours unevenly -- the ``RQL010``
    condition.  Fully even healthy D-Mod-K meets the bound everywhere.
    """
    fab = tables.fabric
    N = fab.num_endports
    counts = destination_multiplicity(tables, active=active)
    goes_up = fab.port_goes_up()
    live = fab.port_peer >= 0
    out: list[tuple[int, int, int, int]] = []
    for node in range(N, fab.num_nodes):
        ports = fab.ports_of(node)
        up = ports[goes_up[ports] & live[ports]]
        if not len(up):
            continue
        loads = counts[up]
        total = int(loads.sum())
        bound = -(-total // len(up))
        out.append((node, len(up), int(loads.max()), bound))
    return out


def flow_valleys(tables: ForwardingTables, src: np.ndarray,
                 dst: np.ndarray) -> np.ndarray:
    """Indices of flows whose route descends and then ascends again (an
    up*/down* "valley" -- deadlock-prone under credit flow control).

    A tiny hop-by-hop walker (the analysis twin of
    :func:`repro.analysis.hsd.walk_flow_links` keeps no hop structure,
    which the valley predicate needs).  Unroutable flows raise, exactly
    like the walker.
    """
    fab = tables.fabric
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    goes_up = fab.port_goes_up()
    idx = np.flatnonzero(src != dst)
    if not len(idx):
        return np.empty(0, dtype=np.int64)
    gp = tables.host_out_port(src[idx], dst[idx])
    cur = fab.peer_node[gp].astype(np.int64)
    tgt = dst[idx]
    went_down = np.zeros(len(idx), dtype=bool)
    valley = np.zeros(len(idx), dtype=bool)
    hits: list[np.ndarray] = []
    h = int(fab.node_level.max())
    for _ in range(2 * h + 2):
        moving = cur != tgt
        if not moving.all():   # retiring flows carry their verdict out
            hits.append(idx[~moving & valley])
        if not moving.any():
            break
        idx, cur, tgt = idx[moving], cur[moving], tgt[moving]
        went_down, valley = went_down[moving], valley[moving]
        gp = tables.out_port(cur, tgt)
        if (gp < 0).any():
            raise ValueError("flow hit an unrouted destination")
        up = goes_up[gp]
        valley |= went_down & up
        went_down |= ~up
        cur = fab.peer_node[gp].astype(np.int64)
        if (cur < 0).any():
            raise ValueError("flow walked into a dead cable")
    else:
        hits.append(idx[valley])
    return np.unique(np.concatenate(hits)) if hits else \
        np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class PreparedFault:
    """One degraded case, repaired and statically scored -- the unit the
    certification engines consume."""

    units: tuple[FaultUnit, ...]
    dead_gports: tuple[int, ...]
    repair: RepairReport
    worst_multiplicity: int
    spread_violations: tuple[tuple[int, int, int, int], ...]
    valley_flows: int = 0

    @property
    def label(self) -> str:
        return " + ".join(u.label for u in self.units)

    @property
    def kind(self) -> str:
        kinds = {u.kind for u in self.units}
        return kinds.pop() if len(kinds) == 1 else "mixed"


def prepare_fault_cases(tables: ForwardingTables,
                        combos: Iterable[tuple[FaultUnit, ...]],
                        strategy: str = "balanced",
                        active: np.ndarray | None = None,
                        check_valleys: bool = True,
                        ) -> list[PreparedFault]:
    """Apply the repair under test to every fault combo and score it.

    The static quality score -- worst-link destination multiplicity,
    per-switch up-port spread violations and up/down valleys on the
    detoured routes -- is engine-independent, so it is computed here
    once; :func:`certify_prepared` then only decides contention freedom.
    """
    fabric = tables.fabric
    active_set = None if active is None else {
        int(a) for a in np.asarray(active, dtype=np.int64)}
    out: list[PreparedFault] = []
    for combo in combos:
        dead = sorted({g for u in combo for g in u.gports})
        degraded = fabric.with_failed_cables(np.asarray(dead, dtype=np.int64))
        rep = repair_tables(tables, degraded, strategy=strategy)
        counts = destination_multiplicity(rep.tables, active=active)
        spread = tuple(
            (node, live, mx, bound)
            for node, live, mx, bound in up_port_spread(rep.tables,
                                                        active=active)
            if mx > bound)
        lost = set(rep.unreachable) if active_set is None else \
            set(rep.unreachable) & active_set
        valleys = 0
        if check_valleys and not lost:
            valleys = _count_valleys(tables, rep.tables, active)
        out.append(PreparedFault(
            units=tuple(combo), dead_gports=tuple(dead), repair=rep,
            worst_multiplicity=int(counts.max()) if counts.size else 0,
            spread_violations=spread, valley_flows=valleys))
    return out


# ----------------------------------------------------------------------
# Certification engines
# ----------------------------------------------------------------------
class _SweepIndex:
    """CSR-style index over a healthy case's cached closed-form links.

    Built once per (CPS, placement) from a ``keep_links``-certified
    :class:`CaseState`; each :meth:`recertify` call is then a pure delta:
    dead-cable lookup, one batched walk of the detoured flows through
    the repaired tables, and sparse count arithmetic.  Requires the
    healthy case to be contention-free (every cached per-link count is
    at most 1); the general
    :meth:`SymbolicCertifier.recertify_link_failure` handles the rest.
    """

    def __init__(self, state: CaseState, num_ports: int) -> None:
        stages = state.stages
        if any(st.gports is None for st in stages):
            raise ValueError("sweep index needs certify(keep_links=True)")
        self.num_ports = int(num_ports)
        self.state = state
        self.stage_labels = [st.label for st in state.cps.stages]
        self.old_max = np.array(
            [int(st.link_counts.max()) if len(st.link_counts) else 0
             for st in stages], dtype=np.int64)
        if self.old_max.size and self.old_max.max() > 1:
            raise ValueError("sweep index requires a contention-free "
                             "healthy case (use the general recertifier)")
        self.n_links = np.array([len(st.link_ids) for st in stages],
                                dtype=np.int64)
        # flows per stage, with global offsets so (stage, flow) flattens
        flow_lens = np.array([len(st.src) for st in stages], dtype=np.int64)
        self.flow_off = np.concatenate([[0], np.cumsum(flow_lens)])
        self.all_src = np.concatenate(
            [st.src for st in stages]) if flow_lens.sum() else \
            np.empty(0, dtype=np.int64)
        self.all_dst = np.concatenate(
            [st.dst for st in stages]) if flow_lens.sum() else \
            np.empty(0, dtype=np.int64)
        self.total_flows = int(flow_lens.sum())
        # flat (stage, flow, gport) traversal entries
        entry_stage = np.concatenate(
            [np.full(len(st.gports), s, dtype=np.int64)
             for s, st in enumerate(stages)]) if stages else \
            np.empty(0, dtype=np.int64)
        entry_flow = np.concatenate(
            [st.flow_idx for st in stages]) if stages else \
            np.empty(0, dtype=np.int64)
        entry_g = np.concatenate(
            [st.gports for st in stages]) if stages else \
            np.empty(0, dtype=np.int64)
        # view 1: sorted by gport (dead cable -> touched entries)
        order_g = np.argsort(entry_g, kind="stable")
        self.g_sorted = entry_g[order_g]
        self.g_stage = entry_stage[order_g]
        self.g_flow = entry_flow[order_g]
        # view 2: sorted by flattened (stage, flow) (flow -> its links)
        self.fk_width = int(flow_lens.max()) + 1 if len(flow_lens) else 1
        fk = entry_stage * self.fk_width + entry_flow
        order_f = np.argsort(fk, kind="stable")
        self.fk_sorted = fk[order_f]
        self.fk_g = entry_g[order_f]
        # sparse old counts keyed by stage * num_ports + gport (sorted by
        # construction: stages ascend, per-stage link_ids are sorted)
        self.cnt_keys = np.concatenate(
            [s * self.num_ports + st.link_ids
             for s, st in enumerate(stages)]) if stages else \
            np.empty(0, dtype=np.int64)
        self.cnt_vals = np.concatenate(
            [st.link_counts for st in stages]) if stages else \
            np.empty(0, dtype=np.int64)

    def _expand(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        lens = hi - lo
        total = int(lens.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        offs = np.concatenate([[0], np.cumsum(lens)[:-1]])
        return np.repeat(lo - offs, lens) + np.arange(total, dtype=np.int64)

    def recertify(self, repaired_tables: ForwardingTables,
                  dead_gports: Sequence[int],
                  ) -> tuple[list[int], dict[str, Any] | None, int, int]:
        """Exact per-stage maxima + first counterexample for one fault.

        Returns ``(stage_maxima, first_violation_or_None,
        stages_touched, flows_rewalked)``.  Matches the cold enumerated
        engine bit for bit: same maxima, same offending link (lowest
        gport at the max count), same colliding-pair payload.
        """
        P = self.num_ports
        dead = np.asarray(sorted(dead_gports), dtype=np.int64)
        lo = np.searchsorted(self.g_sorted, dead, side="left")
        hi = np.searchsorted(self.g_sorted, dead, side="right")
        sel = self._expand(lo, hi)
        if not len(sel):
            return self.old_max.tolist(), None, 0, 0
        # the (stage, flow) pairs whose healthy path crossed a dead cable
        aff = np.unique(self.g_stage[sel] * self.fk_width + self.g_flow[sel])
        aff_stage = aff // self.fk_width
        aff_flow = aff % self.fk_width
        touched = int(len(np.unique(aff_stage)))
        # links those flows used (the subtraction side of the delta)
        fl = np.searchsorted(self.fk_sorted, aff, side="left")
        fh = np.searchsorted(self.fk_sorted, aff, side="right")
        take = self._expand(fl, fh)
        sub_key = (self.fk_sorted[take] // self.fk_width) * P \
            + self.fk_g[take]
        # one batched walk of every detoured flow through the repair
        glob = self.flow_off[aff_stage] + aff_flow
        wfi, wg = walk_flow_links(repaired_tables, self.all_src[glob],
                                  self.all_dst[glob])
        add_key = aff_stage[wfi] * P + wg
        # sparse count update on the union of delta links
        uk = np.unique(np.concatenate([sub_key, add_key]))
        pos = np.searchsorted(self.cnt_keys, uk)
        pos_ok = (pos < len(self.cnt_keys))
        old_c = np.zeros(len(uk), dtype=np.int64)
        safe = pos.copy()
        safe[~pos_ok] = 0
        match = pos_ok & (self.cnt_keys[safe] == uk)
        old_c[match] = self.cnt_vals[safe[match]]
        new_c = old_c.copy()
        np.subtract.at(new_c, np.searchsorted(uk, sub_key), 1)
        np.add.at(new_c, np.searchsorted(uk, add_key), 1)
        d_stage = uk // P
        # per-stage new maximum: the unchanged links keep count <= 1, and
        # at least one of them survives iff the stage has more links than
        # delta links that existed before the fault
        maxima = self.old_max.copy()
        exist = np.zeros(len(self.old_max), dtype=np.int64)
        np.add.at(exist, d_stage[old_c > 0], 1)
        base = (self.n_links > exist).astype(np.int64)
        dmax = np.zeros(len(self.old_max), dtype=np.int64)
        np.maximum.at(dmax, d_stage, new_c)
        ts = np.unique(d_stage)
        maxima[ts] = np.maximum(base[ts], dmax[ts])
        violation: dict[str, Any] | None = None
        bad = np.flatnonzero(maxima > 1)
        if len(bad):
            s = int(bad[0])
            in_s = d_stage == s
            cand_g = (uk % P)[in_s & (new_c == maxima[s])]
            gp = int(cand_g.min())
            # colliding flows: healthy users of the link minus detoured
            # flows, plus detoured flows whose repaired walk lands on it
            j0 = int(np.searchsorted(self.g_sorted, gp, side="left"))
            j1 = int(np.searchsorted(self.g_sorted, gp, side="right"))
            on_stage = self.g_stage[j0:j1] == s
            old_flows = self.g_flow[j0:j1][on_stage]
            aff_in_s = aff_flow[aff_stage == s]
            old_keep = old_flows[~np.isin(old_flows, aff_in_s)]
            new_hit = aff_flow[wfi[(wg == gp) & (aff_stage[wfi] == s)]]
            on_link = np.unique(np.concatenate(
                [old_keep, new_hit])).astype(np.int64)
            st = self.state.stages[s]
            violation = {
                "stage": s, "stage_label": self.stage_labels[s],
                "gport": gp, "link_load": int(maxima[s]),
                **colliding_pairs_payload(st.src, st.dst, on_link),
            }
        return maxima.tolist(), violation, touched, int(len(aff))


def _cold_certify(tables: ForwardingTables, cps: CPS,
                  placement: np.ndarray,
                  ) -> tuple[list[int], dict[str, Any] | None]:
    """Cold re-certification of one degraded case by full enumeration;
    the baseline the incremental engine is benchmarked against."""
    maxima: list[int] = []
    violation: dict[str, Any] | None = None
    for i, st in enumerate(cps):
        src, dst = stage_flows(st, placement)
        if not len(src):
            maxima.append(0)
            continue
        flow_idx, gports = walk_flow_links(tables, src, dst)
        ids, counts = _sparse_loads(gports)
        stage_max = int(counts.max()) if len(counts) else 0
        maxima.append(stage_max)
        if stage_max > 1 and violation is None:
            gp = int(ids[int(np.argmax(counts))])
            on_link = np.unique(flow_idx[gports == gp])
            violation = {
                "stage": i, "stage_label": st.label, "gport": gp,
                "link_load": stage_max,
                **colliding_pairs_payload(src, dst, on_link),
            }
    return maxima, violation


# ----------------------------------------------------------------------
# Sweep records and driver
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultRecord:
    """Outcome of one fault combo: repair stats, static quality and the
    contention verdict of the schedule under test."""

    label: str
    kind: str
    num_units: int
    dead_cables: int
    strategy: str
    repaired_entries: int
    unreachable: tuple[int, ...]
    worst_multiplicity: int
    spread_violations: tuple[tuple[int, int, int, int], ...]
    valley_flows: int
    stage_maxima: tuple[int, ...]
    verdict: str                       # contention-free | refuted |
    violation: dict[str, Any] | None   # disconnected | unchecked
    gports: tuple[int, ...] = ()

    def to_json(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "label": self.label, "kind": self.kind,
            "num_units": self.num_units, "dead_cables": self.dead_cables,
            "strategy": self.strategy,
            "repaired_entries": self.repaired_entries,
            "unreachable": list(self.unreachable),
            "worst_multiplicity": self.worst_multiplicity,
            "spread_violations": [list(v) for v in self.spread_violations],
            "valley_flows": self.valley_flows,
            "max_link_load": max(self.stage_maxima, default=0),
            "verdict": self.verdict,
        }
        if self.violation is not None:
            out["violation"] = self.violation
        return out


@dataclass
class FaultSpaceResult:
    """A full sweep: one record per fault combo plus engine statistics."""

    records: list[FaultRecord]
    engine: str
    strategy: str
    cps_name: str
    num_stages: int
    healthy_max_multiplicity: int
    load_bound: int
    stages_touched: int = 0
    flows_recomputed: int = 0

    def verdict_counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for r in self.records:
            out[r.verdict] = out.get(r.verdict, 0) + 1
        return {k: out[k] for k in sorted(out)}

    @property
    def certified_fraction(self) -> float:
        checked = [r for r in self.records
                   if r.verdict in ("contention-free", "refuted")]
        if not checked:
            return 0.0
        good = sum(1 for r in checked if r.verdict == "contention-free")
        return good / len(checked)

    def to_json(self) -> dict[str, Any]:
        return {
            "engine": self.engine,
            "strategy": self.strategy,
            "cps": self.cps_name,
            "num_stages": self.num_stages,
            "healthy_max_multiplicity": self.healthy_max_multiplicity,
            "load_bound": self.load_bound,
            "num_faults": len(self.records),
            "verdicts": self.verdict_counts(),
            "certified_fraction": self.certified_fraction,
            "stages_touched": self.stages_touched,
            "flows_recomputed": self.flows_recomputed,
            "records": [r.to_json() for r in self.records],
        }


def certify_prepared(tables: ForwardingTables,
                     prepared: Sequence[PreparedFault],
                     cps: CPS, placement: np.ndarray,
                     active: np.ndarray | None = None,
                     engine: str = "incremental",
                     load_bound: int | None = None,
                     healthy_state: CaseState | None = None,
                     ) -> FaultSpaceResult:
    """Contention-certify every prepared fault under one schedule.

    The certification phase proper: repairs and static scores come in
    via ``prepared`` (see :func:`prepare_fault_cases`), so benchmarking
    this function compares pure incremental-vs-cold certification cost.
    ``healthy_state`` lets callers reuse a ``keep_links`` certification
    of the healthy fabric across sweeps.
    """
    if engine not in SWEEP_ENGINES:
        raise ValueError(f"unknown sweep engine {engine!r}; "
                         f"known: {SWEEP_ENGINES}")
    spec = tables.fabric.spec
    placement = np.asarray(placement, dtype=np.int64)
    healthy_mult = int(destination_multiplicity(tables, active=active).max())
    max_units = max((len(p.units) for p in prepared), default=1)
    bound = load_bound if load_bound is not None \
        else healthy_mult + max_units
    index: _SweepIndex | None = None
    if engine == "incremental":
        if spec is None:
            raise ValueError("the incremental engine needs a PGFT spec "
                             "(symbolic closed form); use engine='cold'")
        if healthy_state is None:
            certifier = SymbolicCertifier(spec, active)
            healthy, healthy_state = certifier.certify(cps, placement,
                                                       keep_links=True)
            if healthy.refuted:
                raise ValueError(
                    "healthy schedule is already refuted; the fault-space "
                    "delta engine needs a contention-free baseline "
                    "(use engine='cold')")
        index = _SweepIndex(healthy_state, tables.fabric.num_ports)
    result = FaultSpaceResult(
        records=[], engine=engine, strategy=prepared[0].repair.strategy
        if prepared else "", cps_name=cps.name,
        num_stages=len(cps.stages), healthy_max_multiplicity=healthy_mult,
        load_bound=bound)
    active_set = None if active is None else {
        int(a) for a in np.asarray(active, dtype=np.int64)}
    for p in prepared:
        rep = p.repair
        # Only endpoints the job actually uses block certification: a
        # Cont.-X job is indifferent to a disconnected idle host.
        lost_relevant = rep.unreachable if active_set is None else \
            tuple(sorted(set(rep.unreachable) & active_set))
        if lost_relevant:
            record = FaultRecord(
                label=p.label, kind=p.kind, num_units=len(p.units),
                dead_cables=len(p.dead_gports),
                strategy=rep.strategy,
                repaired_entries=rep.repaired_entries,
                unreachable=rep.unreachable,
                worst_multiplicity=p.worst_multiplicity,
                spread_violations=p.spread_violations,
                valley_flows=p.valley_flows, stage_maxima=(),
                verdict="disconnected", violation=None,
                gports=p.dead_gports)
            result.records.append(record)
            continue
        if engine == "incremental":
            assert index is not None
            maxima, violation, touched, rewalked = index.recertify(
                rep.tables, p.dead_gports)
            result.stages_touched += touched
            result.flows_recomputed += rewalked
        else:
            maxima, violation = _cold_certify(rep.tables, cps, placement)
        verdict = "refuted" if max(maxima, default=0) > 1 \
            else "contention-free"
        result.records.append(FaultRecord(
            label=p.label, kind=p.kind, num_units=len(p.units),
            dead_cables=len(p.dead_gports),
            strategy=rep.strategy,
            repaired_entries=rep.repaired_entries,
            unreachable=rep.unreachable,
            worst_multiplicity=p.worst_multiplicity,
            spread_violations=p.spread_violations,
            valley_flows=p.valley_flows,
            stage_maxima=tuple(maxima),
            verdict=verdict, violation=violation,
            gports=p.dead_gports))
    return result


def _count_valleys(base: ForwardingTables, repaired: ForwardingTables,
                   active: np.ndarray | None) -> int:
    """Valley count over the all-to-all flows toward every destination
    whose forwarding entry the repair re-pointed."""
    fab = repaired.fabric
    N = fab.num_endports
    changed = np.flatnonzero((repaired.switch_out != base.switch_out)
                             .any(axis=0))
    if active is not None:
        changed = changed[np.isin(changed, np.asarray(active,
                                                      dtype=np.int64))]
    if not len(changed):
        return 0
    ends = np.arange(N, dtype=np.int64) if active is None \
        else np.unique(np.asarray(active, dtype=np.int64))
    src = np.repeat(ends, len(changed))
    dst = np.tile(changed, len(ends))
    return int(len(flow_valleys(repaired, src, dst)))


def sweep_fault_space(tables: ForwardingTables, cps: CPS,
                      placement: np.ndarray,
                      units: str = "both",
                      max_faults: int = 1,
                      samples: int = 16,
                      seed: int = 0,
                      strategy: str = "balanced",
                      engine: str = "incremental",
                      active: np.ndarray | None = None,
                      load_bound: int | None = None,
                      include_host_cables: bool = True,
                      check_valleys: bool = True,
                      ) -> FaultSpaceResult:
    """Enumerate, repair, score and certify the whole fault space.

    The one-call driver: :func:`enumerate_fault_units` +
    :func:`sample_fault_combos` + :func:`prepare_fault_cases` +
    :func:`certify_prepared`.
    """
    if strategy not in REPAIR_STRATEGIES + ("auto",):
        raise ValueError(f"unknown repair strategy {strategy!r}")
    units_t = enumerate_fault_units(tables.fabric, units=units,
                                    include_host_cables=include_host_cables)
    combos = sample_fault_combos(units_t, max_faults=max_faults,
                                 samples=samples, seed=seed)
    if strategy == "auto":
        nav = prepare_fault_cases(tables, combos, strategy="naive",
                                  active=active,
                                  check_valleys=check_valleys)
        bal = prepare_fault_cases(tables, combos, strategy="balanced",
                                  active=active,
                                  check_valleys=check_valleys)
        prepared = [b if score_repair(b.repair) <= score_repair(n.repair)
                    else n for n, b in zip(nav, bal)]
    else:
        prepared = prepare_fault_cases(tables, combos, strategy=strategy,
                                       active=active,
                                       check_valleys=check_valleys)
    return certify_prepared(tables, prepared, cps, placement,
                            active=active, engine=engine,
                            load_bound=load_bound)


# ----------------------------------------------------------------------
# The pipeline pass
# ----------------------------------------------------------------------
class FaultSpacePass(CheckPass):
    """Sweep the fault space of the context's fabric and surface the
    routing-quality findings as ``RQL0xx`` diagnostics.

    Runs one sweep per schedule case.  Certified degraded cases land as
    compact per-fault certificates in the ``faultspace`` artifact; the
    diagnostics name (capped per code) every fault whose repair loses
    endpoints, breaks balance, exceeds the load bound, valleys, or
    invalidates the healthy contention certificate.
    """

    name = "fault-space"
    needs_tables = True
    needs_schedule = True

    def __init__(self, units: str = "both", max_faults: int = 1,
                 samples: int = 16, seed: int = 0,
                 strategy: str = "balanced", engine: str = "incremental",
                 load_bound: int | None = None,
                 check_valleys: bool = True) -> None:
        self.units = units
        self.max_faults = max_faults
        self.samples = samples
        self.seed = seed
        self.strategy = strategy
        self.engine = engine
        self.load_bound = load_bound
        self.check_valleys = check_valleys

    def run(self, ctx: CheckContext, report: DiagnosticReport) -> None:
        tables = ctx.tables
        assert tables is not None
        engine = self.engine
        if ctx.routing_name not in ("", "dmodk") and engine == "incremental":
            engine = "cold"   # the delta engine proves the D-Mod-K form
        sweeps: dict[str, Any] = {}
        ctx.artifacts["faultspace"] = sweeps
        for case in ctx.schedule:
            try:
                result = sweep_fault_space(
                    tables, case.cps, case.placement,
                    units=self.units, max_faults=self.max_faults,
                    samples=self.samples, seed=self.seed,
                    strategy=self.strategy, engine=engine,
                    active=ctx.active, load_bound=self.load_bound,
                    check_valleys=self.check_valleys)
            except ValueError as exc:
                report.add(Diagnostic(
                    code="RQL090",
                    message=f"{case.name()}: fault-space sweep skipped "
                            f"({exc})"))
                continue
            sweeps[case.name()] = result.to_json()
            self._emit(case.name(), result, tables.fabric, report)

    def _emit(self, case: str, result: FaultSpaceResult, fabric: Fabric,
              report: DiagnosticReport) -> None:
        for r in result.records:
            loc = Loc() if not r.gports else \
                link_loc(fabric, int(r.gports[0]))
            if r.unreachable:
                expected = self._expected_losses(fabric, r)
                lost = set(r.unreachable)
                if lost - expected:
                    report.add(Diagnostic(
                        code="RQL001", loc=loc,
                        message=(f"{case}: fault [{r.label}] leaves "
                                 f"{len(lost - expected)} physically "
                                 f"reachable destination(s) unrouted "
                                 f"after {r.strategy} repair: "
                                 f"{sorted(lost - expected)[:8]}"),
                        data={"case": case, "fault": r.label,
                              "unrouted": sorted(lost - expected)}))
                elif r.verdict == "disconnected":
                    report.add(Diagnostic(
                        code="RQL002", loc=loc,
                        message=(f"{case}: fault [{r.label}] disconnects "
                                 f"{len(lost)} end-port(s); repair routes "
                                 "the surviving fabric (certification "
                                 "skipped)"),
                        data={"case": case, "fault": r.label,
                              "lost": sorted(lost)}))
            if r.verdict == "disconnected":
                continue
            if r.spread_violations:
                node, live, mx, bound = r.spread_violations[0]
                report.add(Diagnostic(
                    code="RQL010", loc=loc,
                    message=(f"{case}: fault [{r.label}] + {r.strategy} "
                             f"repair spreads destinations unevenly over "
                             f"{fabric.node_names[node]}'s {live} "
                             f"surviving up ports (max {mx} > ceil bound "
                             f"{bound}); {len(r.spread_violations)} "
                             "switch(es) affected"),
                    data={"case": case, "fault": r.label,
                          "violations": [list(v) for v in
                                         r.spread_violations]}))
            if r.worst_multiplicity > result.load_bound:
                report.add(Diagnostic(
                    code="RQL011", loc=loc,
                    message=(f"{case}: fault [{r.label}] + {r.strategy} "
                             f"repair inflates the worst-link destination "
                             f"multiplicity to {r.worst_multiplicity} "
                             f"(bound {result.load_bound}, healthy "
                             f"{result.healthy_max_multiplicity})"),
                    data={"case": case, "fault": r.label,
                          "worst_multiplicity": r.worst_multiplicity,
                          "load_bound": result.load_bound}))
            if r.valley_flows:
                report.add(Diagnostic(
                    code="RQL030", loc=loc,
                    message=(f"{case}: fault [{r.label}] + {r.strategy} "
                             f"repair routes {r.valley_flows} flow(s) "
                             "through an up-after-down valley "
                             "(deadlock-prone under credit flow control)"),
                    data={"case": case, "fault": r.label,
                          "valley_flows": r.valley_flows}))
            if r.verdict == "refuted":
                v = r.violation or {}
                if "gport" in v:
                    loc = link_loc(fabric, int(v["gport"]),
                                   stage=v.get("stage"))
                report.add(Diagnostic(
                    code="RQL020", loc=loc,
                    message=(f"{case}: fault [{r.label}] invalidates the "
                             f"healthy contention certificate -- stage "
                             f"{v.get('stage')} places "
                             f"{v.get('link_load')} concurrent flows on "
                             f"one directed link after {r.strategy} "
                             "repair"),
                    data={"case": case, "fault": r.label, **v}))
        counts = result.verdict_counts()
        report.add(Diagnostic(
            code="RQL090",
            message=(f"{case}: fault-space sweep covered "
                     f"{len(result.records)} fault(s) "
                     f"[engine={result.engine}, "
                     f"strategy={result.strategy}]: "
                     + ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
                     + f"; certified fraction "
                       f"{result.certified_fraction:.3f}"),
            data={"case": case, **result.to_json()}))

    @staticmethod
    def _expected_losses(fabric: Fabric, r: FaultRecord) -> set[int]:
        """End-ports whose loss is physically forced by the fault: hosts
        whose own uplink died (directly, or with their leaf switch)."""
        N = fabric.num_endports
        lost: set[int] = set()
        for gp in r.gports:
            owner = int(fabric.port_owner[gp])
            if owner < N:
                lost.add(owner)
        return lost
