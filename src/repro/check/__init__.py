"""``repro.check`` -- pass-based static fabric analyzer.

One diagnostics-producing subsystem for everything that used to be
scattered ad-hoc validators: wiring lint (``FAB0xx``), forwarding-table
lint (``RTE0xx``), collective-schedule lint (``SCH0xx``) and the
contention-freedom certifier (``CFC0xx``) that either emits a
machine-readable certificate or a minimal counterexample -- all without
running the simulator.

Typical use::

    from repro.check import CheckContext, ScheduleCase, run_check

    ctx = CheckContext.for_tables(tables, routing_name="dmodk",
                                  schedule=[ScheduleCase(cps, order)])
    result = run_check(ctx)
    print(result.report.render_text())
    result.certificates        # [] unless every stage has link load <= 1

or from the command line::

    python -m repro.check --topo n324 --routing dmodk --cps shift

See ``docs/CHECKS.md`` for the diagnostic-code catalogue.
"""

from __future__ import annotations

import numpy as np

from ..fabric.lft import ForwardingTables
from .certify import ContentionCertifierPass, placement_digest
from .common import colliding_pairs_payload, link_loc, sample_pairs
from .diagnostics import (
    CODES,
    Diagnostic,
    DiagnosticReport,
    Loc,
    Severity,
    describe_code,
)
from .fault_lint import FaultSchedulePass
from .faultspace import (
    FaultRecord,
    FaultSpacePass,
    FaultSpaceResult,
    FaultUnit,
    PreparedFault,
    enumerate_fault_units,
    flow_valleys,
    prepare_fault_cases,
    sample_fault_combos,
    sweep_fault_space,
    up_port_spread,
)
from .isolation import (
    ISOLATION_ENGINES,
    ClassSchedule,
    IsolationPass,
    build_class_schedules,
    routing_ranks,
)
from .passes import CheckContext, CheckPass, CheckResult, Pipeline, ScheduleCase
from .routing_lint import (
    CdgCyclePass,
    DmodkConformancePass,
    DownPortBalancePass,
    MinimalityPass,
    ReachabilityPass,
    UpDownPass,
    UpPortBalancePass,
)
from .schedule_lint import PlacementLintPass, StageLintPass
from .symbolic import (
    EngineAgreementPass,
    IncrementalStats,
    SymbolicCertifier,
    SymbolicContentionPass,
    SymbolicResult,
    canonical_peer,
    symbolic_class_loads,
    symbolic_flow_links,
    symbolic_stage_max,
)
from .wiring import SpecConformancePass, WiringLintPass

__all__ = [
    "CODES",
    "CdgCyclePass",
    "CheckContext",
    "CheckPass",
    "CheckResult",
    "ClassSchedule",
    "ContentionCertifierPass",
    "Diagnostic",
    "DiagnosticReport",
    "DmodkConformancePass",
    "DownPortBalancePass",
    "ENGINES",
    "EngineAgreementPass",
    "FaultRecord",
    "FaultSchedulePass",
    "FaultSpacePass",
    "FaultSpaceResult",
    "FaultUnit",
    "ISOLATION_ENGINES",
    "IncrementalStats",
    "IsolationPass",
    "Loc",
    "MinimalityPass",
    "Pipeline",
    "PlacementLintPass",
    "PreparedFault",
    "ReachabilityPass",
    "ScheduleCase",
    "Severity",
    "SpecConformancePass",
    "StageLintPass",
    "SymbolicCertifier",
    "SymbolicContentionPass",
    "SymbolicResult",
    "UpDownPass",
    "UpPortBalancePass",
    "WiringLintPass",
    "build_class_schedules",
    "canonical_peer",
    "colliding_pairs_payload",
    "default_pipeline",
    "describe_code",
    "enumerate_fault_units",
    "flow_valleys",
    "link_loc",
    "placement_digest",
    "precheck_tables",
    "prepare_fault_cases",
    "routing_ranks",
    "run_check",
    "sample_fault_combos",
    "sample_pairs",
    "sweep_fault_space",
    "symbolic_class_loads",
    "symbolic_flow_links",
    "symbolic_stage_max",
    "up_port_spread",
]

#: pass names in canonical pipeline order (CLI ``--passes`` accepts these)
PASS_ORDER = (
    "wiring",
    "spec-conformance",
    "reachability",
    "up-down",
    "cdg",
    "dmodk-conformance",
    "down-balance",
    "up-balance",
    "minimality",
    "placement",
    "stage",
    "faults",
    "certify",
    "symbolic-certify",
    "differential",
    "fault-space",
    "isolation",
)

#: certification engines accepted by ``default_pipeline``/``run_check``
#: (and the CLI's ``--engine``): ``enumerate`` walks materialised
#: tables, ``symbolic`` proves from the closed form, ``both`` runs the
#: two and cross-checks them (``SYM090`` on any disagreement).
ENGINES = ("enumerate", "symbolic", "both")


def default_pipeline(
    only: set[str] | None = None,
    updown_sample: int | None = 250_000,
    certify: bool = True,
    engine: str = "enumerate",
    symbolic_active: np.ndarray | None = None,
    fault_space: dict | None = None,
    isolation: dict | None = None,
) -> Pipeline:
    """The canonical full pipeline, optionally restricted to ``only``.

    Passes whose inputs are absent from the context skip themselves, so
    this single pipeline serves bare-fabric lint, table lint and full
    certification alike.  ``engine`` selects the certification
    engine(s); ``symbolic_active`` is the job's active end-port set for
    job-aware symbolic certification (Cont.-X).

    The fault-space sweep is opt-in (it certifies *hundreds* of
    degraded fabrics): pass ``fault_space`` -- keyword arguments for
    :class:`FaultSpacePass`, ``{}`` for the defaults -- or name
    ``"fault-space"`` in ``only``.  The traffic-class isolation
    analyzer is opt-in the same way: pass ``isolation`` -- keyword
    arguments for :class:`IsolationPass`, ``{}`` for the defaults --
    or name ``"isolation"`` in ``only``.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; known: {list(ENGINES)}")
    passes: list[CheckPass] = [
        WiringLintPass(),
        SpecConformancePass(),
        ReachabilityPass(),
        UpDownPass(sample=updown_sample),
        CdgCyclePass(),
        DmodkConformancePass(),
        DownPortBalancePass(),
        UpPortBalancePass(),
        MinimalityPass(),
        PlacementLintPass(),
        StageLintPass(),
        FaultSchedulePass(),
    ]
    if certify:
        if engine in ("enumerate", "both"):
            passes.append(ContentionCertifierPass())
        if engine in ("symbolic", "both"):
            passes.append(SymbolicContentionPass(active=symbolic_active))
        if engine == "both":
            passes.append(EngineAgreementPass())
    if fault_space is not None or (only is not None and "fault-space" in only):
        passes.append(FaultSpacePass(**(fault_space or {})))
    if isolation is not None or (only is not None and "isolation" in only):
        passes.append(IsolationPass(**(isolation or {})))
    if only is not None:
        unknown = only - set(PASS_ORDER)
        if unknown:
            raise ValueError(f"unknown pass name(s): {sorted(unknown)}; "
                             f"known: {list(PASS_ORDER)}")
        passes = [p for p in passes if p.name in only]
    return Pipeline(passes)


def run_check(ctx: CheckContext,
              only: set[str] | None = None,
              updown_sample: int | None = 250_000,
              certify: bool = True,
              engine: str = "enumerate",
              symbolic_active: np.ndarray | None = None,
              fault_space: dict | None = None,
              isolation: dict | None = None,
              max_diags_per_code: int = 25) -> CheckResult:
    """Run the default pipeline over a prepared context."""
    pipeline = default_pipeline(only=only, updown_sample=updown_sample,
                                certify=certify, engine=engine,
                                symbolic_active=symbolic_active,
                                fault_space=fault_space,
                                isolation=isolation)
    return pipeline.run(ctx, max_diags_per_code=max_diags_per_code)


def precheck_tables(tables: ForwardingTables,
                    routing_name: str = "",
                    updown_sample: int | None = 50_000,
                    ) -> CheckResult:
    """Fast input gate for the experiment drivers (``--check``).

    Lints the wiring and the forwarding tables (no schedule passes, no
    certification) with a bounded up*/down* sample, so even the
    1944-port sweeps can afford it before committing hours of compute.
    """
    ctx = CheckContext.for_tables(tables, routing_name=routing_name)
    only = {"wiring", "spec-conformance", "reachability", "up-down", "cdg",
            "dmodk-conformance", "down-balance"}
    return run_check(ctx, only=only, updown_sample=updown_sample,
                     certify=False)
