"""SARIF 2.1.0 emitter for ``repro.check`` diagnostics.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
is the interchange format GitHub code scanning ingests, so
``python -m repro.check --format sarif`` lets CI surface fabric
findings (wiring lint, refuted certificates, ``RQL`` routing-quality
regressions) as first-class code-scanning annotations.

The mapping is deliberately small and stable:

* every registered diagnostic code becomes a SARIF *rule* (id, default
  level, one-line help text from :data:`repro.check.CODES`);
* every finding becomes a *result* pointing at the analyzed topology
  artifact (the ``--topofile`` when one was given, a pseudo-URI
  otherwise) with the structured fabric location -- switch, port,
  stage, ... -- carried as a SARIF *logical location* and the
  finding's machine payload under ``properties``.

Fabric findings have no source line, so physical locations stay
file-level; the logical location string (``switch=SW1-0003 port=5``)
is what reviewers see in the annotation title.
"""

from __future__ import annotations

import json
from typing import Any

from .diagnostics import CODES, Diagnostic, Severity
from .passes import CheckResult

__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "dumps_sarif", "to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

#: repro severities -> SARIF result levels
_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _rule(code: str) -> dict[str, Any]:
    sev, desc = CODES[code]
    return {
        "id": code,
        "shortDescription": {"text": desc.split(". ")[0].rstrip(".") + "."},
        "fullDescription": {"text": desc},
        "defaultConfiguration": {"level": _LEVELS[sev]},
    }


def _result(diag: Diagnostic, rule_index: dict[str, int],
            artifact_uri: str) -> dict[str, Any]:
    location: dict[str, Any] = {
        "physicalLocation": {
            "artifactLocation": {"uri": artifact_uri},
        },
    }
    where = diag.loc.render()
    if where:
        location["logicalLocations"] = [{
            "fullyQualifiedName": where,
            "kind": "member",
        }]
    severity = diag.severity
    assert severity is not None  # filled in by Diagnostic.__post_init__
    out: dict[str, Any] = {
        "ruleId": diag.code,
        "ruleIndex": rule_index[diag.code],
        "level": _LEVELS[severity],
        "message": {"text": diag.message},
        "locations": [location],
    }
    props: dict[str, Any] = dict(diag.data)
    loc_json = diag.loc.to_json()
    if loc_json:
        props["loc"] = loc_json
    if props:
        out["properties"] = props
    return out


def to_sarif(result: CheckResult,
             artifact_uri: str = "fabric.topo") -> dict[str, Any]:
    """Render a :class:`~repro.check.CheckResult` as a SARIF 2.1.0 log.

    ``artifact_uri`` names the analyzed topology input; GitHub anchors
    the annotations to that path when it exists in the repository.
    """
    codes = sorted({d.code for d in result.report})
    rule_index = {c: i for i, c in enumerate(codes)}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro.check",
                    "informationUri":
                        "https://github.com/conf-ipps/fat-tree-repro",
                    "version": "1.0.0",
                    "rules": [_rule(c) for c in codes],
                },
            },
            "columnKind": "utf16CodeUnits",
            "properties": {
                "passes": list(result.passes_run),
                "summary": result.report.summary(),
            },
            "results": [_result(d, rule_index, artifact_uri)
                        for d in result.report],
        }],
    }


def dumps_sarif(result: CheckResult,
                artifact_uri: str = "fabric.topo") -> str:
    """:func:`to_sarif`, serialized exactly as the CLI prints it."""
    return json.dumps(to_sarif(result, artifact_uri=artifact_uri), indent=2)
