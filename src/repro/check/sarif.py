"""SARIF 2.1.0 emitter for ``repro.check`` diagnostics.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
is the interchange format GitHub code scanning ingests, so
``python -m repro.check --format sarif`` lets CI surface fabric
findings (wiring lint, refuted certificates, ``RQL`` routing-quality
regressions) as first-class code-scanning annotations.

The mapping is deliberately small and stable:

* every registered diagnostic code becomes a SARIF *rule* (id, default
  level, one-line help text from :data:`repro.check.CODES`);
* every finding becomes a *result* pointing at the analyzed topology
  artifact (the ``--topofile`` when one was given, a pseudo-URI
  otherwise) with the structured fabric location -- switch, port,
  stage, ... -- carried as a SARIF *logical location* and the
  finding's machine payload under ``properties``.

Every result carries a region (``startLine``/``startColumn``) so code
scanning renders a proper annotation: when the analyzed input was a
``--topofile``, :func:`build_line_map` resolves the finding's switch or
node name to the line that declares it; otherwise the region anchors to
line 1.  The logical location string (``switch=SW1-0003 port=5``) is
what reviewers see in the annotation title, and every rule links its
``helpUri`` to the family's section of ``docs/CHECKS.md``.
"""

from __future__ import annotations

import json
from typing import Any

from .diagnostics import CODES, Diagnostic, Severity
from .passes import CheckResult

__all__ = [
    "FAMILY_ANCHORS",
    "SARIF_SCHEMA",
    "SARIF_VERSION",
    "build_line_map",
    "dumps_sarif",
    "to_sarif",
]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

_CHECKS_URL = ("https://github.com/conf-ipps/fat-tree-repro/blob/main/"
               "docs/CHECKS.md")

#: diagnostic-code family -> section anchor in ``docs/CHECKS.md``
FAMILY_ANCHORS = {
    "FAB": "fab0xx--wiring-lint",
    "RTE": "rte0xx--forwarding-table-lint",
    "SCH": "sch0xx--collective-schedule-lint",
    "CFC": "cfc0xx--contention-freedom-certification",
    "FLT": "flt0xx--fault-schedule-lint",
    "SYM": "sym0xx--symbolic-verification",
    "RQL": "rql0xx--routing-quality-on-degraded-fabrics",
    "ISO": "iso0xx--traffic-class-isolation",
    "SRV": "srv0xx--certification-service",
}

#: repro severities -> SARIF result levels
_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def build_line_map(topofile_text: str) -> dict[str, int]:
    """Map node names to their 1-based declaration line in a topofile.

    Feeds SARIF regions: a finding located at ``switch=SW1-0007``
    annotates the line that declares ``SW1-0007`` instead of line 1.
    """
    lines: dict[str, int] = {}
    for lineno, raw in enumerate(topofile_text.splitlines(), start=1):
        tokens = raw.split()
        if len(tokens) >= 2 and tokens[0] in ("hca", "switch"):
            lines.setdefault(tokens[1], lineno)
    return lines


def _rule(code: str) -> dict[str, Any]:
    sev, desc = CODES[code]
    anchor = FAMILY_ANCHORS.get(code[:3])
    rule: dict[str, Any] = {
        "id": code,
        "shortDescription": {"text": desc.split(". ")[0].rstrip(".") + "."},
        "fullDescription": {"text": desc},
        "defaultConfiguration": {"level": _LEVELS[sev]},
    }
    if anchor is not None:
        rule["helpUri"] = f"{_CHECKS_URL}#{anchor}"
    return rule


def _result(diag: Diagnostic, rule_index: dict[str, int],
            artifact_uri: str,
            line_map: dict[str, int] | None = None) -> dict[str, Any]:
    line = 1
    if line_map:
        for name in (diag.loc.node, diag.loc.switch):
            if name is not None and name in line_map:
                line = line_map[name]
                break
    location: dict[str, Any] = {
        "physicalLocation": {
            "artifactLocation": {"uri": artifact_uri},
            "region": {"startLine": line, "startColumn": 1},
        },
    }
    where = diag.loc.render()
    if where:
        location["logicalLocations"] = [{
            "fullyQualifiedName": where,
            "kind": "member",
        }]
    severity = diag.severity
    assert severity is not None  # filled in by Diagnostic.__post_init__
    out: dict[str, Any] = {
        "ruleId": diag.code,
        "ruleIndex": rule_index[diag.code],
        "level": _LEVELS[severity],
        "message": {"text": diag.message},
        "locations": [location],
    }
    props: dict[str, Any] = dict(diag.data)
    loc_json = diag.loc.to_json()
    if loc_json:
        props["loc"] = loc_json
    if props:
        out["properties"] = props
    return out


def to_sarif(result: CheckResult,
             artifact_uri: str = "fabric.topo",
             line_map: dict[str, int] | None = None) -> dict[str, Any]:
    """Render a :class:`~repro.check.CheckResult` as a SARIF 2.1.0 log.

    ``artifact_uri`` names the analyzed topology input; GitHub anchors
    the annotations to that path when it exists in the repository.
    ``line_map`` (see :func:`build_line_map`) resolves finding
    locations to declaration lines within that artifact.
    """
    codes = sorted({d.code for d in result.report})
    rule_index = {c: i for i, c in enumerate(codes)}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro.check",
                    "informationUri":
                        "https://github.com/conf-ipps/fat-tree-repro",
                    "version": "1.0.0",
                    "rules": [_rule(c) for c in codes],
                },
            },
            "columnKind": "utf16CodeUnits",
            "properties": {
                "passes": list(result.passes_run),
                "summary": result.report.summary(),
            },
            "results": [_result(d, rule_index, artifact_uri, line_map)
                        for d in result.report],
        }],
    }


def dumps_sarif(result: CheckResult,
                artifact_uri: str = "fabric.topo",
                line_map: dict[str, int] | None = None) -> str:
    """:func:`to_sarif`, serialized exactly as the CLI prints it."""
    return json.dumps(to_sarif(result, artifact_uri=artifact_uri,
                               line_map=line_map), indent=2)
