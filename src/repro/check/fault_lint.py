"""Fault-schedule lint: a schedule must make sense on *this* fabric.

A :class:`~repro.faults.FaultSchedule` is pure data, so nothing stops a
user from scripting the death of a cable that does not exist, reviving
a link that never went down, or scheduling packet loss on a cable that
is dead for the whole window.  The packet engines tolerate all of that
silently (dead references simply never fire); the lint surfaces it
before a chaos campaign burns compute on a schedule that does not test
what its author thinks it tests.
"""

from __future__ import annotations

import math

from .diagnostics import Diagnostic, DiagnosticReport, Loc
from .passes import CheckContext, CheckPass

__all__ = ["FaultSchedulePass"]


class FaultSchedulePass(CheckPass):
    """Validate every fault event against the (healthy) fabric."""

    name = "faults"
    needs_faults = True

    def run(self, ctx: CheckContext, report: DiagnosticReport) -> None:
        from ..faults.schedule import FLAKY, LINK_DOWN, LINK_UP, SWITCH_DOWN

        fab = ctx.fabric
        faults = ctx.faults
        assert faults is not None
        num_ports = fab.num_ports
        num_nodes = fab.num_nodes

        # Replay the schedule in time order, tracking which cables are
        # down (canonical (min, max) gport keys) -- the same folding
        # down_intervals() does, but emitting a finding at each step
        # that would be ignored.
        open_down: dict[tuple[int, int], float] = {}
        killed: set[tuple[int, int]] = set()
        valid: list = []  # events that survive reference checks

        def canon(gp: int) -> tuple[int, int]:
            peer = int(fab.port_peer[gp])
            return (min(gp, peer), max(gp, peer))

        for idx, e in enumerate(faults):
            where = Loc(gport=e.gport if e.gport >= 0 else None,
                        stage=idx)
            if e.kind in (LINK_DOWN, LINK_UP, FLAKY):
                if not 0 <= e.gport < num_ports:
                    report.add(Diagnostic(
                        code="FLT001", loc=where,
                        message=(f"{e.kind} at t={e.time:g} names gport "
                                 f"{e.gport}, but the fabric has ports "
                                 f"0..{num_ports - 1}")))
                    continue
                if fab.port_peer[e.gport] < 0:
                    owner = int(fab.port_owner[e.gport])
                    report.add(Diagnostic(
                        code="FLT002", loc=where,
                        message=(f"{e.kind} at t={e.time:g} names gport "
                                 f"{e.gport} on {fab.node_names[owner]}, "
                                 "which has no cable attached")))
                    continue
            if e.kind == SWITCH_DOWN:
                if not 0 <= e.node < num_nodes:
                    report.add(Diagnostic(
                        code="FLT003", loc=Loc(stage=idx),
                        message=(f"switch_down at t={e.time:g} names node "
                                 f"{e.node}, but the fabric has nodes "
                                 f"0..{num_nodes - 1}")))
                    continue
                valid.append(e)
                if e.node < fab.num_endports:
                    report.add(Diagnostic(
                        code="FLT004", loc=Loc(node=fab.node_names[e.node],
                                               stage=idx),
                        message=(f"switch_down at t={e.time:g} targets "
                                 f"host {fab.node_names[e.node]}")))
                for gp in fab.ports_of(e.node):
                    if fab.port_peer[gp] >= 0:
                        killed.add(canon(int(gp)))
            elif e.kind == LINK_DOWN:
                valid.append(e)
                key = canon(e.gport)
                if key in killed or key in open_down:
                    report.add(Diagnostic(
                        code="FLT006", loc=where,
                        message=(f"link_down at t={e.time:g}: cable "
                                 f"{key[0]}<->{key[1]} is already down")))
                else:
                    open_down[key] = e.time
            elif e.kind == LINK_UP:
                valid.append(e)
                key = canon(e.gport)
                if key in killed:
                    report.add(Diagnostic(
                        code="FLT006", loc=where,
                        message=(f"link_up at t={e.time:g}: cable "
                                 f"{key[0]}<->{key[1]} belongs to a dead "
                                 "switch and cannot come back")))
                elif key not in open_down:
                    report.add(Diagnostic(
                        code="FLT005", loc=where,
                        message=(f"link_up at t={e.time:g}: cable "
                                 f"{key[0]}<->{key[1]} is not down")))
                else:
                    open_down.pop(key)
            elif e.kind == FLAKY:
                valid.append(e)

        # Flaky windows fully shadowed by a dead window can never fire.
        # Interval queries run on the reference-checked subset only --
        # out-of-range events would crash them.
        from ..faults.schedule import FaultSchedule

        clean = FaultSchedule(events=tuple(valid), seed=faults.seed)
        down = clean.down_intervals(fab)
        for a, b, start, end, loss in clean.flaky_intervals(fab):
            shadowed = any(
                da == a and db == b and ds <= start
                and (math.isinf(de) or de >= end)
                for da, db, ds, de in down)
            if shadowed:
                report.add(Diagnostic(
                    code="FLT007", loc=Loc(gport=a),
                    message=(f"flaky window [{start:g}, {end:g}) with loss "
                             f"{loss:g} on cable {a}<->{b} lies inside a "
                             "dead window")))
