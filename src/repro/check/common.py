"""Cross-pass helpers shared by the analyzer's passes.

These used to live as private functions inside ``routing_lint.py`` and
were imported underscore-and-all by other passes; they are promoted here
so every pass (routing lint, enumerating certifier, symbolic certifier)
depends on one public, documented surface.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..fabric.model import Fabric
from .diagnostics import Loc

__all__ = ["link_loc", "sample_pairs", "colliding_pairs_payload",
           "MAX_COUNTEREXAMPLE_PAIRS"]

#: cap on colliding pairs listed per counterexample; the payload records
#: ``total_pairs``/``pairs_truncated`` so the cap is never silent.
MAX_COUNTEREXAMPLE_PAIRS = 8


def link_loc(fab: Fabric, gp: int, **extra: Any) -> Loc:
    """Structured location of a directed link (source global port id)."""
    owner = int(fab.port_owner[gp])
    return Loc(switch=fab.node_names[owner], gport=int(gp),
               port=int(fab.local_port(gp)), **extra)


def sample_pairs(n: int, sample: int | None, seed: int = 0
                 ) -> tuple[np.ndarray, np.ndarray]:
    """All (src, dst), src != dst, or a deterministic random subset."""
    src = np.repeat(np.arange(n, dtype=np.int64), n)
    dst = np.tile(np.arange(n, dtype=np.int64), n)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    if sample is not None and sample < len(src):
        rng = np.random.default_rng(seed)
        idx = rng.choice(len(src), size=sample, replace=False)
        idx.sort()
        src, dst = src[idx], dst[idx]
    return src, dst


def colliding_pairs_payload(src: np.ndarray, dst: np.ndarray,
                            on_link: np.ndarray,
                            max_pairs: int = MAX_COUNTEREXAMPLE_PAIRS,
                            ) -> dict[str, Any]:
    """Counterexample payload fields for flows sharing one link.

    ``on_link`` indexes into the stage's ``src``/``dst`` arrays.  The
    listed pairs are capped at ``max_pairs``; ``total_pairs`` and
    ``pairs_truncated`` make the cap explicit in the diagnostic data and
    certificate JSON.
    """
    total = int(len(on_link))
    pairs = [[int(src[f]), int(dst[f])] for f in on_link[:max_pairs]]
    return {
        "colliding_pairs": pairs,
        "total_pairs": total,
        "pairs_truncated": total > len(pairs),
    }
